//! Ablation benches for the design choices documented in DESIGN.md.
//!
//! These benches measure both *runtime* (the Criterion statistic) and print the
//! resulting *solution quality* once per run, so that the trade-off each design
//! choice makes is visible in the bench output:
//!
//! * **H4 scoring rule** — failure-factor score (exact incremental period)
//!   versus the literal `w·f` prose reading;
//! * **binary-search tolerance** — the paper's 1 ms absolute tolerance versus
//!   a relative 1e-3 stop;
//! * **exact solver** — combinatorial branch-and-bound versus the simplex-based
//!   MIP on the same instance.

use criterion::{criterion_group, criterion_main, Criterion};
use mf_bench::standard_instance;
use mf_exact::{branch_and_bound, solve_specialized_mip, BnbConfig, MipConfig};
use mf_heuristics::{
    BinarySearchConfig, GreedyHeuristic, H2BinaryPotential, Heuristic, ScoringRule,
};

fn scoring_rule_ablation(c: &mut Criterion) {
    let instance = standard_instance(60, 20, 5, 5);
    let factor = GreedyHeuristic::new("H4-factor", ScoringRule::BestPerformance);
    let raw = GreedyHeuristic::new("H4-raw", ScoringRule::RawFailureWeight);
    println!(
        "[ablation_scoring] period with failure-factor score: {:.1} ms, with raw w*f score: {:.1} ms",
        factor.period(&instance).unwrap().value(),
        raw.period(&instance).unwrap().value()
    );
    let mut group = c.benchmark_group("ablation_scoring");
    group.bench_function("H4_failure_factor", |b| {
        b.iter(|| factor.map(&instance).unwrap())
    });
    group.bench_function("H4_raw_weight", |b| b.iter(|| raw.map(&instance).unwrap()));
    group.finish();
}

fn binary_search_tolerance_ablation(c: &mut Criterion) {
    let instance = standard_instance(80, 20, 5, 9);
    let paper = H2BinaryPotential {
        config: BinarySearchConfig {
            tolerance: 1.0,
            max_iterations: 128,
        },
    };
    let coarse = H2BinaryPotential {
        config: BinarySearchConfig {
            tolerance: 100.0,
            max_iterations: 128,
        },
    };
    let fine = H2BinaryPotential {
        config: BinarySearchConfig {
            tolerance: 0.001,
            max_iterations: 256,
        },
    };
    println!(
        "[ablation_binsearch] period at 100ms tol: {:.1}, 1ms tol (paper): {:.1}, 0.001ms tol: {:.1}",
        coarse.period(&instance).unwrap().value(),
        paper.period(&instance).unwrap().value(),
        fine.period(&instance).unwrap().value()
    );
    let mut group = c.benchmark_group("ablation_binsearch");
    group.bench_function("tolerance_100ms", |b| {
        b.iter(|| coarse.map(&instance).unwrap())
    });
    group.bench_function("tolerance_1ms_paper", |b| {
        b.iter(|| paper.map(&instance).unwrap())
    });
    group.bench_function("tolerance_0.001ms", |b| {
        b.iter(|| fine.map(&instance).unwrap())
    });
    group.finish();
}

fn exact_solver_ablation(c: &mut Criterion) {
    let instance = standard_instance(6, 3, 2, 13);
    let bnb = branch_and_bound(&instance, BnbConfig::default()).unwrap();
    let mip = solve_specialized_mip(&instance, MipConfig::default()).unwrap();
    println!(
        "[ablation_exact] combinatorial B&B optimum: {:.1} ms ({} nodes), simplex MIP optimum: {:.1} ms ({} nodes)",
        bnb.period.value(),
        bnb.nodes,
        mip.period.unwrap().value(),
        mip.nodes
    );
    let mut group = c.benchmark_group("ablation_exact");
    group.sample_size(10);
    group.bench_function("combinatorial_bnb", |b| {
        b.iter(|| branch_and_bound(&instance, BnbConfig::default()).unwrap())
    });
    group.bench_function("simplex_mip", |b| {
        b.iter(|| solve_specialized_mip(&instance, MipConfig::default()).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = scoring_rule_ablation, binary_search_tolerance_ablation, exact_solver_ablation
}
criterion_main!(benches);
