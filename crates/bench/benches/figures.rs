//! One Criterion group per figure of the paper's evaluation.
//!
//! Each bench runs a reduced sweep of the corresponding experiment (fewer
//! repetitions, a subset of the x values) so that `cargo bench` both exercises
//! every experiment end-to-end and reports how long a point of each figure
//! costs to regenerate. The full-protocol numbers are produced by the
//! `mf-experiments` binaries (`cargo run -p mf-experiments --release --bin fig5 -- --full`).

use criterion::{criterion_group, criterion_main, Criterion};
use mf_experiments::figures;
use mf_experiments::ExperimentConfig;

fn bench_config() -> ExperimentConfig {
    ExperimentConfig {
        repetitions: 3,
        exact_node_budget: 200_000,
        ..ExperimentConfig::quick()
    }
}

fn fig5(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig5/m50_p5_n60", |b| {
        b.iter(|| figures::fig5::run_with_tasks(&config, vec![60]))
    });
}

fn fig6(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig6/m10_p2_n40", |b| {
        b.iter(|| figures::fig6::run_with_tasks(&config, vec![40]))
    });
}

fn fig7(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig7/m100_p5_n120", |b| {
        b.iter(|| figures::fig7::run_with_tasks(&config, vec![120]))
    });
}

fn fig8(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig8/m10_p5_n40_highfail", |b| {
        b.iter(|| figures::fig8::run_with_tasks(&config, vec![40]))
    });
}

fn fig9(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig9/m100_n100_p40", |b| {
        b.iter(|| figures::fig9::run_with_types(&config, vec![40]))
    });
}

fn fig10(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig10/m5_p2_n8", |b| {
        b.iter(|| figures::fig10::run_with_tasks(&config, vec![8]))
    });
}

fn fig11(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig11/m5_p2_n8_normalised", |b| {
        b.iter(|| figures::fig11::run_with_tasks(&config, vec![8]))
    });
}

fn fig12(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig12/m9_p4_n10", |b| {
        b.iter(|| figures::fig12::run_with_tasks(&config, vec![10]))
    });
}

fn summary(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("summary/ratio_tables", |b| {
        b.iter(|| figures::summary::run_with(&config, vec![20], vec![6]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12, summary
}
criterion_main!(benches);
