//! Runtime scaling of the six heuristics with the problem size.
//!
//! The paper argues the heuristics are polynomial-time; this bench quantifies
//! their cost on the platform sizes of the evaluation (up to 100 machines and
//! 200 tasks) and shows the gap between the greedy H4 family (linear scans)
//! and the binary-search heuristics H2/H3 (a full placement round per search
//! iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_bench::standard_instance;
use mf_heuristics::all_paper_heuristics;

fn heuristic_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic_scaling");
    for &(tasks, machines, types) in &[(50usize, 20usize, 5usize), (100, 50, 5), (200, 100, 5)] {
        let instance = standard_instance(tasks, machines, types, 42);
        for heuristic in all_paper_heuristics(7) {
            group.bench_with_input(
                BenchmarkId::new(
                    heuristic.name().to_string(),
                    format!("n{tasks}_m{machines}"),
                ),
                &instance,
                |b, instance| b.iter(|| heuristic.map(instance).expect("mapping succeeds")),
            );
        }
    }
    group.finish();
}

fn exact_solver_scaling(c: &mut Criterion) {
    use mf_exact::{branch_and_bound, BnbConfig};
    let mut group = c.benchmark_group("exact_scaling");
    group.sample_size(10);
    for &tasks in &[6usize, 10, 12] {
        let instance = standard_instance(tasks, 5, 2, 17);
        group.bench_with_input(BenchmarkId::new("bnb", tasks), &instance, |b, instance| {
            b.iter(|| branch_and_bound(instance, BnbConfig::default()).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = heuristic_scaling, exact_solver_scaling
}
criterion_main!(benches);
