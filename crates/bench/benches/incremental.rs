//! Incremental vs. full-recompute candidate evaluation.
//!
//! The workload the H6 local search actually generates: evaluate the period
//! of a mapping that differs from the current one by a single-task move or a
//! two-task swap, at the evaluation-scale size n = 100, m = 20. The
//! `full_*` variants rebuild the candidate mapping and recompute every
//! demand and machine load from scratch (what a sweep without the
//! [`IncrementalEvaluator`] must do); the `incremental_*` variants answer
//! from the cached state in `O(affected tasks + log m)`.
//!
//! The ≥ 10× speedup itself is pinned by the (ignored, CI-probed)
//! `incremental_speedup` integration test of this crate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mf_bench::standard_instance;
use mf_core::prelude::*;
use mf_heuristics::{H4wFastestMachine, Heuristic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TASKS: usize = 100;
const MACHINES: usize = 20;

type Fixture = (
    Instance,
    Mapping,
    Vec<(TaskId, MachineId)>,
    Vec<(TaskId, TaskId)>,
);

fn setup() -> Fixture {
    let instance = standard_instance(TASKS, MACHINES, 5, 42);
    let mapping = H4wFastestMachine
        .map(&instance)
        .expect("m >= p so H4w succeeds");
    let mut rng = StdRng::seed_from_u64(7);
    let moves: Vec<(TaskId, MachineId)> = (0..1024)
        .map(|_| {
            (
                TaskId(rng.gen_range(0..TASKS)),
                MachineId(rng.gen_range(0..MACHINES)),
            )
        })
        .collect();
    let swaps: Vec<(TaskId, TaskId)> = (0..1024)
        .map(|_| {
            (
                TaskId(rng.gen_range(0..TASKS)),
                TaskId(rng.gen_range(0..TASKS)),
            )
        })
        .collect();
    (instance, mapping, moves, swaps)
}

fn incremental_vs_full(c: &mut Criterion) {
    let (instance, mapping, moves, swaps) = setup();
    let mut group = c.benchmark_group("incremental_eval");

    group.bench_function("full_recompute_move", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (task, to) = moves[i % moves.len()];
            i += 1;
            let mut assignment = mapping.as_slice().to_vec();
            assignment[task.index()] = to;
            let candidate = Mapping::new(assignment, MACHINES).unwrap();
            black_box(instance.period(&candidate).unwrap())
        })
    });
    group.bench_function("incremental_move", |b| {
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let mut i = 0usize;
        b.iter(|| {
            let (task, to) = moves[i % moves.len()];
            i += 1;
            black_box(eval.evaluate_move(task, to).unwrap())
        })
    });

    group.bench_function("full_recompute_swap", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let (a, s) = swaps[i % swaps.len()];
            i += 1;
            let mut assignment = mapping.as_slice().to_vec();
            assignment.swap(a.index(), s.index());
            let candidate = Mapping::new(assignment, MACHINES).unwrap();
            black_box(instance.period(&candidate).unwrap())
        })
    });
    group.bench_function("incremental_swap", |b| {
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let mut i = 0usize;
        b.iter(|| {
            let (a, s) = swaps[i % swaps.len()];
            i += 1;
            black_box(eval.evaluate_swap(a, s).unwrap())
        })
    });

    group.bench_function("incremental_committed_walk", |b| {
        // A drifting search trajectory: commit every proposed move.
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let mut i = 0usize;
        b.iter(|| {
            let (task, to) = moves[i % moves.len()];
            i += 1;
            black_box(eval.apply_move(task, to).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = incremental_vs_full
}
criterion_main!(benches);
