//! Search-strategy comparison and branch-and-bound node throughput.
//!
//! `strategy_polish/*` measures the three [`SearchStrategy`] policies
//! polishing the same H4w seed mapping at the evaluation-scale size
//! n = 100, m = 20 — the fig5 family shape. H6 probes the neighborhoods at
//! random (4000 proposals), steepest descent and tabu sweep them in full per
//! iteration; all three ride the incremental evaluator, so the comparison is
//! pure policy cost. Periods achieved are printed once at setup so the
//! time-to-quality trade-off is visible next to the timings.
//!
//! `bnb_nodes/*` measures branch-and-bound node throughput with a fixed
//! node budget: `evaluator` scores nodes through the staged
//! [`PartialAssignmentEvaluator`] (`O(log m)` placement, `O(1)` bound);
//! `legacy_scan` re-enables the pre-refactor `O(m)` max-load scan via
//! [`BnbConfig::legacy_bounds`]. Both explore the bit-identical tree (pinned
//! by a test in `mf-exact`), so the delta is exactly the per-node scoring
//! cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mf_bench::standard_instance;
use mf_core::prelude::*;
use mf_exact::{branch_and_bound, BnbConfig};
use mf_heuristics::search::{polish_with, SteepestDescent, TabuSearch};
use mf_heuristics::{H4wFastestMachine, H6LocalSearch, Heuristic, LocalSearchConfig};

const TASKS: usize = 100;
const MACHINES: usize = 20;
/// Shared candidate-evaluation budget of the sweep strategies.
const SWEEP_BUDGET: usize = 50_000;

fn strategy_polish(c: &mut Criterion) {
    let instance = standard_instance(TASKS, MACHINES, 5, 42);
    let seed = H4wFastestMachine
        .map(&instance)
        .expect("m >= p so H4w succeeds");
    let h6_config = LocalSearchConfig {
        seed: 7,
        ..LocalSearchConfig::default()
    };

    // One-off quality readout so the timings below have context.
    let report = |label: &str, mapping: &Mapping| {
        eprintln!(
            "strategy_polish quality: {label} period {:.1}",
            instance.period(mapping).unwrap().value()
        );
    };
    report("seed(H4w)", &seed);
    report(
        "H6",
        &H6LocalSearch::polish(&instance, &seed, &h6_config).unwrap(),
    );
    report(
        "steepest-descent",
        &polish_with(&instance, &seed, &SteepestDescent::default(), SWEEP_BUDGET).unwrap(),
    );
    report(
        "tabu",
        &polish_with(&instance, &seed, &TabuSearch::default(), SWEEP_BUDGET).unwrap(),
    );

    let mut group = c.benchmark_group("strategy_polish");
    group.sample_size(20);
    group.bench_function("h6_annealed", |b| {
        b.iter(|| {
            black_box(H6LocalSearch::polish(&instance, &seed, &h6_config).unwrap());
        })
    });
    group.bench_function("steepest_descent", |b| {
        b.iter(|| {
            black_box(
                polish_with(&instance, &seed, &SteepestDescent::default(), SWEEP_BUDGET).unwrap(),
            );
        })
    });
    group.bench_function("tabu", |b| {
        b.iter(|| {
            black_box(polish_with(&instance, &seed, &TabuSearch::default(), SWEEP_BUDGET).unwrap());
        })
    });
    group.finish();
}

fn bnb_nodes(c: &mut Criterion) {
    // Big enough that the node budget is the binding constraint, so both
    // variants explore exactly the same number of nodes; wide enough
    // (m = 24) that the legacy `O(m)` scan is a visible share of node cost.
    let instance = standard_instance(20, 24, 5, 3);
    let budget = 100_000u64;
    let fast = branch_and_bound(&instance, BnbConfig::with_node_budget(budget)).unwrap();
    let legacy = branch_and_bound(
        &instance,
        BnbConfig {
            legacy_bounds: true,
            ..BnbConfig::with_node_budget(budget)
        },
    )
    .unwrap();
    assert_eq!(fast.nodes, legacy.nodes, "variants must explore one tree");
    eprintln!("bnb_nodes: {} nodes per run", fast.nodes);

    let mut group = c.benchmark_group("bnb_nodes");
    group.sample_size(20);
    group.bench_function("evaluator", |b| {
        b.iter(|| {
            black_box(branch_and_bound(&instance, BnbConfig::with_node_budget(budget)).unwrap())
        })
    });
    group.bench_function("legacy_scan", |b| {
        b.iter(|| {
            black_box(
                branch_and_bound(
                    &instance,
                    BnbConfig {
                        legacy_bounds: true,
                        ..BnbConfig::with_node_budget(budget)
                    },
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = strategy_polish, bnb_nodes
}
criterion_main!(benches);
