//! Benchmarks of the substrate crates: LP simplex, assignment algorithms and
//! the discrete-event simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_bench::{standard_instance, task_failure_instance};
use mf_heuristics::{H4wFastestMachine, Heuristic};
use mf_lp::{ConstraintSense, LpProblem, Objective};
use mf_matching::{bottleneck_assignment, hungarian, CostMatrix};
use mf_sim::{FactorySimulation, SimulationConfig};

fn simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_simplex");
    for &size in &[10usize, 25, 50] {
        // A dense transportation-like LP with `size` variables and constraints.
        group.bench_with_input(BenchmarkId::new("dense", size), &size, |b, &size| {
            b.iter(|| {
                let mut lp = LpProblem::new(Objective::Maximize);
                let vars: Vec<_> = (0..size)
                    .map(|i| lp.add_bounded_variable(format!("x{i}"), 0.0, 10.0))
                    .collect();
                for (i, &v) in vars.iter().enumerate() {
                    lp.set_objective_coefficient(v, 1.0 + (i % 7) as f64);
                }
                for i in 0..size {
                    let terms: Vec<_> = vars
                        .iter()
                        .enumerate()
                        .map(|(j, &v)| (v, 1.0 + ((i + j) % 5) as f64))
                        .collect();
                    lp.add_constraint(terms, ConstraintSense::LessEqual, 50.0);
                }
                mf_lp::solve(&lp).expect("feasible and bounded")
            })
        });
    }
    group.finish();
}

fn assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment");
    for &size in &[20usize, 50, 100] {
        let costs = CostMatrix::from_fn(size, size, |r, cidx| {
            (((r * 31 + cidx * 17) % 997) + 1) as f64
        });
        group.bench_with_input(BenchmarkId::new("hungarian", size), &costs, |b, costs| {
            b.iter(|| hungarian(costs).expect("square matrices always match"))
        });
        group.bench_with_input(BenchmarkId::new("bottleneck", size), &costs, |b, costs| {
            b.iter(|| bottleneck_assignment(costs).expect("square matrices always match"))
        });
    }
    group.finish();
}

fn optimal_one_to_one(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_to_one_reference");
    for &size in &[50usize, 100] {
        let instance = task_failure_instance(size, size, 5, 3);
        group.bench_with_input(
            BenchmarkId::new("bottleneck_oto", size),
            &instance,
            |b, inst| {
                b.iter(|| mf_exact::optimal_one_to_one_bottleneck(inst).expect("valid setting"))
            },
        );
    }
    group.finish();
}

fn simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("discrete_event_simulation");
    group.sample_size(10);
    let instance = standard_instance(30, 10, 3, 11);
    let mapping = H4wFastestMachine.map(&instance).expect("mapping succeeds");
    for &products in &[1_000u64, 5_000] {
        group.bench_with_input(
            BenchmarkId::new("products", products),
            &products,
            |b, &products| {
                b.iter(|| {
                    let config = SimulationConfig {
                        target_products: products,
                        warmup_products: 100,
                        ..Default::default()
                    };
                    FactorySimulation::new(&instance, &mapping, config)
                        .run()
                        .expect("simulation runs")
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = simplex, assignment, optimal_one_to_one, simulator
}
criterion_main!(benches);
