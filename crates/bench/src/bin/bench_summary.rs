//! Headless perf summary: the `search_strategies` measurements as a
//! machine-readable JSON file.
//!
//! Criterion's interactive harness is great locally but awkward to archive;
//! this binary re-runs the same measurements — strategy polish cost
//! (H6 / steepest descent / tabu over the shared H4w seed), branch-and-bound
//! node throughput (staged evaluator vs legacy scan, plus the
//! `bnb_prove/*` pair proving one m ≫ p fixture under the packing vs the
//! LP-warm-started bound — the node collapse is the point), what-if cost on a
//! tree-shaped instance (the forest variant of the dense fast path vs a
//! full recompute), the steepest-descent sweep with and without the
//! dirty-candidate cache on both the forest and the chain shape (periods
//! identical by construction; the `evaluator_calls` column is the point —
//! the chain rows pin the delta-transfer rescaling win), LNS restage
//! probes (staged subtree tear-out vs full candidate recompute), and a
//! portfolio run under the barrier vs the work-stealing round executor
//! (outcomes identical by construction; the delta is wall clock) — with plain
//! `Instant` timing and writes median nanoseconds per run to
//! `BENCH_core.json`, so the perf trajectory accumulates commit over
//! commit (CI uploads the file as an artifact).
//!
//! ```sh
//! cargo run --release -p mf-bench --bin bench_summary -- --out BENCH_core.json
//! cargo run --release -p mf-bench --bin bench_summary -- --quick   # CI smoke
//! ```
//!
//! The JSON is hand-written (the workspace has no serde): a flat
//! `mf-bench-summary v1` document with one entry per measurement — each row
//! carries both `median_ns` (the stable headline) and `elapsed_ns` (the
//! total timed nanoseconds across all iterations, so the artifact also
//! answers "where did the bench wall clock go"). `--trace PATH`
//! additionally writes the per-row elapsed times as an `mf-trace v1` span
//! log on a synthetic back-to-back timeline, readable with
//! `microfactory trace PATH`.

use mf_bench::{forest_instance, standard_instance};
use mf_core::prelude::*;
use mf_exact::{branch_and_bound, BnbConfig};
use mf_experiments::portfolio::{run_portfolio, run_portfolio_barrier, PortfolioConfig};
use mf_experiments::runner::BatchRunner;
use mf_heuristics::search::{
    polish_with, SearchEngine, SearchStrategy, SteepestDescent, TabuSearch,
};
use mf_heuristics::{H4wFastestMachine, H6LocalSearch, Heuristic, LocalSearchConfig};
use std::time::Instant;

/// One timed measurement.
struct Measurement {
    name: &'static str,
    timing: Timing,
    iterations: usize,
    /// Achieved period (strategy rows), explored nodes (B&B rows), probe
    /// throughput (what-if rows) or sweep-cache effect (sweep rows).
    quality: Quality,
}

/// The two numbers every row reports: the median single-run cost and the
/// total timed nanoseconds across all iterations.
#[derive(Clone, Copy)]
struct Timing {
    median_ns: u128,
    elapsed_ns: u128,
}

fn timing(samples: Vec<u128>) -> Timing {
    let elapsed_ns = samples.iter().sum();
    Timing {
        median_ns: median_ns(samples),
        elapsed_ns,
    }
}

enum Quality {
    PeriodMs(f64),
    Nodes {
        count: u64,
        per_second: f64,
    },
    Sweep {
        period_ms: f64,
        evaluator_calls: u64,
        probes: u64,
    },
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time<R>(iterations: usize, mut run: impl FnMut() -> R) -> Vec<u128> {
    // One untimed warmup to populate caches/allocator pools.
    let _ = run();
    (0..iterations)
        .map(|_| {
            let start = Instant::now();
            let result = run();
            let elapsed = start.elapsed().as_nanos();
            std::hint::black_box(result);
            elapsed
        })
        .collect()
}

fn main() {
    let mut out_path = "BENCH_core.json".to_string();
    let mut trace_path: Option<String> = None;
    let mut iterations = 9usize;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            "--trace" => trace_path = Some(args.next().expect("--trace takes a path")),
            "--iterations" => {
                iterations = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--iterations takes a count >= 1")
            }
            "--quick" => quick = true,
            other => {
                eprintln!(
                    "unknown flag `{other}` \
                     (valid: --out PATH, --trace PATH, --iterations N, --quick)"
                );
                std::process::exit(2);
            }
        }
    }

    // The search_strategies bench shape: evaluation-scale for the full run,
    // a reduced grid for `--quick` CI smoke.
    let (tasks, machines, sweep_budget, node_budget) = if quick {
        (40usize, 10usize, 10_000usize, 10_000u64)
    } else {
        (100, 20, 50_000, 100_000)
    };
    let instance = standard_instance(tasks, machines, 5, 42);
    let seed = H4wFastestMachine
        .map(&instance)
        .expect("m >= p so H4w succeeds");
    let h6_config = LocalSearchConfig {
        seed: 7,
        ..LocalSearchConfig::default()
    };
    let period_of = |mapping: &Mapping| instance.period(mapping).unwrap().value();

    let mut rows: Vec<Measurement> = Vec::new();

    let h6 = H6LocalSearch::polish(&instance, &seed, &h6_config).unwrap();
    rows.push(Measurement {
        name: "strategy_polish/h6_annealed",
        timing: timing(time(iterations, || {
            H6LocalSearch::polish(&instance, &seed, &h6_config).unwrap()
        })),
        iterations,
        quality: Quality::PeriodMs(period_of(&h6)),
    });

    let sd = polish_with(&instance, &seed, &SteepestDescent::default(), sweep_budget).unwrap();
    rows.push(Measurement {
        name: "strategy_polish/steepest_descent",
        timing: timing(time(iterations, || {
            polish_with(&instance, &seed, &SteepestDescent::default(), sweep_budget).unwrap()
        })),
        iterations,
        quality: Quality::PeriodMs(period_of(&sd)),
    });

    let ts = polish_with(&instance, &seed, &TabuSearch::default(), sweep_budget).unwrap();
    rows.push(Measurement {
        name: "strategy_polish/tabu",
        timing: timing(time(iterations, || {
            polish_with(&instance, &seed, &TabuSearch::default(), sweep_budget).unwrap()
        })),
        iterations,
        quality: Quality::PeriodMs(period_of(&ts)),
    });

    // What-if cost on a tree-shaped instance: the forest variant of the
    // dense fast path (Euler-tour subtree masses) vs rebuilding the
    // candidate mapping and recomputing from scratch. Same probe stream for
    // both sides.
    let forest = forest_instance(tasks, machines, 5, 42);
    let forest_seed = H4wFastestMachine
        .map(&forest)
        .expect("m >= p so H4w succeeds");
    let probe_count = if quick { 2_000usize } else { 20_000 };
    let probes: Vec<(TaskId, MachineId)> = (0..probe_count as u64)
        .map(|k| {
            let r = mf_core::seed::splitmix64(0xF0E5_u64.wrapping_add(k));
            (
                TaskId((r % tasks as u64) as usize),
                MachineId(((r >> 32) % machines as u64) as usize),
            )
        })
        .collect();
    {
        let mut eval = IncrementalEvaluator::new(&forest, &forest_seed).unwrap();
        assert!(
            eval.is_dense_fast_path(),
            "forest shape must ride the dense path"
        );
        let dense = timing(time(iterations, || {
            let mut acc = 0.0f64;
            for &(task, to) in &probes {
                acc += eval.evaluate_move(task, to).unwrap().period.value();
            }
            acc
        }));
        rows.push(Measurement {
            name: "whatif_forest/dense",
            timing: dense,
            iterations,
            quality: Quality::Nodes {
                count: probe_count as u64,
                per_second: probe_count as f64 / (dense.median_ns as f64 / 1e9),
            },
        });
        let full = timing(time(iterations, || {
            let mut acc = 0.0f64;
            for &(task, to) in &probes {
                let mut assignment = forest_seed.as_slice().to_vec();
                assignment[task.index()] = to;
                let candidate = Mapping::new(assignment, machines).unwrap();
                acc += forest.period(&candidate).unwrap().value();
            }
            acc
        }));
        rows.push(Measurement {
            name: "whatif_forest/full_recompute",
            timing: full,
            iterations,
            quality: Quality::Nodes {
                count: probe_count as u64,
                per_second: probe_count as f64 / (full.median_ns as f64 / 1e9),
            },
        });
    }

    // Steepest descent, full sweeps vs the dirty-candidate cache, on both
    // the forest and the chain shape: identical committed steps and final
    // period by construction (pinned by the sweep_cache differential); the
    // delta is wall time and — budget-independent — the number of
    // evaluator calls per run. The chain rows were flat before the
    // delta-transfer rescaling (every commit's span reaches tour position
    // 0 on a chain, so spans-only invalidation evicted everything); their
    // evaluator-call gap is the number the CI hard floor pins.
    for (name, shape, shape_seed, cached) in [
        ("sd_sweep_forest/full", &forest, &forest_seed, false),
        ("sd_sweep_forest/dirty_cache", &forest, &forest_seed, true),
        ("sd_sweep_chain/full", &instance, &seed, false),
        ("sd_sweep_chain/dirty_cache", &instance, &seed, true),
    ] {
        let strategy = SteepestDescent::default();
        let run = |record: bool| {
            let mut engine = SearchEngine::new(shape, shape_seed, sweep_budget).unwrap();
            engine.set_sweep_cache(cached);
            strategy.run(&mut engine).unwrap();
            if record {
                let stats = engine.sweep_stats();
                Some((engine.best_period(), stats.evaluations, stats.probes))
            } else {
                None
            }
        };
        let (period, evaluator_calls, probes) = run(true).unwrap();
        rows.push(Measurement {
            name,
            timing: timing(time(iterations, || run(false))),
            iterations,
            quality: Quality::Sweep {
                period_ms: period,
                evaluator_calls,
                probes,
            },
        });
    }

    // LNS restage probes: the staged subtree tear-out (torn loads plus one
    // partial-assignment evaluator) vs rebuilding the candidate mapping and
    // recomputing the period from scratch. Same (root, target) stream on
    // both sides; the staged path is what `SubtreeMoveLns` pays per probe.
    {
        let restage_count = if quick { 500usize } else { 2_000 };
        let restages: Vec<(TaskId, MachineId)> = (0..restage_count as u64)
            .map(|k| {
                let r = mf_core::seed::splitmix64(0x1A45_u64.wrapping_add(k));
                (
                    TaskId((r % tasks as u64) as usize),
                    MachineId(((r >> 32) % machines as u64) as usize),
                )
            })
            .collect();
        let mut engine = SearchEngine::new(&forest, &forest_seed, sweep_budget).unwrap();
        let staged = timing(time(iterations, || {
            let mut acc = 0.0f64;
            for &(root, to) in &restages {
                acc += engine.restage_move(root, to);
            }
            acc
        }));
        rows.push(Measurement {
            name: "lns_restage/staged",
            timing: staged,
            iterations,
            quality: Quality::Nodes {
                count: restage_count as u64,
                per_second: restage_count as f64 / (staged.median_ns as f64 / 1e9),
            },
        });
        let full = timing(time(iterations, || {
            let mut acc = 0.0f64;
            for &(root, to) in &restages {
                let mut assignment = forest_seed.as_slice().to_vec();
                assignment[root.index()] = to;
                let candidate = Mapping::new(assignment, machines).unwrap();
                acc += forest.period(&candidate).unwrap().value();
            }
            acc
        }));
        rows.push(Measurement {
            name: "lns_restage/full",
            timing: full,
            iterations,
            quality: Quality::Nodes {
                count: restage_count as u64,
                per_second: restage_count as f64 / (full.median_ns as f64 / 1e9),
            },
        });
    }

    // Portfolio rounds: the barrier reference vs the work-stealing round
    // executor, same config and auto thread count. Outcomes are
    // bit-identical by construction (pinned in batch_determinism); the
    // delta is wall clock — the work-stealing side must never be worse.
    {
        let portfolio_config = PortfolioConfig {
            annealed_streams: 1,
            round_steps: if quick { 500 } else { 1_500 },
            sweep_budget: if quick { 10_000 } else { 20_000 },
            max_rounds: if quick { 3 } else { 4 },
            ..PortfolioConfig::default()
        };
        let runner = BatchRunner::new(0);
        let barrier = run_portfolio_barrier(&instance, &portfolio_config, &runner);
        let worksteal = run_portfolio(&instance, &portfolio_config, &runner);
        assert_eq!(
            barrier, worksteal,
            "the two portfolio executors must produce identical outcomes"
        );
        let period = barrier.best_period.expect("feasible bench instance");
        rows.push(Measurement {
            name: "portfolio_rounds/barrier",
            timing: timing(time(iterations, || {
                run_portfolio_barrier(&instance, &portfolio_config, &runner)
            })),
            iterations,
            quality: Quality::PeriodMs(period),
        });
        rows.push(Measurement {
            name: "portfolio_rounds/worksteal",
            timing: timing(time(iterations, || {
                run_portfolio(&instance, &portfolio_config, &runner)
            })),
            iterations,
            quality: Quality::PeriodMs(period),
        });
    }

    // B&B node throughput: the evaluator and legacy-scan variants explore
    // the bit-identical tree (pinned in mf-exact), so their delta is pure
    // per-node scoring cost.
    let bnb_instance = standard_instance(20, 24, 5, 3);
    for (name, legacy) in [
        ("bnb_nodes/evaluator", false),
        ("bnb_nodes/legacy_scan", true),
    ] {
        let config = || BnbConfig {
            legacy_bounds: legacy,
            ..BnbConfig::with_node_budget(node_budget)
        };
        let outcome = branch_and_bound(&bnb_instance, config()).unwrap();
        let measured = timing(time(iterations, || {
            branch_and_bound(&bnb_instance, config()).unwrap()
        }));
        rows.push(Measurement {
            name,
            timing: measured,
            iterations,
            quality: Quality::Nodes {
                count: outcome.nodes,
                per_second: outcome.nodes as f64 / (measured.median_ns as f64 / 1e9),
            },
        });
    }

    // LP-bound tree collapse: on a machine-rich shape (m ≫ p) both bound
    // variants prove the same optimum, so the `nodes` columns compare the
    // full proof trees — the LP row must visit ≤ 50 % of the packing row's
    // nodes (the CI floor in mf-exact pins the same invariant). The LP
    // relaxation costs ~ms per touched node, so this pair runs on its own
    // small fixture with a reduced iteration count; the collapse ratio, not
    // wall clock, is the headline here.
    let lp_fixture = standard_instance(12, 16, 3, 7);
    let lp_iterations = if quick { 2 } else { 3 };
    for (name, lp) in [("bnb_prove/packing", false), ("bnb_prove/lp_bound", true)] {
        let config = || BnbConfig {
            lp_bounds: lp,
            ..BnbConfig::default()
        };
        let outcome = branch_and_bound(&lp_fixture, config()).unwrap();
        assert!(
            outcome.proven_optimal,
            "{name} must prove optimality on the m >> p fixture"
        );
        let measured = timing(time(lp_iterations, || {
            branch_and_bound(&lp_fixture, config()).unwrap()
        }));
        rows.push(Measurement {
            name,
            timing: measured,
            iterations: lp_iterations,
            quality: Quality::Nodes {
                count: outcome.nodes,
                per_second: outcome.nodes as f64 / (measured.median_ns as f64 / 1e9),
            },
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"mf-bench-summary v1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"tasks\": {tasks}, \"machines\": {machines}, \
         \"sweep_budget\": {sweep_budget}, \"bnb_node_budget\": {node_budget}, \
         \"quick\": {quick}}},\n"
    ));
    json.push_str("  \"measurements\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let quality = match &row.quality {
            Quality::PeriodMs(period) => format!("\"period_ms\": {period}"),
            Quality::Nodes { count, per_second } => {
                format!("\"nodes\": {count}, \"nodes_per_second\": {per_second}")
            }
            Quality::Sweep {
                period_ms,
                evaluator_calls,
                probes,
            } => format!(
                "\"period_ms\": {period_ms}, \"evaluator_calls\": {evaluator_calls}, \
                 \"probes\": {probes}"
            ),
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"elapsed_ns\": {}, \
             \"iterations\": {}, {}}}{}\n",
            row.name,
            row.timing.median_ns,
            row.timing.elapsed_ns,
            row.iterations,
            quality,
            if index + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write `{out_path}`: {e}");
        std::process::exit(1);
    });
    if let Some(trace_path) = &trace_path {
        // One span per measurement on a synthetic back-to-back timeline:
        // the starts are cumulative offsets (the bench interleaves rows
        // with untimed setup, so real timestamps would mean nothing), the
        // durations are each row's total timed nanoseconds.
        let mut offset_ns = 0u64;
        let events: Vec<mf_obs::TraceEvent> = rows
            .iter()
            .map(|row| {
                let duration_ns = u64::try_from(row.timing.elapsed_ns).unwrap_or(u64::MAX);
                let span = mf_obs::TraceEvent::Span {
                    name: row.name.replace('/', "."),
                    start_ns: offset_ns,
                    duration_ns,
                };
                offset_ns = offset_ns.saturating_add(duration_ns);
                span
            })
            .collect();
        let text = mf_obs::events_to_text(&events).expect("bench row names are valid tokens");
        std::fs::write(trace_path, text).unwrap_or_else(|e| {
            eprintln!("cannot write `{trace_path}`: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {trace_path}: {} span(s)", events.len());
    }
    eprintln!("wrote {out_path}:");
    for row in &rows {
        eprintln!(
            "  {:<34} median {:>12} ns  (total {:>13} ns)",
            row.name, row.timing.median_ns, row.timing.elapsed_ns
        );
    }
}
