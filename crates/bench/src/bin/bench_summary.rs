//! Headless perf summary: the `search_strategies` measurements as a
//! machine-readable JSON file.
//!
//! Criterion's interactive harness is great locally but awkward to archive;
//! this binary re-runs the same measurements — strategy polish cost
//! (H6 / steepest descent / tabu over the shared H4w seed), branch-and-bound
//! node throughput (staged evaluator vs legacy scan), what-if cost on a
//! tree-shaped instance (the forest variant of the dense fast path vs a
//! full recompute), the steepest-descent sweep with and without the
//! dirty-candidate cache on both the forest and the chain shape (periods
//! identical by construction; the `evaluator_calls` column is the point —
//! the chain rows pin the delta-transfer rescaling win), and a portfolio
//! run under the barrier vs the work-stealing round executor (outcomes
//! identical by construction; the delta is wall clock) — with plain
//! `Instant` timing and writes median nanoseconds per run to
//! `BENCH_core.json`, so the perf trajectory accumulates commit over
//! commit (CI uploads the file as an artifact).
//!
//! ```sh
//! cargo run --release -p mf-bench --bin bench_summary -- --out BENCH_core.json
//! cargo run --release -p mf-bench --bin bench_summary -- --quick   # CI smoke
//! ```
//!
//! The JSON is hand-written (the workspace has no serde): a flat
//! `mf-bench-summary v1` document with one entry per measurement.

use mf_bench::{forest_instance, standard_instance};
use mf_core::prelude::*;
use mf_exact::{branch_and_bound, BnbConfig};
use mf_experiments::portfolio::{run_portfolio, run_portfolio_barrier, PortfolioConfig};
use mf_experiments::runner::BatchRunner;
use mf_heuristics::search::{
    polish_with, SearchEngine, SearchStrategy, SteepestDescent, TabuSearch,
};
use mf_heuristics::{H4wFastestMachine, H6LocalSearch, Heuristic, LocalSearchConfig};
use std::time::Instant;

/// One timed measurement.
struct Measurement {
    name: &'static str,
    median_ns: u128,
    iterations: usize,
    /// Achieved period (strategy rows), explored nodes (B&B rows), probe
    /// throughput (what-if rows) or sweep-cache effect (sweep rows).
    quality: Quality,
}

enum Quality {
    PeriodMs(f64),
    Nodes {
        count: u64,
        per_second: f64,
    },
    Sweep {
        period_ms: f64,
        evaluator_calls: u64,
        probes: u64,
    },
}

fn median_ns(mut samples: Vec<u128>) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn time<R>(iterations: usize, mut run: impl FnMut() -> R) -> Vec<u128> {
    // One untimed warmup to populate caches/allocator pools.
    let _ = run();
    (0..iterations)
        .map(|_| {
            let start = Instant::now();
            let result = run();
            let elapsed = start.elapsed().as_nanos();
            std::hint::black_box(result);
            elapsed
        })
        .collect()
}

fn main() {
    let mut out_path = "BENCH_core.json".to_string();
    let mut iterations = 9usize;
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            "--iterations" => {
                iterations = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .expect("--iterations takes a count >= 1")
            }
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag `{other}` (valid: --out PATH, --iterations N, --quick)");
                std::process::exit(2);
            }
        }
    }

    // The search_strategies bench shape: evaluation-scale for the full run,
    // a reduced grid for `--quick` CI smoke.
    let (tasks, machines, sweep_budget, node_budget) = if quick {
        (40usize, 10usize, 10_000usize, 10_000u64)
    } else {
        (100, 20, 50_000, 100_000)
    };
    let instance = standard_instance(tasks, machines, 5, 42);
    let seed = H4wFastestMachine
        .map(&instance)
        .expect("m >= p so H4w succeeds");
    let h6_config = LocalSearchConfig {
        seed: 7,
        ..LocalSearchConfig::default()
    };
    let period_of = |mapping: &Mapping| instance.period(mapping).unwrap().value();

    let mut rows: Vec<Measurement> = Vec::new();

    let h6 = H6LocalSearch::polish(&instance, &seed, &h6_config).unwrap();
    rows.push(Measurement {
        name: "strategy_polish/h6_annealed",
        median_ns: median_ns(time(iterations, || {
            H6LocalSearch::polish(&instance, &seed, &h6_config).unwrap()
        })),
        iterations,
        quality: Quality::PeriodMs(period_of(&h6)),
    });

    let sd = polish_with(&instance, &seed, &SteepestDescent::default(), sweep_budget).unwrap();
    rows.push(Measurement {
        name: "strategy_polish/steepest_descent",
        median_ns: median_ns(time(iterations, || {
            polish_with(&instance, &seed, &SteepestDescent::default(), sweep_budget).unwrap()
        })),
        iterations,
        quality: Quality::PeriodMs(period_of(&sd)),
    });

    let ts = polish_with(&instance, &seed, &TabuSearch::default(), sweep_budget).unwrap();
    rows.push(Measurement {
        name: "strategy_polish/tabu",
        median_ns: median_ns(time(iterations, || {
            polish_with(&instance, &seed, &TabuSearch::default(), sweep_budget).unwrap()
        })),
        iterations,
        quality: Quality::PeriodMs(period_of(&ts)),
    });

    // What-if cost on a tree-shaped instance: the forest variant of the
    // dense fast path (Euler-tour subtree masses) vs rebuilding the
    // candidate mapping and recomputing from scratch. Same probe stream for
    // both sides.
    let forest = forest_instance(tasks, machines, 5, 42);
    let forest_seed = H4wFastestMachine
        .map(&forest)
        .expect("m >= p so H4w succeeds");
    let probe_count = if quick { 2_000usize } else { 20_000 };
    let probes: Vec<(TaskId, MachineId)> = (0..probe_count as u64)
        .map(|k| {
            let r = mf_core::seed::splitmix64(0xF0E5_u64.wrapping_add(k));
            (
                TaskId((r % tasks as u64) as usize),
                MachineId(((r >> 32) % machines as u64) as usize),
            )
        })
        .collect();
    {
        let mut eval = IncrementalEvaluator::new(&forest, &forest_seed).unwrap();
        assert!(
            eval.is_dense_fast_path(),
            "forest shape must ride the dense path"
        );
        let dense = median_ns(time(iterations, || {
            let mut acc = 0.0f64;
            for &(task, to) in &probes {
                acc += eval.evaluate_move(task, to).unwrap().period.value();
            }
            acc
        }));
        rows.push(Measurement {
            name: "whatif_forest/dense",
            median_ns: dense,
            iterations,
            quality: Quality::Nodes {
                count: probe_count as u64,
                per_second: probe_count as f64 / (dense as f64 / 1e9),
            },
        });
        let full = median_ns(time(iterations, || {
            let mut acc = 0.0f64;
            for &(task, to) in &probes {
                let mut assignment = forest_seed.as_slice().to_vec();
                assignment[task.index()] = to;
                let candidate = Mapping::new(assignment, machines).unwrap();
                acc += forest.period(&candidate).unwrap().value();
            }
            acc
        }));
        rows.push(Measurement {
            name: "whatif_forest/full_recompute",
            median_ns: full,
            iterations,
            quality: Quality::Nodes {
                count: probe_count as u64,
                per_second: probe_count as f64 / (full as f64 / 1e9),
            },
        });
    }

    // Steepest descent, full sweeps vs the dirty-candidate cache, on both
    // the forest and the chain shape: identical committed steps and final
    // period by construction (pinned by the sweep_cache differential); the
    // delta is wall time and — budget-independent — the number of
    // evaluator calls per run. The chain rows were flat before the
    // delta-transfer rescaling (every commit's span reaches tour position
    // 0 on a chain, so spans-only invalidation evicted everything); their
    // evaluator-call gap is the number the CI hard floor pins.
    for (name, shape, shape_seed, cached) in [
        ("sd_sweep_forest/full", &forest, &forest_seed, false),
        ("sd_sweep_forest/dirty_cache", &forest, &forest_seed, true),
        ("sd_sweep_chain/full", &instance, &seed, false),
        ("sd_sweep_chain/dirty_cache", &instance, &seed, true),
    ] {
        let strategy = SteepestDescent::default();
        let run = |record: bool| {
            let mut engine = SearchEngine::new(shape, shape_seed, sweep_budget).unwrap();
            engine.set_sweep_cache(cached);
            strategy.run(&mut engine).unwrap();
            if record {
                let stats = engine.sweep_stats();
                Some((engine.best_period(), stats.evaluations, stats.probes))
            } else {
                None
            }
        };
        let (period, evaluator_calls, probes) = run(true).unwrap();
        rows.push(Measurement {
            name,
            median_ns: median_ns(time(iterations, || run(false))),
            iterations,
            quality: Quality::Sweep {
                period_ms: period,
                evaluator_calls,
                probes,
            },
        });
    }

    // Portfolio rounds: the barrier reference vs the work-stealing round
    // executor, same config and auto thread count. Outcomes are
    // bit-identical by construction (pinned in batch_determinism); the
    // delta is wall clock — the work-stealing side must never be worse.
    {
        let portfolio_config = PortfolioConfig {
            annealed_streams: 1,
            round_steps: if quick { 500 } else { 1_500 },
            sweep_budget: if quick { 10_000 } else { 20_000 },
            max_rounds: if quick { 3 } else { 4 },
            ..PortfolioConfig::default()
        };
        let runner = BatchRunner::new(0);
        let barrier = run_portfolio_barrier(&instance, &portfolio_config, &runner);
        let worksteal = run_portfolio(&instance, &portfolio_config, &runner);
        assert_eq!(
            barrier, worksteal,
            "the two portfolio executors must produce identical outcomes"
        );
        let period = barrier.best_period.expect("feasible bench instance");
        rows.push(Measurement {
            name: "portfolio_rounds/barrier",
            median_ns: median_ns(time(iterations, || {
                run_portfolio_barrier(&instance, &portfolio_config, &runner)
            })),
            iterations,
            quality: Quality::PeriodMs(period),
        });
        rows.push(Measurement {
            name: "portfolio_rounds/worksteal",
            median_ns: median_ns(time(iterations, || {
                run_portfolio(&instance, &portfolio_config, &runner)
            })),
            iterations,
            quality: Quality::PeriodMs(period),
        });
    }

    // B&B node throughput: both variants explore the bit-identical tree
    // (pinned in mf-exact), so the delta is pure per-node scoring cost.
    let bnb_instance = standard_instance(20, 24, 5, 3);
    for (name, legacy) in [
        ("bnb_nodes/evaluator", false),
        ("bnb_nodes/legacy_scan", true),
    ] {
        let config = || BnbConfig {
            legacy_bounds: legacy,
            ..BnbConfig::with_node_budget(node_budget)
        };
        let outcome = branch_and_bound(&bnb_instance, config()).unwrap();
        let median = median_ns(time(iterations, || {
            branch_and_bound(&bnb_instance, config()).unwrap()
        }));
        rows.push(Measurement {
            name,
            median_ns: median,
            iterations,
            quality: Quality::Nodes {
                count: outcome.nodes,
                per_second: outcome.nodes as f64 / (median as f64 / 1e9),
            },
        });
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"mf-bench-summary v1\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"tasks\": {tasks}, \"machines\": {machines}, \
         \"sweep_budget\": {sweep_budget}, \"bnb_node_budget\": {node_budget}, \
         \"quick\": {quick}}},\n"
    ));
    json.push_str("  \"measurements\": [\n");
    for (index, row) in rows.iter().enumerate() {
        let quality = match &row.quality {
            Quality::PeriodMs(period) => format!("\"period_ms\": {period}"),
            Quality::Nodes { count, per_second } => {
                format!("\"nodes\": {count}, \"nodes_per_second\": {per_second}")
            }
            Quality::Sweep {
                period_ms,
                evaluator_calls,
                probes,
            } => format!(
                "\"period_ms\": {period_ms}, \"evaluator_calls\": {evaluator_calls}, \
                 \"probes\": {probes}"
            ),
        };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"iterations\": {}, {}}}{}\n",
            row.name,
            row.median_ns,
            row.iterations,
            quality,
            if index + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write `{out_path}`: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out_path}:");
    for row in &rows {
        eprintln!("  {:<34} median {:>12} ns", row.name, row.median_ns);
    }
}
