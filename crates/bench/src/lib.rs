//! # mf-bench — shared fixtures for the Criterion benchmark harness
//!
//! The benches themselves live in `benches/`:
//!
//! * `figures` — one Criterion group per paper figure, each running a reduced
//!   sweep of the corresponding experiment;
//! * `heuristic_scaling` — runtime of each heuristic as the task count grows;
//! * `substrates` — simplex, Hungarian, bottleneck assignment and the
//!   discrete-event simulator;
//! * `ablations` — the design-choice ablations listed in DESIGN.md
//!   (H4 scoring rule, binary-search tolerance, exact-solver choice);
//! * `incremental` — incremental move/swap evaluation vs. a full recompute
//!   (the ≥ 10× bar itself is pinned by the ignored `incremental_speedup`
//!   integration test, probed non-blocking in CI).
//!
//! This library crate only provides deterministic instance fixtures shared by
//! those benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mf_core::prelude::*;
use mf_sim::{GeneratorConfig, InstanceGenerator};

/// A deterministic instance drawn from the paper's standard distribution.
pub fn standard_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_standard(tasks, machines, types))
        .generate(seed)
        .expect("the standard generator always produces valid instances")
}

/// A deterministic instance with failures attached to tasks only (Figure 9
/// setting).
pub fn task_failure_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_task_failures(tasks, machines, types))
        .generate(seed)
        .expect("the task-failure generator always produces valid instances")
}

/// A deterministic high-failure instance (Figure 8 setting).
pub fn high_failure_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_high_failure(tasks, machines, types))
        .generate(seed)
        .expect("the high-failure generator always produces valid instances")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_the_requested_shape() {
        let inst = standard_instance(20, 8, 3, 1);
        assert_eq!(inst.task_count(), 20);
        assert_eq!(inst.machine_count(), 8);
        let inst = task_failure_instance(10, 10, 2, 2);
        assert!(inst.failures().is_task_dependent_only());
        let inst = high_failure_instance(10, 5, 2, 3);
        assert_eq!(inst.machine_count(), 5);
    }
}
