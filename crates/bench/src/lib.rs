//! # mf-bench — shared fixtures for the Criterion benchmark harness
//!
//! The benches themselves live in `benches/`:
//!
//! * `figures` — one Criterion group per paper figure, each running a reduced
//!   sweep of the corresponding experiment;
//! * `heuristic_scaling` — runtime of each heuristic as the task count grows;
//! * `substrates` — simplex, Hungarian, bottleneck assignment and the
//!   discrete-event simulator;
//! * `ablations` — the design-choice ablations listed in DESIGN.md
//!   (H4 scoring rule, binary-search tolerance, exact-solver choice);
//! * `incremental` — incremental move/swap evaluation vs. a full recompute
//!   (the ≥ 10× bar itself is pinned by the ignored `incremental_speedup`
//!   integration test, probed non-blocking in CI).
//!
//! This library crate only provides deterministic instance fixtures shared by
//! those benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use mf_core::prelude::*;
use mf_sim::{GeneratorConfig, InstanceGenerator};

/// A deterministic instance drawn from the paper's standard distribution.
pub fn standard_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_standard(tasks, machines, types))
        .generate(seed)
        .expect("the standard generator always produces valid instances")
}

/// A deterministic instance with failures attached to tasks only (Figure 9
/// setting).
pub fn task_failure_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_task_failures(tasks, machines, types))
        .generate(seed)
        .expect("the task-failure generator always produces valid instances")
}

/// A deterministic high-failure instance (Figure 8 setting).
pub fn high_failure_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_high_failure(tasks, machines, types))
        .generate(seed)
        .expect("the high-failure generator always produces valid instances")
}

/// A deterministic random **in-forest** instance (mixed fan-in, several
/// roots) — the tree-shaped counterpart of [`standard_instance`], for
/// benchmarking the forest variant of the evaluator's dense fast path
/// (`GeneratorConfig::standard_in_forest` is the single source of the
/// shape, shared with the differential tests).
pub fn forest_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::standard_in_forest(tasks, machines, types))
        .generate(seed)
        .expect("the forest generator always produces valid instances")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_the_requested_shape() {
        let inst = standard_instance(20, 8, 3, 1);
        assert_eq!(inst.task_count(), 20);
        assert_eq!(inst.machine_count(), 8);
        let inst = task_failure_instance(10, 10, 2, 2);
        assert!(inst.failures().is_task_dependent_only());
        let inst = high_failure_instance(10, 5, 2, 3);
        assert_eq!(inst.machine_count(), 5);
    }

    #[test]
    fn forest_fixture_is_deterministic_and_tree_shaped() {
        let a = forest_instance(100, 20, 5, 42);
        let b = forest_instance(100, 20, 5, 42);
        assert_eq!(a.task_count(), 100);
        assert_eq!(a.machine_count(), 20);
        assert!(!a.application().is_linear_chain());
        // Multiple roots and at least one join (mixed fan-in).
        assert!(a.application().sinks().count() > 1);
        assert!(a
            .application()
            .tasks()
            .any(|t| a.application().predecessors(t.id).len() > 1));
        // Bit-identical across calls (no hidden global state).
        for t in a.application().tasks() {
            assert_eq!(
                a.application().successor(t.id),
                b.application().successor(t.id)
            );
        }
        assert_ne!(
            forest_instance(100, 20, 5, 43)
                .application()
                .sinks()
                .count(),
            0
        );
    }
}
