//! Wall-clock probes: incremental what-if evaluation must beat a full
//! recompute by ≥ 10× on the evaluation-scale **chain** (n = 100, m = 20)
//! and by ≥ 5× on the equally-sized random **in-forest** (the Euler-tour
//! dense path; swaps split into nested/disjoint cases and lean harder on
//! row rebuilds, hence the lower bar).
//!
//! Timing on shared runners is noisy, so — like the batch-runner speedup
//! probe in `mf-experiments` — these tests are `#[ignore]`d under the
//! regular parallel harness and CI runs them in a dedicated non-blocking
//! step (`cargo test --release -p mf-bench --tests -- --ignored`). Run them
//! locally with `--release`; a debug build underestimates the gap because
//! the full recompute's allocations dominate differently.

use mf_bench::{forest_instance, standard_instance};
use mf_core::prelude::*;
use mf_heuristics::{H4wFastestMachine, Heuristic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const TASKS: usize = 100;
const MACHINES: usize = 20;
const ROUNDS: usize = 20_000;

#[test]
#[ignore = "wall-clock probe: run in isolation with --release (CI does, non-blocking)"]
fn incremental_move_evaluation_is_at_least_ten_times_faster() {
    let instance = standard_instance(TASKS, MACHINES, 5, 42);
    let mapping = H4wFastestMachine.map(&instance).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let moves: Vec<(TaskId, MachineId)> = (0..ROUNDS)
        .map(|_| {
            (
                TaskId(rng.gen_range(0..TASKS)),
                MachineId(rng.gen_range(0..MACHINES)),
            )
        })
        .collect();

    // Both sides compute the same periods — checked while warming up.
    let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
    for &(task, to) in moves.iter().take(512) {
        let mut assignment = mapping.as_slice().to_vec();
        assignment[task.index()] = to;
        let candidate = Mapping::new(assignment, MACHINES).unwrap();
        let full = instance.period(&candidate).unwrap().value();
        let fast = eval.evaluate_move(task, to).unwrap().period.value();
        assert!(
            (full - fast).abs() <= 1e-9 * full.max(1.0),
            "move ({task:?} -> {to:?}): full {full} vs incremental {fast}"
        );
    }

    // Best-of-three timing on each side filters scheduler hiccups.
    let time_full = best_of(3, || {
        let mut acc = 0.0f64;
        for &(task, to) in &moves {
            let mut assignment = mapping.as_slice().to_vec();
            assignment[task.index()] = to;
            let candidate = Mapping::new(assignment, MACHINES).unwrap();
            acc += instance.period(&candidate).unwrap().value();
        }
        acc
    });
    let time_incremental = best_of(3, || {
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let mut acc = 0.0f64;
        for &(task, to) in &moves {
            acc += eval.evaluate_move(task, to).unwrap().period.value();
        }
        acc
    });

    let speedup = time_full.as_secs_f64() / time_incremental.as_secs_f64();
    println!(
        "incremental speedup at n = {TASKS}, m = {MACHINES}: {speedup:.1}x \
         (full {time_full:?}, incremental {time_incremental:?})"
    );
    if solo_cores() {
        assert!(
            speedup >= 10.0,
            "expected >= 10x at n = {TASKS}, m = {MACHINES}; got {speedup:.1}x \
             (full {time_full:?}, incremental {time_incremental:?} for {ROUNDS} moves)"
        );
    }
}

#[test]
#[ignore = "wall-clock probe: run in isolation with --release (CI does, non-blocking)"]
fn forest_what_ifs_are_at_least_five_times_faster_than_full_recompute() {
    let instance = forest_instance(TASKS, MACHINES, 5, 42);
    assert!(!instance.application().is_linear_chain());
    let assignment: Vec<usize> = instance
        .application()
        .tasks()
        .map(|t| t.ty.index())
        .collect();
    let mapping = Mapping::from_indices(&assignment, MACHINES).unwrap();
    {
        let eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        assert!(eval.is_dense_fast_path(), "n=100, m=20 is within the caps");
    }
    let mut rng = StdRng::seed_from_u64(11);
    // Mixed probes: moves and swaps, the two dense forest code paths.
    let probes: Vec<(TaskId, TaskId, MachineId)> = (0..ROUNDS)
        .map(|_| {
            (
                TaskId(rng.gen_range(0..TASKS)),
                TaskId(rng.gen_range(0..TASKS)),
                MachineId(rng.gen_range(0..MACHINES)),
            )
        })
        .collect();

    // Both sides compute the same periods — checked while warming up.
    let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
    for (k, &(task, other, to)) in probes.iter().take(512).enumerate() {
        let mut indices = assignment.clone();
        let fast = if k % 2 == 0 {
            indices[task.index()] = to.index();
            eval.evaluate_move(task, to).unwrap().period.value()
        } else {
            indices.swap(task.index(), other.index());
            eval.evaluate_swap(task, other).unwrap().period.value()
        };
        let candidate = Mapping::from_indices(&indices, MACHINES).unwrap();
        let full = instance.period(&candidate).unwrap().value();
        assert!(
            (full - fast).abs() <= 1e-9 * full.max(1.0),
            "probe {k}: full {full} vs incremental {fast}"
        );
    }

    let time_full = best_of(3, || {
        let mut acc = 0.0f64;
        for (k, &(task, other, to)) in probes.iter().enumerate() {
            let mut indices = assignment.clone();
            if k % 2 == 0 {
                indices[task.index()] = to.index();
            } else {
                indices.swap(task.index(), other.index());
            }
            let candidate =
                Mapping::new(indices.into_iter().map(MachineId).collect(), MACHINES).unwrap();
            acc += instance.period(&candidate).unwrap().value();
        }
        acc
    });
    let time_incremental = best_of(3, || {
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let mut acc = 0.0f64;
        for (k, &(task, other, to)) in probes.iter().enumerate() {
            acc += if k % 2 == 0 {
                eval.evaluate_move(task, to).unwrap().period.value()
            } else {
                eval.evaluate_swap(task, other).unwrap().period.value()
            };
        }
        acc
    });

    let speedup = time_full.as_secs_f64() / time_incremental.as_secs_f64();
    println!(
        "forest what-if speedup at n = {TASKS}, m = {MACHINES}: {speedup:.1}x \
         (full {time_full:?}, incremental {time_incremental:?})"
    );
    if solo_cores() {
        assert!(
            speedup >= 5.0,
            "expected >= 5x on the in-forest at n = {TASKS}, m = {MACHINES}; got {speedup:.1}x \
             (full {time_full:?}, incremental {time_incremental:?} for {ROUNDS} probes)"
        );
    }
}

/// Hard ratio bars only make sense when the probe isn't sharing its core
/// with the rest of the system: on a single-core container every background
/// tick lands inside the measurement and the ratio is noise. The measured
/// numbers are always printed either way, so constrained runs still report.
fn solo_cores() -> bool {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 {
        eprintln!("skipping the speedup-ratio assertion: only {cores} core(s) available");
    }
    cores >= 2
}

fn best_of(runs: usize, mut work: impl FnMut() -> f64) -> std::time::Duration {
    let mut best = std::time::Duration::MAX;
    let mut checksum = 0.0;
    for _ in 0..runs {
        let start = Instant::now();
        checksum += work();
        best = best.min(start.elapsed());
    }
    assert!(checksum.is_finite());
    best
}
