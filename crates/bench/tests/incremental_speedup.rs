//! Wall-clock probe: incremental move evaluation must beat a full recompute
//! by ≥ 10× at the evaluation-scale size n = 100, m = 20.
//!
//! Timing on shared runners is noisy, so — like the batch-runner speedup
//! probe in `mf-experiments` — this test is `#[ignore]`d under the regular
//! parallel harness and CI runs it in a dedicated non-blocking step
//! (`cargo test --release -p mf-bench --test incremental_speedup --
//! --ignored`). Run it locally with `--release`; a debug build underestimates
//! the gap because the full recompute's allocations dominate differently.

use mf_bench::standard_instance;
use mf_core::prelude::*;
use mf_heuristics::{H4wFastestMachine, Heuristic};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const TASKS: usize = 100;
const MACHINES: usize = 20;
const ROUNDS: usize = 20_000;

#[test]
#[ignore = "wall-clock probe: run in isolation with --release (CI does, non-blocking)"]
fn incremental_move_evaluation_is_at_least_ten_times_faster() {
    let instance = standard_instance(TASKS, MACHINES, 5, 42);
    let mapping = H4wFastestMachine.map(&instance).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let moves: Vec<(TaskId, MachineId)> = (0..ROUNDS)
        .map(|_| {
            (
                TaskId(rng.gen_range(0..TASKS)),
                MachineId(rng.gen_range(0..MACHINES)),
            )
        })
        .collect();

    // Both sides compute the same periods — checked while warming up.
    let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
    for &(task, to) in moves.iter().take(512) {
        let mut assignment = mapping.as_slice().to_vec();
        assignment[task.index()] = to;
        let candidate = Mapping::new(assignment, MACHINES).unwrap();
        let full = instance.period(&candidate).unwrap().value();
        let fast = eval.evaluate_move(task, to).unwrap().period.value();
        assert!(
            (full - fast).abs() <= 1e-9 * full.max(1.0),
            "move ({task:?} -> {to:?}): full {full} vs incremental {fast}"
        );
    }

    // Best-of-three timing on each side filters scheduler hiccups.
    let time_full = best_of(3, || {
        let mut acc = 0.0f64;
        for &(task, to) in &moves {
            let mut assignment = mapping.as_slice().to_vec();
            assignment[task.index()] = to;
            let candidate = Mapping::new(assignment, MACHINES).unwrap();
            acc += instance.period(&candidate).unwrap().value();
        }
        acc
    });
    let time_incremental = best_of(3, || {
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let mut acc = 0.0f64;
        for &(task, to) in &moves {
            acc += eval.evaluate_move(task, to).unwrap().period.value();
        }
        acc
    });

    let speedup = time_full.as_secs_f64() / time_incremental.as_secs_f64();
    assert!(
        speedup >= 10.0,
        "expected >= 10x at n = {TASKS}, m = {MACHINES}; got {speedup:.1}x \
         (full {time_full:?}, incremental {time_incremental:?} for {ROUNDS} moves)"
    );
    println!(
        "incremental speedup at n = {TASKS}, m = {MACHINES}: {speedup:.1}x \
         (full {time_full:?}, incremental {time_incremental:?})"
    );
}

fn best_of(runs: usize, mut work: impl FnMut() -> f64) -> std::time::Duration {
    let mut best = std::time::Duration::MAX;
    let mut checksum = 0.0;
    for _ in 0..runs {
        let start = Instant::now();
        checksum += work();
        best = best.min(start.elapsed());
    }
    assert!(checksum.is_finite());
    best
}
