//! Wall-clock probe: the steepest-descent full-neighborhood move sweep must
//! amortize to O(n·m) engine work after warmup — concretely, the time *per
//! candidate* must stay (roughly) flat as the task count grows with the
//! machine count fixed.
//!
//! On a linear chain the incremental evaluator answers each move what-if
//! from its lazily-built prefix-mass row cache: after the first sweep warms
//! the rows, a candidate costs one `O(m)` scan regardless of `n`, so a full
//! `n·m` sweep is `O(n·m²)` total — linear in `n` for fixed `m`. Without the
//! cache every candidate would walk its `O(n)` ancestors and per-candidate
//! cost would grow linearly with `n` (≈ 4× from n = 60 to n = 240); the probe
//! asserts the growth stays far below that.
//!
//! Timing on shared runners is noisy, so — like the other wall-clock probes —
//! this test is `#[ignore]`d under the regular harness and CI runs it in the
//! dedicated non-blocking step (`cargo test --release -p mf-bench --
//! --ignored`).

use mf_bench::standard_instance;
use mf_core::prelude::*;
use mf_heuristics::search::SearchEngine;
use mf_heuristics::{H4wFastestMachine, Heuristic};
use std::time::{Duration, Instant};

const MACHINES: usize = 20;

/// Times `rounds` full move sweeps (n·m what-ifs each) on a warmed engine
/// and returns the best per-candidate cost in nanoseconds.
fn per_candidate_nanos(tasks: usize, rounds: usize) -> f64 {
    let instance = standard_instance(tasks, MACHINES, 5, 42);
    let seed = H4wFastestMachine.map(&instance).unwrap();
    let mut engine = SearchEngine::new(&instance, &seed, usize::MAX).unwrap();

    let sweep = |engine: &mut SearchEngine<'_>| {
        let mut acc = 0.0f64;
        let mut candidates = 0usize;
        for t in 0..tasks {
            for u in 0..MACHINES {
                let (task, to) = (TaskId(t), MachineId(u));
                if engine.allows_move(task, to) {
                    acc += engine.evaluate_move(task, to).unwrap();
                    candidates += 1;
                }
            }
        }
        assert!(acc.is_finite());
        candidates
    };

    // Warmup: builds the prefix-mass rows.
    let warm_candidates = sweep(&mut engine);
    assert!(warm_candidates > 0);

    let mut best = Duration::MAX;
    let mut candidates = 0usize;
    for _ in 0..rounds {
        let start = Instant::now();
        candidates = sweep(&mut engine);
        best = best.min(start.elapsed());
    }
    best.as_nanos() as f64 / candidates as f64
}

#[test]
#[ignore = "wall-clock probe: run in isolation with --release (CI does, non-blocking)"]
fn steepest_descent_sweep_amortizes_to_linear_in_candidates() {
    let small = per_candidate_nanos(60, 5);
    let large = per_candidate_nanos(240, 5);
    let ratio = large / small;
    println!(
        "sweep per-candidate cost: n=60 {small:.0} ns, n=240 {large:.0} ns (ratio {ratio:.2})"
    );
    // Enforcing the ratio needs more than one core: on a single-core
    // container every background tick lands inside the measurement and the
    // ratio is noise. The measured numbers are printed above either way.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 {
        eprintln!("skipping the growth-ratio assertion: only {cores} core(s) available");
        return;
    }
    // 4× more tasks: an O(n)-per-candidate sweep would show ratio ≈ 4. The
    // amortized row cache must keep per-candidate cost near flat; 2.0 leaves
    // room for cache effects on shared runners without admitting linear
    // growth.
    assert!(
        ratio < 2.0,
        "per-candidate sweep cost grew {ratio:.2}x from n=60 ({small:.0} ns) \
         to n=240 ({large:.0} ns) — the prefix-mass amortization regressed"
    );
}
