//! Minimal argument parsing for the CLI (no external dependency).

/// Parsed command-line arguments: `--flag value` pairs, bare `--switch`es and
/// positional arguments, in order.
#[derive(Debug, Default, Clone)]
pub struct Arguments {
    flags: Vec<(String, Option<String>)>,
    positionals: Vec<String>,
}

/// Flags that never take a value (everything after them is positional).
pub const SWITCHES: &[&str] = &[
    "all",
    "anytime",
    "exact",
    "high-failure",
    "csv",
    "full",
    "json",
    "portfolio",
    "stdio",
];

impl Arguments {
    /// Parses the raw argument list (excluding the subcommand).
    pub fn parse(raw: &[String]) -> Self {
        let mut flags = Vec::new();
        let mut positionals = Vec::new();
        let mut index = 0;
        while index < raw.len() {
            let token = &raw[index];
            if let Some(name) = token.strip_prefix("--") {
                let value = if SWITCHES.contains(&name) {
                    None
                } else {
                    let next = raw.get(index + 1).filter(|v| !v.starts_with("--")).cloned();
                    if next.is_some() {
                        index += 1;
                    }
                    next
                };
                flags.push((name.to_string(), value));
            } else {
                positionals.push(token.clone());
            }
            index += 1;
        }
        Arguments { flags, positionals }
    }

    /// `true` if `--name` was given (with or without a value).
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// The string value of `--name`, if given with a value.
    pub fn string_flag(&self, name: &str) -> Option<String> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.clone())
    }

    /// The `usize` value of `--name`.
    pub fn usize_flag(&self, name: &str) -> Option<usize> {
        self.string_flag(name).and_then(|v| v.parse().ok())
    }

    /// The `u64` value of `--name`.
    pub fn u64_flag(&self, name: &str) -> Option<u64> {
        self.string_flag(name).and_then(|v| v.parse().ok())
    }

    /// The `index`-th positional argument.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals.get(index).map(String::as_str)
    }

    /// Rejects any flag not in `allowed`, naming the subcommand and listing
    /// its valid flags — so a typo like `--portolio` fails loudly instead of
    /// silently falling back to defaults.
    pub fn reject_unknown_flags(
        &self,
        command: &str,
        allowed: &[&str],
    ) -> std::result::Result<(), String> {
        for (name, _) in &self.flags {
            if !allowed.contains(&name.as_str()) {
                let valid = if allowed.is_empty() {
                    "this command takes no flags".to_string()
                } else {
                    format!(
                        "valid flags: {}",
                        allowed
                            .iter()
                            .map(|f| format!("--{f}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                return Err(format!("unknown flag `--{name}` for `{command}` ({valid})"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Arguments {
        Arguments::parse(&tokens.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flags_values_and_positionals() {
        let a = args(&[
            "--tasks", "20", "--exact", "line.mf", "--seed", "7", "map.mf",
        ]);
        assert_eq!(a.usize_flag("tasks"), Some(20));
        assert_eq!(a.u64_flag("seed"), Some(7));
        assert!(a.has_flag("exact"));
        assert!(!a.has_flag("missing"));
        assert_eq!(a.positional(0), Some("line.mf"));
        assert_eq!(a.positional(1), Some("map.mf"));
        assert_eq!(a.positional(2), None);
    }

    #[test]
    fn switches_never_consume_the_next_token() {
        let a = args(&["--all", "instance.mf", "--heuristic", "h2"]);
        assert!(a.has_flag("all"));
        assert_eq!(a.string_flag("all"), None);
        assert_eq!(a.positional(0), Some("instance.mf"));
        assert_eq!(a.string_flag("heuristic"), Some("h2".to_string()));
        // `--anytime` directly before the instance file is the documented
        // minimal invocation; the file must stay positional.
        let a = args(&["--anytime", "instance.mf"]);
        assert!(a.has_flag("anytime"));
        assert_eq!(a.positional(0), Some("instance.mf"));
    }

    #[test]
    fn numeric_parse_failures_return_none() {
        let a = args(&["--tasks", "many"]);
        assert_eq!(a.usize_flag("tasks"), None);
        assert_eq!(a.string_flag("tasks"), Some("many".to_string()));
    }

    #[test]
    fn unknown_flags_are_rejected_with_the_valid_list() {
        let a = args(&["--portolio", "line.mf"]);
        let err = a
            .reject_unknown_flags("solve", &["heuristic", "portfolio"])
            .unwrap_err();
        assert!(err.contains("--portolio"), "{err}");
        assert!(err.contains("`solve`"), "{err}");
        assert!(err.contains("--portfolio"), "{err}");
        // Allowed flags (with or without values) pass.
        let a = args(&["--heuristic", "h2", "--portfolio", "line.mf"]);
        assert!(a
            .reject_unknown_flags("solve", &["heuristic", "portfolio"])
            .is_ok());
        // Commands without flags say so.
        let err = args(&["--verbose"])
            .reject_unknown_flags("evaluate", &[])
            .unwrap_err();
        assert!(err.contains("takes no flags"), "{err}");
    }
}
