//! `microfactory` — command-line front end.
//!
//! ```text
//! microfactory generate --tasks 20 --machines 8 --types 3 --seed 1 > line.mf
//! microfactory solve --heuristic h4w line.mf > mapping.mf
//! microfactory solve --exact line.mf
//! microfactory evaluate line.mf mapping.mf
//! microfactory simulate --products 5000 line.mf mapping.mf
//! ```
//!
//! Instances and mappings use the plain-text format of `mf_core::textio`.

use mf_core::prelude::*;
use mf_core::textio;
use mf_exact::{branch_and_bound, BnbConfig};
use mf_experiments::anytime::{solve_anytime_observed, AnytimeConfig};
use mf_experiments::portfolio::{
    run_portfolio, run_portfolio_traced, PortfolioConfig, TRACE_CACHE_EVENT_CAP,
};
use mf_experiments::runner::BatchRunner;
use mf_heuristics::{all_paper_heuristics, Heuristic};
use mf_obs::{
    events_from_text, events_to_text, Clock, MonotonicClock, SamplingSink, SharedTraceWriter,
    TraceEvent,
};
use mf_sim::{FactorySimulation, GeneratorConfig, InstanceGenerator, SimulationConfig};
use std::process::ExitCode;
use std::sync::Arc;

mod args;
use args::Arguments;

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let command = raw.remove(0);
    let args = Arguments::parse(&raw);
    let result = match command.as_str() {
        "generate" => checked(&command, &args, FLAGS_GENERATE, generate),
        "solve" => checked(&command, &args, FLAGS_SOLVE, solve),
        "evaluate" => checked(&command, &args, FLAGS_EVALUATE, evaluate),
        "simulate" => checked(&command, &args, FLAGS_SIMULATE, simulate),
        "serve" => checked(&command, &args, FLAGS_SERVE, serve),
        "client" => checked(&command, &args, FLAGS_CLIENT, client),
        "stats" => checked(&command, &args, FLAGS_STATS, stats),
        "trace" => checked(&command, &args, FLAGS_TRACE, trace),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
microfactory — throughput optimization for micro-factories subject to failures

USAGE:
  microfactory generate --tasks N --machines M --types P [--seed S] [--high-failure]
  microfactory solve    [--heuristic NAME | --exact | --portfolio | --anytime]
                        [--budget N] [--all] [--threads N] [--trace PATH]
                        INSTANCE
  microfactory evaluate INSTANCE MAPPING
  microfactory simulate [--products N] [--seed S] INSTANCE MAPPING
  microfactory serve    [--port P] [--threads N] [--workers W] [--stdio]
                        [--data-dir PATH] [--trace-dir PATH] [--slow-ms N]
  microfactory client   [--host H] --port P
  microfactory stats    [--host H] --port P [--json]
  microfactory trace    TRACE

COMMANDS:
  generate   print a random instance (paper's experimental distribution)
  solve      print a mapping computed by a heuristic (default h4w), the exact
             solver, or the parallel search portfolio (--portfolio races all
             constructive seeds x strategies x RNG streams on --threads
             workers; deterministic for any thread count); --trace PATH
             writes an mf-trace v1 log of the solve: every committed
             search step (with the period it reached and whether it
             improved the incumbent), per-round cell summaries and
             sweep-cache outcomes — the mapping printed is bit-identical
             with or without the flag; --anytime runs the incumbent/bound
             race (H4w seed, subtree-move LNS slice, LP-warm-started
             branch-and-bound) under a --budget of deterministic steps
             (default 200000), printing every improvement and the live
             optimality gap to stderr
  evaluate   print the period, throughput and per-machine loads of a mapping
  simulate   run the discrete-event simulation of a mapping
  serve      run the long-lived mf-proto solve/evaluate server: resident
             named instances, session whatif probes, shared solver pool,
             keyed evaluate cache (--port 0 picks a free port; --stdio
             serves one pipe session; --workers W shards the store across
             W engines behind a router — byte-identical to --workers 1;
             --data-dir PATH journals loads/unloads to PATH/journal.mfj
             and replays them on boot, so instances — and their store
             generations — survive a restart or crash; --trace-dir PATH
             appends every request's latency span to
             PATH/server.mf-trace; --slow-ms N logs requests slower than
             N ms to stderr — default 1000)
  client     connect to a server and run the script on stdin (load/evaluate
             take client-side file paths; everything else is raw protocol)
  stats      fetch a running server's counters (one `key value` per line);
             --json emits the machine-readable mf-stats v1 report instead
             (with per-command latency histograms once the tier saw
             traffic)
  trace      verify an mf-trace v1 file round-trips byte-identically and
             print a summary of its events

HEURISTICS: h1, h2, h3, h4, h4w, h4f, plus the search strategies over any of
            them — h6 (annealed climb), sd (steepest descent), ts (tabu),
            lns (subtree-move large neighborhood): bare names polish h4w,
            h6-h2 / sd-h1 / lns-h4f pick the seed explicitly; use --all to
            compare";

/// Valid flags per subcommand (anything else is rejected up front).
const FLAGS_GENERATE: &[&str] = &["tasks", "machines", "types", "seed", "high-failure"];
const FLAGS_SOLVE: &[&str] = &[
    "heuristic",
    "exact",
    "portfolio",
    "anytime",
    "budget",
    "all",
    "threads",
    "trace",
];
const FLAGS_EVALUATE: &[&str] = &[];
const FLAGS_SIMULATE: &[&str] = &["products", "seed"];
const FLAGS_SERVE: &[&str] = &[
    "port",
    "threads",
    "workers",
    "stdio",
    "data-dir",
    "trace-dir",
    "slow-ms",
];
const FLAGS_CLIENT: &[&str] = &["host", "port"];
const FLAGS_STATS: &[&str] = &["host", "port", "json"];
const FLAGS_TRACE: &[&str] = &[];

/// Runs a subcommand after rejecting unknown flags.
fn checked(
    command: &str,
    args: &Arguments,
    allowed: &[&str],
    run: fn(&Arguments) -> std::result::Result<(), String>,
) -> std::result::Result<(), String> {
    args.reject_unknown_flags(command, allowed)?;
    run(args)
}

fn generate(args: &Arguments) -> std::result::Result<(), String> {
    let tasks = args.usize_flag("tasks").ok_or("missing --tasks")?;
    let machines = args.usize_flag("machines").ok_or("missing --machines")?;
    let types = args.usize_flag("types").ok_or("missing --types")?;
    let seed = args.u64_flag("seed").unwrap_or(1);
    let config = if args.has_flag("high-failure") {
        GeneratorConfig::paper_high_failure(tasks, machines, types)
    } else {
        GeneratorConfig::paper_standard(tasks, machines, types)
    };
    let instance = InstanceGenerator::new(config)
        .generate(seed)
        .map_err(|e| format!("cannot generate instance: {e}"))?;
    print!("{}", textio::instance_to_text(&instance));
    Ok(())
}

fn load_instance(path: &str) -> std::result::Result<Instance, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    textio::instance_from_text(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

fn load_mapping(path: &str) -> std::result::Result<Mapping, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    textio::mapping_from_text(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

fn heuristic_by_name(name: &str) -> std::result::Result<Box<dyn Heuristic + Send + Sync>, String> {
    // Normalize the user's casing to the registry's canonical names
    // (H1…H4f, H6, H6-…), then delegate to the single source of truth —
    // the same helper the server's `solve … heuristic` path resolves with.
    mf_heuristics::canonical_registry_name(name)
        .and_then(|canonical| mf_heuristics::paper_heuristic(&canonical, 1))
        .ok_or_else(|| {
            format!(
                "unknown heuristic `{name}` (expected one of {})",
                mf_heuristics::registry_names().join(", ")
            )
        })
}

fn solve(args: &Arguments) -> std::result::Result<(), String> {
    let path = args.positional(0).ok_or("missing INSTANCE file")?;
    let instance = load_instance(path)?;
    // Tracing is pure observation: the mapping printed (and every stderr
    // diagnostic line) is bit-identical with and without `--trace`.
    let trace_path = args.string_flag("trace");
    let mut trace_events: Vec<TraceEvent> = Vec::new();
    let solve_clock = MonotonicClock::new();
    let solve_start_ns = solve_clock.now_ns();
    if args.has_flag("all") {
        eprintln!(
            "{:<6} {:>12} {:>16}",
            "name", "period(ms)", "throughput(/s)"
        );
        // The six constructive heuristics, then one column per search
        // strategy (over the default H4w seed).
        let strategies = mf_heuristics::STRATEGY_PREFIXES
            .iter()
            .filter_map(|prefix| mf_heuristics::paper_heuristic(prefix, 1));
        for heuristic in all_paper_heuristics(1).into_iter().chain(strategies) {
            match heuristic.period(&instance) {
                Ok(period) => eprintln!(
                    "{:<6} {:>12.1} {:>16.4}",
                    heuristic.name(),
                    period.value(),
                    1000.0 / period.value()
                ),
                Err(e) => eprintln!("{:<6} failed: {e}", heuristic.name()),
            }
        }
    }
    let (label, mapping) = if args.has_flag("portfolio") {
        let threads = args.usize_flag("threads").unwrap_or(0);
        let runner = BatchRunner::new(threads);
        let config = PortfolioConfig::default();
        let outcome = if trace_path.is_some() {
            let traced = run_portfolio_traced(&instance, &config, &runner, TRACE_CACHE_EVENT_CAP);
            trace_events.extend(traced.to_trace_events());
            traced.outcome
        } else {
            run_portfolio(&instance, &config, &runner)
        };
        eprintln!(
            "{:<10} {:>12} {:>16}",
            "cell", "period(ms)", "throughput(/s)"
        );
        for cell in &outcome.cells {
            match cell.period {
                Some(period) => eprintln!(
                    "{:<10} {:>12.1} {:>16.4}",
                    cell.label,
                    period,
                    1000.0 / period
                ),
                None => eprintln!("{:<10} seed infeasible", cell.label),
            }
        }
        let label = format!(
            "portfolio winner {} after {} round(s) on {} thread(s)",
            outcome.winner_label().unwrap_or("?"),
            outcome.rounds,
            runner.threads()
        );
        let mapping = outcome
            .best_mapping
            .ok_or("no portfolio cell produced a mapping (more task types than machines?)")?;
        (label, mapping)
    } else if args.has_flag("exact") {
        let outcome = branch_and_bound(&instance, BnbConfig::default())
            .map_err(|e| format!("exact solver failed: {e}"))?;
        let label = if outcome.proven_optimal {
            "exact optimum"
        } else {
            "best found (budget hit)"
        };
        (label.to_string(), outcome.mapping)
    } else if args.has_flag("anytime") {
        let mut config = AnytimeConfig::default();
        if let Some(budget) = args.u64_flag("budget") {
            config.step_budget = budget;
        }
        eprintln!(
            "{:<5} {:>10} {:>12} {:>12} {:>8}",
            "phase", "step", "period(ms)", "bound(ms)", "gap"
        );
        let mut sink = SamplingSink::new(TRACE_CACHE_EVENT_CAP);
        let outcome = solve_anytime_observed(
            &instance,
            &config,
            &mut |event| {
                eprintln!(
                    "{:<5} {:>10} {:>12.1} {:>12.1} {:>7.2}%{}",
                    event.phase.label(),
                    event.steps,
                    event.period,
                    event.bound,
                    100.0 * event.gap(),
                    if event.proven { " (proven)" } else { "" }
                );
            },
            &mut sink,
        )
        .map_err(|e| format!("anytime solve failed: {e}"))?;
        if trace_path.is_some() {
            let (events, dropped) = sink.into_parts();
            trace_events.extend(events.into_iter().map(|event| event.into_trace(0, 0)));
            if dropped > 0 {
                trace_events.push(TraceEvent::Dropped {
                    class: "cache".to_string(),
                    count: dropped,
                });
            }
        }
        let label = if outcome.proven_optimal {
            format!("anytime proven optimum in {} step(s)", outcome.steps)
        } else {
            format!(
                "anytime best (gap {:.2}%) after {} step(s)",
                100.0 * outcome.gap(),
                outcome.steps
            )
        };
        (label, outcome.mapping)
    } else {
        let name = args
            .string_flag("heuristic")
            .unwrap_or_else(|| "h4w".to_string());
        let heuristic = heuristic_by_name(&name)?;
        let mapping = if trace_path.is_some() {
            // A one-shot heuristic has no portfolio grid: its search steps
            // are traced as cell 0, round 0.
            let mut sink = SamplingSink::new(TRACE_CACHE_EVENT_CAP);
            let mapping = heuristic
                .map_with_progress(&instance, &mut sink)
                .map_err(|e| format!("{} failed: {e}", heuristic.name()))?;
            let (events, dropped) = sink.into_parts();
            trace_events.extend(events.into_iter().map(|event| event.into_trace(0, 0)));
            if dropped > 0 {
                trace_events.push(TraceEvent::Dropped {
                    class: "cache".to_string(),
                    count: dropped,
                });
            }
            mapping
        } else {
            heuristic
                .map(&instance)
                .map_err(|e| format!("{} failed: {e}", heuristic.name()))?
        };
        (heuristic.name().to_string(), mapping)
    };
    let period = instance.period(&mapping).map_err(|e| e.to_string())?;
    eprintln!(
        "{label}: period {:.1} ms ({:.4} products/s)",
        period.value(),
        1000.0 / period.value()
    );
    if let Some(trace_path) = trace_path {
        trace_events.push(TraceEvent::Span {
            name: "solve".to_string(),
            start_ns: solve_start_ns,
            duration_ns: solve_clock.now_ns().saturating_sub(solve_start_ns),
        });
        let text =
            events_to_text(&trace_events).map_err(|e| format!("cannot serialize trace: {e}"))?;
        std::fs::write(&trace_path, text)
            .map_err(|e| format!("cannot write `{trace_path}`: {e}"))?;
        eprintln!("trace: {} event(s) -> {trace_path}", trace_events.len());
    }
    print!("{}", textio::mapping_to_text(&mapping));
    Ok(())
}

fn evaluate(args: &Arguments) -> std::result::Result<(), String> {
    let instance = load_instance(args.positional(0).ok_or("missing INSTANCE file")?)?;
    let mapping = load_mapping(args.positional(1).ok_or("missing MAPPING file")?)?;
    instance
        .validate_mapping(&mapping, MappingKind::General)
        .map_err(|e| format!("mapping does not fit the instance: {e}"))?;
    let breakdown = instance
        .machine_periods(&mapping)
        .map_err(|e| e.to_string())?;
    let period = breakdown.system_period();
    println!("rule:        {}", mapping.kind(instance.application()));
    println!("period:      {:.1} ms", period.value());
    println!("throughput:  {:.4} products/s", 1000.0 / period.value());
    println!("machine loads:");
    for u in instance.platform().machines() {
        let load = breakdown.of(u).value();
        let marker = if breakdown.critical_machines(1e-9).contains(&u) {
            "  <- critical"
        } else {
            ""
        };
        println!("  {u}: {load:.1} ms{marker}");
    }
    let demands = instance.demands(&mapping).map_err(|e| e.to_string())?;
    println!("raw products per finished product:");
    for (task, demand) in demands.source_demands(instance.application()) {
        println!("  {task}: {demand:.3}");
    }
    Ok(())
}

fn build_serve_engine(
    threads: usize,
    data_dir: Option<&str>,
    obs: mf_server::ObsConfig,
) -> std::result::Result<mf_server::Engine, String> {
    match data_dir {
        Some(dir) => mf_server::Engine::open_with_observability(threads, dir, obs)
            .map_err(|e| format!("cannot open data dir `{dir}`: {e}")),
        None => Ok(mf_server::Engine::with_observability(threads, obs)),
    }
}

fn build_serve_router(
    workers: usize,
    threads: usize,
    data_dir: Option<&str>,
    obs: mf_server::ObsConfig,
) -> std::result::Result<mf_server::Router, String> {
    match data_dir {
        Some(dir) => mf_server::Router::with_data_dir_observability(workers, threads, dir, obs)
            .map_err(|e| format!("cannot open data dir `{dir}`: {e}")),
        None => Ok(mf_server::Router::with_observability(workers, threads, obs)),
    }
}

/// The serving tier's observability wiring from `--trace-dir` / `--slow-ms`:
/// the config every engine (or worker shard) shares, plus the trace writer
/// to finish once the serve loop ends.
fn serve_observability(
    args: &Arguments,
) -> std::result::Result<(mf_server::ObsConfig, Option<Arc<SharedTraceWriter>>), String> {
    let mut obs = mf_server::ObsConfig::new();
    if let Some(ms) = args.u64_flag("slow-ms") {
        obs = obs.with_slow_threshold_ns(ms.saturating_mul(1_000_000));
    }
    let trace = match args.string_flag("trace-dir") {
        Some(dir) => {
            std::fs::create_dir_all(&dir)
                .map_err(|e| format!("cannot create trace dir `{dir}`: {e}"))?;
            let path = std::path::Path::new(&dir).join("server.mf-trace");
            let writer = SharedTraceWriter::create(&path)
                .map_err(|e| format!("cannot create `{}`: {e}", path.display()))?;
            let writer = Arc::new(writer);
            obs = obs.with_trace(Arc::clone(&writer));
            Some(writer)
        }
        None => None,
    };
    Ok((obs, trace))
}

fn serve(args: &Arguments) -> std::result::Result<(), String> {
    let threads = args.usize_flag("threads").unwrap_or(0);
    let workers = args.usize_flag("workers").unwrap_or(1);
    let data_dir = args.string_flag("data-dir");
    let data_dir = data_dir.as_deref();
    let (obs, trace) = serve_observability(args)?;
    let result = serve_with(args, threads, workers, data_dir, obs);
    if let Some(writer) = trace {
        writer
            .finish()
            .map_err(|e| format!("cannot finish trace file: {e}"))?;
    }
    result
}

fn serve_with(
    args: &Arguments,
    threads: usize,
    workers: usize,
    data_dir: Option<&str>,
    obs: mf_server::ObsConfig,
) -> std::result::Result<(), String> {
    if args.has_flag("stdio") {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        // Router answers are pinned byte-identical to a single engine for
        // any worker count, so the fork here is invisible on the wire.
        if workers > 1 {
            let router = build_serve_router(workers, threads, data_dir, obs)?;
            mf_server::serve_stdio(&router, stdin.lock(), stdout.lock())
        } else {
            let engine = build_serve_engine(threads, data_dir, obs)?;
            mf_server::serve_stdio(&engine, stdin.lock(), stdout.lock())
        }
        .map_err(|e| format!("stdio session failed: {e}"))
    } else {
        let port = match args.string_flag("port") {
            Some(raw) => raw
                .parse::<u16>()
                .map_err(|_| format!("invalid --port `{raw}` (expected 0..=65535)"))?,
            None => 0,
        };
        if workers > 1 {
            let router = Arc::new(build_serve_router(workers, threads, data_dir, obs)?);
            let server = mf_server::Server::with_handler(("127.0.0.1", port), router)
                .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            eprintln!(
                "mf-server listening on {addr} ({} worker shard(s)); send `shutdown` to stop",
                server.router().workers()
            );
            server.run().map_err(|e| format!("server loop failed: {e}"))
        } else {
            let engine = Arc::new(build_serve_engine(threads, data_dir, obs)?);
            let server = mf_server::Server::with_engine(("127.0.0.1", port), engine)
                .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            eprintln!(
                "mf-server listening on {addr} ({} solver thread(s)); send `shutdown` to stop",
                server.engine().runner().threads()
            );
            server.run().map_err(|e| format!("server loop failed: {e}"))
        }
    }
}

fn connect_client(args: &Arguments) -> std::result::Result<mf_server::Client, String> {
    let host = args
        .string_flag("host")
        .unwrap_or_else(|| "127.0.0.1".to_string());
    let port = args.usize_flag("port").ok_or("missing --port")?;
    let port = u16::try_from(port).map_err(|_| format!("invalid --port `{port}`"))?;
    mf_server::Client::connect((host.as_str(), port))
        .map_err(|e| format!("cannot connect to {host}:{port}: {e}"))
}

fn stats(args: &Arguments) -> std::result::Result<(), String> {
    let mut client = connect_client(args)?;
    client
        .hello(mf_server::CURRENT_VERSION)
        .map_err(|e| format!("version negotiation failed: {e}"))?;
    if args.has_flag("json") {
        let report = client
            .status_export()
            .map_err(|e| format!("status-export failed: {e}"))?;
        print!("{report}");
    } else {
        let stats = client.stats().map_err(|e| format!("stats failed: {e}"))?;
        for (key, value) in stats {
            println!("{key} {value}");
        }
    }
    Ok(())
}

/// Verifies an `mf-trace v1` file and prints a one-screen summary.
///
/// "Verify" means the full canonical-form contract: the file parses, and
/// re-serializing the parsed events reproduces the input **byte for byte**
/// (the same write→parse→write identity the format's tests pin).
fn trace(args: &Arguments) -> std::result::Result<(), String> {
    let path = args.positional(0).ok_or("missing TRACE file")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let events = events_from_text(&text)
        .map_err(|e| format!("`{path}` is not a valid mf-trace v1 file: {e}"))?;
    let round_trip =
        events_to_text(&events).map_err(|e| format!("cannot re-serialize `{path}`: {e}"))?;
    if round_trip != text {
        return Err(format!(
            "`{path}` parses but is not in canonical form (round-trip differs)"
        ));
    }
    let mut spans = 0u64;
    let mut span_ns = 0u64;
    let mut slow = 0u64;
    let mut commits = 0u64;
    let mut improved_commits = 0u64;
    let mut rounds = 0u64;
    let mut done_rounds = 0u64;
    let mut cache_reports = 0u64;
    let mut cache_evaluations = 0u64;
    let mut cache_reuses = 0u64;
    let mut dropped = 0u64;
    for event in &events {
        match event {
            TraceEvent::Span { duration_ns, .. } => {
                spans += 1;
                span_ns = span_ns.saturating_add(*duration_ns);
            }
            TraceEvent::Slow { .. } => slow += 1,
            TraceEvent::Commit { improved, .. } => {
                commits += 1;
                improved_commits += u64::from(*improved);
            }
            TraceEvent::Round { done, .. } => {
                rounds += 1;
                done_rounds += u64::from(*done);
            }
            TraceEvent::Cache {
                evaluations,
                reuses,
                ..
            } => {
                cache_reports += 1;
                cache_evaluations = cache_evaluations.saturating_add(*evaluations);
                cache_reuses = cache_reuses.saturating_add(*reuses);
            }
            TraceEvent::Dropped { count, .. } => dropped = dropped.saturating_add(*count),
        }
    }
    println!("{path}: mf-trace v1, {} event(s), canonical", events.len());
    println!("  spans:   {spans} ({span_ns} ns total)");
    println!("  slow:    {slow}");
    println!("  commits: {commits} ({improved_commits} improved the incumbent)");
    println!("  rounds:  {rounds} ({done_rounds} finished a cell)");
    println!("  cache:   {cache_reports} report(s), {cache_evaluations} evaluation(s), {cache_reuses} reuse(s)");
    println!("  dropped: {dropped} event(s) past the sampling cap");
    Ok(())
}

/// Translates one client-script line into a structured request where the
/// script syntax diverges from the wire: `load`/`evaluate` take a
/// client-side file path whose contents become the inline payload, and a
/// `batch N` head swallows its next `N` script lines as the envelope items
/// (so the envelope ships atomically instead of deadlocking a line-by-line
/// loop). Returns `None` for plain single-line requests — those go out
/// verbatim through [`mf_server::Client::send_line`].
fn script_request(
    head: &str,
    lines: &[&str],
    next: &mut usize,
) -> std::result::Result<Option<mf_server::Request>, String> {
    let read_payload = |path: &str| {
        std::fs::read_to_string(path)
            .map(|text| mf_server::text_payload(&text))
            .map_err(|e| format!("cannot read `{path}`: {e}"))
    };
    let tokens: Vec<&str> = head.split_whitespace().collect();
    match tokens.as_slice() {
        ["load", name, path] => Ok(Some(mf_server::Request::Load {
            name: name.to_string(),
            payload: read_payload(path)?,
        })),
        ["evaluate", name, path] => Ok(Some(mf_server::Request::Evaluate {
            name: name.to_string(),
            payload: read_payload(path)?,
        })),
        ["batch", count] => {
            let count: usize = count
                .parse()
                .map_err(|_| format!("bad batch count `{count}`"))?;
            let mut items = Vec::with_capacity(count);
            while items.len() < count {
                let item = lines
                    .get(*next)
                    .ok_or("script ends inside a batch envelope")?
                    .trim();
                *next += 1;
                if item.is_empty() || item.starts_with('#') {
                    continue;
                }
                let request = match script_request(item, lines, next)? {
                    Some(request) => request,
                    None => mf_server::request_from_text(&format!("{item}\n"))
                        .map_err(|e| format!("bad request `{item}`: {e}"))?,
                };
                items.push(request);
            }
            Ok(Some(mf_server::Request::Batch(items)))
        }
        _ => Ok(None),
    }
}

fn client(args: &Arguments) -> std::result::Result<(), String> {
    let mut client = connect_client(args)?;
    let stdin = std::io::stdin();
    let mut script = String::new();
    std::io::Read::read_to_string(&mut stdin.lock(), &mut script)
        .map_err(|e| format!("cannot read script from stdin: {e}"))?;
    let lines: Vec<&str> = script.lines().collect();
    let mut next = 0;
    while next < lines.len() {
        let line = lines[next].trim();
        next += 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let response = match script_request(line, &lines, &mut next)? {
            Some(request) => client.request(&request),
            None => client.send_line(line),
        }
        .map_err(|e| format!("request failed: {e}"))?;
        print!(
            "{}",
            mf_server::response_to_text(&response).map_err(|e| e.to_string())?
        );
        if matches!(response, mf_server::Response::Shutdown) {
            break;
        }
    }
    Ok(())
}

fn simulate(args: &Arguments) -> std::result::Result<(), String> {
    let instance = load_instance(args.positional(0).ok_or("missing INSTANCE file")?)?;
    let mapping = load_mapping(args.positional(1).ok_or("missing MAPPING file")?)?;
    let products = args.u64_flag("products").unwrap_or(5_000);
    let seed = args.u64_flag("seed").unwrap_or(0x5EED);
    let config = SimulationConfig {
        seed,
        target_products: products,
        warmup_products: (products / 20).max(10),
        ..Default::default()
    };
    let report = FactorySimulation::new(&instance, &mapping, config)
        .run()
        .map_err(|e| format!("simulation failed: {e}"))?;
    let analytic = instance
        .period(&mapping)
        .map_err(|e| e.to_string())?
        .value();
    println!("products out:      {}", report.produced);
    println!("simulated period:  {:.1} ms", report.measured_period);
    println!("analytic period:   {analytic:.1} ms");
    println!(
        "relative error:    {:.2}%",
        100.0 * (report.measured_period - analytic).abs() / analytic
    );
    println!("losses per task:");
    for task in instance.application().tasks() {
        if let Some(observed) = report.observed_failure_rate(task.id) {
            println!(
                "  {}: {:.2}% observed ({:.2}% modelled)",
                task.id,
                100.0 * observed,
                100.0
                    * instance
                        .failure(task.id, mapping.machine_of(task.id))
                        .value()
            );
        }
    }
    Ok(())
}
