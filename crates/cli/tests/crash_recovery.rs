//! Crash recovery through the real binary: a `serve --data-dir` server is
//! SIGKILLed between two sessions and restarted over the same directory; the
//! concatenated TCP transcripts must equal the golden uninterrupted stdio
//! transcript byte for byte, at one worker and at two. The session scripts
//! and the expected output are the `restart_session_*` golden files shared
//! with `mf-server`'s `warm_restart` test and the CI crash-recovery job.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_microfactory");

const SESSION_A: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../server/tests/golden/restart_session_a.in"
));
const SESSION_B: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../server/tests/golden/restart_session_b.in"
));
const EXPECTED: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../server/tests/golden/restart_session.out"
));

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path =
            std::env::temp_dir().join(format!("mf-crash-recovery-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Spawns `serve --port 0 --workers W --data-dir DIR` and parses the bound
/// port from the startup line on stderr.
fn spawn_server(workers: usize, data_dir: &std::path::Path) -> (Child, u16) {
    let mut child = Command::new(BIN)
        .args([
            "serve",
            "--port",
            "0",
            "--workers",
            &workers.to_string(),
            "--data-dir",
            data_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn microfactory serve");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut line = String::new();
    BufReader::new(stderr)
        .read_line(&mut line)
        .expect("read startup line");
    let port = line
        .split("127.0.0.1:")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|token| token.parse::<u16>().ok())
        .unwrap_or_else(|| panic!("no port in startup line {line:?}"));
    (child, port)
}

/// Runs one scripted TCP session and returns the full transcript (greeting
/// included).
fn drive(port: u16, script: &str) -> String {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect to server");
    stream.write_all(script.as_bytes()).expect("send script");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut transcript = String::new();
    stream
        .read_to_string(&mut transcript)
        .expect("read transcript");
    transcript
}

#[test]
fn sigkill_between_sessions_preserves_the_transcript() {
    for workers in [1usize, 2] {
        let dir = TempDir::new(&format!("w{workers}"));
        let (mut first, port) = spawn_server(workers, &dir.0);
        let mut full = drive(port, SESSION_A);
        first.kill().expect("SIGKILL the server");
        first.wait().expect("reap the killed server");

        let (mut second, port) = spawn_server(workers, &dir.0);
        full.push_str(&drive(port, SESSION_B));
        assert_eq!(
            full, EXPECTED,
            "{workers}-worker kill-and-restart drifted from restart_session.out"
        );

        // The restarted server reports its replay in the status export, then
        // shuts down cleanly.
        let status = drive(port, "hello mf-proto v2\nstatus-export\nshutdown\n");
        assert!(
            status.contains("\"journal-entries-replayed\": 3"),
            "missing replay counters in:\n{status}"
        );
        assert!(status.contains("\"journal-live-instances\": 1"), "{status}");
        second.wait().expect("server exits on shutdown");
    }
}
