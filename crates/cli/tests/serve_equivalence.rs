//! Server/CLI equivalence: for a fixed instance and seed, `solve` through
//! the real `microfactory serve --stdio` binary returns the **same mapping
//! and the bit-identical period** as the one-shot `microfactory solve` path
//! — for a seeded search strategy and for `--portfolio`.
//!
//! This is the acceptance pin for the serve mode: a resident server is a
//! performance upgrade, never a numerical fork.

use mf_core::textio;
use mf_server::{Response, GREETING};
use std::io::Write as _;
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_microfactory");

fn run(args: &[&str], stdin: Option<&str>) -> (String, String) {
    let mut command = Command::new(BIN);
    command
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    command.stdin(if stdin.is_some() {
        Stdio::piped()
    } else {
        Stdio::null()
    });
    let mut child = command.spawn().expect("spawn microfactory");
    if let Some(input) = stdin {
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(input.as_bytes())
            .expect("feed stdin");
    }
    let output = child.wait_with_output().expect("microfactory runs");
    assert!(
        output.status.success(),
        "`microfactory {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8(output.stdout).expect("stdout is UTF-8"),
        String::from_utf8(output.stderr).expect("stderr is UTF-8"),
    )
}

/// Parses the serve-session responses after the greeting line.
fn session_responses(transcript: &str) -> Vec<Response> {
    let rest = transcript
        .strip_prefix(&format!("{GREETING}\n"))
        .unwrap_or_else(|| panic!("missing greeting in {transcript:?}"));
    let mut reader = mf_server::ProtoReader::new(rest.as_bytes());
    let mut responses = Vec::new();
    while let Some(response) = reader.read_response().expect("transcript parses") {
        responses.push(response);
    }
    responses
}

#[test]
fn server_solve_matches_the_one_shot_cli_bit_for_bit() {
    // A fixed instance, produced by the CLI itself.
    let (instance_text, _) = run(
        &[
            "generate",
            "--tasks",
            "10",
            "--machines",
            "4",
            "--types",
            "2",
            "--seed",
            "9",
        ],
        None,
    );
    let dir = std::env::temp_dir().join(format!("mf-serve-equivalence-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let instance_path = dir.join("instance.mf");
    std::fs::write(&instance_path, &instance_text).unwrap();
    let instance = textio::instance_from_text(&instance_text).unwrap();

    // One-shot CLI answers: stdout is exactly the mapping text.
    let (cli_heuristic, _) = run(
        &[
            "solve",
            "--heuristic",
            "sd-h2",
            instance_path.to_str().unwrap(),
        ],
        None,
    );
    let (cli_portfolio, _) = run(
        &["solve", "--portfolio", instance_path.to_str().unwrap()],
        None,
    );
    let heuristic_mapping = textio::mapping_from_text(&cli_heuristic).unwrap();
    let portfolio_mapping = textio::mapping_from_text(&cli_portfolio).unwrap();

    // The same two solves through the served protocol (one session).
    let payload_lines = instance_text.lines().count();
    let mut script = format!("load inst {payload_lines}\n{instance_text}");
    script.push_str("solve inst heuristic SD-H2\nsolve inst portfolio\nshutdown\n");
    let (transcript, _) = run(&["serve", "--stdio"], Some(&script));
    let responses = session_responses(&transcript);
    assert_eq!(
        responses.len(),
        4,
        "load + 2 solves + shutdown: {responses:?}"
    );

    let expectations = [
        (&responses[1], &heuristic_mapping, "SD-H2"),
        (&responses[2], &portfolio_mapping, "portfolio"),
    ];
    for (response, cli_mapping, what) in expectations {
        let Response::Solved {
            period,
            machines,
            assignment,
            ..
        } = response
        else {
            panic!("expected a solve response for {what}, got {response:?}");
        };
        let cli_assignment: Vec<usize> = cli_mapping.as_slice().iter().map(|u| u.index()).collect();
        assert_eq!(
            assignment, &cli_assignment,
            "{what}: server mapping differs from the one-shot CLI"
        );
        assert_eq!(*machines, cli_mapping.machine_count());
        let cli_period = instance.period(cli_mapping).unwrap().value();
        assert_eq!(
            period.to_bits(),
            cli_period.to_bits(),
            "{what}: server period {period} is not bit-identical to the CLI's {cli_period}"
        );
    }

    // The very same script through a sharded `--workers 2` server binary is
    // byte-identical — the router tier never forks the transcript.
    let (sharded, _) = run(&["serve", "--stdio", "--workers", "2"], Some(&script));
    assert_eq!(
        sharded, transcript,
        "--workers 2 changed the serve transcript"
    );

    // A v2 session with a batch envelope also agrees across worker counts,
    // and the second evaluate of the solved mapping is a keyed-cache hit.
    let mapping_lines = cli_heuristic.lines().count();
    let v2_script = format!(
        "hello mf-proto v2\nload inst {payload_lines}\n{instance_text}\
         batch 2\nsolve inst heuristic SD-H2\nevaluate inst {mapping_lines}\n{cli_heuristic}\
         stats\nshutdown\n"
    );
    let (single, _) = run(&["serve", "--stdio"], Some(&v2_script));
    let (routed, _) = run(&["serve", "--stdio", "--workers", "2"], Some(&v2_script));
    assert_eq!(routed, single, "--workers 2 changed the v2 transcript");
    assert!(
        single.contains("stat evaluate-cache-hits 1"),
        "the batched evaluate of the solved mapping must hit the cache:\n{single}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The CLI rejects mistyped flags loudly instead of silently ignoring them —
/// the failure mode that used to turn `--portolio` into a default H4w run.
#[test]
fn mistyped_flags_fail_loudly() {
    let output = Command::new(BIN)
        .args(["solve", "--portolio", "nonexistent.mf"])
        .output()
        .expect("microfactory runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--portolio"), "{stderr}");
    assert!(stderr.contains("valid flags"), "{stderr}");
    assert!(stderr.contains("--portfolio"), "{stderr}");
}
