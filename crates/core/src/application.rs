//! The application graph: typed tasks with fork-free precedence constraints.
//!
//! The paper's applications are DAGs in which every task has **at most one
//! successor** (a join merges several incoming products into one; a fork is
//! impossible because the product is a physical object). Such graphs are
//! in-forests: every weakly-connected component is an in-tree whose root is the
//! component's sink task.

use crate::error::{ModelError, Result};
use crate::ids::{TaskId, TaskTypeId};

/// A single task of the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Task {
    /// Identifier of the task.
    pub id: TaskId,
    /// Type of the task (`t(i)` in the paper). Tasks of the same type perform
    /// the same physical operation and therefore have the same processing time
    /// on a given machine.
    pub ty: TaskTypeId,
}

/// A fork-free application DAG (an in-forest of typed tasks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Application {
    tasks: Vec<Task>,
    /// `successor[i]` is the unique successor of task `i`, if any.
    successor: Vec<Option<TaskId>>,
    /// `predecessors[i]` are the tasks whose output is merged by task `i`.
    predecessors: Vec<Vec<TaskId>>,
    /// Number of distinct task types (`p` in the paper).
    type_count: usize,
    /// Tasks in an order such that every task appears after all its
    /// predecessors (topological order).
    topological: Vec<TaskId>,
}

impl Application {
    /// Number of tasks `n`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of task types `p`.
    #[inline]
    pub fn type_count(&self) -> usize {
        self.type_count
    }

    /// Iterator over all tasks in index order.
    pub fn tasks(&self) -> impl Iterator<Item = Task> + '_ {
        self.tasks.iter().copied()
    }

    /// The type `t(i)` of a task.
    #[inline]
    pub fn task_type(&self, task: TaskId) -> TaskTypeId {
        self.tasks[task.index()].ty
    }

    /// The unique successor of a task, if any.
    #[inline]
    pub fn successor(&self, task: TaskId) -> Option<TaskId> {
        self.successor[task.index()]
    }

    /// The predecessors of a task (the tasks whose products it joins).
    #[inline]
    pub fn predecessors(&self, task: TaskId) -> &[TaskId] {
        &self.predecessors[task.index()]
    }

    /// Tasks with no successor (the exits of the factory).
    pub fn sinks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.successor
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| TaskId(i))
    }

    /// Tasks with no predecessor (the entries of the factory).
    pub fn sources(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.predecessors
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_empty())
            .map(|(i, _)| TaskId(i))
    }

    /// Tasks in topological order (every task after all of its predecessors).
    #[inline]
    pub fn topological_order(&self) -> &[TaskId] {
        &self.topological
    }

    /// Tasks in reverse topological order (every task before all of its
    /// predecessors). The heuristics of the paper walk the application in this
    /// order, starting from the last task.
    pub fn reverse_topological_order(&self) -> Vec<TaskId> {
        self.topological.iter().rev().copied().collect()
    }

    /// Tasks grouped by type: entry `j` lists the tasks of type `j`.
    pub fn tasks_by_type(&self) -> Vec<Vec<TaskId>> {
        let mut groups = vec![Vec::new(); self.type_count];
        for task in &self.tasks {
            groups[task.ty.index()].push(task.id);
        }
        groups
    }

    /// `true` when the application is a single linear chain `T₁ → T₂ → … → Tₙ`
    /// (in index order). All experiments of the paper use linear chains.
    pub fn is_linear_chain(&self) -> bool {
        let n = self.task_count();
        if n == 0 {
            return false;
        }
        (0..n - 1).all(|i| self.successor[i] == Some(TaskId(i + 1)))
            && self.successor[n - 1].is_none()
            && (1..n).all(|i| self.predecessors[i] == vec![TaskId(i - 1)])
            && self.predecessors[0].is_empty()
    }

    /// Builds a linear chain from the list of task types, task `i` preceding
    /// task `i + 1`.
    ///
    /// Type indices may be arbitrary `usize` values; the number of declared
    /// types is `max + 1`.
    pub fn linear_chain(types: &[usize]) -> Result<Self> {
        let mut builder = ApplicationBuilder::new();
        let mut prev: Option<TaskId> = None;
        for &ty in types {
            let id = builder.add_task(ty);
            if let Some(p) = prev {
                builder.add_dependency(p, id)?;
            }
            prev = Some(id);
        }
        builder.build()
    }

    /// Builds an arbitrary fork-free application from an explicit successor
    /// relation: `successors[i]` is the index of the successor of task `i`
    /// (or `None` for a sink).
    pub fn from_successors(types: &[usize], successors: &[Option<usize>]) -> Result<Self> {
        if types.len() != successors.len() {
            return Err(ModelError::DimensionMismatch {
                context: "Application::from_successors",
                expected: types.len(),
                actual: successors.len(),
            });
        }
        let mut builder = ApplicationBuilder::new();
        for &ty in types {
            builder.add_task(ty);
        }
        for (i, succ) in successors.iter().enumerate() {
            if let Some(s) = succ {
                builder.add_dependency(TaskId(i), TaskId(*s))?;
            }
        }
        builder.build()
    }

    /// Builds the example application of the paper (Figure 1): two chains
    /// `T₁ → T₂` and `T₃` joining into `T₄`, followed by `T₅`.
    ///
    /// Types are assigned in order `[0, 1, 0, 1, 2]` for illustration.
    pub fn paper_figure1() -> Self {
        Application::from_successors(
            &[0, 1, 0, 1, 2],
            &[Some(1), Some(3), Some(3), Some(4), None],
        )
        .expect("the Figure 1 application is a valid in-tree")
    }

    /// Builds a balanced in-tree with the given arity and depth, assigning
    /// types round-robin over `type_count` types. Useful for tests and for
    /// exercising join-heavy applications.
    pub fn balanced_in_tree(arity: usize, depth: usize, type_count: usize) -> Result<Self> {
        if arity == 0 || type_count == 0 {
            return Err(ModelError::EmptyApplication);
        }
        let mut builder = ApplicationBuilder::new();
        let mut next_type = 0usize;
        let mut take_type = || {
            let t = next_type;
            next_type = (next_type + 1) % type_count;
            t
        };
        // Build bottom-up: root (sink) first, then its subtrees.
        let root = builder.add_task(take_type());
        let mut frontier = vec![root];
        for _ in 0..depth {
            let mut next_frontier = Vec::new();
            for &parent in &frontier {
                for _ in 0..arity {
                    let child = builder.add_task(take_type());
                    builder.add_dependency(child, parent)?;
                    next_frontier.push(child);
                }
            }
            frontier = next_frontier;
        }
        builder.build()
    }
}

/// Incremental builder for [`Application`] graphs.
#[derive(Debug, Default, Clone)]
pub struct ApplicationBuilder {
    types: Vec<usize>,
    successor: Vec<Option<TaskId>>,
}

impl ApplicationBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task of the given type and returns its identifier.
    pub fn add_task(&mut self, ty: usize) -> TaskId {
        let id = TaskId(self.types.len());
        self.types.push(ty);
        self.successor.push(None);
        id
    }

    /// Declares that `from` must complete before `to` (i.e. `to` is the unique
    /// successor of `from`).
    ///
    /// Returns an error if `from` already has a successor (fork) or if either
    /// task is unknown.
    pub fn add_dependency(&mut self, from: TaskId, to: TaskId) -> Result<()> {
        let n = self.types.len();
        for id in [from, to] {
            if id.index() >= n {
                return Err(ModelError::UnknownTask {
                    task: id.index(),
                    task_count: n,
                });
            }
        }
        if self.successor[from.index()].is_some() {
            return Err(ModelError::ForkDetected { task: from.index() });
        }
        self.successor[from.index()] = Some(to);
        Ok(())
    }

    /// Number of tasks added so far.
    pub fn task_count(&self) -> usize {
        self.types.len()
    }

    /// Finalises the application, checking acyclicity and normalising types.
    pub fn build(self) -> Result<Application> {
        if self.types.is_empty() {
            return Err(ModelError::EmptyApplication);
        }
        let n = self.types.len();
        let type_count = self.types.iter().copied().max().unwrap_or(0) + 1;

        let tasks: Vec<Task> = self
            .types
            .iter()
            .enumerate()
            .map(|(i, &ty)| Task {
                id: TaskId(i),
                ty: TaskTypeId(ty),
            })
            .collect();

        let mut predecessors = vec![Vec::new(); n];
        for (i, succ) in self.successor.iter().enumerate() {
            if let Some(s) = succ {
                predecessors[s.index()].push(TaskId(i));
            }
        }

        // Kahn's algorithm for a topological order; also detects cycles.
        let mut indegree: Vec<usize> = predecessors.iter().map(Vec::len).collect();
        let mut queue: Vec<TaskId> = (0..n).filter(|&i| indegree[i] == 0).map(TaskId).collect();
        let mut topological = Vec::with_capacity(n);
        while let Some(task) = queue.pop() {
            topological.push(task);
            if let Some(succ) = self.successor[task.index()] {
                indegree[succ.index()] -= 1;
                if indegree[succ.index()] == 0 {
                    queue.push(succ);
                }
            }
        }
        if topological.len() != n {
            return Err(ModelError::CyclicApplication);
        }

        Ok(Application {
            tasks,
            successor: self.successor,
            predecessors,
            type_count,
            topological,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_shape() {
        let app = Application::linear_chain(&[0, 1, 0, 1]).unwrap();
        assert_eq!(app.task_count(), 4);
        assert_eq!(app.type_count(), 2);
        assert!(app.is_linear_chain());
        assert_eq!(app.successor(TaskId(0)), Some(TaskId(1)));
        assert_eq!(app.successor(TaskId(3)), None);
        assert_eq!(app.predecessors(TaskId(3)), &[TaskId(2)]);
        assert_eq!(app.sinks().collect::<Vec<_>>(), vec![TaskId(3)]);
        assert_eq!(app.sources().collect::<Vec<_>>(), vec![TaskId(0)]);
    }

    #[test]
    fn empty_chain_is_rejected() {
        assert_eq!(
            Application::linear_chain(&[]),
            Err(ModelError::EmptyApplication)
        );
    }

    #[test]
    fn figure1_application() {
        let app = Application::paper_figure1();
        assert_eq!(app.task_count(), 5);
        assert!(!app.is_linear_chain());
        // T4 joins T2 and T3.
        let mut preds = app.predecessors(TaskId(3)).to_vec();
        preds.sort();
        assert_eq!(preds, vec![TaskId(1), TaskId(2)]);
        assert_eq!(app.successor(TaskId(4)), None);
        assert_eq!(app.sinks().count(), 1);
        assert_eq!(app.sources().count(), 2);
    }

    #[test]
    fn forks_are_rejected() {
        let mut builder = ApplicationBuilder::new();
        let a = builder.add_task(0);
        let b = builder.add_task(0);
        let c = builder.add_task(0);
        builder.add_dependency(a, b).unwrap();
        let err = builder.add_dependency(a, c).unwrap_err();
        assert_eq!(err, ModelError::ForkDetected { task: 0 });
    }

    #[test]
    fn cycles_are_rejected() {
        let app = Application::from_successors(&[0, 0], &[Some(1), Some(0)]);
        assert_eq!(app.unwrap_err(), ModelError::CyclicApplication);
    }

    #[test]
    fn unknown_tasks_are_rejected() {
        let mut builder = ApplicationBuilder::new();
        let a = builder.add_task(0);
        let err = builder.add_dependency(a, TaskId(5)).unwrap_err();
        assert!(matches!(err, ModelError::UnknownTask { task: 5, .. }));
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let app = Application::paper_figure1();
        let order = app.topological_order();
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        for task in app.tasks() {
            if let Some(succ) = app.successor(task.id) {
                assert!(
                    pos(task.id) < pos(succ),
                    "{} must precede {}",
                    task.id,
                    succ
                );
            }
        }
        let rev = app.reverse_topological_order();
        assert_eq!(rev.len(), order.len());
        assert_eq!(rev[0], *order.last().unwrap());
    }

    #[test]
    fn tasks_by_type_partition() {
        let app = Application::linear_chain(&[0, 1, 0, 2, 1]).unwrap();
        let groups = app.tasks_by_type();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], vec![TaskId(0), TaskId(2)]);
        assert_eq!(groups[1], vec![TaskId(1), TaskId(4)]);
        assert_eq!(groups[2], vec![TaskId(3)]);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, app.task_count());
    }

    #[test]
    fn balanced_in_tree_structure() {
        let app = Application::balanced_in_tree(2, 2, 3).unwrap();
        // 1 + 2 + 4 tasks.
        assert_eq!(app.task_count(), 7);
        assert_eq!(app.sinks().count(), 1);
        assert_eq!(app.sources().count(), 4);
        // The root joins exactly `arity` products.
        let root = app.sinks().next().unwrap();
        assert_eq!(app.predecessors(root).len(), 2);
    }

    #[test]
    fn balanced_in_tree_rejects_degenerate_parameters() {
        assert!(Application::balanced_in_tree(0, 2, 1).is_err());
        assert!(Application::balanced_in_tree(2, 2, 0).is_err());
    }

    #[test]
    fn from_successors_validates_lengths() {
        let err = Application::from_successors(&[0, 1], &[None]).unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { .. }));
    }

    #[test]
    fn single_task_is_a_chain() {
        let app = Application::linear_chain(&[0]).unwrap();
        assert!(app.is_linear_chain());
        assert_eq!(app.sinks().count(), 1);
        assert_eq!(app.sources().count(), 1);
    }
}
