//! Product demand: the expected number of products each task must process.
//!
//! Because failures destroy products, task `Tᵢ` must *start* more than one
//! product for one to leave the system. The paper defines
//!
//! ```text
//! xᵢ = 1 / (1 − f_{i,a(i)}) · x_succ(i)        (x = 1 for a virtual successor)
//! ```
//!
//! so for a linear chain `xᵢ = Π_{j ≥ i} F_j` with `F_j = 1/(1 − f_{j,a(j)})`.
//!
//! Two related quantities are exposed:
//!
//! * [`OutputDemand`] — `dᵢ`, the number of products task `Tᵢ` must **output**
//!   (the `x` of its successor, or 1 for sinks). This is what the backward
//!   heuristics know *before* choosing a machine for `Tᵢ`.
//! * [`DemandVector`] — `xᵢ = dᵢ · F_{i,a(i)}`, the number of products `Tᵢ`
//!   must **start** once its machine is known. This is the `xᵢ` that enters the
//!   period formula.

use crate::application::Application;
use crate::error::{ModelError, Result};
use crate::failure::FailureModel;
use crate::ids::TaskId;
use crate::mapping::Mapping;

/// Per-task expected number of products to *start* (`xᵢ` in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct DemandVector {
    values: Vec<f64>,
}

impl DemandVector {
    /// The demand `xᵢ` of a task.
    #[inline]
    pub fn get(&self, task: TaskId) -> f64 {
        self.values[task.index()]
    }

    /// All demands, indexed by task.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The largest demand over all tasks. For a linear chain this is `x₁`.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(1.0, f64::max)
    }

    /// Number of products to feed into the system per finished product, for
    /// each source task (entry tasks of the factory).
    pub fn source_demands(&self, app: &Application) -> Vec<(TaskId, f64)> {
        app.sources().map(|s| (s, self.get(s))).collect()
    }

    /// Total (integer) number of raw products that must be fed to each source
    /// so that `output` finished products are expected out of the system.
    ///
    /// The expectation is rounded up: feeding `⌈output · xᵢ⌉` products yields at
    /// least `output` expected finished products.
    pub fn required_inputs(&self, app: &Application, output: u64) -> Vec<(TaskId, u64)> {
        self.source_demands(app)
            .into_iter()
            .map(|(task, x)| (task, (x * output as f64).ceil() as u64))
            .collect()
    }
}

/// Per-task expected number of products to *output* (`dᵢ = x_succ(i)`).
#[derive(Debug, Clone, PartialEq)]
pub struct OutputDemand {
    values: Vec<f64>,
}

impl OutputDemand {
    /// The output demand `dᵢ` of a task.
    #[inline]
    pub fn get(&self, task: TaskId) -> f64 {
        self.values[task.index()]
    }

    /// All output demands, indexed by task.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

/// Computes the start demand `xᵢ` of every task for a complete mapping.
///
/// Tasks are processed in reverse topological order so that the demand of a
/// successor is available when its predecessors are handled.
pub fn demands(
    app: &Application,
    failures: &FailureModel,
    mapping: &Mapping,
) -> Result<DemandVector> {
    check_dimensions(app, failures, Some(mapping))?;
    let n = app.task_count();
    let mut values = vec![0.0f64; n];
    for &task in app.topological_order().iter().rev() {
        let downstream = match app.successor(task) {
            None => 1.0,
            Some(succ) => values[succ.index()],
        };
        let factor = failures.factor(task, mapping.machine_of(task));
        values[task.index()] = factor * downstream;
    }
    Ok(DemandVector { values })
}

/// Computes the output demand `dᵢ` of every task for a complete mapping
/// (`dᵢ = x_succ(i)`, or 1 for sinks).
pub fn output_demands(
    app: &Application,
    failures: &FailureModel,
    mapping: &Mapping,
) -> Result<OutputDemand> {
    let x = demands(app, failures, mapping)?;
    let values = app
        .tasks()
        .map(|t| match app.successor(t.id) {
            None => 1.0,
            Some(succ) => x.get(succ),
        })
        .collect();
    Ok(OutputDemand { values })
}

/// Upper bound `MAXxᵢ` on the demand of every task, independent of the mapping:
/// the demand obtained if every downstream task (and the task itself) were
/// mapped to its least reliable machine. This is the constant used to
/// linearise the MIP of §6.1.
pub fn demand_upper_bounds(app: &Application, failures: &FailureModel) -> Result<Vec<f64>> {
    check_dimensions(app, failures, None)?;
    let n = app.task_count();
    let mut values = vec![0.0f64; n];
    for &task in app.topological_order().iter().rev() {
        let downstream = match app.successor(task) {
            None => 1.0,
            Some(succ) => values[succ.index()],
        };
        values[task.index()] = failures.worst_rate_for_task(task).factor() * downstream;
    }
    Ok(values)
}

/// Lower bound on the demand of every task, independent of the mapping (every
/// downstream task mapped to its most reliable machine). Used by the exact
/// branch-and-bound to prune.
pub fn demand_lower_bounds(app: &Application, failures: &FailureModel) -> Result<Vec<f64>> {
    check_dimensions(app, failures, None)?;
    let n = app.task_count();
    let mut values = vec![0.0f64; n];
    for &task in app.topological_order().iter().rev() {
        let downstream = match app.successor(task) {
            None => 1.0,
            Some(succ) => values[succ.index()],
        };
        values[task.index()] = failures.best_rate_for_task(task).factor() * downstream;
    }
    Ok(values)
}

fn check_dimensions(
    app: &Application,
    failures: &FailureModel,
    mapping: Option<&Mapping>,
) -> Result<()> {
    if failures.task_count() != app.task_count() {
        return Err(ModelError::DimensionMismatch {
            context: "failure model task count",
            expected: app.task_count(),
            actual: failures.task_count(),
        });
    }
    if let Some(mapping) = mapping {
        if mapping.task_count() != app.task_count() {
            return Err(ModelError::IncompleteMapping {
                expected: app.task_count(),
                actual: mapping.task_count(),
            });
        }
        if mapping.machine_count() != failures.machine_count() {
            return Err(ModelError::DimensionMismatch {
                context: "failure model machine count",
                expected: mapping.machine_count(),
                actual: failures.machine_count(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureRate;
    use crate::ids::MachineId;

    fn chain(fail: &[f64]) -> (Application, FailureModel, Mapping) {
        let n = fail.len();
        let app = Application::linear_chain(&vec![0; n]).unwrap();
        let failures =
            FailureModel::from_matrix(fail.iter().map(|&f| vec![f]).collect(), 1).unwrap();
        let mapping = Mapping::from_indices(&vec![0; n], 1).unwrap();
        (app, failures, mapping)
    }

    #[test]
    fn chain_demands_multiply_factors() {
        let (app, failures, mapping) = chain(&[0.5, 0.0, 0.2]);
        let x = demands(&app, &failures, &mapping).unwrap();
        // x3 = 1/(1-0.2) = 1.25 ; x2 = 1 * 1.25 ; x1 = 2 * 1.25 = 2.5
        assert!((x.get(TaskId(2)) - 1.25).abs() < 1e-12);
        assert!((x.get(TaskId(1)) - 1.25).abs() < 1e-12);
        assert!((x.get(TaskId(0)) - 2.5).abs() < 1e-12);
        assert!((x.max() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn output_demand_is_successor_start_demand() {
        let (app, failures, mapping) = chain(&[0.5, 0.0, 0.2]);
        let x = demands(&app, &failures, &mapping).unwrap();
        let d = output_demands(&app, &failures, &mapping).unwrap();
        assert_eq!(d.get(TaskId(2)), 1.0);
        assert_eq!(d.get(TaskId(1)), x.get(TaskId(2)));
        assert_eq!(d.get(TaskId(0)), x.get(TaskId(1)));
        // And x_i = d_i * F_i.
        for t in app.tasks() {
            let f = failures.factor(t.id, mapping.machine_of(t.id));
            assert!((x.get(t.id) - d.get(t.id) * f).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_failures_need_exactly_one_product() {
        let (app, failures, mapping) = chain(&[0.0, 0.0, 0.0, 0.0]);
        let x = demands(&app, &failures, &mapping).unwrap();
        for t in app.tasks() {
            assert_eq!(x.get(t.id), 1.0);
        }
        assert_eq!(x.required_inputs(&app, 10), vec![(TaskId(0), 10)]);
    }

    #[test]
    fn join_demands_propagate_to_both_branches() {
        // T1 -> T3 <- T2 ; T3 -> T4 (sink), all failure 0.5 => factor 2.
        let app = Application::from_successors(&[0, 0, 0, 0], &[Some(2), Some(2), Some(3), None])
            .unwrap();
        let failures = FailureModel::uniform(4, 1, FailureRate::new(0.5).unwrap());
        let mapping = Mapping::from_indices(&[0, 0, 0, 0], 1).unwrap();
        let x = demands(&app, &failures, &mapping).unwrap();
        // x4 = 2, x3 = 4, and both branch heads need 8.
        assert_eq!(x.get(TaskId(3)), 2.0);
        assert_eq!(x.get(TaskId(2)), 4.0);
        assert_eq!(x.get(TaskId(0)), 8.0);
        assert_eq!(x.get(TaskId(1)), 8.0);
        let inputs = x.required_inputs(&app, 3);
        assert_eq!(inputs.len(), 2);
        assert!(inputs.iter().all(|&(_, count)| count == 24));
    }

    #[test]
    fn bounds_bracket_actual_demand() {
        let app = Application::linear_chain(&[0, 1, 0]).unwrap();
        let failures =
            FailureModel::from_matrix(vec![vec![0.1, 0.3], vec![0.05, 0.2], vec![0.0, 0.4]], 2)
                .unwrap();
        let upper = demand_upper_bounds(&app, &failures).unwrap();
        let lower = demand_lower_bounds(&app, &failures).unwrap();
        // Check every possible mapping is bracketed.
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    let mapping =
                        Mapping::new(vec![MachineId(a), MachineId(b), MachineId(c)], 2).unwrap();
                    let x = demands(&app, &failures, &mapping).unwrap();
                    for t in 0..3 {
                        assert!(x.get(TaskId(t)) <= upper[t] + 1e-12);
                        assert!(x.get(TaskId(t)) >= lower[t] - 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let app = Application::linear_chain(&[0, 0]).unwrap();
        let failures = FailureModel::uniform(3, 1, FailureRate::ZERO);
        let mapping = Mapping::from_indices(&[0, 0], 1).unwrap();
        assert!(demands(&app, &failures, &mapping).is_err());

        let failures = FailureModel::uniform(2, 2, FailureRate::ZERO);
        let mapping = Mapping::from_indices(&[0], 1).unwrap();
        assert!(demands(&app, &failures, &mapping).is_err());
    }
}
