//! Error types for the model layer.

use std::fmt;

/// Convenient result alias used throughout `mf-core`.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Errors raised when constructing or evaluating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The application graph is empty.
    EmptyApplication,
    /// A task references a successor that does not exist.
    UnknownTask {
        /// Offending task index.
        task: usize,
        /// Number of tasks in the application.
        task_count: usize,
    },
    /// A task references a type outside the declared type range.
    UnknownType {
        /// Offending type index.
        ty: usize,
        /// Number of declared types.
        type_count: usize,
    },
    /// A machine index is out of range.
    UnknownMachine {
        /// Offending machine index.
        machine: usize,
        /// Number of machines in the platform.
        machine_count: usize,
    },
    /// The application graph contains a cycle.
    CyclicApplication,
    /// A task was given two successors (forks are forbidden: products are
    /// physical and cannot be duplicated).
    ForkDetected {
        /// Task with more than one successor.
        task: usize,
    },
    /// A processing time is not finite and strictly positive.
    InvalidProcessingTime {
        /// Type index.
        ty: usize,
        /// Machine index.
        machine: usize,
        /// Offending value.
        value: f64,
    },
    /// A failure probability is outside `[0, 1)`.
    InvalidFailureRate {
        /// Offending value.
        value: f64,
    },
    /// A matrix has inconsistent dimensions.
    DimensionMismatch {
        /// What was being constructed.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        actual: usize,
    },
    /// A mapping does not cover every task exactly once.
    IncompleteMapping {
        /// Expected number of tasks.
        expected: usize,
        /// Number of assignments provided.
        actual: usize,
    },
    /// A mapping violates the requested mapping rule.
    RuleViolation {
        /// The rule that is violated.
        kind: crate::mapping::MappingKind,
        /// Human-readable detail.
        detail: String,
    },
    /// The platform has fewer machines than required for the requested rule
    /// (e.g. fewer machines than tasks for one-to-one, or fewer machines than
    /// types for specialized mappings).
    NotEnoughMachines {
        /// Machines available.
        machines: usize,
        /// Machines required.
        required: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyApplication => write!(f, "application has no tasks"),
            ModelError::UnknownTask { task, task_count } => {
                write!(
                    f,
                    "task index {task} out of range (application has {task_count} tasks)"
                )
            }
            ModelError::UnknownType { ty, type_count } => {
                write!(
                    f,
                    "type index {ty} out of range (application declares {type_count} types)"
                )
            }
            ModelError::UnknownMachine {
                machine,
                machine_count,
            } => {
                write!(
                    f,
                    "machine index {machine} out of range (platform has {machine_count} machines)"
                )
            }
            ModelError::CyclicApplication => write!(f, "application graph contains a cycle"),
            ModelError::ForkDetected { task } => {
                write!(f, "task {task} has more than one successor; forks are not allowed for physical products")
            }
            ModelError::InvalidProcessingTime { ty, machine, value } => {
                write!(f, "processing time for type {ty} on machine {machine} must be finite and > 0, got {value}")
            }
            ModelError::InvalidFailureRate { value } => {
                write!(f, "failure rate must lie in [0, 1), got {value}")
            }
            ModelError::DimensionMismatch {
                context,
                expected,
                actual,
            } => {
                write!(f, "{context}: expected dimension {expected}, got {actual}")
            }
            ModelError::IncompleteMapping { expected, actual } => {
                write!(
                    f,
                    "mapping must assign all {expected} tasks, got {actual} assignments"
                )
            }
            ModelError::RuleViolation { kind, detail } => {
                write!(f, "mapping violates {kind:?} rule: {detail}")
            }
            ModelError::NotEnoughMachines { machines, required } => {
                write!(
                    f,
                    "platform has {machines} machines but {required} are required"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_data() {
        let err = ModelError::UnknownTask {
            task: 7,
            task_count: 3,
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains('3'));

        let err = ModelError::InvalidFailureRate { value: 1.5 };
        assert!(err.to_string().contains("1.5"));

        let err = ModelError::NotEnoughMachines {
            machines: 2,
            required: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains('2') && msg.contains('5'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ModelError>();
    }
}
