//! Failure model: per-(task, machine) transient failure probabilities.
//!
//! The originality of the paper's model is that the probability of losing a
//! product is attached to the *couple* (task, machine): `f_{i,u}`. Special
//! cases used in the complexity study and experiments are
//! task-only failures (`f_{i,u} = f_i`, Figure 9), machine-only failures
//! (`f_{i,u} = f_u`, Theorem 2) and constant failures.

use crate::error::{ModelError, Result};
use crate::ids::{MachineId, TaskId};

/// A validated failure probability in `[0, 1)`.
///
/// The upper bound is exclusive: a task that *always* fails would make the
/// expected number of required products infinite.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct FailureRate(f64);

impl FailureRate {
    /// A failure rate of zero (the task never loses a product).
    pub const ZERO: FailureRate = FailureRate(0.0);

    /// Creates a failure rate, validating that it lies in `[0, 1)` and is finite.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && (0.0..1.0).contains(&value) {
            Ok(FailureRate(value))
        } else {
            Err(ModelError::InvalidFailureRate { value })
        }
    }

    /// Creates a failure rate from a loss ratio `l / b` (the paper defines
    /// `f_{i,u} = l_{i,u} / b_{i,u}`, the number of products lost every `b`
    /// processed).
    pub fn from_ratio(lost: u64, processed: u64) -> Result<Self> {
        if processed == 0 {
            return Err(ModelError::InvalidFailureRate { value: f64::NAN });
        }
        Self::new(lost as f64 / processed as f64)
    }

    /// The raw probability `f`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The *failure factor* `F = 1 / (1 − f)`: the expected number of attempts
    /// needed per successful product.
    #[inline]
    pub fn factor(self) -> f64 {
        1.0 / (1.0 - self.0)
    }

    /// Success probability `1 − f`.
    #[inline]
    pub fn success(self) -> f64 {
        1.0 - self.0
    }
}

impl Default for FailureRate {
    fn default() -> Self {
        FailureRate::ZERO
    }
}

impl std::fmt::Display for FailureRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

/// Per-(task, machine) failure probabilities `f_{i,u}`.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureModel {
    task_count: usize,
    machine_count: usize,
    /// Row-major `task_count × machine_count`.
    rates: Vec<FailureRate>,
}

impl FailureModel {
    /// Builds a failure model from a full `n × m` matrix (row per task).
    pub fn from_matrix(rows: Vec<Vec<f64>>, machine_count: usize) -> Result<Self> {
        let task_count = rows.len();
        let mut rates = Vec::with_capacity(task_count * machine_count);
        for row in &rows {
            if row.len() != machine_count {
                return Err(ModelError::DimensionMismatch {
                    context: "FailureModel::from_matrix row",
                    expected: machine_count,
                    actual: row.len(),
                });
            }
            for &value in row {
                rates.push(FailureRate::new(value)?);
            }
        }
        Ok(FailureModel {
            task_count,
            machine_count,
            rates,
        })
    }

    /// Builds a model in which every (task, machine) pair has the same rate.
    pub fn uniform(task_count: usize, machine_count: usize, rate: FailureRate) -> Self {
        FailureModel {
            task_count,
            machine_count,
            rates: vec![rate; task_count * machine_count],
        }
    }

    /// Builds a model in which the failure rate depends only on the task
    /// (`f_{i,u} = f_i`), the setting of the companion paper and of Figure 9.
    pub fn task_dependent(task_rates: &[FailureRate], machine_count: usize) -> Self {
        let task_count = task_rates.len();
        let mut rates = Vec::with_capacity(task_count * machine_count);
        for &r in task_rates {
            rates.extend(std::iter::repeat(r).take(machine_count));
        }
        FailureModel {
            task_count,
            machine_count,
            rates,
        }
    }

    /// Builds a model in which the failure rate depends only on the machine
    /// (`f_{i,u} = f_u`), the setting of Theorem 2.
    pub fn machine_dependent(machine_rates: &[FailureRate], task_count: usize) -> Self {
        let machine_count = machine_rates.len();
        let mut rates = Vec::with_capacity(task_count * machine_count);
        for _ in 0..task_count {
            rates.extend_from_slice(machine_rates);
        }
        FailureModel {
            task_count,
            machine_count,
            rates,
        }
    }

    /// Number of tasks covered by the model.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.task_count
    }

    /// Number of machines covered by the model.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.machine_count
    }

    /// The failure probability `f_{i,u}`.
    #[inline]
    pub fn rate(&self, task: TaskId, machine: MachineId) -> FailureRate {
        debug_assert!(task.index() < self.task_count);
        debug_assert!(machine.index() < self.machine_count);
        self.rates[task.index() * self.machine_count + machine.index()]
    }

    /// The failure factor `F_{i,u} = 1 / (1 − f_{i,u})`.
    #[inline]
    pub fn factor(&self, task: TaskId, machine: MachineId) -> f64 {
        self.rate(task, machine).factor()
    }

    /// `true` if `f_{i,u}` does not depend on the machine for any task.
    pub fn is_task_dependent_only(&self) -> bool {
        (0..self.task_count).all(|i| {
            let first = self.rates[i * self.machine_count];
            (1..self.machine_count).all(|u| self.rates[i * self.machine_count + u] == first)
        })
    }

    /// `true` if `f_{i,u}` does not depend on the task for any machine.
    pub fn is_machine_dependent_only(&self) -> bool {
        if self.task_count == 0 {
            return true;
        }
        (0..self.machine_count).all(|u| {
            let first = self.rates[u];
            (1..self.task_count).all(|i| self.rates[i * self.machine_count + u] == first)
        })
    }

    /// Largest failure rate of a task over all machines — used to bound the
    /// demand `x_i` from above (the `MAXx_i` constant of the MIP of §6.1).
    pub fn worst_rate_for_task(&self, task: TaskId) -> FailureRate {
        (0..self.machine_count)
            .map(|u| self.rate(task, MachineId(u)))
            .fold(FailureRate::ZERO, |acc, r| {
                if r.value() > acc.value() {
                    r
                } else {
                    acc
                }
            })
    }

    /// Smallest failure rate of a task over all machines — used as an
    /// optimistic bound in branch-and-bound.
    pub fn best_rate_for_task(&self, task: TaskId) -> FailureRate {
        (0..self.machine_count)
            .map(|u| self.rate(task, MachineId(u)))
            .fold(FailureRate::new(0.999_999_999).unwrap(), |acc, r| {
                if r.value() < acc.value() {
                    r
                } else {
                    acc
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_rate_validation() {
        assert!(FailureRate::new(0.0).is_ok());
        assert!(FailureRate::new(0.5).is_ok());
        assert!(FailureRate::new(0.999).is_ok());
        assert!(FailureRate::new(1.0).is_err());
        assert!(FailureRate::new(-0.1).is_err());
        assert!(FailureRate::new(f64::NAN).is_err());
        assert!(FailureRate::new(f64::INFINITY).is_err());
    }

    #[test]
    fn failure_rate_from_ratio() {
        let r = FailureRate::from_ratio(1, 200).unwrap();
        assert!((r.value() - 0.005).abs() < 1e-12);
        assert!(FailureRate::from_ratio(5, 5).is_err()); // would be 1.0
        assert!(FailureRate::from_ratio(1, 0).is_err());
    }

    #[test]
    fn factor_matches_definition() {
        let r = FailureRate::new(0.2).unwrap();
        assert!((r.factor() - 1.25).abs() < 1e-12);
        assert!((r.success() - 0.8).abs() < 1e-12);
        assert_eq!(FailureRate::ZERO.factor(), 1.0);
    }

    #[test]
    fn matrix_model_lookup() {
        let model = FailureModel::from_matrix(vec![vec![0.1, 0.2], vec![0.3, 0.4]], 2).unwrap();
        assert_eq!(model.rate(TaskId(0), MachineId(1)).value(), 0.2);
        assert_eq!(model.rate(TaskId(1), MachineId(0)).value(), 0.3);
        assert!(!model.is_task_dependent_only());
        assert!(!model.is_machine_dependent_only());
    }

    #[test]
    fn matrix_model_rejects_ragged_rows() {
        let err = FailureModel::from_matrix(vec![vec![0.1, 0.2], vec![0.3]], 2).unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { .. }));
    }

    #[test]
    fn special_structures_are_detected() {
        let task_rates = [
            FailureRate::new(0.1).unwrap(),
            FailureRate::new(0.2).unwrap(),
        ];
        let model = FailureModel::task_dependent(&task_rates, 3);
        assert!(model.is_task_dependent_only());
        assert_eq!(model.rate(TaskId(1), MachineId(2)).value(), 0.2);

        let machine_rates = [
            FailureRate::new(0.05).unwrap(),
            FailureRate::new(0.15).unwrap(),
        ];
        let model = FailureModel::machine_dependent(&machine_rates, 4);
        assert!(model.is_machine_dependent_only());
        assert_eq!(model.rate(TaskId(3), MachineId(1)).value(), 0.15);

        let model = FailureModel::uniform(3, 3, FailureRate::new(0.01).unwrap());
        assert!(model.is_task_dependent_only());
        assert!(model.is_machine_dependent_only());
    }

    #[test]
    fn worst_and_best_rates() {
        let model =
            FailureModel::from_matrix(vec![vec![0.1, 0.02, 0.3], vec![0.0, 0.0, 0.0]], 3).unwrap();
        assert_eq!(model.worst_rate_for_task(TaskId(0)).value(), 0.3);
        assert_eq!(model.best_rate_for_task(TaskId(0)).value(), 0.02);
        assert_eq!(model.worst_rate_for_task(TaskId(1)).value(), 0.0);
        assert_eq!(model.best_rate_for_task(TaskId(1)).value(), 0.0);
    }
}
