//! Strongly-typed identifiers for tasks, machines and task types.
//!
//! The paper indexes tasks `T₁..Tₙ`, machines `M₁..Mₘ` and types `1..p` from 1;
//! this crate uses 0-based indices throughout, wrapped in newtypes so that a
//! task index can never be accidentally used where a machine index is expected.

use std::fmt;

/// Index of a task `Tᵢ` within an [`crate::Application`] (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

/// Index of a machine `Mᵤ` within a [`crate::Platform`] (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub usize);

/// Index of a task type within an [`crate::Application`] (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskTypeId(pub usize);

macro_rules! impl_id {
    ($name:ident, $letter:literal) => {
        impl $name {
            /// Returns the underlying 0-based index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // Displayed 1-based to match the paper's notation.
                write!(f, concat!($letter, "{}"), self.0 + 1)
            }
        }

        impl From<usize> for $name {
            fn from(value: usize) -> Self {
                Self(value)
            }
        }

        impl From<$name> for usize {
            fn from(value: $name) -> usize {
                value.0
            }
        }
    };
}

impl_id!(TaskId, "T");
impl_id!(MachineId, "M");
impl_id!(TaskTypeId, "type");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_based() {
        assert_eq!(TaskId(0).to_string(), "T1");
        assert_eq!(MachineId(4).to_string(), "M5");
        assert_eq!(TaskTypeId(2).to_string(), "type3");
    }

    #[test]
    fn conversions_round_trip() {
        let t: TaskId = 7usize.into();
        assert_eq!(t.index(), 7);
        let back: usize = t.into();
        assert_eq!(back, 7);

        let m: MachineId = 3usize.into();
        assert_eq!(m.index(), 3);
        let ty: TaskTypeId = 1usize.into();
        assert_eq!(ty.index(), 1);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TaskId(1) < TaskId(2));
        assert!(MachineId(0) < MachineId(10));
    }
}
