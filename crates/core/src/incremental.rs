//! Incremental re-evaluation of mapping *moves* and *swaps*.
//!
//! Every candidate evaluated through [`MachinePeriods::compute`] pays a full
//! `O(n + m)` recompute (two vector allocations, a demand walk over all `n`
//! tasks and a load walk over all machines). A local search explores
//! thousands of neighbors that each differ from the current mapping in one or
//! two tasks, and for such a change only the changed tasks and their
//! *ancestors* (the tasks upstream of them in the in-forest) can see their
//! demand `xᵢ` change — everything downstream is untouched.
//!
//! [`IncrementalEvaluator`] exploits this: it caches per-task demands,
//! factors and load contributions plus per-machine loads, and re-evaluates a
//! single-task move or a two-task swap in `O(affected tasks + k·log m)` where
//! `k` is the number of machines whose load actually changes. The system
//! period and the critical machine are maintained in a **tournament tree**
//! over the machine periods, so committed state answers both in `O(1)` and a
//! what-if evaluation updates/reverts only the touched leaves (falling back
//! to a linear scan when so many machines are touched that the scan is
//! cheaper).
//!
//! Demands are recomputed *exactly* along the affected subtree (not scaled by
//! a ratio), so the cached demand vector stays bit-identical to a from-scratch
//! [`demands`](crate::demand::demands) computation after any number of
//! committed operations; machine loads are maintained by deltas and agree
//! with a full recompute to floating-point accumulation order (≤ 1e-9
//! relative in practice — the bound the differential test harness pins).

use crate::error::{ModelError, Result};
use crate::ids::{MachineId, TaskId};
use crate::instance::Instance;
use crate::mapping::Mapping;
use crate::period::Period;

/// A max-tournament (segment) tree over per-machine loads.
///
/// Leaves hold `(load, machine index)`; every internal node holds the better
/// of its children, preferring the *lower* machine index on ties so the
/// critical machine is deterministic. The root is the system period.
#[derive(Debug, Clone)]
struct TournamentTree {
    /// Number of leaves (next power of two ≥ machine count).
    capacity: usize,
    /// Heap layout: node 1 is the root, leaves start at `capacity`.
    nodes: Vec<(f64, usize)>,
}

impl TournamentTree {
    fn new(loads: &[f64]) -> Self {
        let capacity = loads.len().next_power_of_two().max(1);
        let mut nodes = vec![(f64::NEG_INFINITY, usize::MAX); 2 * capacity];
        for (u, &load) in loads.iter().enumerate() {
            nodes[capacity + u] = (load, u);
        }
        for i in (1..capacity).rev() {
            nodes[i] = Self::better(nodes[2 * i], nodes[2 * i + 1]);
        }
        TournamentTree { capacity, nodes }
    }

    /// Max with lowest-index tie-break (`a` is always the left, lower-index
    /// child when called on siblings).
    #[inline]
    fn better(a: (f64, usize), b: (f64, usize)) -> (f64, usize) {
        if b.0 > a.0 {
            b
        } else {
            a
        }
    }

    /// Sets the load of one machine and repairs the path to the root.
    fn update(&mut self, machine: usize, load: f64) {
        let mut i = self.capacity + machine;
        self.nodes[i].0 = load;
        while i > 1 {
            i /= 2;
            self.nodes[i] = Self::better(self.nodes[2 * i], self.nodes[2 * i + 1]);
        }
    }

    /// The `(system period, critical machine)` pair.
    #[inline]
    fn root(&self) -> (f64, usize) {
        self.nodes[1]
    }

    /// Number of node writes one leaf update costs (the tree height).
    #[inline]
    fn height(&self) -> usize {
        self.capacity.trailing_zeros() as usize + 1
    }
}

/// Staged evaluation of **partial** assignments for tree searches.
///
/// A branch-and-bound walks one search path at a time: it places a task,
/// recurses, and un-places it on backtrack. Recomputing the maximum machine
/// load from scratch at every node costs `O(m)`; this evaluator maintains the
/// per-machine loads, their running total and the load maximum (in the same
/// [`TournamentTree`] the full [`IncrementalEvaluator`] uses) so a node pays
/// `O(log m)` per placement and answers both the current period bound and the
/// critical machine in `O(1)`.
///
/// Loads are updated with the exact float operations a plain
/// `load[u] += c` / `load[u] -= c` pair performs, so a search driven through
/// this evaluator explores the **bit-identical** tree a from-scratch
/// recomputation would (`mf-exact` pins that on its brute-force-validated
/// instances).
///
/// ```
/// use mf_core::prelude::*;
///
/// let mut staged = PartialAssignmentEvaluator::new(3);
/// staged.place(MachineId(1), 250.0);
/// staged.place(MachineId(0), 100.0);
/// assert_eq!(staged.period().value(), 250.0);
/// assert_eq!(staged.critical_machine(), MachineId(1));
/// assert_eq!(staged.total_load(), 350.0);
/// staged.unplace(); // backtrack the second placement
/// assert_eq!(staged.total_load(), 250.0);
/// ```
#[derive(Debug, Clone)]
pub struct PartialAssignmentEvaluator {
    load: Vec<f64>,
    total: f64,
    tree: TournamentTree,
    /// Undo trail of `(machine, contribution)` placements, in order.
    trail: Vec<(usize, f64)>,
}

impl PartialAssignmentEvaluator {
    /// An empty staged state over `machines` machines (all loads zero).
    pub fn new(machines: usize) -> Self {
        let load = vec![0.0f64; machines];
        let tree = TournamentTree::new(&load);
        PartialAssignmentEvaluator {
            load,
            total: 0.0,
            tree,
            trail: Vec::new(),
        }
    }

    /// Stages one placement: adds `contribution` to the machine's load.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn place(&mut self, machine: MachineId, contribution: f64) {
        let u = machine.index();
        self.load[u] += contribution;
        self.total += contribution;
        self.tree.update(u, self.load[u]);
        self.trail.push((u, contribution));
    }

    /// Reverts the most recent [`place`](Self::place) (exact float inverse of
    /// the `+=` the placement performed, matching a hand-rolled apply/undo).
    ///
    /// # Panics
    ///
    /// Panics if nothing is staged.
    pub fn unplace(&mut self) {
        let (u, contribution) = self.trail.pop().expect("unplace without a matching place");
        self.load[u] -= contribution;
        self.total -= contribution;
        self.tree.update(u, self.load[u]);
    }

    /// Number of staged placements on the current search path.
    #[inline]
    pub fn depth(&self) -> usize {
        self.trail.len()
    }

    /// The load of one machine.
    #[inline]
    pub fn load_of(&self, machine: MachineId) -> f64 {
        self.load[machine.index()]
    }

    /// The sum of all staged contributions (maintained by deltas, matching
    /// the accumulation order of a running `total += c` / `total -= c`).
    #[inline]
    pub fn total_load(&self) -> f64 {
        self.total
    }

    /// The maximum machine load — the period lower bound of the partial
    /// assignment (`O(1)`, the tournament-tree root), floored at zero.
    ///
    /// The floor matches a `fold(0.0, f64::max)` scan exactly: place/unplace
    /// churn can leave a machine with a ±ulp residue instead of a clean
    /// `0.0`, and a scan that folds from `0.0` clamps such negative residues
    /// away, so this must too or the two bookkeepings would diverge by a
    /// sign bit.
    #[inline]
    pub fn period(&self) -> Period {
        Period::new(self.tree.root().0.max(0.0))
    }

    /// The machine achieving the maximum load (lowest index on exact ties).
    #[inline]
    pub fn critical_machine(&self) -> MachineId {
        MachineId(self.tree.root().1)
    }
}

/// An owned dump of an [`IncrementalEvaluator`]'s committed state, detached
/// from the instance borrow.
///
/// A long-lived process (the `mf-server` serve loop) wants to keep evaluator
/// state warm *across* queries, but the evaluator borrows its instance, so it
/// cannot be stored next to the instance it evaluates. A snapshot can:
/// [`IncrementalEvaluator::into_snapshot`] moves every committed cache
/// (assignment, demands, factors, contributions, loads, the tournament tree)
/// and the reusable scratch buffers out of the evaluator, and
/// [`IncrementalEvaluator::resume`] re-attaches them to the instance in
/// `O(1)` — no demand walk, no load rebuild. The resumed evaluator is
/// **bit-identical** to the one the snapshot was taken from.
///
/// The snapshot must be resumed against the *same* instance it was taken
/// from (resume validates the task/machine dimensions, which catches honest
/// mix-ups, but two different instances of equal shape cannot be told
/// apart — callers that store snapshots keyed by instance are responsible
/// for that pairing, e.g. the server keys them by load generation).
#[derive(Debug, Clone)]
pub struct EvaluatorSnapshot {
    assignment: Vec<MachineId>,
    demand: Vec<f64>,
    factor: Vec<f64>,
    weight: Vec<f64>,
    contribution: Vec<f64>,
    load: Vec<f64>,
    tree: TournamentTree,
    stack: Vec<TaskId>,
    overlay: Vec<f64>,
    task_stamp: Vec<u64>,
    delta: Vec<f64>,
    machine_stamp: Vec<u64>,
    dirty: Vec<usize>,
    epoch: u64,
    mass_rows: Vec<f64>,
    row_stamp: Vec<u64>,
    row_epoch: u64,
}

impl EvaluatorSnapshot {
    /// Number of tasks the snapshot covers.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of machines the snapshot covers.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.load.len()
    }

    /// The committed mapping the snapshot holds.
    pub fn mapping(&self) -> Mapping {
        Mapping::new(self.assignment.clone(), self.load.len())
            .expect("the evaluator only ever stores in-range machines")
    }
}

/// The outcome of evaluating or applying a move/swap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// The system period of the candidate (or, for `apply_*`, new) mapping.
    pub period: Period,
    /// The machine achieving that period (lowest index on exact ties).
    pub critical_machine: MachineId,
}

/// Incremental evaluator for single-task moves and two-task swaps.
///
/// ```
/// use mf_core::prelude::*;
///
/// let app = Application::linear_chain(&[0, 1, 0]).unwrap();
/// let platform = Platform::from_type_times(2, vec![vec![100.0, 200.0], vec![300.0, 150.0]]).unwrap();
/// let failures = FailureModel::uniform(3, 2, FailureRate::new(0.1).unwrap());
/// let instance = Instance::new(app, platform, failures).unwrap();
/// let mapping = Mapping::from_indices(&[0, 1, 0], 2).unwrap();
///
/// let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
/// let before = eval.period();
/// // What-if: moving T1 to M1 — the evaluator state is untouched.
/// let what_if = eval.evaluate_move(TaskId(0), MachineId(1)).unwrap();
/// assert_eq!(eval.period(), before);
/// // Committing the move matches the what-if answer.
/// let committed = eval.apply_move(TaskId(0), MachineId(1)).unwrap();
/// assert_eq!(committed.period, what_if.period);
/// assert_eq!(instance.period(&eval.mapping()).unwrap(), committed.period);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator<'a> {
    instance: &'a Instance,
    assignment: Vec<MachineId>,
    /// Start demand `xᵢ`, bit-identical to [`crate::demand::demands`] for the
    /// current assignment.
    demand: Vec<f64>,
    /// Cached failure factor `F_{i,a(i)}`.
    factor: Vec<f64>,
    /// Cached processing time `w_{i,a(i)}`.
    weight: Vec<f64>,
    /// Cached load contribution `xᵢ · w_{i,a(i)}`.
    contribution: Vec<f64>,
    /// Per-machine load (sum of contributions, maintained by deltas).
    load: Vec<f64>,
    tree: TournamentTree,
    // --- allocation-free scratch, reused across evaluations ---
    /// DFS stack of the ancestor walk.
    stack: Vec<TaskId>,
    /// Candidate demands of the affected tasks (valid when the stamp matches).
    overlay: Vec<f64>,
    task_stamp: Vec<u64>,
    /// Accumulated load delta per machine (valid when the stamp matches).
    delta: Vec<f64>,
    machine_stamp: Vec<u64>,
    /// Machines touched by the current operation.
    dirty: Vec<usize>,
    epoch: u64,
    /// `true` when the application is a linear chain in index order, which
    /// unlocks the dense what-if fast path (ancestors of task `i` are exactly
    /// the tasks `0..i`, and their demands scale by a single ratio).
    chain: bool,
    /// Lazily-built prefix mass rows for the dense chain path: row `i` holds,
    /// per machine, the total contribution of tasks `0..i`. Allocated on
    /// first use, valid while `row_stamp[i] == row_epoch`.
    mass_rows: Vec<f64>,
    row_stamp: Vec<u64>,
    /// Bumped by every commit — committed contributions change a whole
    /// prefix, so all cached rows go stale at once.
    row_epoch: u64,
}

/// Machine-count bound under which the dense chain what-if (prefix mass rows
/// plus one full machine scan) beats the sparse stamped walk with its
/// tournament-tree update/revert.
const DENSE_SCAN_LIMIT: usize = 512;

/// Cap on the `tasks × machines` size of the prefix-mass row cache (8 MiB of
/// `f64`s). Larger instances fall back to the generic walk.
const DENSE_CACHE_ENTRIES: usize = 1 << 20;

impl<'a> IncrementalEvaluator<'a> {
    /// Builds the evaluator from a complete mapping.
    ///
    /// The initial demands and loads are computed exactly as
    /// [`MachinePeriods::compute`](crate::period::MachinePeriods::compute)
    /// does (same operations in the same order), so the starting state is
    /// bit-identical to a full evaluation.
    pub fn new(instance: &'a Instance, mapping: &Mapping) -> Result<Self> {
        let x = instance.demands(mapping)?;
        if mapping.machine_count() != instance.machine_count() {
            return Err(ModelError::DimensionMismatch {
                context: "incremental evaluator machine count",
                expected: instance.machine_count(),
                actual: mapping.machine_count(),
            });
        }
        let n = instance.task_count();
        let m = instance.machine_count();
        let assignment: Vec<MachineId> = mapping.as_slice().to_vec();
        let mut factor = vec![0.0f64; n];
        let mut weight = vec![0.0f64; n];
        let mut contribution = vec![0.0f64; n];
        let mut load = vec![0.0f64; m];
        for task in instance.application().tasks() {
            let i = task.id.index();
            let machine = assignment[i];
            factor[i] = instance.factor(task.id, machine);
            weight[i] = instance.time(task.id, machine);
            contribution[i] = x.get(task.id) * weight[i];
            load[machine.index()] += contribution[i];
        }
        let tree = TournamentTree::new(&load);
        let chain = instance.application().is_linear_chain();
        Ok(IncrementalEvaluator {
            instance,
            assignment,
            demand: x.as_slice().to_vec(),
            factor,
            weight,
            contribution,
            load,
            tree,
            stack: Vec::with_capacity(n),
            overlay: vec![0.0; n],
            task_stamp: vec![0; n],
            delta: vec![0.0; m],
            machine_stamp: vec![0; m],
            dirty: Vec::with_capacity(m),
            epoch: 0,
            chain,
            mass_rows: Vec::new(),
            row_stamp: Vec::new(),
            row_epoch: 1,
        })
    }

    /// Detaches the evaluator's committed state from the instance borrow.
    ///
    /// See [`EvaluatorSnapshot`]; [`IncrementalEvaluator::resume`] is the
    /// inverse.
    pub fn into_snapshot(self) -> EvaluatorSnapshot {
        EvaluatorSnapshot {
            assignment: self.assignment,
            demand: self.demand,
            factor: self.factor,
            weight: self.weight,
            contribution: self.contribution,
            load: self.load,
            tree: self.tree,
            stack: self.stack,
            overlay: self.overlay,
            task_stamp: self.task_stamp,
            delta: self.delta,
            machine_stamp: self.machine_stamp,
            dirty: self.dirty,
            epoch: self.epoch,
            mass_rows: self.mass_rows,
            row_stamp: self.row_stamp,
            row_epoch: self.row_epoch,
        }
    }

    /// Re-attaches a snapshot to the instance it was taken from, in `O(1)`
    /// (plus the linear-chain probe): no demand walk, no load rebuild.
    ///
    /// The resumed evaluator is bit-identical to the evaluator
    /// [`IncrementalEvaluator::into_snapshot`] consumed. Returns a
    /// [`ModelError::DimensionMismatch`] when the instance's task or machine
    /// count disagrees with the snapshot — the cheap guard against pairing a
    /// snapshot with the wrong instance (same-shape instances cannot be told
    /// apart; the caller owns that pairing).
    pub fn resume(instance: &'a Instance, snapshot: EvaluatorSnapshot) -> Result<Self> {
        if snapshot.task_count() != instance.task_count() {
            return Err(ModelError::DimensionMismatch {
                context: "resumed evaluator task count",
                expected: instance.task_count(),
                actual: snapshot.task_count(),
            });
        }
        if snapshot.machine_count() != instance.machine_count() {
            return Err(ModelError::DimensionMismatch {
                context: "resumed evaluator machine count",
                expected: instance.machine_count(),
                actual: snapshot.machine_count(),
            });
        }
        Ok(IncrementalEvaluator {
            instance,
            assignment: snapshot.assignment,
            demand: snapshot.demand,
            factor: snapshot.factor,
            weight: snapshot.weight,
            contribution: snapshot.contribution,
            load: snapshot.load,
            tree: snapshot.tree,
            stack: snapshot.stack,
            overlay: snapshot.overlay,
            task_stamp: snapshot.task_stamp,
            delta: snapshot.delta,
            machine_stamp: snapshot.machine_stamp,
            dirty: snapshot.dirty,
            epoch: snapshot.epoch,
            chain: instance.application().is_linear_chain(),
            mass_rows: snapshot.mass_rows,
            row_stamp: snapshot.row_stamp,
            row_epoch: snapshot.row_epoch,
        })
    }

    /// `true` when the dense chain fast path applies to what-if evaluations.
    #[inline]
    fn dense(&self) -> bool {
        self.chain
            && self.load.len() <= DENSE_SCAN_LIMIT
            && self.assignment.len().saturating_mul(self.load.len()) <= DENSE_CACHE_ENTRIES
    }

    /// Ensures the prefix mass row of task `i` is valid and returns its range
    /// within `mass_rows`.
    fn ensure_mass_row(&mut self, i: usize) -> std::ops::Range<usize> {
        let n = self.assignment.len();
        let m = self.load.len();
        if self.mass_rows.is_empty() {
            self.mass_rows = vec![0.0; n * m];
            self.row_stamp = vec![0; n];
        }
        let range = i * m..(i + 1) * m;
        if self.row_stamp[i] != self.row_epoch {
            let (row, assignment, contribution) = (
                &mut self.mass_rows[range.clone()],
                &self.assignment,
                &self.contribution,
            );
            row.fill(0.0);
            for (machine, c) in assignment[..i].iter().zip(&contribution[..i]) {
                row[machine.index()] += *c;
            }
            self.row_stamp[i] = self.row_epoch;
        }
        range
    }

    /// The instance being evaluated.
    #[inline]
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }

    /// The machine currently executing a task.
    #[inline]
    pub fn machine_of(&self, task: TaskId) -> MachineId {
        self.assignment[task.index()]
    }

    /// The cached start demand `xᵢ` of a task.
    #[inline]
    pub fn demand_of(&self, task: TaskId) -> f64 {
        self.demand[task.index()]
    }

    /// The cached load of a machine.
    #[inline]
    pub fn load_of(&self, machine: MachineId) -> f64 {
        self.load[machine.index()]
    }

    /// All machine loads, indexed by machine.
    #[inline]
    pub fn loads(&self) -> &[f64] {
        &self.load
    }

    /// The current system period (the tournament-tree root, `O(1)`).
    #[inline]
    pub fn period(&self) -> Period {
        Period::new(self.tree.root().0)
    }

    /// The current critical machine (lowest index on exact ties, `O(1)`).
    #[inline]
    pub fn critical_machine(&self) -> MachineId {
        MachineId(self.tree.root().1)
    }

    /// Materialises the current assignment as a [`Mapping`].
    pub fn mapping(&self) -> Mapping {
        Mapping::new(self.assignment.clone(), self.load.len())
            .expect("the evaluator only ever stores in-range machines")
    }

    /// What-if evaluation of moving `task` to machine `to`. The evaluator
    /// state is left untouched.
    pub fn evaluate_move(&mut self, task: TaskId, to: MachineId) -> Result<Evaluation> {
        self.check(task, to)?;
        if self.assignment[task.index()] == to {
            return Ok(self.current());
        }
        if self.dense() {
            return Ok(self.chain_move_what_if(task, to));
        }
        Ok(self.operate(&[(task, to)], false))
    }

    /// What-if evaluation of exchanging the machines of tasks `a` and `b`.
    /// The evaluator state is left untouched.
    pub fn evaluate_swap(&mut self, a: TaskId, b: TaskId) -> Result<Evaluation> {
        let Some((to_a, to_b)) = self.swap_machines(a, b)? else {
            return Ok(self.current());
        };
        if self.dense() {
            return Ok(self.chain_swap_what_if(a, b));
        }
        Ok(self.operate(&[(a, to_a), (b, to_b)], false))
    }

    /// Commits a move: `task` now runs on `to`. Returns the new period and
    /// critical machine.
    pub fn apply_move(&mut self, task: TaskId, to: MachineId) -> Result<Evaluation> {
        self.check(task, to)?;
        if self.assignment[task.index()] == to {
            return Ok(self.current());
        }
        Ok(self.operate(&[(task, to)], true))
    }

    /// Commits a swap of the machines of tasks `a` and `b`.
    pub fn apply_swap(&mut self, a: TaskId, b: TaskId) -> Result<Evaluation> {
        let machines = self.swap_machines(a, b)?;
        let Some((to_a, to_b)) = machines else {
            return Ok(self.current());
        };
        Ok(self.operate(&[(a, to_a), (b, to_b)], true))
    }

    /// The current `(period, critical machine)` pair.
    #[inline]
    fn current(&self) -> Evaluation {
        let (period, machine) = self.tree.root();
        Evaluation {
            period: Period::new(period),
            critical_machine: MachineId(machine),
        }
    }

    fn check(&self, task: TaskId, machine: MachineId) -> Result<()> {
        if task.index() >= self.assignment.len() {
            return Err(ModelError::UnknownTask {
                task: task.index(),
                task_count: self.assignment.len(),
            });
        }
        if machine.index() >= self.load.len() {
            return Err(ModelError::UnknownMachine {
                machine: machine.index(),
                machine_count: self.load.len(),
            });
        }
        Ok(())
    }

    /// Validates a swap and returns the target machines `(a → m_b, b → m_a)`,
    /// or `None` when the swap is a no-op.
    fn swap_machines(&self, a: TaskId, b: TaskId) -> Result<Option<(MachineId, MachineId)>> {
        let ma = if a.index() < self.assignment.len() {
            self.assignment[a.index()]
        } else {
            return Err(ModelError::UnknownTask {
                task: a.index(),
                task_count: self.assignment.len(),
            });
        };
        let mb = if b.index() < self.assignment.len() {
            self.assignment[b.index()]
        } else {
            return Err(ModelError::UnknownTask {
                task: b.index(),
                task_count: self.assignment.len(),
            });
        };
        if a == b || ma == mb {
            return Ok(None);
        }
        Ok(Some((mb, ma)))
    }

    /// `true` when `b` is reachable from `a` along successor links (i.e. `a`
    /// is upstream of `b`, so `a ∈ ancestors(b)`).
    fn is_upstream(&self, a: TaskId, b: TaskId) -> bool {
        let app = self.instance.application();
        let mut current = app.successor(a);
        while let Some(task) = current {
            if task == b {
                return true;
            }
            current = app.successor(task);
        }
        false
    }

    /// Evaluates (and, when `commit`, applies) a batch of one or two task
    /// reassignments. `changes` must target distinct tasks.
    fn operate(&mut self, changes: &[(TaskId, MachineId)], commit: bool) -> Evaluation {
        self.epoch = self.epoch.wrapping_add(1);
        self.dirty.clear();
        match *changes {
            [(root, _)] => self.walk(root, changes, commit),
            [(a, _), (b, _)] => {
                // The ancestor sets of two tasks in an in-forest are either
                // nested (one task is upstream of the other) or disjoint: a
                // shared ancestor's unique successor chain would have to pass
                // through both tasks. Walk from the dominating root(s).
                if self.is_upstream(a, b) {
                    self.walk(b, changes, commit);
                } else if self.is_upstream(b, a) {
                    self.walk(a, changes, commit);
                } else {
                    self.walk(a, changes, commit);
                    self.walk(b, changes, commit);
                }
            }
            _ => unreachable!("moves touch one task, swaps touch two"),
        }
        if commit {
            for k in 0..self.dirty.len() {
                let u = self.dirty[k];
                self.load[u] += self.delta[u];
                self.tree.update(u, self.load[u]);
            }
            // Committed contributions changed for a whole prefix of tasks:
            // every cached mass row of the dense path is stale now.
            self.row_epoch = self.row_epoch.wrapping_add(1);
            self.current()
        } else {
            self.candidate_max()
        }
    }

    /// Recomputes the demand of `root` and every ancestor under the effective
    /// (task → machine) overrides in `changes`, accumulating per-machine load
    /// deltas. Demands are recomputed exactly (factor times downstream
    /// demand), never scaled, so committed state cannot drift.
    fn walk(&mut self, root: TaskId, changes: &[(TaskId, MachineId)], commit: bool) {
        debug_assert!(self.stack.is_empty());
        self.stack.push(root);
        while let Some(task) = self.stack.pop() {
            let i = task.index();
            let app = self.instance.application();
            let moved = changes
                .iter()
                .find(|&&(t, _)| t == task)
                .map(|&(_, machine)| machine);
            let (machine, factor, weight) = match moved {
                Some(to) => (
                    to,
                    self.instance.factor(task, to),
                    self.instance.time(task, to),
                ),
                None => (self.assignment[i], self.factor[i], self.weight[i]),
            };
            let downstream = match app.successor(task) {
                None => 1.0,
                Some(succ) if self.task_stamp[succ.index()] == self.epoch => {
                    self.overlay[succ.index()]
                }
                Some(succ) => self.demand[succ.index()],
            };
            let x = factor * downstream;
            self.overlay[i] = x;
            self.task_stamp[i] = self.epoch;
            let contribution = x * weight;
            let previous = self.assignment[i];
            if machine == previous {
                self.touch(machine.index(), contribution - self.contribution[i]);
            } else {
                self.touch(previous.index(), -self.contribution[i]);
                self.touch(machine.index(), contribution);
            }
            if commit {
                self.demand[i] = x;
                self.contribution[i] = contribution;
                if moved.is_some() {
                    self.assignment[i] = machine;
                    self.factor[i] = factor;
                    self.weight[i] = weight;
                }
            }
            self.stack.extend_from_slice(app.predecessors(task));
        }
    }

    /// Dense chain what-if of a move: on a linear chain, changing the failure
    /// factor of task `i` scales the demand of every ancestor (tasks `0..i`)
    /// by the single ratio `F_new/F_old`, so the candidate load of machine
    /// `w` is `load(w) + (r − 1)·mass(w)` — with `mass(w)` the prefix
    /// contribution mass — plus the moved task's own contribution transfer.
    /// One prefix pass, one machine scan, no per-task recompute.
    ///
    /// Demands are *scaled*, not recomputed, so the answer can differ from a
    /// full recompute by a few ulp — comfortably within the 1e-9 differential
    /// bound, and irrelevant for committed state (commits always take the
    /// exact walk).
    fn chain_move_what_if(&mut self, task: TaskId, to: MachineId) -> Evaluation {
        let i = task.index();
        let from = self.assignment[i].index();
        let ratio = self.instance.factor(task, to) / self.factor[i];
        let removed = self.contribution[i];
        let added = ratio * self.demand[i] * self.instance.time(task, to);
        let row = self.ensure_mass_row(i);
        let scale = ratio - 1.0;
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (w, (&load, &mass)) in self.load.iter().zip(&self.mass_rows[row]).enumerate() {
            let mut value = load + scale * mass;
            if w == from {
                value -= removed;
            }
            if w == to.index() {
                value += added;
            }
            if value > best.0 {
                best = (value, w);
            }
        }
        Evaluation {
            period: Period::new(best.0),
            critical_machine: MachineId(best.1),
        }
    }

    /// Dense chain what-if of a swap: the downstream task's ratio scales
    /// everything upstream of it, the upstream task's ratio additionally
    /// scales everything upstream of *it* — two prefix mass rows, one scan.
    fn chain_swap_what_if(&mut self, a: TaskId, b: TaskId) -> Evaluation {
        let (lo, hi) = if a.index() < b.index() {
            (a, b)
        } else {
            (b, a)
        };
        let u_lo = self.assignment[lo.index()].index();
        let u_hi = self.assignment[hi.index()].index();
        // After the swap: `lo` runs on `u_hi`, `hi` runs on `u_lo`.
        let r_lo = self.instance.factor(lo, self.assignment[hi.index()]) / self.factor[lo.index()];
        let r_hi = self.instance.factor(hi, self.assignment[lo.index()]) / self.factor[hi.index()];
        let x_lo = r_lo * r_hi * self.demand[lo.index()];
        let x_hi = r_hi * self.demand[hi.index()];
        let scale_both = r_lo * r_hi - 1.0;
        let scale_hi = r_hi - 1.0;
        // Net adjustment of the two machines exchanging tasks. Tasks strictly
        // between `lo` and `hi` scale by `r_hi` and are counted through
        // `row_hi − row_lo`; that difference wrongly includes `lo` itself, so
        // `lo`'s machine compensates with `−scale_hi·c(lo)`.
        let adj_lo = x_hi * self.instance.time(hi, self.assignment[lo.index()])
            - self.contribution[lo.index()]
            - scale_hi * self.contribution[lo.index()];
        let adj_hi = x_lo * self.instance.time(lo, self.assignment[hi.index()])
            - self.contribution[hi.index()];
        let row_lo = self.ensure_mass_row(lo.index());
        let row_hi = self.ensure_mass_row(hi.index());
        // value = load + scale_both·mass(<lo) + scale_hi·mass(lo..hi)
        //       = load + (scale_both − scale_hi)·row_lo + scale_hi·row_hi + …
        let scale_lo = scale_both - scale_hi;
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (w, (&load, (&mass_lo, &mass_hi))) in self
            .load
            .iter()
            .zip(self.mass_rows[row_lo].iter().zip(&self.mass_rows[row_hi]))
            .enumerate()
        {
            let mut value = load + scale_lo * mass_lo + scale_hi * mass_hi;
            if w == u_lo {
                value += adj_lo;
            }
            if w == u_hi {
                value += adj_hi;
            }
            if value > best.0 {
                best = (value, w);
            }
        }
        Evaluation {
            period: Period::new(best.0),
            critical_machine: MachineId(best.1),
        }
    }

    /// Accumulates a load delta on a machine, registering it as dirty on
    /// first touch of the current epoch.
    #[inline]
    fn touch(&mut self, machine: usize, amount: f64) {
        if self.machine_stamp[machine] == self.epoch {
            self.delta[machine] += amount;
        } else {
            self.machine_stamp[machine] = self.epoch;
            self.delta[machine] = amount;
            self.dirty.push(machine);
        }
    }

    /// The candidate `(period, critical machine)` after applying the pending
    /// deltas, without mutating committed state. Uses the tournament tree
    /// (update + revert the touched leaves, `O(k·log m)`) when few machines
    /// changed, otherwise a linear scan — both tie-break to the lowest
    /// machine index.
    fn candidate_max(&mut self) -> Evaluation {
        let m = self.load.len();
        if 2 * self.dirty.len() * self.tree.height() < m {
            for k in 0..self.dirty.len() {
                let u = self.dirty[k];
                self.tree.update(u, self.load[u] + self.delta[u]);
            }
            let (period, machine) = self.tree.root();
            for k in 0..self.dirty.len() {
                let u = self.dirty[k];
                self.tree.update(u, self.load[u]);
            }
            Evaluation {
                period: Period::new(period),
                critical_machine: MachineId(machine),
            }
        } else {
            let mut best = (f64::NEG_INFINITY, usize::MAX);
            for u in 0..m {
                let value = if self.machine_stamp[u] == self.epoch {
                    self.load[u] + self.delta[u]
                } else {
                    self.load[u]
                };
                if value > best.0 {
                    best = (value, u);
                }
            }
            Evaluation {
                period: Period::new(best.0),
                critical_machine: MachineId(best.1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::Application;
    use crate::failure::{FailureModel, FailureRate};
    use crate::platform::Platform;

    fn instance() -> Instance {
        // 4-task chain, types 0 1 0 1, on 3 machines with distinct times and
        // failure rates so every move matters.
        let app = Application::linear_chain(&[0, 1, 0, 1]).unwrap();
        let platform = Platform::from_type_times(
            3,
            vec![vec![100.0, 200.0, 400.0], vec![300.0, 150.0, 250.0]],
        )
        .unwrap();
        let failures = FailureModel::from_matrix(
            vec![
                vec![0.1, 0.0, 0.2],
                vec![0.0, 0.3, 0.1],
                vec![0.05, 0.15, 0.0],
                vec![0.2, 0.0, 0.25],
            ],
            3,
        )
        .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    fn assert_matches_full(eval: &IncrementalEvaluator<'_>, instance: &Instance) {
        let mapping = eval.mapping();
        let full = instance.machine_periods(&mapping).unwrap();
        let scale = full.system_period().value().max(1.0);
        assert!(
            (eval.period().value() - full.system_period().value()).abs() <= 1e-9 * scale,
            "incremental {} vs full {}",
            eval.period().value(),
            full.system_period().value()
        );
        for (t, &x) in full.demands().as_slice().iter().enumerate() {
            assert_eq!(
                eval.demand_of(TaskId(t)),
                x,
                "demand of T{} must stay bit-identical",
                t + 1
            );
        }
        assert!(full
            .critical_machines(1e-9 * scale)
            .contains(&eval.critical_machine()));
    }

    #[test]
    fn initial_state_matches_full_evaluation() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 3).unwrap();
        let eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        assert_matches_full(&eval, &instance);
        assert_eq!(eval.mapping(), mapping);
    }

    #[test]
    fn moves_commit_and_match_full_recompute() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        for (task, to) in [(0usize, 2usize), (3, 2), (1, 0), (0, 1), (2, 2)] {
            let outcome = eval.apply_move(TaskId(task), MachineId(to)).unwrap();
            assert_eq!(eval.machine_of(TaskId(task)), MachineId(to));
            assert_eq!(outcome.period, eval.period());
            assert_matches_full(&eval, &instance);
        }
    }

    /// What-ifs on chains scale demands by a ratio while commits recompute
    /// them exactly, so the two agree to a few ulp, not bit-for-bit.
    fn assert_close(what_if: Evaluation, committed: Evaluation) {
        let scale = committed.period.value().max(1.0);
        assert!(
            (what_if.period.value() - committed.period.value()).abs() <= 1e-9 * scale,
            "what-if {what_if:?} vs committed {committed:?}"
        );
        assert_eq!(what_if.critical_machine, committed.critical_machine);
    }

    #[test]
    fn what_if_leaves_state_untouched_and_predicts_the_commit() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let before = eval.period();
        let what_if = eval.evaluate_move(TaskId(2), MachineId(1)).unwrap();
        assert_eq!(eval.period(), before);
        assert_eq!(eval.mapping(), mapping);
        let committed = eval.apply_move(TaskId(2), MachineId(1)).unwrap();
        assert_close(what_if, committed);
    }

    #[test]
    fn swaps_match_a_rebuilt_mapping() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        // T1 (M0) and T3 (M2): disjoint ancestor walk; then T1/T2: nested.
        for (a, b) in [(0usize, 2usize), (0, 1), (2, 3)] {
            let what_if = eval.evaluate_swap(TaskId(a), TaskId(b)).unwrap();
            let committed = eval.apply_swap(TaskId(a), TaskId(b)).unwrap();
            assert_close(what_if, committed);
            assert_matches_full(&eval, &instance);
        }
    }

    #[test]
    fn swapping_tasks_on_the_same_machine_is_a_no_op() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let before = eval.period();
        assert_eq!(
            eval.evaluate_swap(TaskId(0), TaskId(2)).unwrap().period,
            before
        );
        assert_eq!(
            eval.apply_swap(TaskId(1), TaskId(1)).unwrap().period,
            before
        );
        assert_eq!(eval.mapping(), mapping);
    }

    #[test]
    fn joins_propagate_to_every_branch() {
        // Figure 1 shape: T1→T2, T3 join into T4, then T5. Moving T5 scales
        // the demand of *all* upstream tasks across both branches.
        let app = Application::paper_figure1();
        let n = app.task_count();
        let platform = Platform::from_type_times(2, vec![vec![100.0, 150.0]; 3]).unwrap();
        let failures = FailureModel::uniform(n, 2, FailureRate::new(0.3).unwrap());
        let instance = Instance::new(app, platform, failures).unwrap();
        let mapping = Mapping::from_indices(&[0, 0, 1, 1, 0], 2).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        eval.apply_move(TaskId(4), MachineId(1)).unwrap();
        assert_matches_full(&eval, &instance);
        eval.apply_swap(TaskId(0), TaskId(3)).unwrap();
        assert_matches_full(&eval, &instance);
    }

    #[test]
    fn snapshot_resume_is_bit_identical_and_continues_exactly() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1], 3).unwrap();
        // Reference: one evaluator running uninterrupted.
        let mut reference = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        // Probe: same evaluator, but detached and resumed mid-stream.
        let mut probe = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let ops: [(usize, usize); 4] = [(0, 2), (3, 2), (1, 0), (2, 1)];
        for (k, &(task, to)) in ops.iter().enumerate() {
            reference.apply_move(TaskId(task), MachineId(to)).unwrap();
            probe.apply_move(TaskId(task), MachineId(to)).unwrap();
            if k % 2 == 0 {
                // Detach after every other commit, interleaving a what-if so
                // scratch state is non-trivial when the snapshot is taken.
                let _ = probe.evaluate_swap(TaskId(0), TaskId(3)).unwrap();
                let snapshot = probe.into_snapshot();
                assert_eq!(snapshot.task_count(), 4);
                assert_eq!(snapshot.machine_count(), 3);
                assert_eq!(snapshot.mapping(), reference.mapping());
                probe = IncrementalEvaluator::resume(&instance, snapshot).unwrap();
            }
            assert_eq!(
                probe.period().value().to_bits(),
                reference.period().value().to_bits()
            );
            assert_eq!(probe.critical_machine(), reference.critical_machine());
            for t in 0..4 {
                assert_eq!(
                    probe.demand_of(TaskId(t)).to_bits(),
                    reference.demand_of(TaskId(t)).to_bits()
                );
            }
            for u in 0..3 {
                assert_eq!(
                    probe.load_of(MachineId(u)).to_bits(),
                    reference.load_of(MachineId(u)).to_bits()
                );
            }
            assert_matches_full(&probe, &instance);
        }
    }

    #[test]
    fn snapshot_resume_rejects_mismatched_dimensions() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 3).unwrap();
        let snapshot = IncrementalEvaluator::new(&instance, &mapping)
            .unwrap()
            .into_snapshot();
        // A different shape: 3 tasks instead of 4.
        let app = Application::linear_chain(&[0, 1, 0]).unwrap();
        let platform = Platform::from_type_times(
            3,
            vec![vec![100.0, 200.0, 400.0], vec![300.0, 150.0, 250.0]],
        )
        .unwrap();
        let failures = FailureModel::uniform(3, 3, FailureRate::new(0.1).unwrap());
        let other = Instance::new(app, platform, failures).unwrap();
        assert!(matches!(
            IncrementalEvaluator::resume(&other, snapshot).unwrap_err(),
            ModelError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn out_of_range_tasks_and_machines_are_rejected() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        assert!(matches!(
            eval.evaluate_move(TaskId(9), MachineId(0)).unwrap_err(),
            ModelError::UnknownTask { task: 9, .. }
        ));
        assert!(matches!(
            eval.apply_move(TaskId(0), MachineId(7)).unwrap_err(),
            ModelError::UnknownMachine { machine: 7, .. }
        ));
        assert!(eval.evaluate_swap(TaskId(0), TaskId(9)).is_err());
    }

    #[test]
    fn tournament_tree_tracks_max_and_argmax() {
        let mut tree = TournamentTree::new(&[3.0, 9.0, 1.0, 9.0, 2.0]);
        assert_eq!(tree.root(), (9.0, 1));
        tree.update(1, 0.5);
        assert_eq!(tree.root(), (9.0, 3));
        tree.update(4, 20.0);
        assert_eq!(tree.root(), (20.0, 4));
        tree.update(4, 0.0);
        tree.update(3, 0.0);
        assert_eq!(tree.root(), (3.0, 0));
        // Exact tie: the lowest machine index wins.
        tree.update(2, 3.0);
        assert_eq!(tree.root(), (3.0, 0));
    }

    #[test]
    fn mapping_with_wrong_machine_count_is_rejected() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 5).unwrap();
        assert!(IncrementalEvaluator::new(&instance, &mapping).is_err());
    }

    #[test]
    fn staged_placements_match_a_scan_and_undo_exactly() {
        let mut staged = PartialAssignmentEvaluator::new(4);
        let mut load = [0.0f64; 4];
        let mut total = 0.0f64;
        let placements = [
            (2usize, 0.1),
            (0, 123.456),
            (2, 7.25),
            (1, 1e-3),
            (3, 99.9),
            (0, 0.333),
        ];
        for &(u, c) in &placements {
            staged.place(MachineId(u), c);
            load[u] += c;
            total += c;
            // Same float ops, so every intermediate agrees bit for bit.
            let scan_max = load.iter().copied().fold(0.0, f64::max);
            assert_eq!(staged.period().value().to_bits(), scan_max.to_bits());
            assert_eq!(staged.total_load().to_bits(), total.to_bits());
            assert_eq!(staged.load_of(MachineId(u)).to_bits(), load[u].to_bits());
        }
        assert_eq!(staged.depth(), placements.len());
        // Full unwind restores the identical (bit-level) state at each step.
        for &(u, c) in placements.iter().rev() {
            staged.unplace();
            load[u] -= c;
            total -= c;
            assert_eq!(staged.total_load().to_bits(), total.to_bits());
            assert_eq!(staged.load_of(MachineId(u)).to_bits(), load[u].to_bits());
        }
        assert_eq!(staged.depth(), 0);
    }

    #[test]
    fn staged_critical_machine_prefers_the_lowest_index_on_ties() {
        let mut staged = PartialAssignmentEvaluator::new(3);
        staged.place(MachineId(2), 5.0);
        assert_eq!(staged.critical_machine(), MachineId(2));
        staged.place(MachineId(0), 5.0);
        // Exact tie: lowest index wins, like the full evaluator's tree.
        assert_eq!(staged.critical_machine(), MachineId(0));
        assert_eq!(staged.period().value(), 5.0);
    }

    #[test]
    #[should_panic(expected = "unplace without a matching place")]
    fn unplacing_an_empty_trail_panics() {
        PartialAssignmentEvaluator::new(2).unplace();
    }
}
