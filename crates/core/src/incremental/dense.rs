//! The dense what-if fast path: per-subtree prefix-mass rows over the tour.
//!
//! Changing the failure factor of task `i` (by moving it to another machine)
//! scales the demand of every task in its strict subtree — the tasks
//! upstream of it — by the single ratio `F_new/F_old`. With the per-machine
//! **mass row** `Mᵢ(w)` (the committed load contribution of `i`'s strict
//! subtree on machine `w`), the candidate load of machine `w` is
//! `load(w) + (r − 1)·Mᵢ(w)` plus the moved task's own contribution
//! transfer: one row build amortized over the sweeps that reuse it, then one
//! `O(m)` machine scan per what-if, no per-task recompute.
//!
//! On a linear chain the tour is the identity, `Mᵢ` sums `tasks 0..i` in
//! index order, and this module performs the bit-identical float operations
//! of the pre-forest chain fast path. On a general in-forest the strict
//! subtree is a contiguous tour range (see [`Topology`]); the swap what-if
//! additionally distinguishes *nested* task pairs (one upstream of the
//! other — the only case a chain has) from *disjoint* ones (separate
//! branches or separate trees), whose ratios scale independent ranges.
//!
//! Rows are invalidated **per tour range**: a commit only evicts rows whose
//! strict subtree overlaps the committed influence span(s), so on join-heavy
//! forests a commit in one branch leaves every other branch's rows warm
//! (the `mass_row_builds` counter pins that in a regression test).

use super::topology::{Topology, TopologyKind};
use super::{Evaluation, IncrementalEvaluator};
use crate::ids::{MachineId, TaskId};
use crate::period::Period;

/// Lazily-built per-task mass rows with per-tour-range invalidation.
///
/// Row `i` holds, per machine, the committed contribution mass of task `i`'s
/// strict subtree. Storage (`tasks × machines` floats) is allocated on first
/// use; validity is tracked per row and revoked only for rows whose subtree
/// overlaps a committed span.
#[derive(Debug, Clone, Default)]
pub(super) struct MassRows {
    /// Row-major `tasks × machines` mass matrix (empty until first use).
    rows: Vec<f64>,
    /// Per-task validity of the cached row.
    valid: Vec<bool>,
    /// Tasks whose rows are currently valid (iteration set for
    /// invalidation sweeps; order is irrelevant).
    valid_list: Vec<u32>,
}

impl MassRows {
    /// Read access to the row storage, for ranges returned by
    /// [`IncrementalEvaluator::ensure_mass_row`].
    #[inline]
    pub(super) fn rows(&self) -> &[f64] {
        &self.rows
    }

    /// Invalidates every cached row whose strict subtree overlaps one of the
    /// committed inclusive `spans`, counting evictions into `invalidated`.
    pub(super) fn invalidate_overlapping(
        &mut self,
        topology: &Topology,
        spans: &[(usize, usize)],
        invalidated: &mut u64,
    ) {
        if self.rows.is_empty() {
            return;
        }
        let mut k = 0;
        while k < self.valid_list.len() {
            let i = self.valid_list[k] as usize;
            let (start, end) = topology.subtree_span(TaskId(i));
            // The row covers the *strict* subtree — the half-open tour range
            // `[start, end)` (empty for source tasks, whose rows are
            // all-zero and can never go stale).
            let stale = start < end && spans.iter().any(|&(s, e)| start <= e && s < end);
            if stale {
                self.valid[i] = false;
                self.valid_list.swap_remove(k);
                *invalidated += 1;
            } else {
                k += 1;
            }
        }
    }
}

impl<'a> IncrementalEvaluator<'a> {
    /// Ensures the mass row of task `i` is valid and returns its range
    /// within the row storage.
    pub(super) fn ensure_mass_row(&mut self, i: usize) -> std::ops::Range<usize> {
        let n = self.assignment.len();
        let m = self.load.len();
        if self.mass.rows.is_empty() {
            self.mass.rows = vec![0.0; n * m];
            self.mass.valid = vec![false; n];
        }
        let range = i * m..(i + 1) * m;
        if !self.mass.valid[i] {
            let row = &mut self.mass.rows[range.clone()];
            row.fill(0.0);
            match self.topology.kind() {
                // Chain: the strict subtree of `i` is `tasks 0..i` in index
                // order — the pre-forest prefix loop, bit for bit.
                TopologyKind::Chain => {
                    for (machine, c) in self.assignment[..i].iter().zip(&self.contribution[..i]) {
                        row[machine.index()] += *c;
                    }
                }
                // Forest: the strict subtree is a contiguous tour range.
                TopologyKind::Forest => {
                    for &t in self.topology.strict_subtree(TaskId(i)) {
                        let t = t as usize;
                        row[self.assignment[t].index()] += self.contribution[t];
                    }
                }
            }
            self.mass.valid[i] = true;
            self.mass.valid_list.push(i as u32);
            self.counters.mass_row_builds += 1;
        }
        range
    }

    /// Dense what-if of a move: changing the failure factor of `task` scales
    /// the demand of its whole strict subtree by the single ratio
    /// `F_new/F_old`, so the candidate load of machine `w` is
    /// `load(w) + (r − 1)·mass(w)` — with `mass(w)` the subtree contribution
    /// mass — plus the moved task's own contribution transfer. One row
    /// build amortized, one machine scan, no per-task recompute.
    ///
    /// Demands are *scaled*, not recomputed, so the answer can differ from a
    /// full recompute by a few ulp — comfortably within the 1e-9 differential
    /// bound, and irrelevant for committed state (commits always take the
    /// exact walk).
    pub(super) fn dense_move_what_if(&mut self, task: TaskId, to: MachineId) -> Evaluation {
        let i = task.index();
        let from = self.assignment[i].index();
        let ratio = self.instance.factor(task, to) / self.factor[i];
        let removed = self.contribution[i];
        let added = ratio * self.demand[i] * self.instance.time(task, to);
        let row = self.ensure_mass_row(i);
        let scale = ratio - 1.0;
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (w, (&load, &mass)) in self.load.iter().zip(&self.mass.rows[row]).enumerate() {
            let mut value = load + scale * mass;
            if w == from {
                value -= removed;
            }
            if w == to.index() {
                value += added;
            }
            if value > best.0 {
                best = (value, w);
            }
        }
        Evaluation {
            period: Period::new(best.0),
            critical_machine: MachineId(best.1),
        }
    }

    /// Dense what-if of a swap: nested pairs (one task upstream of the
    /// other) compose their ratios along the shared ancestry; disjoint pairs
    /// (distinct branches or trees — impossible on a chain) scale
    /// independent ranges.
    pub(super) fn dense_swap_what_if(&mut self, a: TaskId, b: TaskId) -> Evaluation {
        if self.topology.is_upstream(a, b) {
            self.dense_nested_swap_what_if(a, b)
        } else if self.topology.is_upstream(b, a) {
            self.dense_nested_swap_what_if(b, a)
        } else {
            self.dense_disjoint_swap_what_if(a, b)
        }
    }

    /// Nested swap: `lo` is strictly upstream of `hi`, so the downstream
    /// task's ratio scales everything upstream of it (including `lo`), and
    /// the upstream task's ratio additionally scales everything upstream of
    /// *it* — two mass rows, one scan. On a chain `lo` is simply the
    /// lower-indexed task and this is the pre-forest code path, bit for bit.
    fn dense_nested_swap_what_if(&mut self, lo: TaskId, hi: TaskId) -> Evaluation {
        let u_lo = self.assignment[lo.index()].index();
        let u_hi = self.assignment[hi.index()].index();
        // After the swap: `lo` runs on `u_hi`, `hi` runs on `u_lo`.
        let r_lo = self.instance.factor(lo, self.assignment[hi.index()]) / self.factor[lo.index()];
        let r_hi = self.instance.factor(hi, self.assignment[lo.index()]) / self.factor[hi.index()];
        let x_lo = r_lo * r_hi * self.demand[lo.index()];
        let x_hi = r_hi * self.demand[hi.index()];
        let scale_both = r_lo * r_hi - 1.0;
        let scale_hi = r_hi - 1.0;
        // Net adjustment of the two machines exchanging tasks. Tasks strictly
        // between `lo` and `hi` scale by `r_hi` and are counted through
        // `row_hi − row_lo`; that difference wrongly includes `lo` itself, so
        // `lo`'s machine compensates with `−scale_hi·c(lo)`.
        let adj_lo = x_hi * self.instance.time(hi, self.assignment[lo.index()])
            - self.contribution[lo.index()]
            - scale_hi * self.contribution[lo.index()];
        let adj_hi = x_lo * self.instance.time(lo, self.assignment[hi.index()])
            - self.contribution[hi.index()];
        let row_lo = self.ensure_mass_row(lo.index());
        let row_hi = self.ensure_mass_row(hi.index());
        // value = load + scale_both·mass(sub lo) + scale_hi·mass(lo..hi)
        //       = load + (scale_both − scale_hi)·row_lo + scale_hi·row_hi + …
        let scale_lo = scale_both - scale_hi;
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (w, (&load, (&mass_lo, &mass_hi))) in self
            .load
            .iter()
            .zip(self.mass.rows[row_lo].iter().zip(&self.mass.rows[row_hi]))
            .enumerate()
        {
            let mut value = load + scale_lo * mass_lo + scale_hi * mass_hi;
            if w == u_lo {
                value += adj_lo;
            }
            if w == u_hi {
                value += adj_hi;
            }
            if value > best.0 {
                best = (value, w);
            }
        }
        Evaluation {
            period: Period::new(best.0),
            critical_machine: MachineId(best.1),
        }
    }

    /// Disjoint swap: neither task is upstream of the other, so the two
    /// ratios scale disjoint subtree ranges independently and the machine
    /// adjustments exchange the two tasks' own contributions.
    fn dense_disjoint_swap_what_if(&mut self, a: TaskId, b: TaskId) -> Evaluation {
        let u_a = self.assignment[a.index()].index();
        let u_b = self.assignment[b.index()].index();
        // After the swap: `a` runs on `u_b`, `b` runs on `u_a`. The demand
        // of each task scales only by its *own* new factor (the other task
        // is not on its successor path).
        let r_a = self.instance.factor(a, self.assignment[b.index()]) / self.factor[a.index()];
        let r_b = self.instance.factor(b, self.assignment[a.index()]) / self.factor[b.index()];
        let x_a = r_a * self.demand[a.index()];
        let x_b = r_b * self.demand[b.index()];
        let scale_a = r_a - 1.0;
        let scale_b = r_b - 1.0;
        // `a` leaves `u_a` (taking its old contribution) and `b` arrives
        // with its rescaled demand on `a`'s old times — and vice versa.
        let adj_a =
            x_b * self.instance.time(b, self.assignment[a.index()]) - self.contribution[a.index()];
        let adj_b =
            x_a * self.instance.time(a, self.assignment[b.index()]) - self.contribution[b.index()];
        let row_a = self.ensure_mass_row(a.index());
        let row_b = self.ensure_mass_row(b.index());
        let mut best = (f64::NEG_INFINITY, usize::MAX);
        for (w, (&load, (&mass_a, &mass_b))) in self
            .load
            .iter()
            .zip(self.mass.rows[row_a].iter().zip(&self.mass.rows[row_b]))
            .enumerate()
        {
            let mut value = load + scale_a * mass_a + scale_b * mass_b;
            if w == u_a {
                value += adj_a;
            }
            if w == u_b {
                value += adj_b;
            }
            if value > best.0 {
                best = (value, w);
            }
        }
        Evaluation {
            period: Period::new(best.0),
            critical_machine: MachineId(best.1),
        }
    }
}
