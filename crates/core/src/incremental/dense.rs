//! The dense what-if fast path: per-subtree prefix-mass rows over the tour.
//!
//! Changing the failure factor of task `i` (by moving it to another machine)
//! scales the demand of every task in its strict subtree — the tasks
//! upstream of it — by the single ratio `F_new/F_old`. With the per-machine
//! **mass row** `Mᵢ(w)` (the committed load contribution of `i`'s strict
//! subtree on machine `w`), the candidate load of machine `w` is
//! `load(w) + (r − 1)·Mᵢ(w)` plus the moved task's own contribution
//! transfer: one row build amortized over the sweeps that reuse it, then one
//! `O(m)` machine scan per what-if, no per-task recompute.
//!
//! On a linear chain the tour is the identity, `Mᵢ` sums `tasks 0..i` in
//! index order, and this module performs the bit-identical float operations
//! of the pre-forest chain fast path. On a general in-forest the strict
//! subtree is a contiguous tour range (see [`Topology`]); the swap what-if
//! additionally distinguishes *nested* task pairs (one upstream of the
//! other — the only case a chain has) from *disjoint* ones (separate
//! branches or separate trees), whose ratios scale independent ranges.
//!
//! Rows are invalidated **per tour range**: a commit only evicts rows whose
//! strict subtree overlaps the committed influence span(s), so on join-heavy
//! forests a commit in one branch leaves every other branch's rows warm
//! (the `mass_row_builds` counter pins that in a regression test).

use super::topology::{Topology, TopologyKind};
use super::{Evaluation, IncrementalEvaluator};
use crate::ids::{MachineId, TaskId};
use crate::period::Period;

/// Lazily-built per-task mass rows with per-tour-range invalidation.
///
/// Row `i` holds, per machine, the committed contribution mass of task `i`'s
/// strict subtree. Storage (`tasks × machines` floats) is allocated on first
/// use; validity is tracked per row and revoked only for rows whose subtree
/// overlaps a committed span.
#[derive(Debug, Clone, Default)]
pub(super) struct MassRows {
    /// Row-major `tasks × machines` mass matrix (empty until first use).
    rows: Vec<f64>,
    /// Per-task validity of the cached row.
    valid: Vec<bool>,
    /// Tasks whose rows are currently valid (iteration set for
    /// invalidation sweeps; order is irrelevant).
    valid_list: Vec<u32>,
    /// Persistent all-zero scratch of one machine-indexed adjustment row.
    /// A what-if stages its (at most two) sparse machine adjustments here,
    /// runs the branch-free scan `load + scale·mass + adjust`, then zeroes
    /// the touched entries — keeping the hot loop free of per-machine
    /// branches so the autovectorizer can chew through it.
    adjust: Vec<f64>,
    /// Row-major `tasks × machines` failure-factor table
    /// `F_{i,u} = 1/(1 − f_{i,u})`, precomputed once: the factors are
    /// instance constants, and computing one on the fly costs a float
    /// division sitting right on the what-if critical path (the candidate
    /// ratio, the moved mass and the scan scale all chain off it).
    factors: Vec<f64>,
    /// Row-major `tasks × machines` processing-time table `w_{i,u}`,
    /// flattening the per-type indirection of [`Instance::time`] for the
    /// same reason. Both tables hold the bit-identical values the
    /// [`Instance`] accessors return.
    times: Vec<f64>,
}

impl MassRows {
    /// Read access to the row storage, for ranges returned by
    /// [`IncrementalEvaluator::ensure_mass_row`].
    #[inline]
    pub(super) fn rows(&self) -> &[f64] {
        &self.rows
    }

    /// Invalidates every cached row whose strict subtree overlaps one of the
    /// committed inclusive `spans`, counting evictions into `invalidated`.
    pub(super) fn invalidate_overlapping(
        &mut self,
        topology: &Topology,
        spans: &[(usize, usize)],
        invalidated: &mut u64,
    ) {
        if self.rows.is_empty() {
            return;
        }
        let mut k = 0;
        while k < self.valid_list.len() {
            let i = self.valid_list[k] as usize;
            let (start, end) = topology.subtree_span(TaskId(i));
            // The row covers the *strict* subtree — the half-open tour range
            // `[start, end)` (empty for source tasks, whose rows are
            // all-zero and can never go stale).
            let stale = start < end && spans.iter().any(|&(s, e)| start <= e && s < end);
            if stale {
                self.valid[i] = false;
                self.valid_list.swap_remove(k);
                *invalidated += 1;
            } else {
                k += 1;
            }
        }
    }
}

impl<'a> IncrementalEvaluator<'a> {
    /// Ensures the mass row of task `i` is valid and returns its range
    /// within the row storage. The hot path (tables allocated, row warm) is
    /// two predictable branches; allocation and row builds live in `#[cold]`
    /// helpers so this inlines small into the what-if scans.
    #[inline]
    pub(super) fn ensure_mass_row(&mut self, i: usize) -> std::ops::Range<usize> {
        if self.mass.rows.is_empty() {
            self.init_dense_tables();
        }
        let m = self.load.len();
        if !self.mass.valid[i] {
            self.build_mass_row(i);
        }
        i * m..(i + 1) * m
    }

    /// One-time allocation of the dense-path SoA tables: the mass-row
    /// matrix, the zero adjustment scratch, and the instance-constant
    /// factor/time tables (precomputed so the per-probe critical path pays
    /// a table load instead of a float division and a type indirection).
    #[cold]
    fn init_dense_tables(&mut self) {
        let n = self.assignment.len();
        let m = self.load.len();
        self.mass.rows = vec![0.0; n * m];
        self.mass.valid = vec![false; n];
        self.mass.adjust = vec![0.0; m];
        let mut factors = Vec::with_capacity(n * m);
        let mut times = Vec::with_capacity(n * m);
        for i in 0..n {
            for u in 0..m {
                factors.push(self.instance.factor(TaskId(i), MachineId(u)));
                times.push(self.instance.time(TaskId(i), MachineId(u)));
            }
        }
        self.mass.factors = factors;
        self.mass.times = times;
    }

    /// Rebuilds the (invalid) mass row of task `i` in place.
    #[cold]
    fn build_mass_row(&mut self, i: usize) {
        let m = self.load.len();
        let row = &mut self.mass.rows[i * m..(i + 1) * m];
        row.fill(0.0);
        match self.topology.kind() {
            // Chain: the strict subtree of `i` is `tasks 0..i` in index
            // order — the pre-forest prefix loop, bit for bit.
            TopologyKind::Chain => {
                for (machine, c) in self.assignment[..i].iter().zip(&self.contribution[..i]) {
                    row[machine.index()] += *c;
                }
            }
            // Forest: the strict subtree is a contiguous tour range.
            TopologyKind::Forest => {
                for &t in self.topology.strict_subtree(TaskId(i)) {
                    let t = t as usize;
                    row[self.assignment[t].index()] += self.contribution[t];
                }
            }
        }
        self.mass.valid[i] = true;
        self.mass.valid_list.push(i as u32);
        self.counters.mass_row_builds += 1;
    }

    /// Dense what-if of a move: changing the failure factor of `task` scales
    /// the demand of its whole strict subtree by the single ratio
    /// `F_new/F_old`, so the candidate load of machine `w` is
    /// `load(w) + (r − 1)·mass(w)` — with `mass(w)` the subtree contribution
    /// mass — plus the moved task's own contribution transfer. One row
    /// build amortized, one machine scan, no per-task recompute.
    ///
    /// Demands are *scaled*, not recomputed, so the answer can differ from a
    /// full recompute by a few ulp — comfortably within the 1e-9 differential
    /// bound, and irrelevant for committed state (commits always take the
    /// exact walk).
    pub(super) fn dense_move_what_if(&mut self, task: TaskId, to: MachineId) -> Evaluation {
        let i = task.index();
        let row = self.ensure_mass_row(i);
        let m = self.load.len();
        let from = self.assignment[i].index();
        let ratio = self.mass.factors[i * m + to.index()] / self.factor[i];
        let removed = self.contribution[i];
        let added = ratio * self.demand[i] * self.mass.times[i * m + to.index()];
        let scale = ratio - 1.0;
        // Stage the two sparse machine adjustments (`from` loses the task's
        // old contribution, `to` gains the rescaled one — the machines are
        // distinct, callers reject same-machine moves), scan branch-free,
        // then restore the all-zero scratch invariant.
        self.mass.adjust[from] = -removed;
        self.mass.adjust[to.index()] = added;
        let best = scan_one_row(&self.load, &self.mass.rows[row], scale, &self.mass.adjust);
        self.mass.adjust[from] = 0.0;
        self.mass.adjust[to.index()] = 0.0;
        Evaluation {
            period: Period::new(best.0),
            critical_machine: MachineId(best.1),
        }
    }

    /// Dense what-if of a swap: nested pairs (one task upstream of the
    /// other) compose their ratios along the shared ancestry; disjoint pairs
    /// (distinct branches or trees — impossible on a chain) scale
    /// independent ranges.
    pub(super) fn dense_swap_what_if(&mut self, a: TaskId, b: TaskId) -> Evaluation {
        if self.topology.is_upstream(a, b) {
            self.dense_nested_swap_what_if(a, b)
        } else if self.topology.is_upstream(b, a) {
            self.dense_nested_swap_what_if(b, a)
        } else {
            self.dense_disjoint_swap_what_if(a, b)
        }
    }

    /// Nested swap: `lo` is strictly upstream of `hi`, so the downstream
    /// task's ratio scales everything upstream of it (including `lo`), and
    /// the upstream task's ratio additionally scales everything upstream of
    /// *it* — two mass rows, one scan. On a chain `lo` is simply the
    /// lower-indexed task and this is the pre-forest code path, bit for bit.
    fn dense_nested_swap_what_if(&mut self, lo: TaskId, hi: TaskId) -> Evaluation {
        let row_lo = self.ensure_mass_row(lo.index());
        let row_hi = self.ensure_mass_row(hi.index());
        let m = self.load.len();
        let u_lo = self.assignment[lo.index()].index();
        let u_hi = self.assignment[hi.index()].index();
        // After the swap: `lo` runs on `u_hi`, `hi` runs on `u_lo`.
        let r_lo = self.mass.factors[lo.index() * m + u_hi] / self.factor[lo.index()];
        let r_hi = self.mass.factors[hi.index() * m + u_lo] / self.factor[hi.index()];
        let x_lo = r_lo * r_hi * self.demand[lo.index()];
        let x_hi = r_hi * self.demand[hi.index()];
        let scale_both = r_lo * r_hi - 1.0;
        let scale_hi = r_hi - 1.0;
        // Net adjustment of the two machines exchanging tasks. Tasks strictly
        // between `lo` and `hi` scale by `r_hi` and are counted through
        // `row_hi − row_lo`; that difference wrongly includes `lo` itself, so
        // `lo`'s machine compensates with `−scale_hi·c(lo)`.
        let adj_lo = x_hi * self.mass.times[hi.index() * m + u_lo]
            - self.contribution[lo.index()]
            - scale_hi * self.contribution[lo.index()];
        let adj_hi = x_lo * self.mass.times[lo.index() * m + u_hi] - self.contribution[hi.index()];
        // value = load + scale_both·mass(sub lo) + scale_hi·mass(lo..hi)
        //       = load + (scale_both − scale_hi)·row_lo + scale_hi·row_hi + …
        let scale_lo = scale_both - scale_hi;
        self.mass.adjust[u_lo] = adj_lo;
        self.mass.adjust[u_hi] = adj_hi;
        let best = scan_two_rows(
            &self.load,
            &self.mass.rows[row_lo],
            scale_lo,
            &self.mass.rows[row_hi],
            scale_hi,
            &self.mass.adjust,
        );
        self.mass.adjust[u_lo] = 0.0;
        self.mass.adjust[u_hi] = 0.0;
        Evaluation {
            period: Period::new(best.0),
            critical_machine: MachineId(best.1),
        }
    }

    /// Disjoint swap: neither task is upstream of the other, so the two
    /// ratios scale disjoint subtree ranges independently and the machine
    /// adjustments exchange the two tasks' own contributions.
    fn dense_disjoint_swap_what_if(&mut self, a: TaskId, b: TaskId) -> Evaluation {
        let row_a = self.ensure_mass_row(a.index());
        let row_b = self.ensure_mass_row(b.index());
        let m = self.load.len();
        let u_a = self.assignment[a.index()].index();
        let u_b = self.assignment[b.index()].index();
        // After the swap: `a` runs on `u_b`, `b` runs on `u_a`. The demand
        // of each task scales only by its *own* new factor (the other task
        // is not on its successor path).
        let r_a = self.mass.factors[a.index() * m + u_b] / self.factor[a.index()];
        let r_b = self.mass.factors[b.index() * m + u_a] / self.factor[b.index()];
        let x_a = r_a * self.demand[a.index()];
        let x_b = r_b * self.demand[b.index()];
        let scale_a = r_a - 1.0;
        let scale_b = r_b - 1.0;
        // `a` leaves `u_a` (taking its old contribution) and `b` arrives
        // with its rescaled demand on `a`'s old times — and vice versa.
        let adj_a = x_b * self.mass.times[b.index() * m + u_a] - self.contribution[a.index()];
        let adj_b = x_a * self.mass.times[a.index() * m + u_b] - self.contribution[b.index()];
        self.mass.adjust[u_a] = adj_a;
        self.mass.adjust[u_b] = adj_b;
        let best = scan_two_rows(
            &self.load,
            &self.mass.rows[row_a],
            scale_a,
            &self.mass.rows[row_b],
            scale_b,
            &self.mass.adjust,
        );
        self.mass.adjust[u_a] = 0.0;
        self.mass.adjust[u_b] = 0.0;
        Evaluation {
            period: Period::new(best.0),
            critical_machine: MachineId(best.1),
        }
    }
}

/// Max/argmax over one mass row: the candidate value of machine `w` is
/// `load[w] + scale·mass[w] + adjust[w]`.
///
/// One flat pass over three parallel slices. The value computation is
/// branch-free — the sparse from/to machine deltas ride the `adjust` row
/// instead of per-machine `w == from`/`w == to` compares — and the running
/// best keeps the first machine on exact ties: the same lowest-index
/// tie-break, and the same returned bits, as the historical tracking loop
/// (NaN values lose every comparison, so an all-NaN row yields the
/// `(−∞, usize::MAX)` sentinel).
#[inline]
fn scan_one_row(load: &[f64], mass: &[f64], scale: f64, adjust: &[f64]) -> (f64, usize) {
    let mut best = (f64::NEG_INFINITY, usize::MAX);
    for (w, ((&load, &mass), &adjust)) in load.iter().zip(mass).zip(adjust).enumerate() {
        let value = load + scale * mass + adjust;
        if value > best.0 {
            best = (value, w);
        }
    }
    best
}

/// Max/argmax over two mass rows (the swap scans):
/// `load[w] + scale_a·mass_a[w] + scale_b·mass_b[w] + adjust[w]`.
///
/// One pass: value computation is branch-free (the sparse machine
/// adjustments ride the `adjust` row instead of per-machine compares), and
/// the running best keeps the first machine on exact ties — the same
/// lowest-index tie-break, and the same returned bits, as the historical
/// `if value > best.0` tracking loop (NaN values lose every comparison, so
/// an all-NaN row yields the `(−∞, usize::MAX)` sentinel).
#[inline]
fn scan_two_rows(
    load: &[f64],
    mass_a: &[f64],
    scale_a: f64,
    mass_b: &[f64],
    scale_b: f64,
    adjust: &[f64],
) -> (f64, usize) {
    let mut best = (f64::NEG_INFINITY, usize::MAX);
    for (w, (((&load, &mass_a), &mass_b), &adjust)) in
        load.iter().zip(mass_a).zip(mass_b).zip(adjust).enumerate()
    {
        let value = load + scale_a * mass_a + scale_b * mass_b + adjust;
        if value > best.0 {
            best = (value, w);
        }
    }
    best
}
