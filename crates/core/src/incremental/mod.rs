//! Incremental re-evaluation of mapping *moves* and *swaps*.
//!
//! Every candidate evaluated through [`MachinePeriods::compute`] pays a full
//! `O(n + m)` recompute (two vector allocations, a demand walk over all `n`
//! tasks and a load walk over all machines). A local search explores
//! thousands of neighbors that each differ from the current mapping in one or
//! two tasks, and for such a change only the changed tasks and the tasks
//! *upstream* of them (their subtree in the application in-forest) can see
//! their demand `xᵢ` change — everything downstream is untouched.
//!
//! [`IncrementalEvaluator`] exploits this: it caches per-task demands,
//! factors and load contributions plus per-machine loads, and re-evaluates a
//! single-task move or a two-task swap in `O(affected tasks + k·log m)` where
//! `k` is the number of machines whose load actually changes. The system
//! period and the critical machine are maintained in a **tournament tree**
//! over the machine periods, so committed state answers both in `O(1)` and a
//! what-if evaluation updates/reverts only the touched leaves (falling back
//! to a linear scan when so many machines are touched that the scan is
//! cheaper).
//!
//! The module is layered:
//!
//! * [`topology`] — the [`Topology`] of the in-forest: an Euler tour in
//!   which every task's influence set (its strict subtree — the tasks whose
//!   demand scales when its failure factor changes) is a contiguous range;
//! * `dense` — the what-if fast path: per-subtree prefix-mass rows over the
//!   tour answer a what-if in one `O(m)` scan, for linear chains
//!   ([`TopologyKind::Chain`], the original, bit-identical path) and general
//!   in-forests ([`TopologyKind::Forest`]) alike; degenerate shapes (machine
//!   counts past the scan limit, row caches past the memory cap) fall back
//!   to the exact ancestor walk;
//! * the staged [`PartialAssignmentEvaluator`] for tree searches, and the
//!   instance-detached [`EvaluatorSnapshot`] that long-lived processes use
//!   to park committed state and [`resume`](IncrementalEvaluator::resume) it
//!   in `O(1)`.
//!
//! Demands are recomputed *exactly* along the affected subtree (not scaled by
//! a ratio) whenever an operation **commits**, so the cached demand vector
//! stays bit-identical to a from-scratch [`demands`](crate::demand::demands)
//! computation after any number of committed operations; machine loads are
//! maintained by deltas and agree with a full recompute to floating-point
//! accumulation order (≤ 1e-9 relative in practice — the bound the
//! differential test harness pins).
//!
//! [`MachinePeriods::compute`]: crate::period::MachinePeriods::compute

mod dense;
mod snapshot;
mod staged;
pub mod topology;
mod tournament;

pub use snapshot::EvaluatorSnapshot;
pub use staged::PartialAssignmentEvaluator;
pub use topology::{Topology, TopologyKind};

use dense::MassRows;
use tournament::TournamentTree;

use crate::error::{ModelError, Result};
use crate::ids::{MachineId, TaskId};
use crate::instance::Instance;
use crate::mapping::Mapping;
use crate::period::Period;

/// The outcome of evaluating or applying a move/swap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// The system period of the candidate (or, for `apply_*`, new) mapping.
    pub period: Period,
    /// The machine achieving that period (lowest index on exact ties).
    pub critical_machine: MachineId,
}

/// Monotone diagnostics counters of one evaluator (carried through
/// snapshots). Deltas between reads quantify fast-path coverage and cache
/// churn — the search sweep caches and the bench harness read them; they
/// never influence results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounters {
    /// What-ifs answered by the dense prefix-mass path.
    pub dense_what_ifs: u64,
    /// What-ifs answered by the exact ancestor walk.
    pub exact_what_ifs: u64,
    /// Committed moves/swaps (no-ops excluded).
    pub commits: u64,
    /// Mass rows (re)built by the dense path.
    pub mass_row_builds: u64,
    /// Mass rows evicted by per-range commit invalidation.
    pub mass_rows_invalidated: u64,
}

impl EvalCounters {
    /// The per-field delta `self - earlier`, saturating at zero.
    ///
    /// Counters are monotone, so for two reads of the *same* evaluator the
    /// delta is exact; saturation only matters if callers mix evaluators.
    /// This is how observability layers turn two snapshots into "what did
    /// this run cost" without assuming they started from zero.
    pub fn since(&self, earlier: &EvalCounters) -> EvalCounters {
        EvalCounters {
            dense_what_ifs: self.dense_what_ifs.saturating_sub(earlier.dense_what_ifs),
            exact_what_ifs: self.exact_what_ifs.saturating_sub(earlier.exact_what_ifs),
            commits: self.commits.saturating_sub(earlier.commits),
            mass_row_builds: self.mass_row_builds.saturating_sub(earlier.mass_row_builds),
            mass_rows_invalidated: self
                .mass_rows_invalidated
                .saturating_sub(earlier.mass_rows_invalidated),
        }
    }
}

/// What the last committed operation touched — the invalidation footprint
/// search sweep caches key on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitFootprint {
    /// Inclusive tour spans of the committed tasks' subtrees (the tasks
    /// whose demands, contributions or assignments changed). One entry per
    /// changed task; a nested swap's spans overlap, which is fine — an
    /// overlap test against both stays exact.
    pub spans: [Option<(usize, usize)>; 2],
    /// Demand-rescale ratio of each changed task, index-aligned with
    /// `spans`: the new over the old failure factor `F_{i,to} / F_{i,from}`.
    /// Every task *strictly upstream* of the changed task had its demand
    /// multiplied by exactly this ratio (in real arithmetic), which is what
    /// lets a sweep cache rescale a cached candidate score instead of
    /// invalidating it. Unused slots hold `1.0`.
    pub ratios: [f64; 2],
    /// The committed system period immediately *before* this commit — an
    /// upper bound on every machine load at that point, needed to bound the
    /// rescale transform when a ratio exceeds one.
    pub prior_period: f64,
    /// The most negative per-machine committed load change (`0.0` when no
    /// load decreased) — a lower bound on how far this commit can drop any
    /// machine's load, and therefore any cached candidate score.
    pub min_load_delta: f64,
}

/// Incremental evaluator for single-task moves and two-task swaps.
///
/// ```
/// use mf_core::prelude::*;
///
/// let app = Application::linear_chain(&[0, 1, 0]).unwrap();
/// let platform = Platform::from_type_times(2, vec![vec![100.0, 200.0], vec![300.0, 150.0]]).unwrap();
/// let failures = FailureModel::uniform(3, 2, FailureRate::new(0.1).unwrap());
/// let instance = Instance::new(app, platform, failures).unwrap();
/// let mapping = Mapping::from_indices(&[0, 1, 0], 2).unwrap();
///
/// let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
/// let before = eval.period();
/// // What-if: moving T1 to M1 — the evaluator state is untouched.
/// let what_if = eval.evaluate_move(TaskId(0), MachineId(1)).unwrap();
/// assert_eq!(eval.period(), before);
/// // Committing the move matches the what-if answer.
/// let committed = eval.apply_move(TaskId(0), MachineId(1)).unwrap();
/// assert_eq!(committed.period, what_if.period);
/// assert_eq!(instance.period(&eval.mapping()).unwrap(), committed.period);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalEvaluator<'a> {
    instance: &'a Instance,
    assignment: Vec<MachineId>,
    /// Start demand `xᵢ`, bit-identical to [`crate::demand::demands`] for the
    /// current assignment.
    demand: Vec<f64>,
    /// Cached failure factor `F_{i,a(i)}`.
    factor: Vec<f64>,
    /// Cached processing time `w_{i,a(i)}`.
    weight: Vec<f64>,
    /// Cached load contribution `xᵢ · w_{i,a(i)}`.
    contribution: Vec<f64>,
    /// Per-machine load (sum of contributions, maintained by deltas).
    load: Vec<f64>,
    tree: TournamentTree,
    // --- allocation-free scratch, reused across evaluations ---
    /// DFS stack of the ancestor walk.
    stack: Vec<TaskId>,
    /// Candidate demands of the affected tasks (valid when the stamp matches).
    overlay: Vec<f64>,
    task_stamp: Vec<u64>,
    /// Accumulated load delta per machine (valid when the stamp matches).
    delta: Vec<f64>,
    machine_stamp: Vec<u64>,
    /// Machines touched by the current operation.
    dirty: Vec<usize>,
    epoch: u64,
    /// The Euler-tour layout of the in-forest: every task's influence set is
    /// a contiguous tour range — what unlocks the dense what-if fast path
    /// beyond linear chains.
    topology: Topology,
    /// Lazily-built per-subtree mass rows for the dense path, invalidated
    /// per tour range on commit.
    mass: MassRows,
    /// Fallback row buffer for [`subtree_mass_row`](Self::subtree_mass_row)
    /// when the cache caps rule the dense storage out.
    scratch_row: Vec<f64>,
    counters: EvalCounters,
    last_commit: Option<CommitFootprint>,
}

/// Machine-count bound under which the dense what-if (prefix mass rows plus
/// one full machine scan) beats the sparse stamped walk with its
/// tournament-tree update/revert.
const DENSE_SCAN_LIMIT: usize = 512;

/// Cap on the `tasks × machines` size of the prefix-mass row cache (8 MiB of
/// `f64`s). Larger instances fall back to the generic walk.
const DENSE_CACHE_ENTRIES: usize = 1 << 20;

impl<'a> IncrementalEvaluator<'a> {
    /// Builds the evaluator from a complete mapping.
    ///
    /// The initial demands and loads are computed exactly as
    /// [`MachinePeriods::compute`](crate::period::MachinePeriods::compute)
    /// does (same operations in the same order), so the starting state is
    /// bit-identical to a full evaluation.
    pub fn new(instance: &'a Instance, mapping: &Mapping) -> Result<Self> {
        let x = instance.demands(mapping)?;
        if mapping.machine_count() != instance.machine_count() {
            return Err(ModelError::DimensionMismatch {
                context: "incremental evaluator machine count",
                expected: instance.machine_count(),
                actual: mapping.machine_count(),
            });
        }
        let n = instance.task_count();
        let m = instance.machine_count();
        let assignment: Vec<MachineId> = mapping.as_slice().to_vec();
        let mut factor = vec![0.0f64; n];
        let mut weight = vec![0.0f64; n];
        let mut contribution = vec![0.0f64; n];
        let mut load = vec![0.0f64; m];
        for task in instance.application().tasks() {
            let i = task.id.index();
            let machine = assignment[i];
            factor[i] = instance.factor(task.id, machine);
            weight[i] = instance.time(task.id, machine);
            contribution[i] = x.get(task.id) * weight[i];
            load[machine.index()] += contribution[i];
        }
        let tree = TournamentTree::new(&load);
        let topology = Topology::of(instance.application());
        Ok(IncrementalEvaluator {
            instance,
            assignment,
            demand: x.as_slice().to_vec(),
            factor,
            weight,
            contribution,
            load,
            tree,
            stack: Vec::with_capacity(n),
            overlay: vec![0.0; n],
            task_stamp: vec![0; n],
            delta: vec![0.0; m],
            machine_stamp: vec![0; m],
            dirty: Vec::with_capacity(m),
            epoch: 0,
            topology,
            mass: MassRows::default(),
            scratch_row: Vec::new(),
            counters: EvalCounters::default(),
            last_commit: None,
        })
    }

    /// Detaches the evaluator's committed state from the instance borrow.
    ///
    /// See [`EvaluatorSnapshot`]; [`IncrementalEvaluator::resume`] is the
    /// inverse.
    pub fn into_snapshot(self) -> EvaluatorSnapshot {
        EvaluatorSnapshot {
            assignment: self.assignment,
            demand: self.demand,
            factor: self.factor,
            weight: self.weight,
            contribution: self.contribution,
            load: self.load,
            tree: self.tree,
            stack: self.stack,
            overlay: self.overlay,
            task_stamp: self.task_stamp,
            delta: self.delta,
            machine_stamp: self.machine_stamp,
            dirty: self.dirty,
            epoch: self.epoch,
            topology: self.topology,
            mass: self.mass,
            scratch_row: self.scratch_row,
            counters: self.counters,
            last_commit: self.last_commit,
        }
    }

    /// Re-attaches a snapshot to the instance it was taken from, in `O(1)`:
    /// no demand walk, no load rebuild, no tour rebuild (the topology rides
    /// in the snapshot).
    ///
    /// The resumed evaluator is bit-identical to the evaluator
    /// [`IncrementalEvaluator::into_snapshot`] consumed. Returns a
    /// [`ModelError::DimensionMismatch`] when the instance's task or machine
    /// count disagrees with the snapshot — the cheap guard against pairing a
    /// snapshot with the wrong instance (same-shape instances cannot be told
    /// apart; the caller owns that pairing).
    pub fn resume(instance: &'a Instance, snapshot: EvaluatorSnapshot) -> Result<Self> {
        if snapshot.task_count() != instance.task_count() {
            return Err(ModelError::DimensionMismatch {
                context: "resumed evaluator task count",
                expected: instance.task_count(),
                actual: snapshot.task_count(),
            });
        }
        if snapshot.machine_count() != instance.machine_count() {
            return Err(ModelError::DimensionMismatch {
                context: "resumed evaluator machine count",
                expected: instance.machine_count(),
                actual: snapshot.machine_count(),
            });
        }
        Ok(IncrementalEvaluator {
            instance,
            assignment: snapshot.assignment,
            demand: snapshot.demand,
            factor: snapshot.factor,
            weight: snapshot.weight,
            contribution: snapshot.contribution,
            load: snapshot.load,
            tree: snapshot.tree,
            stack: snapshot.stack,
            overlay: snapshot.overlay,
            task_stamp: snapshot.task_stamp,
            delta: snapshot.delta,
            machine_stamp: snapshot.machine_stamp,
            dirty: snapshot.dirty,
            epoch: snapshot.epoch,
            topology: snapshot.topology,
            mass: snapshot.mass,
            scratch_row: snapshot.scratch_row,
            counters: snapshot.counters,
            last_commit: snapshot.last_commit,
        })
    }

    /// `true` when what-ifs are answered by the dense prefix-mass fast path
    /// (linear chains *and* general in-forests). `false` only for the
    /// degenerate shapes — machine counts past the scan limit or row caches
    /// past the memory cap — which take the exact ancestor walk instead.
    #[inline]
    pub fn is_dense_fast_path(&self) -> bool {
        self.load.len() <= DENSE_SCAN_LIMIT
            && self.assignment.len().saturating_mul(self.load.len()) <= DENSE_CACHE_ENTRIES
    }

    /// The instance being evaluated.
    #[inline]
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }

    /// The Euler-tour topology of the instance's in-forest.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The diagnostics counters (monotone; see [`EvalCounters`]).
    #[inline]
    pub fn counters(&self) -> EvalCounters {
        self.counters
    }

    /// The invalidation footprint of the most recent committed operation
    /// (`None` before the first commit). No-op applies (moving a task to its
    /// current machine, swapping within one machine) do not commit and leave
    /// the footprint untouched — pair reads with
    /// [`counters`](Self::counters)`().commits` to detect fresh commits.
    #[inline]
    pub fn last_commit(&self) -> Option<&CommitFootprint> {
        self.last_commit.as_ref()
    }

    /// The per-machine committed contribution mass of `task`'s strict
    /// subtree (the tasks strictly upstream of it) — the row the dense
    /// what-if path scales. Served from the row cache when the dense caps
    /// allow, recomputed into a scratch buffer otherwise, so staged searches
    /// ([`PartialAssignmentEvaluator::place_row`]) can reuse tour masses on
    /// any instance shape.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn subtree_mass_row(&mut self, task: TaskId) -> &[f64] {
        if self.is_dense_fast_path() {
            let range = self.ensure_mass_row(task.index());
            return &self.mass.rows()[range];
        }
        let m = self.load.len();
        self.scratch_row.resize(m, 0.0);
        self.scratch_row.fill(0.0);
        for &t in self.topology.strict_subtree(task) {
            let t = t as usize;
            self.scratch_row[self.assignment[t].index()] += self.contribution[t];
        }
        &self.scratch_row
    }

    /// The machine currently executing a task.
    #[inline]
    pub fn machine_of(&self, task: TaskId) -> MachineId {
        self.assignment[task.index()]
    }

    /// The cached start demand `xᵢ` of a task.
    #[inline]
    pub fn demand_of(&self, task: TaskId) -> f64 {
        self.demand[task.index()]
    }

    /// The cached load of a machine.
    #[inline]
    pub fn load_of(&self, machine: MachineId) -> f64 {
        self.load[machine.index()]
    }

    /// All machine loads, indexed by machine.
    #[inline]
    pub fn loads(&self) -> &[f64] {
        &self.load
    }

    /// The current system period (the tournament-tree root, `O(1)`).
    #[inline]
    pub fn period(&self) -> Period {
        Period::new(self.tree.root().0)
    }

    /// The current critical machine (lowest index on exact ties, `O(1)`).
    #[inline]
    pub fn critical_machine(&self) -> MachineId {
        MachineId(self.tree.root().1)
    }

    /// Materialises the current assignment as a [`Mapping`].
    pub fn mapping(&self) -> Mapping {
        Mapping::new(self.assignment.clone(), self.load.len())
            .expect("the evaluator only ever stores in-range machines")
    }

    /// What-if evaluation of moving `task` to machine `to`. The evaluator
    /// state is left untouched.
    pub fn evaluate_move(&mut self, task: TaskId, to: MachineId) -> Result<Evaluation> {
        self.check(task, to)?;
        if self.assignment[task.index()] == to {
            return Ok(self.current());
        }
        if self.is_dense_fast_path() {
            self.counters.dense_what_ifs += 1;
            return Ok(self.dense_move_what_if(task, to));
        }
        self.counters.exact_what_ifs += 1;
        Ok(self.operate(&[(task, to)], false))
    }

    /// What-if evaluation of exchanging the machines of tasks `a` and `b`.
    /// The evaluator state is left untouched.
    pub fn evaluate_swap(&mut self, a: TaskId, b: TaskId) -> Result<Evaluation> {
        let Some((to_a, to_b)) = self.swap_machines(a, b)? else {
            return Ok(self.current());
        };
        if self.is_dense_fast_path() {
            self.counters.dense_what_ifs += 1;
            return Ok(self.dense_swap_what_if(a, b));
        }
        self.counters.exact_what_ifs += 1;
        Ok(self.operate(&[(a, to_a), (b, to_b)], false))
    }

    /// Commits a move: `task` now runs on `to`. Returns the new period and
    /// critical machine.
    pub fn apply_move(&mut self, task: TaskId, to: MachineId) -> Result<Evaluation> {
        self.check(task, to)?;
        if self.assignment[task.index()] == to {
            return Ok(self.current());
        }
        Ok(self.operate(&[(task, to)], true))
    }

    /// Commits a swap of the machines of tasks `a` and `b`.
    pub fn apply_swap(&mut self, a: TaskId, b: TaskId) -> Result<Evaluation> {
        let machines = self.swap_machines(a, b)?;
        let Some((to_a, to_b)) = machines else {
            return Ok(self.current());
        };
        Ok(self.operate(&[(a, to_a), (b, to_b)], true))
    }

    /// The current `(period, critical machine)` pair.
    #[inline]
    fn current(&self) -> Evaluation {
        let (period, machine) = self.tree.root();
        Evaluation {
            period: Period::new(period),
            critical_machine: MachineId(machine),
        }
    }

    fn check(&self, task: TaskId, machine: MachineId) -> Result<()> {
        if task.index() >= self.assignment.len() {
            return Err(ModelError::UnknownTask {
                task: task.index(),
                task_count: self.assignment.len(),
            });
        }
        if machine.index() >= self.load.len() {
            return Err(ModelError::UnknownMachine {
                machine: machine.index(),
                machine_count: self.load.len(),
            });
        }
        Ok(())
    }

    /// Validates a swap and returns the target machines `(a → m_b, b → m_a)`,
    /// or `None` when the swap is a no-op.
    fn swap_machines(&self, a: TaskId, b: TaskId) -> Result<Option<(MachineId, MachineId)>> {
        let ma = if a.index() < self.assignment.len() {
            self.assignment[a.index()]
        } else {
            return Err(ModelError::UnknownTask {
                task: a.index(),
                task_count: self.assignment.len(),
            });
        };
        let mb = if b.index() < self.assignment.len() {
            self.assignment[b.index()]
        } else {
            return Err(ModelError::UnknownTask {
                task: b.index(),
                task_count: self.assignment.len(),
            });
        };
        if a == b || ma == mb {
            return Ok(None);
        }
        Ok(Some((mb, ma)))
    }

    /// Evaluates (and, when `commit`, applies) a batch of one or two task
    /// reassignments. `changes` must target distinct tasks.
    fn operate(&mut self, changes: &[(TaskId, MachineId)], commit: bool) -> Evaluation {
        self.epoch = self.epoch.wrapping_add(1);
        self.dirty.clear();
        // Capture the demand-rescale ratios and the pre-commit period for the
        // footprint *before* `walk` overwrites the cached factors (and before
        // the tournament tree absorbs the new loads).
        let mut ratios = [1.0f64; 2];
        let mut prior_period = 0.0f64;
        if commit {
            for (k, &(task, to)) in changes.iter().enumerate() {
                ratios[k] = self.instance.factor(task, to) / self.factor[task.index()];
            }
            prior_period = self.tree.root().0;
        }
        match *changes {
            [(root, _)] => self.walk(root, changes, commit),
            [(a, _), (b, _)] => {
                // The ancestor sets of two tasks in an in-forest are either
                // nested (one task is upstream of the other) or disjoint: a
                // shared ancestor's unique successor chain would have to pass
                // through both tasks. Walk from the dominating root(s); the
                // tour spans answer nesting in O(1).
                if self.topology.is_upstream(a, b) {
                    self.walk(b, changes, commit);
                } else if self.topology.is_upstream(b, a) {
                    self.walk(a, changes, commit);
                } else {
                    self.walk(a, changes, commit);
                    self.walk(b, changes, commit);
                }
            }
            _ => unreachable!("moves touch one task, swaps touch two"),
        }
        if commit {
            let mut min_delta = 0.0f64;
            for k in 0..self.dirty.len() {
                let u = self.dirty[k];
                if self.delta[u] < min_delta {
                    min_delta = self.delta[u];
                }
                self.load[u] += self.delta[u];
                self.tree.update(u, self.load[u]);
            }
            // Committed contributions changed exactly for the subtrees of
            // the changed tasks: evict the mass rows overlapping those tour
            // spans, leaving every other branch's rows warm.
            let mut spans = [None, None];
            let mut flat = [(0usize, 0usize); 2];
            let mut count = 0usize;
            for (k, &(task, _)) in changes.iter().enumerate() {
                let span = self.topology.subtree_span(task);
                spans[k] = Some(span);
                flat[count] = span;
                count += 1;
            }
            self.mass.invalidate_overlapping(
                &self.topology,
                &flat[..count],
                &mut self.counters.mass_rows_invalidated,
            );
            self.counters.commits += 1;
            self.last_commit = Some(CommitFootprint {
                spans,
                ratios,
                prior_period,
                min_load_delta: min_delta,
            });
            self.current()
        } else {
            self.candidate_max()
        }
    }

    /// Recomputes the demand of `root` and every task upstream of it under
    /// the effective (task → machine) overrides in `changes`, accumulating
    /// per-machine load deltas. Demands are recomputed exactly (factor times
    /// downstream demand), never scaled, so committed state cannot drift.
    fn walk(&mut self, root: TaskId, changes: &[(TaskId, MachineId)], commit: bool) {
        debug_assert!(self.stack.is_empty());
        self.stack.push(root);
        while let Some(task) = self.stack.pop() {
            let i = task.index();
            let app = self.instance.application();
            let moved = changes
                .iter()
                .find(|&&(t, _)| t == task)
                .map(|&(_, machine)| machine);
            let (machine, factor, weight) = match moved {
                Some(to) => (
                    to,
                    self.instance.factor(task, to),
                    self.instance.time(task, to),
                ),
                None => (self.assignment[i], self.factor[i], self.weight[i]),
            };
            let downstream = match app.successor(task) {
                None => 1.0,
                Some(succ) if self.task_stamp[succ.index()] == self.epoch => {
                    self.overlay[succ.index()]
                }
                Some(succ) => self.demand[succ.index()],
            };
            let x = factor * downstream;
            self.overlay[i] = x;
            self.task_stamp[i] = self.epoch;
            let contribution = x * weight;
            let previous = self.assignment[i];
            if machine == previous {
                self.touch(machine.index(), contribution - self.contribution[i]);
            } else {
                self.touch(previous.index(), -self.contribution[i]);
                self.touch(machine.index(), contribution);
            }
            if commit {
                self.demand[i] = x;
                self.contribution[i] = contribution;
                if moved.is_some() {
                    self.assignment[i] = machine;
                    self.factor[i] = factor;
                    self.weight[i] = weight;
                }
            }
            self.stack.extend_from_slice(app.predecessors(task));
        }
    }

    /// Accumulates a load delta on a machine, registering it as dirty on
    /// first touch of the current epoch.
    #[inline]
    fn touch(&mut self, machine: usize, amount: f64) {
        if self.machine_stamp[machine] == self.epoch {
            self.delta[machine] += amount;
        } else {
            self.machine_stamp[machine] = self.epoch;
            self.delta[machine] = amount;
            self.dirty.push(machine);
        }
    }

    /// The candidate `(period, critical machine)` after applying the pending
    /// deltas, without mutating committed state. Uses the tournament tree
    /// (update + revert the touched leaves, `O(k·log m)`) when few machines
    /// changed, otherwise a linear scan — both tie-break to the lowest
    /// machine index.
    fn candidate_max(&mut self) -> Evaluation {
        let m = self.load.len();
        if 2 * self.dirty.len() * self.tree.height() < m {
            for k in 0..self.dirty.len() {
                let u = self.dirty[k];
                self.tree.update(u, self.load[u] + self.delta[u]);
            }
            let (period, machine) = self.tree.root();
            for k in 0..self.dirty.len() {
                let u = self.dirty[k];
                self.tree.update(u, self.load[u]);
            }
            Evaluation {
                period: Period::new(period),
                critical_machine: MachineId(machine),
            }
        } else {
            let mut best = (f64::NEG_INFINITY, usize::MAX);
            for u in 0..m {
                let value = if self.machine_stamp[u] == self.epoch {
                    self.load[u] + self.delta[u]
                } else {
                    self.load[u]
                };
                if value > best.0 {
                    best = (value, u);
                }
            }
            Evaluation {
                period: Period::new(best.0),
                critical_machine: MachineId(best.1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::Application;
    use crate::failure::{FailureModel, FailureRate};
    use crate::platform::Platform;

    fn instance() -> Instance {
        // 4-task chain, types 0 1 0 1, on 3 machines with distinct times and
        // failure rates so every move matters.
        let app = Application::linear_chain(&[0, 1, 0, 1]).unwrap();
        let platform = Platform::from_type_times(
            3,
            vec![vec![100.0, 200.0, 400.0], vec![300.0, 150.0, 250.0]],
        )
        .unwrap();
        let failures = FailureModel::from_matrix(
            vec![
                vec![0.1, 0.0, 0.2],
                vec![0.0, 0.3, 0.1],
                vec![0.05, 0.15, 0.0],
                vec![0.2, 0.0, 0.25],
            ],
            3,
        )
        .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    /// A two-branch in-tree: 0 → 1 → 4 and 2 → 3 → 4, then 4 → 5 — enough
    /// structure for nested *and* disjoint task pairs.
    fn forest_instance() -> Instance {
        let app = Application::from_successors(
            &[0, 1, 0, 1, 0, 1],
            &[Some(1), Some(4), Some(3), Some(4), Some(5), None],
        )
        .unwrap();
        let platform = Platform::from_type_times(
            3,
            vec![vec![100.0, 200.0, 400.0], vec![300.0, 150.0, 250.0]],
        )
        .unwrap();
        let failures = FailureModel::from_matrix(
            vec![
                vec![0.1, 0.0, 0.2],
                vec![0.0, 0.3, 0.1],
                vec![0.05, 0.15, 0.0],
                vec![0.2, 0.0, 0.25],
                vec![0.12, 0.07, 0.0],
                vec![0.0, 0.22, 0.09],
            ],
            3,
        )
        .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    fn assert_matches_full(eval: &IncrementalEvaluator<'_>, instance: &Instance) {
        let mapping = eval.mapping();
        let full = instance.machine_periods(&mapping).unwrap();
        let scale = full.system_period().value().max(1.0);
        assert!(
            (eval.period().value() - full.system_period().value()).abs() <= 1e-9 * scale,
            "incremental {} vs full {}",
            eval.period().value(),
            full.system_period().value()
        );
        for (t, &x) in full.demands().as_slice().iter().enumerate() {
            assert_eq!(
                eval.demand_of(TaskId(t)),
                x,
                "demand of T{} must stay bit-identical",
                t + 1
            );
        }
        assert!(full
            .critical_machines(1e-9 * scale)
            .contains(&eval.critical_machine()));
    }

    #[test]
    fn initial_state_matches_full_evaluation() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 3).unwrap();
        let eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        assert_matches_full(&eval, &instance);
        assert_eq!(eval.mapping(), mapping);
    }

    #[test]
    fn moves_commit_and_match_full_recompute() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        for (task, to) in [(0usize, 2usize), (3, 2), (1, 0), (0, 1), (2, 2)] {
            let outcome = eval.apply_move(TaskId(task), MachineId(to)).unwrap();
            assert_eq!(eval.machine_of(TaskId(task)), MachineId(to));
            assert_eq!(outcome.period, eval.period());
            assert_matches_full(&eval, &instance);
        }
    }

    /// Dense what-ifs scale demands by a ratio while commits recompute them
    /// exactly, so the two agree to a few ulp, not bit-for-bit.
    fn assert_close(what_if: Evaluation, committed: Evaluation) {
        let scale = committed.period.value().max(1.0);
        assert!(
            (what_if.period.value() - committed.period.value()).abs() <= 1e-9 * scale,
            "what-if {what_if:?} vs committed {committed:?}"
        );
        assert_eq!(what_if.critical_machine, committed.critical_machine);
    }

    #[test]
    fn what_if_leaves_state_untouched_and_predicts_the_commit() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let before = eval.period();
        let what_if = eval.evaluate_move(TaskId(2), MachineId(1)).unwrap();
        assert_eq!(eval.period(), before);
        assert_eq!(eval.mapping(), mapping);
        let committed = eval.apply_move(TaskId(2), MachineId(1)).unwrap();
        assert_close(what_if, committed);
    }

    #[test]
    fn swaps_match_a_rebuilt_mapping() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        // T1 (M0) and T3 (M2): disjoint ancestor walk; then T1/T2: nested.
        for (a, b) in [(0usize, 2usize), (0, 1), (2, 3)] {
            let what_if = eval.evaluate_swap(TaskId(a), TaskId(b)).unwrap();
            let committed = eval.apply_swap(TaskId(a), TaskId(b)).unwrap();
            assert_close(what_if, committed);
            assert_matches_full(&eval, &instance);
        }
    }

    #[test]
    fn swapping_tasks_on_the_same_machine_is_a_no_op() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let before = eval.period();
        assert_eq!(
            eval.evaluate_swap(TaskId(0), TaskId(2)).unwrap().period,
            before
        );
        assert_eq!(
            eval.apply_swap(TaskId(1), TaskId(1)).unwrap().period,
            before
        );
        assert_eq!(eval.mapping(), mapping);
    }

    #[test]
    fn joins_propagate_to_every_branch() {
        // Figure 1 shape: T1→T2, T3 join into T4, then T5. Moving T5 scales
        // the demand of *all* upstream tasks across both branches.
        let app = Application::paper_figure1();
        let n = app.task_count();
        let platform = Platform::from_type_times(2, vec![vec![100.0, 150.0]; 3]).unwrap();
        let failures = FailureModel::uniform(n, 2, FailureRate::new(0.3).unwrap());
        let instance = Instance::new(app, platform, failures).unwrap();
        let mapping = Mapping::from_indices(&[0, 0, 1, 1, 0], 2).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        eval.apply_move(TaskId(4), MachineId(1)).unwrap();
        assert_matches_full(&eval, &instance);
        eval.apply_swap(TaskId(0), TaskId(3)).unwrap();
        assert_matches_full(&eval, &instance);
    }

    #[test]
    fn forest_instances_take_the_dense_fast_path() {
        let instance = forest_instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1, 0, 2], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        assert!(eval.is_dense_fast_path());
        assert_eq!(eval.topology().kind(), TopologyKind::Forest);
        // Moves on every task, verified against the full recompute of the
        // candidate mapping.
        for t in 0..6 {
            for u in 0..3 {
                let what_if = eval.evaluate_move(TaskId(t), MachineId(u)).unwrap();
                let mut indices: Vec<usize> = eval
                    .mapping()
                    .as_slice()
                    .iter()
                    .map(|w| w.index())
                    .collect();
                indices[t] = u;
                let candidate = Mapping::from_indices(&indices, 3).unwrap();
                let full = instance.machine_periods(&candidate).unwrap();
                let scale = full.system_period().value().max(1.0);
                assert!(
                    (what_if.period.value() - full.system_period().value()).abs() <= 1e-9 * scale,
                    "move T{t} -> M{u}: dense {} vs full {}",
                    what_if.period.value(),
                    full.system_period().value()
                );
            }
        }
        assert!(eval.counters().dense_what_ifs > 0);
        assert_eq!(eval.counters().exact_what_ifs, 0);
    }

    #[test]
    fn forest_swaps_cover_nested_and_disjoint_pairs() {
        let instance = forest_instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1, 0, 2], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        // (0,1): nested same branch; (0,3): disjoint branches; (1,2):
        // disjoint branches; (0,5): nested through the sink; (2,4): nested.
        for (a, b) in [(0usize, 1usize), (0, 3), (1, 2), (0, 5), (2, 4), (3, 5)] {
            let what_if = eval.evaluate_swap(TaskId(a), TaskId(b)).unwrap();
            let mut indices: Vec<usize> = eval
                .mapping()
                .as_slice()
                .iter()
                .map(|w| w.index())
                .collect();
            indices.swap(a, b);
            let candidate = Mapping::from_indices(&indices, 3).unwrap();
            let full = instance.machine_periods(&candidate).unwrap();
            let scale = full.system_period().value().max(1.0);
            assert!(
                (what_if.period.value() - full.system_period().value()).abs() <= 1e-9 * scale,
                "swap T{a}/T{b}: dense {} vs full {}",
                what_if.period.value(),
                full.system_period().value()
            );
            // Commit the swap so later pairs see fresh state, and check the
            // committed state stays exact.
            eval.apply_swap(TaskId(a), TaskId(b)).unwrap();
            assert_matches_full(&eval, &instance);
        }
    }

    #[test]
    fn commits_in_one_branch_keep_the_other_branch_rows_warm() {
        let instance = forest_instance();
        // Branch A = {0, 1}, branch B = {2, 3}; 4, 5 downstream of both.
        let mapping = Mapping::from_indices(&[0, 1, 2, 1, 0, 2], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        // Build T2's row (strict subtree {0}, branch A).
        let _ = eval.evaluate_move(TaskId(1), MachineId(2)).unwrap();
        let builds_before = eval.counters().mass_row_builds;
        assert!(builds_before > 0);
        // Commit inside branch B: subtree(3) = {2, 3} does not overlap
        // branch A, so T2's row must stay valid...
        eval.apply_move(TaskId(3), MachineId(0)).unwrap();
        let _ = eval.evaluate_move(TaskId(1), MachineId(2)).unwrap();
        assert_eq!(
            eval.counters().mass_row_builds,
            builds_before,
            "a commit on a disjoint branch must not evict branch A's rows"
        );
        // ...and the warm row still answers correctly.
        let what_if = eval.evaluate_move(TaskId(1), MachineId(2)).unwrap();
        let mut indices: Vec<usize> = eval
            .mapping()
            .as_slice()
            .iter()
            .map(|w| w.index())
            .collect();
        indices[1] = 2;
        let candidate = Mapping::from_indices(&indices, 3).unwrap();
        let full = instance.machine_periods(&candidate).unwrap();
        let scale = full.system_period().value().max(1.0);
        assert!((what_if.period.value() - full.system_period().value()).abs() <= 1e-9 * scale);
        // A commit *inside* branch A does evict the row.
        eval.apply_move(TaskId(0), MachineId(1)).unwrap();
        assert!(eval.counters().mass_rows_invalidated > 0);
        let _ = eval.evaluate_move(TaskId(1), MachineId(0)).unwrap();
        assert!(
            eval.counters().mass_row_builds > builds_before,
            "a commit inside the branch must rebuild its rows"
        );
    }

    #[test]
    fn commit_footprints_report_spans_and_load_drops() {
        let instance = forest_instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1, 0, 2], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        assert!(eval.last_commit().is_none());
        eval.apply_move(TaskId(3), MachineId(0)).unwrap();
        let footprint = *eval.last_commit().unwrap();
        assert_eq!(
            footprint.spans[0],
            Some(eval.topology().subtree_span(TaskId(3)))
        );
        assert_eq!(footprint.spans[1], None);
        // The move drained T4's old machine: some load went down.
        assert!(footprint.min_load_delta < 0.0);
        assert_eq!(eval.counters().commits, 1);
        // A no-op apply neither commits nor clobbers the footprint.
        eval.apply_move(TaskId(3), MachineId(0)).unwrap();
        assert_eq!(eval.counters().commits, 1);
        assert_eq!(*eval.last_commit().unwrap(), footprint);
        eval.apply_swap(TaskId(0), TaskId(2)).unwrap();
        let swap_footprint = eval.last_commit().unwrap();
        assert!(swap_footprint.spans[0].is_some() && swap_footprint.spans[1].is_some());
        assert_eq!(eval.counters().commits, 2);
    }

    #[test]
    fn subtree_mass_rows_sum_upstream_contributions() {
        let instance = forest_instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1, 0, 2], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let demands = instance.demands(&mapping).unwrap();
        // T5 (task 4) joins both branches: strict subtree {0, 1, 2, 3}.
        let row = eval.subtree_mass_row(TaskId(4)).to_vec();
        let mut expected = vec![0.0f64; 3];
        for &t in &[0usize, 1, 2, 3] {
            let u = mapping.machine_of(TaskId(t)).index();
            expected[u] += demands.get(TaskId(t)) * instance.time(TaskId(t), MachineId(u));
        }
        for (u, (&got, &want)) in row.iter().zip(&expected).enumerate() {
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "mass row of M{u}: {got} vs {want}"
            );
        }
        // Sources have empty strict subtrees.
        assert!(eval
            .subtree_mass_row(TaskId(0))
            .iter()
            .all(|&mass| mass == 0.0));
    }

    #[test]
    fn staged_evaluator_reuses_tour_masses() {
        let instance = forest_instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1, 0, 2], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        // Stage branch B's mass (subtree of T4 = {2, 3}) on top of the loads
        // of a machine-pool with branch B torn out: the result must equal
        // the committed loads.
        let row = eval.subtree_mass_row(TaskId(3)).to_vec();
        let own = eval.demand_of(TaskId(3)) * instance.time(TaskId(3), eval.machine_of(TaskId(3)));
        let mut torn = eval.loads().to_vec();
        for (u, &mass) in row.iter().enumerate() {
            torn[u] -= mass;
        }
        torn[eval.machine_of(TaskId(3)).index()] -= own;
        let mut staged = PartialAssignmentEvaluator::from_loads(&torn);
        let placed = staged.place_row(&row);
        staged.place(eval.machine_of(TaskId(3)), own);
        for u in 0..3 {
            let full = eval.load_of(MachineId(u));
            assert!(
                (staged.load_of(MachineId(u)) - full).abs() <= 1e-9 * full.max(1.0),
                "restaged load of M{u} drifted"
            );
        }
        for _ in 0..=placed {
            staged.unplace();
        }
        assert_eq!(staged.depth(), 0);
    }

    #[test]
    fn snapshot_resume_is_bit_identical_and_continues_exactly() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 2, 1], 3).unwrap();
        // Reference: one evaluator running uninterrupted.
        let mut reference = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        // Probe: same evaluator, but detached and resumed mid-stream.
        let mut probe = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        let ops: [(usize, usize); 4] = [(0, 2), (3, 2), (1, 0), (2, 1)];
        for (k, &(task, to)) in ops.iter().enumerate() {
            reference.apply_move(TaskId(task), MachineId(to)).unwrap();
            probe.apply_move(TaskId(task), MachineId(to)).unwrap();
            if k % 2 == 0 {
                // Detach after every other commit, interleaving a what-if so
                // scratch state is non-trivial when the snapshot is taken.
                let _ = probe.evaluate_swap(TaskId(0), TaskId(3)).unwrap();
                let snapshot = probe.into_snapshot();
                assert_eq!(snapshot.task_count(), 4);
                assert_eq!(snapshot.machine_count(), 3);
                assert_eq!(snapshot.mapping(), reference.mapping());
                probe = IncrementalEvaluator::resume(&instance, snapshot).unwrap();
            }
            assert_eq!(
                probe.period().value().to_bits(),
                reference.period().value().to_bits()
            );
            assert_eq!(probe.critical_machine(), reference.critical_machine());
            for t in 0..4 {
                assert_eq!(
                    probe.demand_of(TaskId(t)).to_bits(),
                    reference.demand_of(TaskId(t)).to_bits()
                );
            }
            for u in 0..3 {
                assert_eq!(
                    probe.load_of(MachineId(u)).to_bits(),
                    reference.load_of(MachineId(u)).to_bits()
                );
            }
            assert_matches_full(&probe, &instance);
        }
    }

    #[test]
    fn snapshot_resume_rejects_mismatched_dimensions() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 3).unwrap();
        let snapshot = IncrementalEvaluator::new(&instance, &mapping)
            .unwrap()
            .into_snapshot();
        // A different shape: 3 tasks instead of 4.
        let app = Application::linear_chain(&[0, 1, 0]).unwrap();
        let platform = Platform::from_type_times(
            3,
            vec![vec![100.0, 200.0, 400.0], vec![300.0, 150.0, 250.0]],
        )
        .unwrap();
        let failures = FailureModel::uniform(3, 3, FailureRate::new(0.1).unwrap());
        let other = Instance::new(app, platform, failures).unwrap();
        assert!(matches!(
            IncrementalEvaluator::resume(&other, snapshot).unwrap_err(),
            ModelError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn out_of_range_tasks_and_machines_are_rejected() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 3).unwrap();
        let mut eval = IncrementalEvaluator::new(&instance, &mapping).unwrap();
        assert!(matches!(
            eval.evaluate_move(TaskId(9), MachineId(0)).unwrap_err(),
            ModelError::UnknownTask { task: 9, .. }
        ));
        assert!(matches!(
            eval.apply_move(TaskId(0), MachineId(7)).unwrap_err(),
            ModelError::UnknownMachine { machine: 7, .. }
        ));
        assert!(eval.evaluate_swap(TaskId(0), TaskId(9)).is_err());
    }

    #[test]
    fn mapping_with_wrong_machine_count_is_rejected() {
        let instance = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0, 1], 5).unwrap();
        assert!(IncrementalEvaluator::new(&instance, &mapping).is_err());
    }
}
