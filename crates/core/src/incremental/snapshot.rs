//! Owned, instance-detached dumps of committed evaluator state.

use super::dense::MassRows;
use super::topology::Topology;
use super::tournament::TournamentTree;
use super::{CommitFootprint, EvalCounters};
use crate::ids::{MachineId, TaskId};
use crate::mapping::Mapping;

/// An owned dump of an [`IncrementalEvaluator`](super::IncrementalEvaluator)'s
/// committed state, detached from the instance borrow.
///
/// A long-lived process (the `mf-server` serve loop) wants to keep evaluator
/// state warm *across* queries, but the evaluator borrows its instance, so it
/// cannot be stored next to the instance it evaluates. A snapshot can:
/// [`IncrementalEvaluator::into_snapshot`](super::IncrementalEvaluator::into_snapshot)
/// moves every committed cache (assignment, demands, factors, contributions,
/// loads, the tournament tree, the tour topology and the per-subtree mass
/// rows) and the reusable scratch buffers out of the evaluator, and
/// [`IncrementalEvaluator::resume`](super::IncrementalEvaluator::resume)
/// re-attaches them to the instance in `O(1)` — no demand walk, no load
/// rebuild, no tour rebuild. The resumed evaluator is **bit-identical** to
/// the one the snapshot was taken from.
///
/// The snapshot must be resumed against the *same* instance it was taken
/// from (resume validates the task/machine dimensions, which catches honest
/// mix-ups, but two different instances of equal shape cannot be told
/// apart — callers that store snapshots keyed by instance are responsible
/// for that pairing, e.g. the server keys them by load generation).
#[derive(Debug, Clone)]
pub struct EvaluatorSnapshot {
    pub(super) assignment: Vec<MachineId>,
    pub(super) demand: Vec<f64>,
    pub(super) factor: Vec<f64>,
    pub(super) weight: Vec<f64>,
    pub(super) contribution: Vec<f64>,
    pub(super) load: Vec<f64>,
    pub(super) tree: TournamentTree,
    pub(super) stack: Vec<TaskId>,
    pub(super) overlay: Vec<f64>,
    pub(super) task_stamp: Vec<u64>,
    pub(super) delta: Vec<f64>,
    pub(super) machine_stamp: Vec<u64>,
    pub(super) dirty: Vec<usize>,
    pub(super) epoch: u64,
    pub(super) topology: Topology,
    pub(super) mass: MassRows,
    pub(super) scratch_row: Vec<f64>,
    pub(super) counters: EvalCounters,
    pub(super) last_commit: Option<CommitFootprint>,
}

impl EvaluatorSnapshot {
    /// Number of tasks the snapshot covers.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of machines the snapshot covers.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.load.len()
    }

    /// The committed mapping the snapshot holds.
    pub fn mapping(&self) -> Mapping {
        Mapping::new(self.assignment.clone(), self.load.len())
            .expect("the evaluator only ever stores in-range machines")
    }
}
