//! Staged evaluation of **partial** assignments for tree searches.

use super::tournament::TournamentTree;
use crate::ids::MachineId;
use crate::period::Period;

/// Staged evaluation of **partial** assignments for tree searches.
///
/// A branch-and-bound walks one search path at a time: it places a task,
/// recurses, and un-places it on backtrack. Recomputing the maximum machine
/// load from scratch at every node costs `O(m)`; this evaluator maintains the
/// per-machine loads, their running total and the load maximum (in the same
/// [`TournamentTree`] the full
/// [`IncrementalEvaluator`](super::IncrementalEvaluator) uses) so a node pays
/// `O(log m)` per placement and answers both the current period bound and the
/// critical machine in `O(1)`.
///
/// Loads are updated with the exact float operations a plain
/// `load[u] += c` / `load[u] -= c` pair performs, so a search driven through
/// this evaluator explores the **bit-identical** tree a from-scratch
/// recomputation would (`mf-exact` pins that on its brute-force-validated
/// instances).
///
/// Two entry points let a search stage work *on top of committed evaluator
/// state* instead of from zero: [`from_loads`](Self::from_loads) seeds the
/// staged loads with a committed load vector (e.g.
/// [`IncrementalEvaluator::loads`](super::IncrementalEvaluator::loads)), and
/// [`place_row`](Self::place_row) stages a whole per-machine contribution
/// row — such as a subtree mass row from
/// [`IncrementalEvaluator::subtree_mass_row`](super::IncrementalEvaluator::subtree_mass_row)
/// — in one call, so "tear out this subtree and re-place it" bounds cost
/// `O(m·log m)` instead of one placement per member task.
///
/// ```
/// use mf_core::prelude::*;
///
/// let mut staged = PartialAssignmentEvaluator::new(3);
/// staged.place(MachineId(1), 250.0);
/// staged.place(MachineId(0), 100.0);
/// assert_eq!(staged.period().value(), 250.0);
/// assert_eq!(staged.critical_machine(), MachineId(1));
/// assert_eq!(staged.total_load(), 350.0);
/// staged.unplace(); // backtrack the second placement
/// assert_eq!(staged.total_load(), 250.0);
/// ```
#[derive(Debug, Clone)]
pub struct PartialAssignmentEvaluator {
    load: Vec<f64>,
    total: f64,
    tree: TournamentTree,
    /// Undo trail of `(machine, contribution)` placements, in order.
    trail: Vec<(usize, f64)>,
}

impl PartialAssignmentEvaluator {
    /// An empty staged state over `machines` machines (all loads zero).
    pub fn new(machines: usize) -> Self {
        Self::from_loads(&vec![0.0f64; machines])
    }

    /// A staged state seeded with committed baseline loads (the zero point of
    /// [`depth`](Self::depth)/[`unplace`](Self::unplace) — the baseline
    /// itself is not on the trail and cannot be unplaced).
    ///
    /// The total is folded left-to-right over the baseline, matching a
    /// running `total += load[u]` accumulation.
    pub fn from_loads(loads: &[f64]) -> Self {
        let load = loads.to_vec();
        let tree = TournamentTree::new(&load);
        let mut total = 0.0f64;
        for &l in loads {
            total += l;
        }
        PartialAssignmentEvaluator {
            load,
            total,
            tree,
            trail: Vec::new(),
        }
    }

    /// Stages one placement: adds `contribution` to the machine's load.
    ///
    /// # Panics
    ///
    /// Panics if `machine` is out of range.
    pub fn place(&mut self, machine: MachineId, contribution: f64) {
        let u = machine.index();
        self.load[u] += contribution;
        self.total += contribution;
        self.tree.update(u, self.load[u]);
        self.trail.push((u, contribution));
    }

    /// Stages a whole per-machine contribution row (one
    /// [`place`](Self::place) per machine with a non-zero entry, in machine
    /// order) and returns the number of placements staged — call
    /// [`unplace`](Self::unplace) that many times to revert.
    ///
    /// Runs in two flat passes rather than interleaving: first the load,
    /// total and trail updates straight over the row slice (the same `+=`s
    /// in the same machine order as per-entry [`place`](Self::place) calls,
    /// so the staged floats are bit-identical), then one tournament-tree
    /// update per *touched* machine against its final load — each leaf is
    /// distinct, so the tree ends in the same state while the hot first pass
    /// stays free of `O(log m)` pointer-chasing per entry.
    ///
    /// # Panics
    ///
    /// Panics if `row` is longer than the machine count.
    pub fn place_row(&mut self, row: &[f64]) -> usize {
        assert!(
            row.len() <= self.load.len(),
            "row covers {} machines but only {} exist",
            row.len(),
            self.load.len()
        );
        let base = self.trail.len();
        for (u, &mass) in row.iter().enumerate() {
            if mass != 0.0 {
                self.load[u] += mass;
                self.total += mass;
                self.trail.push((u, mass));
            }
        }
        for k in base..self.trail.len() {
            let u = self.trail[k].0;
            self.tree.update(u, self.load[u]);
        }
        self.trail.len() - base
    }

    /// Reverts the most recent [`place`](Self::place) (exact float inverse of
    /// the `+=` the placement performed, matching a hand-rolled apply/undo).
    ///
    /// # Panics
    ///
    /// Panics if nothing is staged.
    pub fn unplace(&mut self) {
        let (u, contribution) = self.trail.pop().expect("unplace without a matching place");
        self.load[u] -= contribution;
        self.total -= contribution;
        self.tree.update(u, self.load[u]);
    }

    /// Number of staged placements on the current search path.
    #[inline]
    pub fn depth(&self) -> usize {
        self.trail.len()
    }

    /// The load of one machine.
    #[inline]
    pub fn load_of(&self, machine: MachineId) -> f64 {
        self.load[machine.index()]
    }

    /// The sum of all staged contributions (maintained by deltas, matching
    /// the accumulation order of a running `total += c` / `total -= c`).
    #[inline]
    pub fn total_load(&self) -> f64 {
        self.total
    }

    /// The maximum machine load — the period lower bound of the partial
    /// assignment (`O(1)`, the tournament-tree root), floored at zero.
    ///
    /// The floor matches a `fold(0.0, f64::max)` scan exactly: place/unplace
    /// churn can leave a machine with a ±ulp residue instead of a clean
    /// `0.0`, and a scan that folds from `0.0` clamps such negative residues
    /// away, so this must too or the two bookkeepings would diverge by a
    /// sign bit.
    #[inline]
    pub fn period(&self) -> Period {
        Period::new(self.tree.root().0.max(0.0))
    }

    /// The machine achieving the maximum load (lowest index on exact ties).
    #[inline]
    pub fn critical_machine(&self) -> MachineId {
        MachineId(self.tree.root().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_placements_match_a_scan_and_undo_exactly() {
        let mut staged = PartialAssignmentEvaluator::new(4);
        let mut load = [0.0f64; 4];
        let mut total = 0.0f64;
        let placements = [
            (2usize, 0.1),
            (0, 123.456),
            (2, 7.25),
            (1, 1e-3),
            (3, 99.9),
            (0, 0.333),
        ];
        for &(u, c) in &placements {
            staged.place(MachineId(u), c);
            load[u] += c;
            total += c;
            // Same float ops, so every intermediate agrees bit for bit.
            let scan_max = load.iter().copied().fold(0.0, f64::max);
            assert_eq!(staged.period().value().to_bits(), scan_max.to_bits());
            assert_eq!(staged.total_load().to_bits(), total.to_bits());
            assert_eq!(staged.load_of(MachineId(u)).to_bits(), load[u].to_bits());
        }
        assert_eq!(staged.depth(), placements.len());
        // Full unwind restores the identical (bit-level) state at each step.
        for &(u, c) in placements.iter().rev() {
            staged.unplace();
            load[u] -= c;
            total -= c;
            assert_eq!(staged.total_load().to_bits(), total.to_bits());
            assert_eq!(staged.load_of(MachineId(u)).to_bits(), load[u].to_bits());
        }
        assert_eq!(staged.depth(), 0);
    }

    #[test]
    fn staged_critical_machine_prefers_the_lowest_index_on_ties() {
        let mut staged = PartialAssignmentEvaluator::new(3);
        staged.place(MachineId(2), 5.0);
        assert_eq!(staged.critical_machine(), MachineId(2));
        staged.place(MachineId(0), 5.0);
        // Exact tie: lowest index wins, like the full evaluator's tree.
        assert_eq!(staged.critical_machine(), MachineId(0));
        assert_eq!(staged.period().value(), 5.0);
    }

    #[test]
    fn baseline_loads_seed_the_staged_state() {
        let staged = PartialAssignmentEvaluator::from_loads(&[10.0, 40.0, 25.0]);
        assert_eq!(staged.depth(), 0);
        assert_eq!(staged.period().value(), 40.0);
        assert_eq!(staged.critical_machine(), MachineId(1));
        assert_eq!(staged.total_load(), 75.0);
    }

    #[test]
    fn place_row_stages_non_zero_entries_and_unwinds() {
        let mut staged = PartialAssignmentEvaluator::from_loads(&[5.0, 0.0, 1.0, 0.0]);
        let placed = staged.place_row(&[0.0, 2.5, 7.0, 0.0]);
        assert_eq!(placed, 2);
        assert_eq!(staged.depth(), 2);
        assert_eq!(staged.period().value(), 8.0);
        assert_eq!(staged.critical_machine(), MachineId(2));
        for _ in 0..placed {
            staged.unplace();
        }
        assert_eq!(staged.period().value(), 5.0);
        assert_eq!(staged.total_load().to_bits(), 6.0f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "unplace without a matching place")]
    fn unplacing_an_empty_trail_panics() {
        PartialAssignmentEvaluator::new(2).unplace();
    }
}
