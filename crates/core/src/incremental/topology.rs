//! Tour-order topology of the application in-forest.
//!
//! The dense what-if fast path needs, for every task, the set of tasks whose
//! demand scales when that task's failure factor changes: the task itself and
//! everything *upstream* of it (the tasks from which it is reachable along
//! successor links — its subtree in the predecessor forest). An **Euler
//! tour** makes every such influence set a contiguous range: we lay the
//! forest out in reversed pre-order (children of a task are its
//! predecessors, trees rooted at the sinks), so the subtree of task `i`
//! occupies tour positions `start(i) ..= pos(i)` with `i` itself at
//! `pos(i)`.
//!
//! On a linear chain `T₁ → … → Tₙ` the reversed pre-order is the identity
//! permutation (`pos(i) = i`, `start(i) = 0`), so the chain fast path that
//! predates this layer is literally the special case of the forest one —
//! same ranges, same iteration order, bit-identical floats.

use crate::application::Application;
use crate::ids::TaskId;

/// The shape class of an application, as the evaluator's fast paths see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// A single linear chain in index order: subtree ranges are plain
    /// prefixes, and the dense path iterates `tasks 0..i` directly.
    Chain,
    /// A general in-forest (any number of roots, any fan-in): subtree ranges
    /// come from the Euler tour.
    Forest,
}

/// The Euler-tour layout of an application in-forest.
///
/// Owned data (no instance borrow), so it travels through
/// [`EvaluatorSnapshot`](super::EvaluatorSnapshot) and keeps
/// [`IncrementalEvaluator::resume`](super::IncrementalEvaluator::resume)
/// `O(1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    kind: TopologyKind,
    /// Task at each tour position (reversed pre-order; roots last).
    order: Vec<u32>,
    /// Tour position of each task.
    pos: Vec<u32>,
    /// First tour position of each task's subtree (`subtree(i)` is
    /// `order[start[i] ..= pos[i]]`; the strict subtree drops `pos[i]`).
    start: Vec<u32>,
}

impl Topology {
    /// Lays out the application's in-forest.
    pub fn of(app: &Application) -> Self {
        let n = app.task_count();
        debug_assert!(n <= u32::MAX as usize, "task counts fit in u32");
        // Pre-order DFS from every sink (ascending id), children =
        // predecessors in stored order.
        let mut pre: Vec<u32> = Vec::with_capacity(n);
        let mut stack: Vec<TaskId> = Vec::new();
        for sink in app.sinks() {
            stack.push(sink);
            while let Some(task) = stack.pop() {
                pre.push(task.index() as u32);
                // Reversed push so stored predecessor order pops first.
                for &p in app.predecessors(task).iter().rev() {
                    stack.push(p);
                }
            }
        }
        debug_assert_eq!(pre.len(), n, "every task is reachable from a sink");
        // Subtree sizes: children appear after their parent in pre-order, so
        // a reverse scan accumulates child sizes before the parent reads
        // them.
        let mut size = vec![1u32; n];
        for &task in pre.iter().rev() {
            if let Some(succ) = app.successor(TaskId(task as usize)) {
                size[succ.index()] += size[task as usize];
            }
        }
        // Reverse the tour: subtree(i) becomes the inclusive range
        // [pos(i) + 1 − size(i), pos(i)].
        let mut order = vec![0u32; n];
        let mut pos = vec![0u32; n];
        let mut start = vec![0u32; n];
        for (pre_position, &task) in pre.iter().enumerate() {
            let p = (n - 1 - pre_position) as u32;
            order[p as usize] = task;
            pos[task as usize] = p;
            start[task as usize] = p + 1 - size[task as usize];
        }
        let kind = if app.is_linear_chain() {
            TopologyKind::Chain
        } else {
            TopologyKind::Forest
        };
        Topology {
            kind,
            order,
            pos,
            start,
        }
    }

    /// The shape class.
    #[inline]
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// `true` for a single linear chain in index order.
    #[inline]
    pub fn is_chain(&self) -> bool {
        self.kind == TopologyKind::Chain
    }

    /// Number of tasks laid out.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.order.len()
    }

    /// The task at each tour position (reversed pre-order).
    #[inline]
    pub fn tour(&self) -> &[u32] {
        &self.order
    }

    /// The inclusive tour span `(start, end)` of `task`'s subtree — the task
    /// itself (at `end`) plus every task upstream of it (the influence set
    /// whose demands scale when `task`'s failure factor changes).
    #[inline]
    pub fn subtree_span(&self, task: TaskId) -> (usize, usize) {
        let i = task.index();
        (self.start[i] as usize, self.pos[i] as usize)
    }

    /// The tasks strictly upstream of `task` (its subtree without itself),
    /// in tour order. For a chain this is `0..i` in index order.
    #[inline]
    pub fn strict_subtree(&self, task: TaskId) -> &[u32] {
        let (start, end) = self.subtree_span(task);
        &self.order[start..end]
    }

    /// `true` when `a` is strictly upstream of `b` (`b` is reachable from
    /// `a` along successor links), `O(1)` from the tour spans.
    #[inline]
    pub fn is_upstream(&self, a: TaskId, b: TaskId) -> bool {
        let (start, end) = self.subtree_span(b);
        let p = self.pos[a.index()] as usize;
        start <= p && p < end
    }

    /// `true` when two inclusive tour spans share at least one position.
    /// Subtree spans in an in-forest are nested or disjoint, so this doubles
    /// as the "is one inside the other" test.
    #[inline]
    pub fn spans_overlap(a: (usize, usize), b: (usize, usize)) -> bool {
        a.0 <= b.1 && b.0 <= a.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_lay_out_as_the_identity() {
        let app = Application::linear_chain(&[0, 1, 0, 1, 2]).unwrap();
        let topology = Topology::of(&app);
        assert_eq!(topology.kind(), TopologyKind::Chain);
        assert!(topology.is_chain());
        assert_eq!(topology.tour(), &[0, 1, 2, 3, 4]);
        for i in 0..5 {
            assert_eq!(topology.subtree_span(TaskId(i)), (0, i));
            let strict: Vec<u32> = topology.strict_subtree(TaskId(i)).to_vec();
            assert_eq!(strict, (0..i as u32).collect::<Vec<_>>());
        }
        assert!(topology.is_upstream(TaskId(0), TaskId(4)));
        assert!(!topology.is_upstream(TaskId(4), TaskId(0)));
        assert!(!topology.is_upstream(TaskId(2), TaskId(2)));
    }

    #[test]
    fn figure1_subtrees_are_contiguous_and_complete() {
        // T1→T2, T3 join into T4, then T5 (0-indexed: 0→1, 2 → 3 → 4).
        let app = Application::paper_figure1();
        let topology = Topology::of(&app);
        assert_eq!(topology.kind(), TopologyKind::Forest);
        // The sink's subtree is everything; its own position is last.
        assert_eq!(topology.subtree_span(TaskId(4)), (0, 4));
        // T4 joins both branches: its subtree is all of {0, 1, 2, 3}.
        let (start, end) = topology.subtree_span(TaskId(3));
        assert_eq!(end - start, 3);
        let mut members: Vec<u32> = topology.strict_subtree(TaskId(3)).to_vec();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2]);
        // Leaves have empty strict subtrees.
        assert!(topology.strict_subtree(TaskId(0)).is_empty());
        assert!(topology.strict_subtree(TaskId(2)).is_empty());
        // Upstream relation matches reachability.
        assert!(topology.is_upstream(TaskId(0), TaskId(1)));
        assert!(topology.is_upstream(TaskId(0), TaskId(4)));
        assert!(topology.is_upstream(TaskId(2), TaskId(3)));
        assert!(!topology.is_upstream(TaskId(2), TaskId(1)));
        assert!(!topology.is_upstream(TaskId(1), TaskId(0)));
    }

    #[test]
    fn multi_root_forests_cover_every_task_once() {
        // Two trees: 0 → 1 and 2 → 3 ← 4 (sinks 1 and 3).
        let app = Application::from_successors(
            &[0, 1, 0, 1, 0],
            &[Some(1), None, Some(3), None, Some(3)],
        )
        .unwrap();
        let topology = Topology::of(&app);
        assert_eq!(topology.kind(), TopologyKind::Forest);
        let mut seen: Vec<u32> = topology.tour().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        // Spans are consistent: every task sits at the end of its span and
        // spans of distinct trees are disjoint.
        for t in 0..5 {
            let (start, end) = topology.subtree_span(TaskId(t));
            assert_eq!(topology.tour()[end], t as u32);
            assert!(start <= end);
        }
        let t1 = topology.subtree_span(TaskId(1));
        let t3 = topology.subtree_span(TaskId(3));
        assert!(!Topology::spans_overlap(t1, t3));
        assert!(!topology.is_upstream(TaskId(0), TaskId(3)));
        assert!(topology.is_upstream(TaskId(4), TaskId(3)));
    }

    #[test]
    fn balanced_tree_span_sizes_match_subtree_sizes() {
        let app = Application::balanced_in_tree(2, 3, 2).unwrap();
        let topology = Topology::of(&app);
        let root = app.sinks().next().unwrap();
        let (start, end) = topology.subtree_span(root);
        assert_eq!((start, end), (0, app.task_count() - 1));
        // Every strict subtree member really is upstream.
        for t in app.tasks() {
            for &member in topology.strict_subtree(t.id) {
                assert!(topology.is_upstream(TaskId(member as usize), t.id));
            }
        }
    }
}
