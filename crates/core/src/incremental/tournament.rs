//! A max-tournament (segment) tree over per-machine loads.

/// A max-tournament (segment) tree over per-machine loads.
///
/// Leaves hold `(load, machine index)`; every internal node holds the better
/// of its children, preferring the *lower* machine index on ties so the
/// critical machine is deterministic. The root is the system period.
#[derive(Debug, Clone)]
pub(super) struct TournamentTree {
    /// Number of leaves (next power of two ≥ machine count).
    capacity: usize,
    /// Heap layout: node 1 is the root, leaves start at `capacity`.
    nodes: Vec<(f64, usize)>,
}

impl TournamentTree {
    pub(super) fn new(loads: &[f64]) -> Self {
        let capacity = loads.len().next_power_of_two().max(1);
        let mut nodes = vec![(f64::NEG_INFINITY, usize::MAX); 2 * capacity];
        for (u, &load) in loads.iter().enumerate() {
            nodes[capacity + u] = (load, u);
        }
        for i in (1..capacity).rev() {
            nodes[i] = Self::better(nodes[2 * i], nodes[2 * i + 1]);
        }
        TournamentTree { capacity, nodes }
    }

    /// Max with lowest-index tie-break (`a` is always the left, lower-index
    /// child when called on siblings).
    #[inline]
    fn better(a: (f64, usize), b: (f64, usize)) -> (f64, usize) {
        if b.0 > a.0 {
            b
        } else {
            a
        }
    }

    /// Sets the load of one machine and repairs the path to the root.
    pub(super) fn update(&mut self, machine: usize, load: f64) {
        let mut i = self.capacity + machine;
        self.nodes[i].0 = load;
        while i > 1 {
            i /= 2;
            self.nodes[i] = Self::better(self.nodes[2 * i], self.nodes[2 * i + 1]);
        }
    }

    /// The `(system period, critical machine)` pair.
    #[inline]
    pub(super) fn root(&self) -> (f64, usize) {
        self.nodes[1]
    }

    /// Number of node writes one leaf update costs (the tree height).
    #[inline]
    pub(super) fn height(&self) -> usize {
        self.capacity.trailing_zeros() as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tournament_tree_tracks_max_and_argmax() {
        let mut tree = TournamentTree::new(&[3.0, 9.0, 1.0, 9.0, 2.0]);
        assert_eq!(tree.root(), (9.0, 1));
        tree.update(1, 0.5);
        assert_eq!(tree.root(), (9.0, 3));
        tree.update(4, 20.0);
        assert_eq!(tree.root(), (20.0, 4));
        tree.update(4, 0.0);
        tree.update(3, 0.0);
        assert_eq!(tree.root(), (3.0, 0));
        // Exact tie: the lowest machine index wins.
        tree.update(2, 3.0);
        assert_eq!(tree.root(), (3.0, 0));
    }
}
