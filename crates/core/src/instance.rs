//! A complete problem instance: application + platform + failure model.

use crate::application::Application;
use crate::demand::{self, DemandVector};
use crate::error::{ModelError, Result};
use crate::failure::{FailureModel, FailureRate};
use crate::ids::{MachineId, TaskId};
use crate::mapping::{Mapping, MappingKind};
use crate::period::{MachinePeriods, Period};
use crate::platform::Platform;

/// A complete instance of the micro-factory mapping problem.
///
/// Bundles the [`Application`] (tasks and precedence), the [`Platform`]
/// (machines and processing times) and the [`FailureModel`] (per-(task,
/// machine) failure rates) and checks their dimensions agree. All accessors
/// used by the heuristics and exact solvers (`w(i,u)`, `f(i,u)`, `F(i,u)`,
/// periods, demands) live here.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    app: Application,
    platform: Platform,
    failures: FailureModel,
}

impl Instance {
    /// Builds an instance, checking that the three components agree on the
    /// number of tasks, types and machines.
    pub fn new(app: Application, platform: Platform, failures: FailureModel) -> Result<Self> {
        if platform.type_count() < app.type_count() {
            return Err(ModelError::DimensionMismatch {
                context: "platform type count",
                expected: app.type_count(),
                actual: platform.type_count(),
            });
        }
        if failures.task_count() != app.task_count() {
            return Err(ModelError::DimensionMismatch {
                context: "failure model task count",
                expected: app.task_count(),
                actual: failures.task_count(),
            });
        }
        if failures.machine_count() != platform.machine_count() {
            return Err(ModelError::DimensionMismatch {
                context: "failure model machine count",
                expected: platform.machine_count(),
                actual: failures.machine_count(),
            });
        }
        Ok(Instance {
            app,
            platform,
            failures,
        })
    }

    /// The application graph.
    #[inline]
    pub fn application(&self) -> &Application {
        &self.app
    }

    /// The target platform.
    #[inline]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The failure model.
    #[inline]
    pub fn failures(&self) -> &FailureModel {
        &self.failures
    }

    /// Number of tasks `n`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.app.task_count()
    }

    /// Number of machines `m`.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.platform.machine_count()
    }

    /// Number of task types `p`.
    #[inline]
    pub fn type_count(&self) -> usize {
        self.app.type_count()
    }

    /// Processing time `w_{i,u}` of task `i` on machine `u`.
    #[inline]
    pub fn time(&self, task: TaskId, machine: MachineId) -> f64 {
        self.platform.time(self.app.task_type(task), machine)
    }

    /// Failure probability `f_{i,u}`.
    #[inline]
    pub fn failure(&self, task: TaskId, machine: MachineId) -> FailureRate {
        self.failures.rate(task, machine)
    }

    /// Failure factor `F_{i,u} = 1/(1 − f_{i,u})`.
    #[inline]
    pub fn factor(&self, task: TaskId, machine: MachineId) -> f64 {
        self.failures.factor(task, machine)
    }

    /// Effective time to obtain one *successful* product of task `i` on
    /// machine `u`: `w_{i,u} / (1 − f_{i,u})`.
    #[inline]
    pub fn effective_time(&self, task: TaskId, machine: MachineId) -> f64 {
        self.time(task, machine) * self.factor(task, machine)
    }

    /// `true` if the mapping respects the one-to-one rule.
    pub fn is_one_to_one(&self, mapping: &Mapping) -> bool {
        mapping.is_one_to_one()
    }

    /// `true` if the mapping respects the specialized rule for this instance's
    /// application.
    pub fn is_specialized(&self, mapping: &Mapping) -> bool {
        mapping.is_specialized(&self.app)
    }

    /// Validates a mapping against this instance and a mapping rule.
    pub fn validate_mapping(&self, mapping: &Mapping, kind: MappingKind) -> Result<()> {
        if mapping.machine_count() != self.machine_count() {
            return Err(ModelError::DimensionMismatch {
                context: "mapping machine count",
                expected: self.machine_count(),
                actual: mapping.machine_count(),
            });
        }
        mapping.validate(&self.app, kind)
    }

    /// The demand vector `xᵢ` of a mapping.
    pub fn demands(&self, mapping: &Mapping) -> Result<DemandVector> {
        demand::demands(&self.app, &self.failures, mapping)
    }

    /// The per-machine period breakdown of a mapping.
    pub fn machine_periods(&self, mapping: &Mapping) -> Result<MachinePeriods> {
        MachinePeriods::compute(&self.app, &self.platform, &self.failures, mapping)
    }

    /// The system period of a mapping.
    pub fn period(&self, mapping: &Mapping) -> Result<Period> {
        Ok(self.machine_periods(mapping)?.system_period())
    }

    /// Upper bounds `MAXxᵢ` on demands (mapping-independent), for the MIP.
    pub fn demand_upper_bounds(&self) -> Result<Vec<f64>> {
        demand::demand_upper_bounds(&self.app, &self.failures)
    }

    /// Lower bounds on demands (mapping-independent), for branch-and-bound.
    pub fn demand_lower_bounds(&self) -> Result<Vec<f64>> {
        demand::demand_lower_bounds(&self.app, &self.failures)
    }

    /// A trivially pessimistic upper bound on the optimal period: every task
    /// executed on the single machine that is slowest for its type, using the
    /// demand upper bounds. The binary-search heuristics use this as their
    /// initial `maxPeriod`.
    pub fn worst_case_period(&self) -> Result<Period> {
        let upper = self.demand_upper_bounds()?;
        let total: f64 = self
            .app
            .tasks()
            .map(|t| upper[t.id.index()] * self.platform.slowest_time_for_type(t.ty))
            .sum();
        Ok(Period::new(total))
    }

    /// A simple lower bound on the optimal period of any mapping: the largest,
    /// over tasks, of the smallest effective time of the task on any machine.
    pub fn trivial_period_lower_bound(&self) -> Period {
        let best = self
            .app
            .tasks()
            .map(|t| {
                self.platform
                    .machines()
                    .map(|u| self.effective_time(t.id, u))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max);
        Period::new(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> Instance {
        let app = Application::linear_chain(&[0, 1, 0]).unwrap();
        let platform =
            Platform::from_type_times(2, vec![vec![100.0, 200.0], vec![300.0, 150.0]]).unwrap();
        let failures =
            FailureModel::from_matrix(vec![vec![0.0, 0.5], vec![0.5, 0.0], vec![0.0, 0.0]], 2)
                .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn accessors_delegate_correctly() {
        let inst = instance();
        assert_eq!(inst.task_count(), 3);
        assert_eq!(inst.machine_count(), 2);
        assert_eq!(inst.type_count(), 2);
        // Task 1 has type 1.
        assert_eq!(inst.time(TaskId(1), MachineId(0)), 300.0);
        assert_eq!(inst.time(TaskId(1), MachineId(1)), 150.0);
        assert_eq!(inst.failure(TaskId(0), MachineId(1)).value(), 0.5);
        assert_eq!(inst.factor(TaskId(0), MachineId(1)), 2.0);
        assert_eq!(inst.effective_time(TaskId(0), MachineId(1)), 400.0);
    }

    #[test]
    fn dimension_checks_at_construction() {
        let app = Application::linear_chain(&[0, 1]).unwrap();
        // Platform knows only 1 type but app has 2.
        let platform = Platform::from_type_times(2, vec![vec![1.0, 1.0]]).unwrap();
        let failures = FailureModel::uniform(2, 2, FailureRate::ZERO);
        assert!(Instance::new(app.clone(), platform, failures.clone()).is_err());

        // Failure model with wrong task count.
        let platform = Platform::from_type_times(2, vec![vec![1.0, 1.0]; 2]).unwrap();
        let failures_bad = FailureModel::uniform(5, 2, FailureRate::ZERO);
        assert!(Instance::new(app.clone(), platform.clone(), failures_bad).is_err());

        // Failure model with wrong machine count.
        let failures_bad = FailureModel::uniform(2, 3, FailureRate::ZERO);
        assert!(Instance::new(app, platform, failures_bad).is_err());
    }

    #[test]
    fn period_and_demand_round_trip() {
        let inst = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0], 2).unwrap();
        assert!(inst.is_specialized(&mapping));
        let x = inst.demands(&mapping).unwrap();
        // All chosen machines are failure-free here.
        assert_eq!(x.as_slice(), &[1.0, 1.0, 1.0]);
        let p = inst.period(&mapping).unwrap();
        // M0: 100 + 100 = 200 ; M1: 150.
        assert_eq!(p.value(), 200.0);
    }

    #[test]
    fn validate_mapping_checks_machine_count() {
        let inst = instance();
        let mapping = Mapping::from_indices(&[0, 1, 0], 3).unwrap();
        assert!(inst
            .validate_mapping(&mapping, MappingKind::General)
            .is_err());
        let mapping = Mapping::from_indices(&[0, 1, 0], 2).unwrap();
        assert!(inst
            .validate_mapping(&mapping, MappingKind::Specialized)
            .is_ok());
    }

    #[test]
    fn bounds_are_consistent() {
        let inst = instance();
        let worst = inst.worst_case_period().unwrap();
        let lower = inst.trivial_period_lower_bound();
        assert!(worst.value() >= lower.value());
        // Any actual mapping lies between the two bounds.
        for a in 0..2 {
            for b in 0..2 {
                for c in 0..2 {
                    let mapping = Mapping::from_indices(&[a, b, c], 2).unwrap();
                    let p = inst.period(&mapping).unwrap();
                    assert!(p.value() <= worst.value() + 1e-9);
                    assert!(p.value() >= lower.value() - 1e-9);
                }
            }
        }
    }
}
