//! # mf-core — model layer for micro-factory throughput optimization
//!
//! This crate implements the application / platform / failure / mapping model of
//! *"Throughput optimization for micro-factories subject to task and machine
//! failures"* (Benoit, Dobrila, Nicod, Philippe — INRIA RR-7479, IPDPS 2010).
//!
//! A micro-factory processes **physical products** through a set of typed tasks
//! arranged in a fork-free DAG (each task has at most one successor; joins are
//! allowed), executed by a set of machines. Performing task `Tᵢ` on machine `Mᵤ`
//! takes `w_{i,u}` time units and destroys the product with probability
//! `f_{i,u}`. Products cannot be replicated, so the line must process *more*
//! products than it outputs; the quantity of interest is the **period** — the
//! time the most loaded machine needs to contribute to one final product — and
//! its inverse, the **throughput**.
//!
//! The crate provides:
//!
//! * [`Application`] — the task graph (linear chains, in-trees, forests);
//! * [`Platform`] — machines and type-consistent processing times `w`;
//! * [`FailureModel`] — per-(task, machine) transient failure probabilities `f`;
//! * [`Instance`] — the bundle of the three, with convenience accessors;
//! * [`Mapping`] — an allocation of tasks to machines, with the three rule sets
//!   of the paper (one-to-one, specialized, general);
//! * [`demand`] — the expected number of products each task must start
//!   (`xᵢ` in the paper);
//! * [`period`] — machine periods, system period, critical machines, throughput.
//!
//! ```
//! use mf_core::prelude::*;
//!
//! // A 3-task linear chain with 2 task types, mapped onto 2 machines.
//! let app = Application::linear_chain(&[0, 1, 0]).unwrap();
//! let platform = Platform::from_type_times(2, vec![vec![100.0, 200.0], vec![300.0, 150.0]]).unwrap();
//! let failures = FailureModel::uniform(3, 2, FailureRate::new(0.01).unwrap());
//! let instance = Instance::new(app, platform, failures).unwrap();
//!
//! let mapping = Mapping::new(vec![MachineId(0), MachineId(1), MachineId(0)], 2).unwrap();
//! assert!(instance.is_specialized(&mapping));
//! let period = instance.period(&mapping).unwrap();
//! assert!(period.value() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod application;
pub mod demand;
pub mod error;
pub mod failure;
pub mod ids;
pub mod incremental;
pub mod instance;
pub mod mapping;
pub mod period;
pub mod platform;
pub mod prelude;
pub mod seed;
pub mod split;
pub mod textio;

pub use application::{Application, ApplicationBuilder, Task};
pub use demand::{DemandVector, OutputDemand};
pub use error::{ModelError, Result};
pub use failure::{FailureModel, FailureRate};
pub use ids::{MachineId, TaskId, TaskTypeId};
pub use incremental::{
    CommitFootprint, EvalCounters, Evaluation, EvaluatorSnapshot, IncrementalEvaluator,
    PartialAssignmentEvaluator, Topology, TopologyKind,
};
pub use instance::Instance;
pub use mapping::{Mapping, MappingKind};
pub use period::{MachinePeriods, Period, Throughput};
pub use platform::Platform;
pub use seed::splitmix64;
pub use split::{SplitMapping, SplitPeriods};
