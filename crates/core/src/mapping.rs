//! Mappings (allocation functions) and the paper's three rule sets.
//!
//! A mapping is a total function `a : tasks → machines`. The paper studies
//! three increasingly permissive rules:
//!
//! * **one-to-one** — a machine executes at most one task;
//! * **specialized** — a machine executes tasks of at most one type;
//! * **general** — no constraint.
//!
//! Every one-to-one mapping is specialized, and every specialized mapping is
//! general.

use crate::application::Application;
use crate::error::{ModelError, Result};
use crate::ids::{MachineId, TaskId, TaskTypeId};

/// The rule a mapping is required to respect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingKind {
    /// Each machine processes at most one task.
    OneToOne,
    /// Each machine processes tasks of at most one type.
    Specialized,
    /// No constraint.
    General,
}

impl std::fmt::Display for MappingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingKind::OneToOne => write!(f, "one-to-one"),
            MappingKind::Specialized => write!(f, "specialized"),
            MappingKind::General => write!(f, "general"),
        }
    }
}

/// A total allocation of tasks to machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    assignment: Vec<MachineId>,
    machine_count: usize,
}

impl Mapping {
    /// Creates a mapping from the per-task machine assignment.
    pub fn new(assignment: Vec<MachineId>, machine_count: usize) -> Result<Self> {
        for &machine in &assignment {
            if machine.index() >= machine_count {
                return Err(ModelError::UnknownMachine {
                    machine: machine.index(),
                    machine_count,
                });
            }
        }
        Ok(Mapping {
            assignment,
            machine_count,
        })
    }

    /// Creates a mapping from raw machine indices.
    pub fn from_indices(assignment: &[usize], machine_count: usize) -> Result<Self> {
        Self::new(
            assignment.iter().copied().map(MachineId).collect(),
            machine_count,
        )
    }

    /// Number of tasks covered by the mapping.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.assignment.len()
    }

    /// Number of machines of the target platform.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.machine_count
    }

    /// The machine `a(i)` executing task `i`.
    #[inline]
    pub fn machine_of(&self, task: TaskId) -> MachineId {
        self.assignment[task.index()]
    }

    /// A 64-bit content fingerprint of the mapping: a SplitMix64 chain over
    /// the machine count and the per-task assignment, in task order.
    ///
    /// The chain is order-sensitive and each step is the bijective
    /// [`splitmix64`](crate::seed::splitmix64) finalizer, so structurally
    /// different mappings collide with probability ~2⁻⁶⁴. The value is a
    /// pure function of the mapping's contents — stable across processes and
    /// platforms — which is what lets a serving tier key caches by
    /// `(instance generation, mapping fingerprint)` without retaining the
    /// mapping itself.
    pub fn fingerprint(&self) -> u64 {
        let mut digest = crate::seed::splitmix64(0x6D66_5F6D_6170 ^ (self.machine_count as u64));
        for &machine in &self.assignment {
            digest = crate::seed::splitmix64(digest ^ (machine.index() as u64 + 1));
        }
        digest
    }

    /// The underlying assignment slice, indexed by task.
    #[inline]
    pub fn as_slice(&self) -> &[MachineId] {
        &self.assignment
    }

    /// The tasks assigned to a given machine, in task-index order.
    pub fn tasks_on(&self, machine: MachineId) -> Vec<TaskId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == machine)
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Tasks grouped by machine: entry `u` lists the tasks executed by `Mᵤ`.
    pub fn tasks_by_machine(&self) -> Vec<Vec<TaskId>> {
        let mut groups = vec![Vec::new(); self.machine_count];
        for (i, &machine) in self.assignment.iter().enumerate() {
            groups[machine.index()].push(TaskId(i));
        }
        groups
    }

    /// Machines that execute at least one task.
    pub fn used_machines(&self) -> Vec<MachineId> {
        let mut used = vec![false; self.machine_count];
        for &machine in &self.assignment {
            used[machine.index()] = true;
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(u, _)| MachineId(u))
            .collect()
    }

    /// `true` when no machine executes more than one task.
    pub fn is_one_to_one(&self) -> bool {
        let mut seen = vec![false; self.machine_count];
        for &machine in &self.assignment {
            if seen[machine.index()] {
                return false;
            }
            seen[machine.index()] = true;
        }
        true
    }

    /// `true` when no machine executes tasks of two different types of `app`.
    pub fn is_specialized(&self, app: &Application) -> bool {
        let mut machine_type: Vec<Option<TaskTypeId>> = vec![None; self.machine_count];
        for (i, &machine) in self.assignment.iter().enumerate() {
            let ty = app.task_type(TaskId(i));
            match machine_type[machine.index()] {
                None => machine_type[machine.index()] = Some(ty),
                Some(existing) if existing != ty => return false,
                Some(_) => {}
            }
        }
        true
    }

    /// The most restrictive rule this mapping satisfies for `app`.
    pub fn kind(&self, app: &Application) -> MappingKind {
        if self.is_one_to_one() {
            MappingKind::OneToOne
        } else if self.is_specialized(app) {
            MappingKind::Specialized
        } else {
            MappingKind::General
        }
    }

    /// Validates the mapping against an application and a required rule.
    pub fn validate(&self, app: &Application, kind: MappingKind) -> Result<()> {
        if self.assignment.len() != app.task_count() {
            return Err(ModelError::IncompleteMapping {
                expected: app.task_count(),
                actual: self.assignment.len(),
            });
        }
        match kind {
            MappingKind::General => Ok(()),
            MappingKind::Specialized => {
                if self.is_specialized(app) {
                    Ok(())
                } else {
                    Err(ModelError::RuleViolation {
                        kind,
                        detail: "a machine executes tasks of two different types".to_string(),
                    })
                }
            }
            MappingKind::OneToOne => {
                if self.is_one_to_one() {
                    Ok(())
                } else {
                    Err(ModelError::RuleViolation {
                        kind,
                        detail: "a machine executes more than one task".to_string(),
                    })
                }
            }
        }
    }

    /// The type each machine is specialized to (None for idle machines).
    ///
    /// Returns an error if the mapping is not specialized for `app`.
    pub fn machine_specializations(&self, app: &Application) -> Result<Vec<Option<TaskTypeId>>> {
        let mut machine_type: Vec<Option<TaskTypeId>> = vec![None; self.machine_count];
        for (i, &machine) in self.assignment.iter().enumerate() {
            let ty = app.task_type(TaskId(i));
            match machine_type[machine.index()] {
                None => machine_type[machine.index()] = Some(ty),
                Some(existing) if existing != ty => {
                    return Err(ModelError::RuleViolation {
                        kind: MappingKind::Specialized,
                        detail: format!("machine {machine} executes types {existing} and {ty}"),
                    })
                }
                Some(_) => {}
            }
        }
        Ok(machine_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_app() -> Application {
        // types: 0 1 0 1 0
        Application::linear_chain(&[0, 1, 0, 1, 0]).unwrap()
    }

    #[test]
    fn construction_checks_machine_bounds() {
        assert!(Mapping::from_indices(&[0, 1, 2], 3).is_ok());
        let err = Mapping::from_indices(&[0, 5], 3).unwrap_err();
        assert!(matches!(err, ModelError::UnknownMachine { machine: 5, .. }));
    }

    #[test]
    fn one_to_one_detection() {
        let m = Mapping::from_indices(&[0, 1, 2, 3, 4], 5).unwrap();
        assert!(m.is_one_to_one());
        let m = Mapping::from_indices(&[0, 1, 0, 3, 4], 5).unwrap();
        assert!(!m.is_one_to_one());
    }

    #[test]
    fn specialized_detection() {
        let app = chain_app();
        // Machine 0 gets all type-0 tasks, machine 1 all type-1 tasks.
        let m = Mapping::from_indices(&[0, 1, 0, 1, 0], 2).unwrap();
        assert!(m.is_specialized(&app));
        assert_eq!(m.kind(&app), MappingKind::Specialized);
        // Machine 0 mixes types.
        let m = Mapping::from_indices(&[0, 0, 0, 1, 0], 2).unwrap();
        assert!(!m.is_specialized(&app));
        assert_eq!(m.kind(&app), MappingKind::General);
    }

    #[test]
    fn one_to_one_is_also_specialized() {
        let app = chain_app();
        let m = Mapping::from_indices(&[0, 1, 2, 3, 4], 5).unwrap();
        assert!(m.is_one_to_one());
        assert!(m.is_specialized(&app));
        assert_eq!(m.kind(&app), MappingKind::OneToOne);
    }

    #[test]
    fn validate_rules() {
        let app = chain_app();
        let spec = Mapping::from_indices(&[0, 1, 0, 1, 0], 2).unwrap();
        assert!(spec.validate(&app, MappingKind::Specialized).is_ok());
        assert!(spec.validate(&app, MappingKind::General).is_ok());
        assert!(spec.validate(&app, MappingKind::OneToOne).is_err());

        let incomplete = Mapping::from_indices(&[0, 1], 2).unwrap();
        assert!(matches!(
            incomplete.validate(&app, MappingKind::General).unwrap_err(),
            ModelError::IncompleteMapping {
                expected: 5,
                actual: 2
            }
        ));
    }

    #[test]
    fn tasks_by_machine_partition() {
        let m = Mapping::from_indices(&[0, 1, 0, 1, 0], 3).unwrap();
        let groups = m.tasks_by_machine();
        assert_eq!(groups[0], vec![TaskId(0), TaskId(2), TaskId(4)]);
        assert_eq!(groups[1], vec![TaskId(1), TaskId(3)]);
        assert!(groups[2].is_empty());
        assert_eq!(m.tasks_on(MachineId(1)), vec![TaskId(1), TaskId(3)]);
        assert_eq!(m.used_machines(), vec![MachineId(0), MachineId(1)]);
    }

    #[test]
    fn machine_specializations() {
        let app = chain_app();
        let m = Mapping::from_indices(&[0, 1, 0, 1, 0], 3).unwrap();
        let spec = m.machine_specializations(&app).unwrap();
        assert_eq!(spec[0], Some(TaskTypeId(0)));
        assert_eq!(spec[1], Some(TaskTypeId(1)));
        assert_eq!(spec[2], None);

        let bad = Mapping::from_indices(&[0, 0, 0, 0, 0], 1).unwrap();
        assert!(bad.machine_specializations(&app).is_err());
    }

    #[test]
    fn kind_display() {
        assert_eq!(MappingKind::OneToOne.to_string(), "one-to-one");
        assert_eq!(MappingKind::Specialized.to_string(), "specialized");
        assert_eq!(MappingKind::General.to_string(), "general");
    }

    #[test]
    fn fingerprint_is_content_addressed_and_stable() {
        let a = Mapping::from_indices(&[0, 1, 0, 1, 0], 3).unwrap();
        let same = Mapping::from_indices(&[0, 1, 0, 1, 0], 3).unwrap();
        assert_eq!(a.fingerprint(), same.fingerprint());
        // Any content change — one assignment, the order, or the machine
        // count — changes the fingerprint.
        let moved = Mapping::from_indices(&[0, 1, 0, 1, 1], 3).unwrap();
        let swapped = Mapping::from_indices(&[1, 0, 0, 1, 0], 3).unwrap();
        let wider = Mapping::from_indices(&[0, 1, 0, 1, 0], 4).unwrap();
        assert_ne!(a.fingerprint(), moved.fingerprint());
        assert_ne!(a.fingerprint(), swapped.fingerprint());
        assert_ne!(a.fingerprint(), wider.fingerprint());
        // Cross-process stability: server caches key on this value, so the
        // chain must never drift silently. Update deliberately if it does.
        assert_eq!(a.fingerprint(), 0xd9cf_09ba_b6a4_ad83);
    }

    #[test]
    fn fingerprints_disperse_over_an_enumerated_family() {
        // All 3^5 assignments of 5 tasks onto 3 machines are distinct.
        let mut seen = std::collections::HashSet::new();
        for code in 0..243usize {
            let assignment: Vec<usize> =
                (0..5).map(|i| (code / 3usize.pow(i as u32)) % 3).collect();
            let mapping = Mapping::from_indices(&assignment, 3).unwrap();
            assert!(
                seen.insert(mapping.fingerprint()),
                "collision at {assignment:?}"
            );
        }
    }
}
