//! Periods, throughput and critical machines.
//!
//! The **period of a machine** is the time it needs to execute all the tasks
//! allocated to it in order to contribute one final product:
//!
//! ```text
//! period(Mᵤ) = Σ_{i | a(i) = u} xᵢ · w_{i,u}
//! ```
//!
//! The slowest machine paces the whole factory, so the **system period** is the
//! maximum machine period, the machines achieving it are the **critical
//! machines**, and the throughput is the inverse of the period.

use crate::application::Application;
use crate::demand::{demands, DemandVector};
use crate::error::Result;
use crate::failure::FailureModel;
use crate::ids::MachineId;
use crate::mapping::Mapping;
use crate::platform::Platform;

/// A system or machine period, in the same time unit as the platform
/// processing times (milliseconds in the paper's experiments).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Period(f64);

impl Period {
    /// Wraps a raw period value.
    #[inline]
    pub fn new(value: f64) -> Self {
        Period(value)
    }

    /// The raw period value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The corresponding throughput (products per time unit). A zero period
    /// (idle machine) maps to infinite throughput.
    #[inline]
    pub fn throughput(self) -> Throughput {
        Throughput(1.0 / self.0)
    }
}

impl std::fmt::Display for Period {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ms", self.0)
    }
}

/// Throughput: expected number of finished products per time unit.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Throughput(f64);

impl Throughput {
    /// The raw throughput value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The corresponding period.
    #[inline]
    pub fn period(self) -> Period {
        Period(1.0 / self.0)
    }
}

/// The full period breakdown of a mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct MachinePeriods {
    periods: Vec<f64>,
    demands: DemandVector,
}

impl MachinePeriods {
    /// Computes the per-machine periods of a mapping.
    pub fn compute(
        app: &Application,
        platform: &Platform,
        failures: &FailureModel,
        mapping: &Mapping,
    ) -> Result<Self> {
        let x = demands(app, failures, mapping)?;
        let mut periods = vec![0.0f64; platform.machine_count()];
        for task in app.tasks() {
            let machine = mapping.machine_of(task.id);
            let w = platform.time(task.ty, machine);
            periods[machine.index()] += x.get(task.id) * w;
        }
        Ok(MachinePeriods {
            periods,
            demands: x,
        })
    }

    /// The period of a single machine.
    #[inline]
    pub fn of(&self, machine: MachineId) -> Period {
        Period(self.periods[machine.index()])
    }

    /// All machine periods, indexed by machine.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.periods
    }

    /// The demands used to compute the periods.
    #[inline]
    pub fn demands(&self) -> &DemandVector {
        &self.demands
    }

    /// The system period: the largest machine period.
    pub fn system_period(&self) -> Period {
        Period(self.periods.iter().copied().fold(0.0, f64::max))
    }

    /// The machines whose period equals the system period (within `epsilon`).
    pub fn critical_machines(&self, epsilon: f64) -> Vec<MachineId> {
        let max = self.system_period().value();
        self.periods
            .iter()
            .enumerate()
            .filter(|(_, &p)| (max - p).abs() <= epsilon)
            .map(|(u, _)| MachineId(u))
            .collect()
    }

    /// Machine utilisation: period of each machine divided by the system
    /// period (1.0 for critical machines, 0.0 for idle machines).
    pub fn utilisations(&self) -> Vec<f64> {
        let max = self.system_period().value();
        if max == 0.0 {
            return vec![0.0; self.periods.len()];
        }
        self.periods.iter().map(|&p| p / max).collect()
    }
}

/// Convenience: the system period of a mapping.
pub fn system_period(
    app: &Application,
    platform: &Platform,
    failures: &FailureModel,
    mapping: &Mapping,
) -> Result<Period> {
    Ok(MachinePeriods::compute(app, platform, failures, mapping)?.system_period())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureRate;

    fn setup() -> (Application, Platform, FailureModel) {
        // 3-task chain, types 0,1,0 on 2 machines.
        let app = Application::linear_chain(&[0, 1, 0]).unwrap();
        let platform =
            Platform::from_type_times(2, vec![vec![100.0, 200.0], vec![300.0, 150.0]]).unwrap();
        let failures = FailureModel::uniform(3, 2, FailureRate::new(0.5).unwrap());
        (app, platform, failures)
    }

    #[test]
    fn periods_sum_demand_times_work() {
        let (app, platform, failures) = setup();
        // T1,T3 -> M0 (type 0, 100ms), T2 -> M1 (type 1, 150ms), all f=0.5.
        let mapping = Mapping::from_indices(&[0, 1, 0], 2).unwrap();
        let periods = MachinePeriods::compute(&app, &platform, &failures, &mapping).unwrap();
        // x3 = 2, x2 = 4, x1 = 8.
        let x = periods.demands();
        assert_eq!(x.as_slice(), &[8.0, 4.0, 2.0]);
        // period(M0) = 8*100 + 2*100 = 1000 ; period(M1) = 4*150 = 600.
        assert_eq!(periods.of(MachineId(0)).value(), 1000.0);
        assert_eq!(periods.of(MachineId(1)).value(), 600.0);
        assert_eq!(periods.system_period().value(), 1000.0);
        assert_eq!(periods.critical_machines(1e-9), vec![MachineId(0)]);
        let util = periods.utilisations();
        assert!((util[0] - 1.0).abs() < 1e-12);
        assert!((util[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn throughput_is_inverse_of_period() {
        let p = Period::new(500.0);
        assert!((p.throughput().value() - 0.002).abs() < 1e-12);
        assert!((p.throughput().period().value() - 500.0).abs() < 1e-12);
        assert!(p.to_string().contains("500"));
    }

    #[test]
    fn idle_machines_have_zero_period() {
        let (app, platform, failures) = setup();
        let mapping = Mapping::from_indices(&[0, 0, 0], 2).unwrap();
        let periods = MachinePeriods::compute(&app, &platform, &failures, &mapping).unwrap();
        assert_eq!(periods.of(MachineId(1)).value(), 0.0);
        assert!(periods.of(MachineId(0)).value() > 0.0);
    }

    #[test]
    fn system_period_helper_matches_breakdown() {
        let (app, platform, failures) = setup();
        let mapping = Mapping::from_indices(&[0, 1, 1], 2).unwrap();
        let full = MachinePeriods::compute(&app, &platform, &failures, &mapping).unwrap();
        let quick = system_period(&app, &platform, &failures, &mapping).unwrap();
        assert_eq!(full.system_period(), quick);
    }

    #[test]
    fn better_machine_choice_reduces_period() {
        let (app, platform, failures) = setup();
        // Putting the type-1 task on its fast machine (M1: 150) beats M0 (300).
        let good = Mapping::from_indices(&[0, 1, 0], 2).unwrap();
        let bad = Mapping::from_indices(&[1, 0, 1], 2).unwrap();
        let pg = system_period(&app, &platform, &failures, &good).unwrap();
        let pb = system_period(&app, &platform, &failures, &bad).unwrap();
        assert!(pg.value() < pb.value());
    }
}
