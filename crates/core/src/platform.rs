//! Target platform: machines and type-consistent processing times.
//!
//! The platform is a complete graph of `m` machines. Machine `Mᵤ` performs any
//! task of type `j` on one product in `w_{j,u}` time units; the paper requires
//! that two tasks of the same type have the same time on a given machine, which
//! this crate enforces *by construction* by storing times per (type, machine).
//! Communication times are neglected (or modelled as a dedicated task).

use crate::error::{ModelError, Result};
use crate::ids::{MachineId, TaskTypeId};

/// The set of machines and their per-type processing times.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    machine_count: usize,
    type_count: usize,
    /// Row-major `type_count × machine_count` matrix of processing times
    /// (milliseconds in the paper's experiments).
    times: Vec<f64>,
}

impl Platform {
    /// Builds a platform from a `type_count × machine_count` matrix:
    /// `type_times[j][u]` is the time for a task of type `j` on machine `u`.
    pub fn from_type_times(machine_count: usize, type_times: Vec<Vec<f64>>) -> Result<Self> {
        if machine_count == 0 {
            return Err(ModelError::NotEnoughMachines {
                machines: 0,
                required: 1,
            });
        }
        let type_count = type_times.len();
        let mut times = Vec::with_capacity(type_count * machine_count);
        for (ty, row) in type_times.iter().enumerate() {
            if row.len() != machine_count {
                return Err(ModelError::DimensionMismatch {
                    context: "Platform::from_type_times row",
                    expected: machine_count,
                    actual: row.len(),
                });
            }
            for (machine, &value) in row.iter().enumerate() {
                if !value.is_finite() || value <= 0.0 {
                    return Err(ModelError::InvalidProcessingTime { ty, machine, value });
                }
                times.push(value);
            }
        }
        Ok(Platform {
            machine_count,
            type_count,
            times,
        })
    }

    /// Builds a fully homogeneous platform: every type takes `time` on every
    /// machine (the setting of Theorem 1 / Theorem 2, `w_{i,u} = w`).
    pub fn homogeneous(machine_count: usize, type_count: usize, time: f64) -> Result<Self> {
        Self::from_type_times(machine_count, vec![vec![time; machine_count]; type_count])
    }

    /// Number of machines `m`.
    #[inline]
    pub fn machine_count(&self) -> usize {
        self.machine_count
    }

    /// Number of task types the platform knows processing times for.
    #[inline]
    pub fn type_count(&self) -> usize {
        self.type_count
    }

    /// Iterator over all machine identifiers.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> {
        (0..self.machine_count).map(MachineId)
    }

    /// Processing time `w_{j,u}` of one product of type `j` on machine `u`.
    #[inline]
    pub fn time(&self, ty: TaskTypeId, machine: MachineId) -> f64 {
        debug_assert!(ty.index() < self.type_count);
        debug_assert!(machine.index() < self.machine_count);
        self.times[ty.index() * self.machine_count + machine.index()]
    }

    /// All processing times of a machine, indexed by type.
    pub fn machine_times(&self, machine: MachineId) -> Vec<f64> {
        (0..self.type_count)
            .map(|ty| self.time(TaskTypeId(ty), machine))
            .collect()
    }

    /// All processing times for a type, indexed by machine.
    pub fn type_times(&self, ty: TaskTypeId) -> &[f64] {
        let start = ty.index() * self.machine_count;
        &self.times[start..start + self.machine_count]
    }

    /// `true` if every (type, machine) pair has the same processing time.
    pub fn is_homogeneous(&self) -> bool {
        match self.times.first() {
            None => true,
            Some(&first) => self.times.iter().all(|&t| t == first),
        }
    }

    /// The *heterogeneity level* of a machine — the standard deviation of its
    /// processing times over all types — used by heuristic H3 to order machines.
    pub fn heterogeneity(&self, machine: MachineId) -> f64 {
        let times = self.machine_times(machine);
        standard_deviation(&times)
    }

    /// Heterogeneity level of all machines, indexed by machine.
    pub fn heterogeneity_levels(&self) -> Vec<f64> {
        self.machines().map(|u| self.heterogeneity(u)).collect()
    }

    /// The slowest time for a type over all machines — pessimistic bound used
    /// by the binary-search heuristics to initialise the period upper bound.
    pub fn slowest_time_for_type(&self, ty: TaskTypeId) -> f64 {
        self.type_times(ty).iter().copied().fold(0.0, f64::max)
    }

    /// The fastest time for a type over all machines — optimistic bound used by
    /// the exact solvers.
    pub fn fastest_time_for_type(&self, ty: TaskTypeId) -> f64 {
        self.type_times(ty)
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Population standard deviation of a slice (0 for slices of length < 2).
pub(crate) fn standard_deviation(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let variance = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    variance.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> Platform {
        Platform::from_type_times(3, vec![vec![100.0, 200.0, 300.0], vec![50.0, 50.0, 50.0]])
            .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let p = platform();
        assert_eq!(p.machine_count(), 3);
        assert_eq!(p.type_count(), 2);
        assert_eq!(p.time(TaskTypeId(0), MachineId(2)), 300.0);
        assert_eq!(p.time(TaskTypeId(1), MachineId(0)), 50.0);
        assert_eq!(p.type_times(TaskTypeId(0)), &[100.0, 200.0, 300.0]);
        assert_eq!(p.machine_times(MachineId(1)), vec![200.0, 50.0]);
    }

    #[test]
    fn invalid_platforms_are_rejected() {
        assert!(matches!(
            Platform::from_type_times(0, vec![]).unwrap_err(),
            ModelError::NotEnoughMachines { .. }
        ));
        assert!(matches!(
            Platform::from_type_times(2, vec![vec![1.0]]).unwrap_err(),
            ModelError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            Platform::from_type_times(1, vec![vec![0.0]]).unwrap_err(),
            ModelError::InvalidProcessingTime { .. }
        ));
        assert!(matches!(
            Platform::from_type_times(1, vec![vec![-3.0]]).unwrap_err(),
            ModelError::InvalidProcessingTime { .. }
        ));
        assert!(matches!(
            Platform::from_type_times(1, vec![vec![f64::NAN]]).unwrap_err(),
            ModelError::InvalidProcessingTime { .. }
        ));
    }

    #[test]
    fn homogeneity_detection() {
        let p = Platform::homogeneous(4, 3, 250.0).unwrap();
        assert!(p.is_homogeneous());
        assert_eq!(p.time(TaskTypeId(2), MachineId(3)), 250.0);
        assert!(!platform().is_homogeneous());
        // A platform with no types is trivially homogeneous.
        let empty_types = Platform::from_type_times(2, vec![]).unwrap();
        assert!(empty_types.is_homogeneous());
    }

    #[test]
    fn heterogeneity_levels() {
        let p = platform();
        // Machine 0 times: [100, 50] -> std-dev 25; machine 2: [300, 50] -> 125.
        assert!((p.heterogeneity(MachineId(0)) - 25.0).abs() < 1e-9);
        assert!((p.heterogeneity(MachineId(2)) - 125.0).abs() < 1e-9);
        let levels = p.heterogeneity_levels();
        assert_eq!(levels.len(), 3);
        assert!(levels[2] > levels[0]);
        // Homogeneous machines have zero heterogeneity.
        let homo = Platform::homogeneous(2, 5, 10.0).unwrap();
        assert_eq!(homo.heterogeneity(MachineId(0)), 0.0);
    }

    #[test]
    fn extreme_times_per_type() {
        let p = platform();
        assert_eq!(p.slowest_time_for_type(TaskTypeId(0)), 300.0);
        assert_eq!(p.fastest_time_for_type(TaskTypeId(0)), 100.0);
        assert_eq!(p.slowest_time_for_type(TaskTypeId(1)), 50.0);
        assert_eq!(p.fastest_time_for_type(TaskTypeId(1)), 50.0);
    }

    #[test]
    fn standard_deviation_edge_cases() {
        assert_eq!(standard_deviation(&[]), 0.0);
        assert_eq!(standard_deviation(&[42.0]), 0.0);
        assert_eq!(standard_deviation(&[5.0, 5.0, 5.0]), 0.0);
        assert!((standard_deviation(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }
}
