//! Convenience re-exports of the most commonly used items.
//!
//! ```
//! use mf_core::prelude::*;
//! let app = Application::linear_chain(&[0, 1]).unwrap();
//! assert_eq!(app.task_count(), 2);
//! ```

pub use crate::application::{Application, ApplicationBuilder, Task};
pub use crate::demand::{demands, output_demands, DemandVector, OutputDemand};
pub use crate::error::{ModelError, Result};
pub use crate::failure::{FailureModel, FailureRate};
pub use crate::ids::{MachineId, TaskId, TaskTypeId};
pub use crate::incremental::{
    CommitFootprint, EvalCounters, Evaluation, EvaluatorSnapshot, IncrementalEvaluator,
    PartialAssignmentEvaluator, Topology, TopologyKind,
};
pub use crate::instance::Instance;
pub use crate::mapping::{Mapping, MappingKind};
pub use crate::period::{system_period, MachinePeriods, Period, Throughput};
pub use crate::platform::Platform;
pub use crate::split::{SplitMapping, SplitPeriods};
