//! Seed mixing: the SplitMix64 finalizer every component uses to derive
//! per-stream RNG seeds from structured coordinates.
//!
//! The experiment harness derives one seed per (scenario, repetition,
//! heuristic) grid cell, and the H6 local search derives its neighborhood
//! stream from the cell seed. Both must use the *same* mixer so that seeds
//! stay well spread when the inputs only differ in a few low bits — grid
//! coordinates are small integers packed into disjoint bit ranges, which a
//! weak mixer would map to correlated streams.

/// Mixes a 64-bit value into a well-dispersed seed.
///
/// This is the SplitMix64 finalizer (Steele, Lea, Flood — the same step
/// `rand` documents for `seed_from_u64`): an odd-constant add followed by two
/// xor-shift-multiply rounds and a closing xor-shift. It is bijective, so
/// distinct inputs can never collide, and it avalanches: flipping any input
/// bit flips each output bit with probability ~1/2.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_is_deterministic_and_distinct_on_small_inputs() {
        assert_eq!(splitmix64(0), splitmix64(0));
        let outputs: Vec<u64> = (0..4096u64).map(splitmix64).collect();
        let mut sorted = outputs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            outputs.len(),
            "bijective mixers cannot collide"
        );
    }

    /// Flipping any single input bit must flip roughly half of the output
    /// bits (avalanche). Averaged over inputs, the Hamming distance of a
    /// 64-bit avalanche is 32 with a small deviation.
    #[test]
    fn splitmix64_avalanches_on_every_input_bit() {
        let samples: Vec<u64> = (0..32u64)
            .map(|i| splitmix64(i.wrapping_mul(0xABCD)))
            .collect();
        for bit in 0..64 {
            let mut total = 0u32;
            for &z in &samples {
                total += (splitmix64(z) ^ splitmix64(z ^ (1u64 << bit))).count_ones();
            }
            let mean = f64::from(total) / samples.len() as f64;
            assert!(
                (24.0..=40.0).contains(&mean),
                "bit {bit}: mean avalanche {mean:.1} out of 64"
            );
        }
    }

    /// Consecutive inputs (the worst case for grid coordinates) must land in
    /// well-dispersed buckets: the low 16 bits of 4096 consecutive outputs
    /// should cover close to the birthday-problem expectation (~3969 distinct
    /// values out of 65536 buckets).
    #[test]
    fn splitmix64_disperses_consecutive_inputs() {
        let mut low_bits: Vec<u16> = (0..4096u64).map(|z| splitmix64(z) as u16).collect();
        low_bits.sort_unstable();
        low_bits.dedup();
        assert!(
            low_bits.len() > 3700,
            "only {} distinct low-16-bit buckets out of 4096 draws",
            low_bits.len()
        );
    }
}
