//! Split mappings — the paper's future-work extension (§8).
//!
//! The conclusion of the paper suggests letting "the instances of a same task
//! be computed by several machines", dividing a task's workload to improve the
//! throughput. A [`SplitMapping`] captures exactly that: for every task, a
//! distribution over machines describing which fraction of the task's output
//! is produced on which machine.
//!
//! The demand algebra generalises naturally: if task `Tᵢ` must deliver `dᵢ`
//! products downstream and routes a fraction `αᵢᵤ` of them through machine
//! `Mᵤ`, that machine must start `αᵢᵤ·dᵢ/(1 − f_{i,u})` products, each costing
//! `w_{i,u}`; `dᵢ` itself is the total number of products its successor must
//! start, summed over the successor's machines. A classical [`Mapping`]
//! is the degenerate split where every row of the distribution is a unit
//! vector.

use crate::application::Application;
use crate::error::{ModelError, Result};
use crate::ids::{MachineId, TaskId, TaskTypeId};
use crate::instance::Instance;
use crate::mapping::{Mapping, MappingKind};
use crate::period::Period;

/// A fractional allocation of every task over the machines.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitMapping {
    /// `weights[i][u]` = fraction of task `i`'s output produced on machine `u`.
    weights: Vec<Vec<f64>>,
    machine_count: usize,
}

/// Per-(task, machine) load breakdown of a split mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPeriods {
    /// `started[i][u]`: expected number of products task `i` starts on `u`.
    pub started: Vec<Vec<f64>>,
    /// Load of every machine.
    pub machine_loads: Vec<f64>,
}

impl SplitPeriods {
    /// The system period (maximum machine load).
    pub fn system_period(&self) -> Period {
        Period::new(self.machine_loads.iter().copied().fold(0.0, f64::max))
    }
}

impl SplitMapping {
    /// Builds a split mapping from explicit weights. Every row must be
    /// non-negative and sum to 1 (within `1e-9`).
    pub fn new(weights: Vec<Vec<f64>>, machine_count: usize) -> Result<Self> {
        for (i, row) in weights.iter().enumerate() {
            if row.len() != machine_count {
                return Err(ModelError::DimensionMismatch {
                    context: "SplitMapping row length",
                    expected: machine_count,
                    actual: row.len(),
                });
            }
            let sum: f64 = row.iter().sum();
            if row
                .iter()
                .any(|&w| !(0.0..=1.0 + 1e-9).contains(&w) || !w.is_finite())
                || (sum - 1.0).abs() > 1e-9
            {
                return Err(ModelError::RuleViolation {
                    kind: MappingKind::General,
                    detail: format!("task {i}: split weights must be a distribution (sum {sum})"),
                });
            }
        }
        Ok(SplitMapping {
            weights,
            machine_count,
        })
    }

    /// The degenerate split equivalent to a classical mapping.
    pub fn from_mapping(mapping: &Mapping) -> Self {
        let machine_count = mapping.machine_count();
        let weights = mapping
            .as_slice()
            .iter()
            .map(|&machine| {
                let mut row = vec![0.0; machine_count];
                row[machine.index()] = 1.0;
                row
            })
            .collect();
        SplitMapping {
            weights,
            machine_count,
        }
    }

    /// Number of tasks covered.
    pub fn task_count(&self) -> usize {
        self.weights.len()
    }

    /// Number of machines of the platform.
    pub fn machine_count(&self) -> usize {
        self.machine_count
    }

    /// The fraction of task `i`'s output produced on machine `u`.
    pub fn weight(&self, task: TaskId, machine: MachineId) -> f64 {
        self.weights[task.index()][machine.index()]
    }

    /// The machines actually used by a task (weight > 0).
    pub fn machines_of(&self, task: TaskId) -> Vec<MachineId> {
        self.weights[task.index()]
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.0)
            .map(|(u, _)| MachineId(u))
            .collect()
    }

    /// `true` when no machine receives work from two different task types
    /// (the specialized rule, extended to fractional allocations).
    pub fn is_specialized(&self, app: &Application) -> bool {
        let mut machine_type: Vec<Option<TaskTypeId>> = vec![None; self.machine_count];
        for (i, row) in self.weights.iter().enumerate() {
            let ty = app.task_type(TaskId(i));
            for (u, &w) in row.iter().enumerate() {
                if w > 0.0 {
                    match machine_type[u] {
                        None => machine_type[u] = Some(ty),
                        Some(existing) if existing != ty => return false,
                        Some(_) => {}
                    }
                }
            }
        }
        true
    }

    /// Computes the per-machine loads and the started-product breakdown.
    pub fn periods(&self, instance: &Instance) -> Result<SplitPeriods> {
        let app = instance.application();
        let n = app.task_count();
        if self.weights.len() != n {
            return Err(ModelError::IncompleteMapping {
                expected: n,
                actual: self.weights.len(),
            });
        }
        if self.machine_count != instance.machine_count() {
            return Err(ModelError::DimensionMismatch {
                context: "SplitMapping machine count",
                expected: instance.machine_count(),
                actual: self.machine_count,
            });
        }
        let m = self.machine_count;
        let mut started = vec![vec![0.0f64; m]; n];
        // Total products each task must start (filled in reverse topological order).
        let mut total_started = vec![0.0f64; n];
        for &task in app.topological_order().iter().rev() {
            let output_demand = match app.successor(task) {
                None => 1.0,
                Some(succ) => total_started[succ.index()],
            };
            let mut total = 0.0;
            for (u, &weight) in self.weights[task.index()].iter().enumerate() {
                if weight > 0.0 {
                    let x = weight * output_demand * instance.factor(task, MachineId(u));
                    started[task.index()][u] = x;
                    total += x;
                }
            }
            total_started[task.index()] = total;
        }
        let mut machine_loads = vec![0.0f64; m];
        for task in app.tasks() {
            for u in 0..m {
                let x = started[task.id.index()][u];
                if x > 0.0 {
                    machine_loads[u] += x * instance.time(task.id, MachineId(u));
                }
            }
        }
        Ok(SplitPeriods {
            started,
            machine_loads,
        })
    }

    /// Convenience: the system period of the split mapping.
    pub fn period(&self, instance: &Instance) -> Result<Period> {
        Ok(self.periods(instance)?.system_period())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{FailureModel, FailureRate};
    use crate::platform::Platform;

    fn instance() -> Instance {
        // 2-task chain of one type on two machines with different speeds.
        let app = Application::linear_chain(&[0, 0]).unwrap();
        let platform = Platform::from_type_times(2, vec![vec![100.0, 200.0]]).unwrap();
        let failures = FailureModel::uniform(2, 2, FailureRate::new(0.0).unwrap());
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn degenerate_split_matches_the_classical_period() {
        let inst = instance();
        let mapping = Mapping::from_indices(&[0, 1], 2).unwrap();
        let split = SplitMapping::from_mapping(&mapping);
        assert_eq!(split.task_count(), 2);
        assert_eq!(split.weight(TaskId(0), MachineId(0)), 1.0);
        let classical = inst.period(&mapping).unwrap().value();
        let fractional = split.period(&inst).unwrap().value();
        assert!((classical - fractional).abs() < 1e-12);
    }

    #[test]
    fn splitting_a_task_reduces_the_period() {
        let inst = instance();
        // Both tasks entirely on machine 0: period 200.
        let whole = SplitMapping::from_mapping(&Mapping::from_indices(&[0, 0], 2).unwrap());
        let whole_period = whole.period(&inst).unwrap().value();
        assert_eq!(whole_period, 200.0);
        // Split each task 2:1 between the fast (100 ms) and slow (200 ms)
        // machine: loads become 2/3*100*2 ≈ 133 and 1/3*200*2 ≈ 133.
        let split = SplitMapping::new(
            vec![vec![2.0 / 3.0, 1.0 / 3.0], vec![2.0 / 3.0, 1.0 / 3.0]],
            2,
        )
        .unwrap();
        let split_period = split.period(&inst).unwrap().value();
        assert!(split_period < whole_period);
        assert!((split_period - 400.0 / 3.0).abs() < 1e-9);
        assert!(split.is_specialized(inst.application()));
    }

    #[test]
    fn weights_must_form_a_distribution() {
        assert!(SplitMapping::new(vec![vec![0.5, 0.4]], 2).is_err());
        assert!(SplitMapping::new(vec![vec![1.5, -0.5]], 2).is_err());
        assert!(SplitMapping::new(vec![vec![0.5]], 2).is_err());
        assert!(SplitMapping::new(vec![vec![0.25, 0.75]], 2).is_ok());
    }

    #[test]
    fn failures_inflate_split_demands_per_machine() {
        // One task, demand 1, split over a reliable and an unreliable machine.
        let app = Application::linear_chain(&[0]).unwrap();
        let platform = Platform::from_type_times(2, vec![vec![100.0, 100.0]]).unwrap();
        let failures = FailureModel::from_matrix(vec![vec![0.0, 0.5]], 2).unwrap();
        let inst = Instance::new(app, platform, failures).unwrap();
        let split = SplitMapping::new(vec![vec![0.5, 0.5]], 2).unwrap();
        let breakdown = split.periods(&inst).unwrap();
        // Machine 0 starts 0.5 products, machine 1 starts 0.5 / 0.5 = 1.
        assert!((breakdown.started[0][0] - 0.5).abs() < 1e-12);
        assert!((breakdown.started[0][1] - 1.0).abs() < 1e-12);
        assert!((breakdown.machine_loads[1] - 100.0).abs() < 1e-12);
    }

    #[test]
    fn specialization_check_detects_mixing() {
        let app = Application::linear_chain(&[0, 1]).unwrap();
        // Machine 0 receives fractions of both types.
        let split = SplitMapping::new(vec![vec![1.0, 0.0], vec![0.5, 0.5]], 2).unwrap();
        assert!(!split.is_specialized(&app));
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let inst = instance();
        let too_few_tasks = SplitMapping::new(vec![vec![1.0, 0.0]], 2).unwrap();
        assert!(too_few_tasks.periods(&inst).is_err());
        let wrong_machines = SplitMapping::new(vec![vec![1.0]; 2], 1).unwrap();
        assert!(wrong_machines.periods(&inst).is_err());
    }

    #[test]
    fn machines_of_lists_positive_weights_only() {
        let split = SplitMapping::new(vec![vec![0.3, 0.0, 0.7]], 3).unwrap();
        assert_eq!(
            split.machines_of(TaskId(0)),
            vec![MachineId(0), MachineId(2)]
        );
    }
}
