//! A plain-text interchange format for problem instances and mappings.
//!
//! The format is deliberately simple — one record per line, `#` comments —
//! so that instances can be written by hand, versioned, and fed to the
//! command-line tool (`mf-cli`) without pulling a serialisation framework:
//!
//! ```text
//! # microfactory instance
//! tasks 4
//! machines 3
//! types 2
//! # task <index> <type> [successor <index>]
//! task 0 0 successor 1
//! task 1 1 successor 2
//! task 2 0 successor 3
//! task 3 1
//! # time <type> <machine> <milliseconds>
//! time 0 0 120.0
//! ...
//! # failure <task> <machine> <probability>
//! failure 0 0 0.01
//! ...
//! ```
//!
//! Every `time` and `failure` entry must be present (the format is explicit
//! rather than defaulted, so a missing number is an error, not a silent 0).

use crate::application::{Application, ApplicationBuilder};
use crate::error::{ModelError, Result};
use crate::failure::FailureModel;
use crate::ids::{MachineId, TaskId, TaskTypeId};
use crate::instance::Instance;
use crate::mapping::Mapping;
use crate::platform::Platform;
use std::fmt::Write as _;

/// Serialises an instance to the text format.
pub fn instance_to_text(instance: &Instance) -> String {
    let app = instance.application();
    let mut out = String::new();
    let _ = writeln!(out, "# microfactory instance");
    let _ = writeln!(out, "tasks {}", app.task_count());
    let _ = writeln!(out, "machines {}", instance.machine_count());
    let _ = writeln!(out, "types {}", app.type_count());
    for task in app.tasks() {
        match app.successor(task.id) {
            Some(succ) => {
                let _ = writeln!(
                    out,
                    "task {} {} successor {}",
                    task.id.index(),
                    task.ty.index(),
                    succ.index()
                );
            }
            None => {
                let _ = writeln!(out, "task {} {}", task.id.index(), task.ty.index());
            }
        }
    }
    for ty in 0..app.type_count() {
        for u in 0..instance.machine_count() {
            let _ = writeln!(
                out,
                "time {} {} {}",
                ty,
                u,
                instance.platform().time(TaskTypeId(ty), MachineId(u))
            );
        }
    }
    for task in app.tasks() {
        for u in 0..instance.machine_count() {
            let _ = writeln!(
                out,
                "failure {} {} {}",
                task.id.index(),
                u,
                instance.failure(task.id, MachineId(u)).value()
            );
        }
    }
    out
}

/// Serialises a mapping to the text format (`assign <task> <machine>` lines).
pub fn mapping_to_text(mapping: &Mapping) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# microfactory mapping");
    let _ = writeln!(out, "machines {}", mapping.machine_count());
    for (i, machine) in mapping.as_slice().iter().enumerate() {
        let _ = writeln!(out, "assign {} {}", i, machine.index());
    }
    out
}

fn parse_error(line_number: usize, detail: impl Into<String>) -> ModelError {
    ModelError::RuleViolation {
        kind: crate::mapping::MappingKind::General,
        detail: format!("line {line_number}: {}", detail.into()),
    }
}

fn parse_usize(token: Option<&str>, line: usize, what: &str) -> Result<usize> {
    token
        .and_then(|t| t.parse::<usize>().ok())
        .ok_or_else(|| parse_error(line, format!("expected {what} (unsigned integer)")))
}

fn parse_f64(token: Option<&str>, line: usize, what: &str) -> Result<f64> {
    token
        .and_then(|t| t.parse::<f64>().ok())
        .ok_or_else(|| parse_error(line, format!("expected {what} (number)")))
}

/// Parses an instance from the text format.
pub fn instance_from_text(text: &str) -> Result<Instance> {
    let mut task_count: Option<usize> = None;
    let mut machine_count: Option<usize> = None;
    let mut type_count: Option<usize> = None;
    let mut task_types: Vec<Option<usize>> = Vec::new();
    let mut successors: Vec<Option<usize>> = Vec::new();
    let mut times: Vec<Vec<Option<f64>>> = Vec::new();
    let mut failures: Vec<Vec<Option<f64>>> = Vec::new();

    for (index, raw_line) in text.lines().enumerate() {
        let line_number = index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line has a first token");
        match keyword {
            "tasks" => {
                let n = parse_usize(tokens.next(), line_number, "task count")?;
                task_count = Some(n);
                task_types = vec![None; n];
                successors = vec![None; n];
                failures = vec![Vec::new(); n];
            }
            "machines" => {
                machine_count = Some(parse_usize(tokens.next(), line_number, "machine count")?);
            }
            "types" => {
                let p = parse_usize(tokens.next(), line_number, "type count")?;
                type_count = Some(p);
                times = vec![Vec::new(); p];
            }
            "task" => {
                let n = task_count
                    .ok_or_else(|| parse_error(line_number, "`tasks` must come first"))?;
                let id = parse_usize(tokens.next(), line_number, "task index")?;
                if id >= n {
                    return Err(parse_error(
                        line_number,
                        format!("task index {id} out of range"),
                    ));
                }
                let ty = parse_usize(tokens.next(), line_number, "task type")?;
                task_types[id] = Some(ty);
                match tokens.next() {
                    None => {}
                    Some("successor") => {
                        let succ = parse_usize(tokens.next(), line_number, "successor index")?;
                        successors[id] = Some(succ);
                    }
                    Some(other) => {
                        return Err(parse_error(
                            line_number,
                            format!("unexpected token `{other}`"),
                        ))
                    }
                }
            }
            "time" => {
                let p = type_count
                    .ok_or_else(|| parse_error(line_number, "`types` must come first"))?;
                let m = machine_count
                    .ok_or_else(|| parse_error(line_number, "`machines` must come first"))?;
                let ty = parse_usize(tokens.next(), line_number, "type index")?;
                let machine = parse_usize(tokens.next(), line_number, "machine index")?;
                let value = parse_f64(tokens.next(), line_number, "processing time")?;
                if ty >= p || machine >= m {
                    return Err(parse_error(line_number, "time entry out of range"));
                }
                if times[ty].is_empty() {
                    times[ty] = vec![None; m];
                }
                times[ty][machine] = Some(value);
            }
            "failure" => {
                let n = task_count
                    .ok_or_else(|| parse_error(line_number, "`tasks` must come first"))?;
                let m = machine_count
                    .ok_or_else(|| parse_error(line_number, "`machines` must come first"))?;
                let task = parse_usize(tokens.next(), line_number, "task index")?;
                let machine = parse_usize(tokens.next(), line_number, "machine index")?;
                let value = parse_f64(tokens.next(), line_number, "failure probability")?;
                if task >= n || machine >= m {
                    return Err(parse_error(line_number, "failure entry out of range"));
                }
                if failures[task].is_empty() {
                    failures[task] = vec![None; m];
                }
                failures[task][machine] = Some(value);
            }
            other => {
                return Err(parse_error(
                    line_number,
                    format!("unknown keyword `{other}`"),
                ))
            }
        }
    }

    let n = task_count.ok_or_else(|| parse_error(0, "missing `tasks` header"))?;
    let m = machine_count.ok_or_else(|| parse_error(0, "missing `machines` header"))?;
    let p = type_count.ok_or_else(|| parse_error(0, "missing `types` header"))?;

    // Application.
    let mut builder = ApplicationBuilder::new();
    for (i, ty) in task_types.iter().enumerate() {
        let ty = ty.ok_or_else(|| parse_error(0, format!("task {i} is not declared")))?;
        if ty >= p {
            return Err(ModelError::UnknownType { ty, type_count: p });
        }
        builder.add_task(ty);
    }
    for (i, succ) in successors.iter().enumerate() {
        if let Some(succ) = succ {
            builder.add_dependency(TaskId(i), TaskId(*succ))?;
        }
    }
    let app = build_with_declared_types(builder, p)?;

    // Platform.
    let mut type_times = Vec::with_capacity(p);
    for (ty, row) in times.into_iter().enumerate() {
        if row.len() != m {
            return Err(parse_error(
                0,
                format!("missing `time` entries for type {ty}"),
            ));
        }
        let mut values = Vec::with_capacity(m);
        for (u, value) in row.into_iter().enumerate() {
            values.push(
                value.ok_or_else(|| parse_error(0, format!("missing `time {ty} {u}` entry")))?,
            );
        }
        type_times.push(values);
    }
    let platform = Platform::from_type_times(m, type_times)?;

    // Failures.
    let mut failure_rows = Vec::with_capacity(n);
    for (task, row) in failures.into_iter().enumerate() {
        if row.len() != m {
            return Err(parse_error(
                0,
                format!("missing `failure` entries for task {task}"),
            ));
        }
        let mut values = Vec::with_capacity(m);
        for (u, value) in row.into_iter().enumerate() {
            values
                .push(value.ok_or_else(|| {
                    parse_error(0, format!("missing `failure {task} {u}` entry"))
                })?);
        }
        failure_rows.push(values);
    }
    let failure_model = FailureModel::from_matrix(failure_rows, m)?;

    Instance::new(app, platform, failure_model)
}

/// Parses a mapping from the text format.
pub fn mapping_from_text(text: &str) -> Result<Mapping> {
    let mut machine_count: Option<usize> = None;
    let mut assignments: Vec<(usize, usize)> = Vec::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line_number = index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        match tokens.next().expect("non-empty line") {
            "machines" => {
                machine_count = Some(parse_usize(tokens.next(), line_number, "machine count")?);
            }
            "assign" => {
                let task = parse_usize(tokens.next(), line_number, "task index")?;
                let machine = parse_usize(tokens.next(), line_number, "machine index")?;
                assignments.push((task, machine));
            }
            other => {
                return Err(parse_error(
                    line_number,
                    format!("unknown keyword `{other}`"),
                ))
            }
        }
    }
    let m = machine_count.ok_or_else(|| parse_error(0, "missing `machines` header"))?;
    assignments.sort_by_key(|&(task, _)| task);
    for (expected, &(task, _)) in assignments.iter().enumerate() {
        if task != expected {
            return Err(parse_error(
                0,
                format!("missing `assign` entry for task {expected}"),
            ));
        }
    }
    Mapping::from_indices(&assignments.iter().map(|&(_, u)| u).collect::<Vec<_>>(), m)
}

/// Finalises an application while honouring the declared number of types even
/// when the highest types are unused.
fn build_with_declared_types(builder: ApplicationBuilder, declared: usize) -> Result<Application> {
    let app = builder.build()?;
    if app.type_count() > declared {
        return Err(ModelError::UnknownType {
            ty: app.type_count() - 1,
            type_count: declared,
        });
    }
    Ok(app)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instance() -> Instance {
        let app = Application::from_successors(&[0, 1, 0], &[Some(1), Some(2), None]).unwrap();
        let platform =
            Platform::from_type_times(2, vec![vec![100.0, 200.0], vec![300.0, 150.0]]).unwrap();
        let failures =
            FailureModel::from_matrix(vec![vec![0.01, 0.02], vec![0.03, 0.04], vec![0.0, 0.05]], 2)
                .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn instance_round_trip() {
        let original = sample_instance();
        let text = instance_to_text(&original);
        let parsed = instance_from_text(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn mapping_round_trip() {
        let mapping = Mapping::from_indices(&[0, 1, 0], 2).unwrap();
        let text = mapping_to_text(&mapping);
        let parsed = mapping_from_text(&text).unwrap();
        assert_eq!(parsed, mapping);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let original = sample_instance();
        let mut text = String::from("\n# leading comment\n\n");
        text.push_str(&instance_to_text(&original));
        text.push_str("\n# trailing comment\n");
        assert_eq!(instance_from_text(&text).unwrap(), original);
    }

    #[test]
    fn missing_entries_are_rejected() {
        let original = sample_instance();
        let text = instance_to_text(&original);
        // Drop the last failure line.
        let truncated: Vec<&str> = text.lines().take(text.lines().count() - 1).collect();
        assert!(instance_from_text(&truncated.join("\n")).is_err());
        // Drop the headers entirely.
        assert!(instance_from_text("task 0 0\n").is_err());
        assert!(instance_from_text("").is_err());
    }

    #[test]
    fn malformed_lines_are_rejected_with_line_numbers() {
        let err = instance_from_text("tasks two\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = instance_from_text("tasks 1\nmachines 1\ntypes 1\nbogus 1 2\n").unwrap_err();
        assert!(err.to_string().contains("bogus"));
        let err = mapping_from_text("machines 2\nassign 1 0\n").unwrap_err();
        assert!(err.to_string().contains("task 0"));
    }

    #[test]
    fn out_of_range_entries_are_rejected() {
        assert!(instance_from_text("tasks 1\nmachines 1\ntypes 1\ntask 5 0\n").is_err());
        assert!(
            instance_from_text("tasks 1\nmachines 1\ntypes 1\ntask 0 0\ntime 3 0 10\n").is_err()
        );
        assert!(instance_from_text(
            "tasks 1\nmachines 1\ntypes 1\ntask 0 0\ntime 0 0 10\nfailure 0 4 0.1\n"
        )
        .is_err());
        // Task declared with a type beyond the declared count.
        assert!(instance_from_text(
            "tasks 1\nmachines 1\ntypes 1\ntask 0 3\ntime 0 0 10\nfailure 0 0 0.0\n"
        )
        .is_err());
    }
}
