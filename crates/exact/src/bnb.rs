//! Combinatorial branch-and-bound for the specialized-mapping problem.
//!
//! This solver plays the role of ILOG CPLEX in the paper's experiments
//! (Figures 10–12): it computes the **optimal specialized mapping** of small
//! instances, and degrades gracefully (reporting a non-proven incumbent) when
//! its node budget is exhausted — mirroring the paper's observation that the
//! MIP "is not able to find solutions anymore" beyond ~15 tasks.
//!
//! The search walks the application backwards (so every task's product demand
//! is exact at placement time, just like the heuristics), branches on the
//! admissible machines of the current task and prunes with two bounds:
//!
//! * the current maximum machine load (a valid lower bound on any completion);
//! * a packing bound: the final total load is at least the current total plus,
//!   for every remaining task, its smallest possible contribution on any
//!   machine; dividing by `m` bounds the final makespan from below.
//!
//! Node scoring goes through a per-search-path
//! [`PartialAssignmentEvaluator`]: placements and backtracks update the
//! staged machine loads in `O(log m)` and the load-maximum bound is read in
//! `O(1)` from its tournament tree, instead of the `O(m)` from-scratch scan
//! every node used to pay. The staged evaluator performs the bit-identical
//! float operations the scan-based bookkeeping did, so the explored tree —
//! and therefore the returned optimum — is unchanged
//! ([`BnbConfig::legacy_bounds`] keeps the scan alive for the
//! `search_strategies` bench to quantify the difference).
//!
//! The incumbent is seeded with the H4w heuristic so that pruning is effective
//! from the first node.

use mf_core::prelude::*;
use mf_heuristics::{H4wFastestMachine, Heuristic};

/// Configuration of the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnbConfig {
    /// Maximum number of search nodes (task placements explored).
    pub max_nodes: u64,
    /// Relative optimality tolerance: a node is pruned when its bound is not
    /// better than `incumbent · (1 − tolerance)`.
    pub tolerance: f64,
    /// Score nodes with the legacy `O(m)` max-load scan instead of the
    /// staged evaluator's `O(1)` tournament-tree root. Both paths explore
    /// the bit-identical tree; this hook exists so the `search_strategies`
    /// bench (and any regression hunt) can compare per-node cost.
    pub legacy_bounds: bool,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            max_nodes: 20_000_000,
            tolerance: 1e-9,
            legacy_bounds: false,
        }
    }
}

impl BnbConfig {
    /// A configuration with a custom node budget.
    pub fn with_node_budget(max_nodes: u64) -> Self {
        BnbConfig {
            max_nodes,
            ..Default::default()
        }
    }
}

/// Result of the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct BnbOutcome {
    /// The best specialized mapping found.
    pub mapping: Mapping,
    /// Its period.
    pub period: Period,
    /// `true` if the search finished and the mapping is proven optimal.
    pub proven_optimal: bool,
    /// Number of nodes explored.
    pub nodes: u64,
}

struct SearchContext<'a> {
    instance: &'a Instance,
    /// Tasks in placement (reverse topological) order.
    order: Vec<TaskId>,
    /// Per task, the smallest possible contribution `d_min · w/(1−f)` over all
    /// machines, where `d_min` uses the most reliable downstream machines.
    min_contribution: Vec<f64>,
    /// One reusable candidate buffer per depth — the recursion at depth `d`
    /// only ever touches buffer `d`, so nodes allocate nothing.
    candidate_scratch: Vec<Vec<(MachineId, f64)>>,
    config: BnbConfig,
    best_period: f64,
    best_mapping: Option<Vec<MachineId>>,
    nodes: u64,
    aborted: bool,
}

struct PartialState {
    assignment: Vec<Option<MachineId>>,
    machine_type: Vec<Option<TaskTypeId>>,
    /// Staged per-machine loads, running total and load maximum — the
    /// per-search-path incremental evaluator.
    loads: PartialAssignmentEvaluator,
    demand: Vec<f64>,
    free_machines: usize,
    remaining_per_type: Vec<usize>,
    seated: Vec<bool>,
}

impl PartialState {
    fn new(instance: &Instance) -> Self {
        let n = instance.task_count();
        let m = instance.machine_count();
        let p = instance.type_count();
        let mut remaining_per_type = vec![0usize; p];
        for task in instance.application().tasks() {
            remaining_per_type[task.ty.index()] += 1;
        }
        PartialState {
            assignment: vec![None; n],
            machine_type: vec![None; m],
            loads: PartialAssignmentEvaluator::new(m),
            demand: vec![0.0; n],
            free_machines: m,
            remaining_per_type,
            seated: vec![false; p],
        }
    }

    fn output_demand(&self, instance: &Instance, task: TaskId) -> f64 {
        match instance.application().successor(task) {
            None => 1.0,
            Some(succ) => self.demand[succ.index()],
        }
    }

    fn unseated_count(&self) -> usize {
        self.remaining_per_type
            .iter()
            .zip(&self.seated)
            .filter(|(&r, &s)| r > 0 && !s)
            .count()
    }

    fn admissible(&self, instance: &Instance, task: TaskId, machine: MachineId) -> bool {
        let ty = instance.application().task_type(task);
        match self.machine_type[machine.index()] {
            Some(existing) => existing == ty,
            None => {
                if self.seated[ty.index()] {
                    self.free_machines > self.unseated_count()
                } else {
                    true
                }
            }
        }
    }

    /// The maximum staged machine load: `O(1)` from the evaluator's
    /// tournament tree, or the legacy `O(m)` scan when asked to (both yield
    /// the identical `f64`, so pruning decisions cannot differ).
    #[inline]
    fn max_load(&self, legacy: bool) -> f64 {
        if legacy {
            (0..self.loads_len())
                .map(|u| self.loads.load_of(MachineId(u)))
                .fold(0.0, f64::max)
        } else {
            self.loads.period().value()
        }
    }

    #[inline]
    fn loads_len(&self) -> usize {
        self.machine_type.len()
    }
}

impl<'a> SearchContext<'a> {
    fn search(&mut self, depth: usize, state: &mut PartialState, remaining_min: f64) {
        if self.aborted {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.config.max_nodes {
            self.aborted = true;
            return;
        }
        let legacy = self.config.legacy_bounds;

        if depth == self.order.len() {
            let period = state.max_load(legacy);
            if period < self.best_period {
                self.best_period = period;
                self.best_mapping = Some(
                    state
                        .assignment
                        .iter()
                        .map(|a| a.expect("complete"))
                        .collect(),
                );
            }
            return;
        }

        // Bounds.
        let m = self.instance.machine_count() as f64;
        let packing_bound = (state.loads.total_load() + remaining_min) / m;
        let bound = state.max_load(legacy).max(packing_bound);
        if bound >= self.best_period * (1.0 - self.config.tolerance) {
            return;
        }

        let task = self.order[depth];
        let ty = self.instance.application().task_type(task);
        let demand = state.output_demand(self.instance, task);
        let next_remaining_min = remaining_min - self.min_contribution[depth];

        // Candidate machines, cheapest incremental load first so that good
        // incumbents appear early in the depth-first search.
        let mut candidates = std::mem::take(&mut self.candidate_scratch[depth]);
        candidates.clear();
        candidates.extend(
            self.instance
                .platform()
                .machines()
                .filter(|&u| state.admissible(self.instance, task, u))
                .map(|u| (u, demand * self.instance.effective_time(task, u))),
        );
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        for &(machine, increment) in &candidates {
            let u = machine.index();
            // Apply.
            let was_free = state.machine_type[u].is_none();
            if was_free {
                state.machine_type[u] = Some(ty);
                state.free_machines -= 1;
            }
            let was_seated = state.seated[ty.index()];
            state.seated[ty.index()] = true;
            state.remaining_per_type[ty.index()] -= 1;
            let x = demand * self.instance.factor(task, machine);
            state.demand[task.index()] = x;
            state.loads.place(machine, increment);
            state.assignment[task.index()] = Some(machine);

            self.search(depth + 1, state, next_remaining_min);

            // Undo.
            state.assignment[task.index()] = None;
            state.loads.unplace();
            state.demand[task.index()] = 0.0;
            state.remaining_per_type[ty.index()] += 1;
            state.seated[ty.index()] = was_seated;
            if was_free {
                state.machine_type[u] = None;
                state.free_machines += 1;
            }
            if self.aborted {
                break;
            }
        }
        self.candidate_scratch[depth] = candidates;
    }
}

/// Finds the optimal specialized mapping of an instance by branch-and-bound.
///
/// Returns an error if the instance admits no specialized mapping at all
/// (more task types than machines).
pub fn branch_and_bound(instance: &Instance, config: BnbConfig) -> Result<BnbOutcome> {
    // Seed the incumbent with H4w (the paper's best heuristic); fall back to
    // any greedy placement if it fails, and bail out if nothing is feasible.
    let seed = H4wFastestMachine
        .map(instance)
        .map_err(|_| ModelError::NotEnoughMachines {
            machines: instance.machine_count(),
            required: instance.type_count(),
        })?;
    let seed_period = instance.period(&seed)?.value();

    // Smallest possible contribution of every task, paired with the placement
    // order. Demand lower bounds are mapping-independent.
    let order = instance.application().reverse_topological_order();
    let lower_demand = instance.demand_lower_bounds()?;
    let min_contribution: Vec<f64> = order
        .iter()
        .map(|&task| {
            let d = match instance.application().successor(task) {
                None => 1.0,
                Some(succ) => lower_demand[succ.index()],
            };
            let best_eff = instance
                .platform()
                .machines()
                .map(|u| instance.effective_time(task, u))
                .fold(f64::INFINITY, f64::min);
            d * best_eff
        })
        .collect();
    let total_min: f64 = min_contribution.iter().sum();

    let depths = order.len();
    let mut context = SearchContext {
        instance,
        order,
        min_contribution,
        candidate_scratch: vec![Vec::with_capacity(instance.machine_count()); depths],
        config,
        best_period: seed_period,
        best_mapping: Some(seed.as_slice().to_vec()),
        nodes: 0,
        aborted: false,
    };
    let mut state = PartialState::new(instance);
    context.search(0, &mut state, total_min);

    let assignment = context
        .best_mapping
        .expect("seeded with a feasible mapping");
    let mapping = Mapping::new(assignment, instance.machine_count())?;
    let period = instance.period(&mapping)?;
    Ok(BnbOutcome {
        mapping,
        period,
        proven_optimal: !context.aborted,
        nodes: context.nodes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::brute_force_specialized;

    fn random_instance(n: usize, m: usize, p: usize, seed: u64) -> Instance {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let types: Vec<usize> = (0..n).map(|i| i % p).collect();
        let app = Application::linear_chain(&types).unwrap();
        let times = (0..p)
            .map(|_| (0..m).map(|_| 100.0 + 900.0 * next()).collect())
            .collect();
        let platform = Platform::from_type_times(m, times).unwrap();
        let failures = FailureModel::from_matrix(
            (0..n)
                .map(|_| (0..m).map(|_| 0.005 + 0.015 * next()).collect())
                .collect(),
            m,
        )
        .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        for seed in 0..8 {
            let inst = random_instance(6, 3, 2, seed);
            let exact = brute_force_specialized(&inst).unwrap();
            let bnb = branch_and_bound(&inst, BnbConfig::default()).unwrap();
            assert!(bnb.proven_optimal);
            assert!(
                (bnb.period.value() - exact.period.value()).abs() < 1e-6,
                "seed {seed}: bnb {} != brute force {}",
                bnb.period.value(),
                exact.period.value()
            );
            assert!(inst.is_specialized(&bnb.mapping));
        }
    }

    #[test]
    fn evaluator_backed_and_legacy_bounds_explore_the_identical_tree() {
        // The staged evaluator must not change a single pruning decision:
        // node counts, mappings and period bits all agree with the legacy
        // O(m)-scan scoring on every instance.
        for seed in 0..6 {
            let inst = random_instance(9, 4, 2, 1000 + seed);
            let fast = branch_and_bound(&inst, BnbConfig::default()).unwrap();
            let legacy = branch_and_bound(
                &inst,
                BnbConfig {
                    legacy_bounds: true,
                    ..BnbConfig::default()
                },
            )
            .unwrap();
            assert_eq!(fast.nodes, legacy.nodes, "seed {seed}: tree diverged");
            assert_eq!(fast.mapping, legacy.mapping, "seed {seed}");
            assert_eq!(
                fast.period.value().to_bits(),
                legacy.period.value().to_bits(),
                "seed {seed}: period bits diverged"
            );
            assert_eq!(fast.proven_optimal, legacy.proven_optimal);
        }
    }

    #[test]
    fn never_worse_than_the_seeding_heuristic() {
        for seed in 0..5 {
            let inst = random_instance(12, 5, 3, seed);
            let h4w = H4wFastestMachine.period(&inst).unwrap().value();
            let bnb = branch_and_bound(&inst, BnbConfig::default()).unwrap();
            assert!(bnb.period.value() <= h4w + 1e-9);
        }
    }

    #[test]
    fn node_budget_degrades_gracefully() {
        let inst = random_instance(14, 5, 3, 99);
        let outcome = branch_and_bound(&inst, BnbConfig::with_node_budget(50)).unwrap();
        assert!(!outcome.proven_optimal);
        // The incumbent is still a valid specialized mapping.
        assert!(inst.is_specialized(&outcome.mapping));
        assert!(outcome.nodes <= 51);
    }

    #[test]
    fn infeasible_instances_are_rejected() {
        let inst = random_instance(4, 2, 3, 1); // p=3 > m=2
        assert!(branch_and_bound(&inst, BnbConfig::default()).is_err());
    }

    #[test]
    fn handles_in_tree_applications() {
        // The Figure 1 application (a join) with 3 machines.
        let app = Application::paper_figure1();
        let p = app.type_count();
        let n = app.task_count();
        let platform = Platform::from_type_times(
            3,
            (0..p)
                .map(|t| vec![100.0 + 50.0 * t as f64, 200.0, 150.0])
                .collect(),
        )
        .unwrap();
        let failures = FailureModel::uniform(n, 3, FailureRate::new(0.02).unwrap());
        let inst = Instance::new(app, platform, failures).unwrap();
        let exact = brute_force_specialized(&inst).unwrap();
        let bnb = branch_and_bound(&inst, BnbConfig::default()).unwrap();
        assert!((bnb.period.value() - exact.period.value()).abs() < 1e-6);
    }
}
