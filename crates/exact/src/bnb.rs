//! Combinatorial branch-and-bound for the specialized-mapping problem.
//!
//! This solver plays the role of ILOG CPLEX in the paper's experiments
//! (Figures 10–12): it computes the **optimal specialized mapping** of small
//! instances, and degrades gracefully (reporting a non-proven incumbent) when
//! its node budget is exhausted — mirroring the paper's observation that the
//! MIP "is not able to find solutions anymore" beyond ~15 tasks.
//!
//! The search walks the application backwards (so every task's product demand
//! is exact at placement time, just like the heuristics), branches on the
//! admissible machines of the current task and prunes with two bounds:
//!
//! * the current maximum machine load (a valid lower bound on any completion);
//! * a packing bound: the final total load is at least the current total plus,
//!   for every remaining task, its smallest possible contribution on any
//!   machine; dividing by `m` bounds the final makespan from below.
//!
//! Node scoring goes through a per-search-path
//! [`PartialAssignmentEvaluator`]: placements and backtracks update the
//! staged machine loads in `O(log m)` and the load-maximum bound is read in
//! `O(1)` from its tournament tree, instead of the `O(m)` from-scratch scan
//! every node used to pay. The staged evaluator performs the bit-identical
//! float operations the scan-based bookkeeping did, so the explored tree —
//! and therefore the returned optimum — is unchanged
//! ([`BnbConfig::legacy_bounds`] keeps the scan alive for the
//! `search_strategies` bench to quantify the difference).
//!
//! The incumbent is seeded with the H4w heuristic so that pruning is effective
//! from the first node.

use mf_core::prelude::*;
use mf_heuristics::{H4wFastestMachine, Heuristic};
use mf_lp::simplex::{resolve_tightened, solve as lp_solve, LpSolution};
use mf_lp::{ConstraintSense, LpProblem, Objective, VariableId};

/// Configuration of the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BnbConfig {
    /// Maximum number of search nodes (task placements explored).
    pub max_nodes: u64,
    /// Relative optimality tolerance: a node is pruned when its bound is not
    /// better than `incumbent · (1 − tolerance)`.
    pub tolerance: f64,
    /// Score nodes with the legacy `O(m)` max-load scan instead of the
    /// staged evaluator's `O(1)` tournament-tree root. Both paths explore
    /// the bit-identical tree; this hook exists so the `search_strategies`
    /// bench (and any regression hunt) can compare per-node cost.
    pub legacy_bounds: bool,
    /// Prune with the load-splitting LP relaxation on top of the packing
    /// bound (see [`LpBoundState`]'s module comments): each node that the
    /// packing bound fails to prune solves an LP whose optimum certifiably
    /// dominates it, warm-started from the parent node's optimum down the
    /// search path. The explored tree shrinks (dramatically on `m ≫ p`
    /// instances); the optimum found is unchanged. Off by default — on
    /// small trees the packing bound alone is cheaper.
    pub lp_bounds: bool,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            max_nodes: 20_000_000,
            tolerance: 1e-9,
            legacy_bounds: false,
            lp_bounds: false,
        }
    }
}

impl BnbConfig {
    /// A configuration with a custom node budget.
    pub fn with_node_budget(max_nodes: u64) -> Self {
        BnbConfig {
            max_nodes,
            ..Default::default()
        }
    }
}

/// Result of the branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct BnbOutcome {
    /// The best specialized mapping found.
    pub mapping: Mapping,
    /// Its period.
    pub period: Period,
    /// `true` if the search finished and the mapping is proven optimal.
    pub proven_optimal: bool,
    /// Number of nodes explored.
    pub nodes: u64,
    /// LP relaxations solved from scratch (0 unless
    /// [`BnbConfig::lp_bounds`]).
    pub lp_solves: u64,
    /// LP solves answered by reusing the parent node's still-feasible
    /// optimum (zero simplex pivots).
    pub lp_reuses: u64,
}

/// The filtered load-splitting LP relaxation driving
/// [`BnbConfig::lp_bounds`].
///
/// Variables: `x[i][u] ≥ 0` — the fraction of task `i` carried by machine
/// `u` — and the makespan `K`. Rows:
///
/// * per machine `u`: `Σ_i c[i][u]·x[i][u] − K ≤ −δ_u`, where `c[i][u]` is
///   task `i`'s *lower-bound* contribution on `u` (its mapping-independent
///   output-demand lower bound times the effective time) and `δ_u`
///   accumulates, for every task already seated on `u`, the gap between its
///   exact staged contribution and `c`;
/// * per task `i`: `Σ_u x[i][u] = 1`.
///
/// Unfiltered (the root call of [`lp_root_bound`]), the minimum `K` is a
/// certified lower bound on every mapping's period, dominating the packing
/// bound `(total_load + Σ remaining min-contributions)/m` (sum the machine
/// rows). Inside the search the relaxation is *filtered* in the
/// Lenstra–Shmoys–Tardos style against the incumbent threshold `θ =
/// incumbent·(1−tolerance)`: a placement `(i, u)` with `load_u + c[i][u] ≥
/// θ`, or on a machine dedicated to another type, cannot appear in any
/// specialized completion beating the incumbent, so `x[i][u]` is fixed to
/// zero. The filtered optimum lower-bounds every completion better than the
/// threshold it was filtered at, so `optimum ≥ θ` — or outright
/// infeasibility — proves no such completion exists and prunes the node.
/// This is far stronger than the unfiltered splitting bound: remaining
/// tasks can no longer escape fractionally onto machines they could never
/// integrally use.
///
/// The problem is built **once**; walking down the search path only
/// tightens it — seating fixes an `x` row to an integral point
/// (`set_bounds`) and lowers one machine row's right-hand side
/// (`set_constraint_rhs`); filtering adds zero-fixings (loads only grow and
/// the threshold only drops, so ancestors' filters stay valid). Pure
/// feasible-region shrinkage means the nearest ancestor's optimum is a
/// sound warm start ([`resolve_tightened`]): when still feasible it is
/// provably still optimal and costs zero pivots — which happens exactly
/// when the branched placement was already integral in the parent optimum,
/// the common case deep in a well-filtered tree.
struct LpBoundState {
    problem: LpProblem,
    /// `x` variable ids, row-major `task · m + machine`.
    x: Vec<VariableId>,
    /// Whether an `x` variable is currently fixed (by a seat or a filter).
    fixed: Vec<bool>,
    /// Constraint indices of the machine rows (one per machine).
    machine_rows: Vec<usize>,
    /// Current correction `δ_u` per machine.
    corrections: Vec<f64>,
    /// Lower-bound contribution `c[i][u]`, row-major.
    costs: Vec<f64>,
    machines: usize,
    solves: u64,
    reuses: u64,
}

/// Undo record of one [`LpBoundState::seat`]: the seated task's previous
/// per-machine bounds and fixed flags (a filter may already have zeroed some
/// of them at a shallower node).
struct LpSeat {
    task: usize,
    machine: usize,
    correction: f64,
    prior: Vec<(f64, Option<f64>, bool)>,
}

/// Verdict of one [`LpBoundState::bound`] call.
enum LpVerdict {
    /// The relaxation solved; the optimum lower-bounds every completion
    /// beating the threshold the filters were applied at.
    Bound(LpSolution),
    /// The filtered relaxation is infeasible: no completion can beat the
    /// incumbent threshold. Prune.
    Infeasible,
    /// The simplex failed (iteration cap); fall back to the cheap bounds.
    Unavailable,
}

impl LpBoundState {
    fn new(instance: &Instance) -> Result<Self> {
        let n = instance.task_count();
        let m = instance.machine_count();
        let lower_demand = instance.demand_lower_bounds()?;
        let app = instance.application();
        let mut costs = vec![0.0; n * m];
        for i in 0..n {
            let task = TaskId(i);
            let d = match app.successor(task) {
                None => 1.0,
                Some(succ) => lower_demand[succ.index()],
            };
            for u in 0..m {
                costs[i * m + u] = d * instance.effective_time(task, MachineId(u));
            }
        }

        let mut problem = LpProblem::new(Objective::Minimize);
        let x: Vec<VariableId> = (0..n * m)
            .map(|j| problem.add_variable(format!("x{}_{}", j / m, j % m)))
            .collect();
        let k = problem.add_variable("K");
        problem.set_objective_coefficient(k, 1.0);
        let machine_rows: Vec<usize> = (0..m)
            .map(|u| {
                let mut terms: Vec<(VariableId, f64)> =
                    (0..n).map(|i| (x[i * m + u], costs[i * m + u])).collect();
                terms.push((k, -1.0));
                problem.add_constraint(terms, ConstraintSense::LessEqual, 0.0)
            })
            .collect();
        for i in 0..n {
            let terms: Vec<(VariableId, f64)> = (0..m).map(|u| (x[i * m + u], 1.0)).collect();
            problem.add_constraint(terms, ConstraintSense::Equal, 1.0);
        }

        Ok(LpBoundState {
            problem,
            x,
            fixed: vec![false; n * m],
            machine_rows,
            corrections: vec![0.0; m],
            costs,
            machines: m,
            solves: 0,
            reuses: 0,
        })
    }

    /// Tightens the LP for seating `task` on `machine` with the exact staged
    /// contribution `increment`. Returns the undo record.
    fn seat(&mut self, task: TaskId, machine: MachineId, increment: f64) -> LpSeat {
        let (i, w) = (task.index(), machine.index());
        let mut prior = Vec::with_capacity(self.machines);
        for u in 0..self.machines {
            let j = i * self.machines + u;
            let var = &self.problem.variables()[self.x[j].index()];
            prior.push((var.lower, var.upper, self.fixed[j]));
            let (lo, hi) = if u == w { (1.0, 1.0) } else { (0.0, 0.0) };
            self.problem.set_bounds(self.x[j], lo, Some(hi));
            self.fixed[j] = true;
        }
        // The exact contribution is at least the lower-bound cost; clamp the
        // correction at zero so float noise can never *loosen* a row.
        let correction = (increment - self.costs[i * self.machines + w]).max(0.0);
        self.corrections[w] += correction;
        self.problem
            .set_constraint_rhs(self.machine_rows[w], -self.corrections[w]);
        LpSeat {
            task: i,
            machine: w,
            correction,
            prior,
        }
    }

    /// Reverts one [`seat`](Self::seat).
    fn unseat(&mut self, undo: LpSeat) {
        for (u, &(lower, upper, was_fixed)) in undo.prior.iter().enumerate() {
            let j = undo.task * self.machines + u;
            self.problem.set_bounds(self.x[j], lower, upper);
            self.fixed[j] = was_fixed;
        }
        self.corrections[undo.machine] -= undo.correction;
        self.problem.set_constraint_rhs(
            self.machine_rows[undo.machine],
            -self.corrections[undo.machine],
        );
    }

    /// Applies the incumbent filters at a node: every still-free placement
    /// `(i, u)` that no specialized completion beating `threshold` can use —
    /// its machine is dedicated to another type, or its exact load floor
    /// `load_u + c[i][u]` already reaches the threshold — is fixed to zero.
    /// Returns the variables newly fixed, for [`undo_filters`]
    /// (ancestor filters stay valid deeper: loads only grow and the
    /// threshold only drops, so they are left in place for the subtree).
    ///
    /// [`undo_filters`]: Self::undo_filters
    fn apply_filters(
        &mut self,
        instance: &Instance,
        state: &PartialState,
        threshold: f64,
    ) -> Vec<usize> {
        let app = instance.application();
        let mut filtered = Vec::new();
        for i in 0..instance.task_count() {
            if state.assignment[i].is_some() {
                continue;
            }
            let ty = app.task_type(TaskId(i));
            for u in 0..self.machines {
                let j = i * self.machines + u;
                if self.fixed[j] {
                    continue;
                }
                let dedicated_elsewhere =
                    matches!(state.machine_type[u], Some(existing) if existing != ty);
                let cannot_fit = state.loads.load_of(MachineId(u)) + self.costs[j] >= threshold;
                if dedicated_elsewhere || cannot_fit {
                    self.problem.set_bounds(self.x[j], 0.0, Some(0.0));
                    self.fixed[j] = true;
                    filtered.push(j);
                }
            }
        }
        filtered
    }

    /// Reverts one [`apply_filters`](Self::apply_filters).
    fn undo_filters(&mut self, filtered: Vec<usize>) {
        for j in filtered {
            self.problem.set_bounds(self.x[j], 0.0, None);
            self.fixed[j] = false;
        }
    }

    /// Solves the current (filtered, tightened) relaxation, warm-started
    /// from the nearest ancestor optimum when available.
    fn bound(&mut self, hint: Option<&LpSolution>) -> LpVerdict {
        let outcome = match hint {
            Some(previous) => resolve_tightened(&self.problem, previous).map(|warm| {
                if warm.reused {
                    self.reuses += 1;
                } else {
                    self.solves += 1;
                }
                warm.solution
            }),
            None => lp_solve(&self.problem).inspect(|_| {
                self.solves += 1;
            }),
        };
        match outcome {
            Ok(solution) => LpVerdict::Bound(solution),
            Err(mf_lp::LpError::Infeasible) => LpVerdict::Infeasible,
            Err(_) => LpVerdict::Unavailable,
        }
    }
}

struct SearchContext<'a> {
    instance: &'a Instance,
    /// Tasks in placement (reverse topological) order.
    order: Vec<TaskId>,
    /// Per task, the smallest possible contribution `d_min · w/(1−f)` over all
    /// machines, where `d_min` uses the most reliable downstream machines.
    min_contribution: Vec<f64>,
    /// One reusable candidate buffer per depth — the recursion at depth `d`
    /// only ever touches buffer `d`, so nodes allocate nothing.
    candidate_scratch: Vec<Vec<(MachineId, f64)>>,
    config: BnbConfig,
    best_period: f64,
    best_mapping: Option<Vec<MachineId>>,
    nodes: u64,
    aborted: bool,
    /// The incrementally tightened LP relaxation (when
    /// [`BnbConfig::lp_bounds`] is on).
    lp: Option<LpBoundState>,
}

struct PartialState {
    assignment: Vec<Option<MachineId>>,
    machine_type: Vec<Option<TaskTypeId>>,
    /// Staged per-machine loads, running total and load maximum — the
    /// per-search-path incremental evaluator.
    loads: PartialAssignmentEvaluator,
    demand: Vec<f64>,
    free_machines: usize,
    remaining_per_type: Vec<usize>,
    seated: Vec<bool>,
}

impl PartialState {
    fn new(instance: &Instance) -> Self {
        let n = instance.task_count();
        let m = instance.machine_count();
        let p = instance.type_count();
        let mut remaining_per_type = vec![0usize; p];
        for task in instance.application().tasks() {
            remaining_per_type[task.ty.index()] += 1;
        }
        PartialState {
            assignment: vec![None; n],
            machine_type: vec![None; m],
            loads: PartialAssignmentEvaluator::new(m),
            demand: vec![0.0; n],
            free_machines: m,
            remaining_per_type,
            seated: vec![false; p],
        }
    }

    fn output_demand(&self, instance: &Instance, task: TaskId) -> f64 {
        match instance.application().successor(task) {
            None => 1.0,
            Some(succ) => self.demand[succ.index()],
        }
    }

    fn unseated_count(&self) -> usize {
        self.remaining_per_type
            .iter()
            .zip(&self.seated)
            .filter(|(&r, &s)| r > 0 && !s)
            .count()
    }

    fn admissible(&self, instance: &Instance, task: TaskId, machine: MachineId) -> bool {
        let ty = instance.application().task_type(task);
        match self.machine_type[machine.index()] {
            Some(existing) => existing == ty,
            None => {
                if self.seated[ty.index()] {
                    self.free_machines > self.unseated_count()
                } else {
                    true
                }
            }
        }
    }

    /// The maximum staged machine load: `O(1)` from the evaluator's
    /// tournament tree, or the legacy `O(m)` scan when asked to (both yield
    /// the identical `f64`, so pruning decisions cannot differ).
    #[inline]
    fn max_load(&self, legacy: bool) -> f64 {
        if legacy {
            (0..self.loads_len())
                .map(|u| self.loads.load_of(MachineId(u)))
                .fold(0.0, f64::max)
        } else {
            self.loads.period().value()
        }
    }

    #[inline]
    fn loads_len(&self) -> usize {
        self.machine_type.len()
    }
}

impl<'a> SearchContext<'a> {
    fn search(
        &mut self,
        depth: usize,
        state: &mut PartialState,
        remaining_min: f64,
        lp_inherited: f64,
        lp_hint: Option<&LpSolution>,
    ) {
        if self.aborted {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.config.max_nodes {
            self.aborted = true;
            return;
        }
        let legacy = self.config.legacy_bounds;

        if depth == self.order.len() {
            let period = state.max_load(legacy);
            if period < self.best_period {
                self.best_period = period;
                self.best_mapping = Some(
                    state
                        .assignment
                        .iter()
                        .map(|a| a.expect("complete"))
                        .collect(),
                );
            }
            return;
        }

        // Cheap bounds first: max load, packing, and the LP value inherited
        // from an ancestor. The ancestor's filtered optimum lower-bounds
        // every completion beating the threshold it was filtered at (≥ the
        // current one), so comparing it against the current threshold is a
        // sound prune.
        let m = self.instance.machine_count() as f64;
        let packing_bound = (state.loads.total_load() + remaining_min) / m;
        let bound = state.max_load(legacy).max(packing_bound).max(lp_inherited);
        if bound >= self.best_period * (1.0 - self.config.tolerance) {
            return;
        }

        // LP tier, only consulted when the cheap bounds failed to prune:
        // filter the relaxation against the incumbent, then re-solve it
        // warm-started from the nearest ancestor optimum. The filters stay
        // applied for the whole subtree (they only get more valid deeper)
        // and are undone on backtrack. A simplex failure falls back to the
        // cheap bounds — pruning less is always sound.
        let mut node_solution: Option<LpSolution> = None;
        let mut lp_bound = lp_inherited;
        let mut node_filters: Option<Vec<usize>> = None;
        if let Some(lp) = self.lp.as_mut() {
            let threshold = self.best_period * (1.0 - self.config.tolerance);
            let filters = lp.apply_filters(self.instance, state, threshold);
            let pruned = match lp.bound(lp_hint) {
                LpVerdict::Bound(solution) => {
                    lp_bound = lp_bound.max(solution.objective);
                    node_solution = Some(solution);
                    lp_bound >= threshold
                }
                LpVerdict::Infeasible => true,
                LpVerdict::Unavailable => false,
            };
            if pruned {
                lp.undo_filters(filters);
                return;
            }
            node_filters = Some(filters);
        }

        let task = self.order[depth];
        let ty = self.instance.application().task_type(task);
        let demand = state.output_demand(self.instance, task);
        let next_remaining_min = remaining_min - self.min_contribution[depth];

        // Candidate machines, cheapest incremental load first so that good
        // incumbents appear early in the depth-first search.
        let mut candidates = std::mem::take(&mut self.candidate_scratch[depth]);
        candidates.clear();
        candidates.extend(
            self.instance
                .platform()
                .machines()
                .filter(|&u| state.admissible(self.instance, task, u))
                .map(|u| (u, demand * self.instance.effective_time(task, u))),
        );
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        for &(machine, increment) in &candidates {
            let u = machine.index();
            // Apply.
            let was_free = state.machine_type[u].is_none();
            if was_free {
                state.machine_type[u] = Some(ty);
                state.free_machines -= 1;
            }
            let was_seated = state.seated[ty.index()];
            state.seated[ty.index()] = true;
            state.remaining_per_type[ty.index()] -= 1;
            let x = demand * self.instance.factor(task, machine);
            state.demand[task.index()] = x;
            state.loads.place(machine, increment);
            state.assignment[task.index()] = Some(machine);
            let lp_undo = self.lp.as_mut().map(|lp| lp.seat(task, machine, increment));

            self.search(
                depth + 1,
                state,
                next_remaining_min,
                lp_bound,
                node_solution.as_ref().or(lp_hint),
            );

            // Undo.
            if let Some(undo) = lp_undo {
                self.lp
                    .as_mut()
                    .expect("lp state outlives the recursion")
                    .unseat(undo);
            }
            state.assignment[task.index()] = None;
            state.loads.unplace();
            state.demand[task.index()] = 0.0;
            state.remaining_per_type[ty.index()] += 1;
            state.seated[ty.index()] = was_seated;
            if was_free {
                state.machine_type[u] = None;
                state.free_machines += 1;
            }
            if self.aborted {
                break;
            }
        }
        if let Some(filters) = node_filters {
            self.lp
                .as_mut()
                .expect("lp state outlives the recursion")
                .undo_filters(filters);
        }
        self.candidate_scratch[depth] = candidates;
    }
}

/// Finds the optimal specialized mapping of an instance by branch-and-bound.
///
/// Returns an error if the instance admits no specialized mapping at all
/// (more task types than machines).
pub fn branch_and_bound(instance: &Instance, config: BnbConfig) -> Result<BnbOutcome> {
    // Seed the incumbent with H4w (the paper's best heuristic); fall back to
    // any greedy placement if it fails, and bail out if nothing is feasible.
    let seed = H4wFastestMachine
        .map(instance)
        .map_err(|_| ModelError::NotEnoughMachines {
            machines: instance.machine_count(),
            required: instance.type_count(),
        })?;
    branch_and_bound_seeded(instance, config, &seed)
}

/// [`branch_and_bound`] with a caller-supplied incumbent instead of the H4w
/// seed. The anytime solver uses this to hand the exact phase whatever its
/// heuristic phase found: a tighter incumbent prunes more of the tree, and
/// the search can only return a mapping at least as good as `seed`.
///
/// `seed` must be a **specialized** mapping of `instance` (one type per
/// machine) — branch-and-bound enumerates specialized mappings only, so a
/// general seed could undercut every specialized completion and make the
/// search return the seed itself as a false "proven optimum".
pub fn branch_and_bound_seeded(
    instance: &Instance,
    config: BnbConfig,
    seed: &Mapping,
) -> Result<BnbOutcome> {
    let seed_period = instance.period(seed)?.value();

    // Smallest possible contribution of every task, paired with the placement
    // order. Demand lower bounds are mapping-independent.
    let order = instance.application().reverse_topological_order();
    let lower_demand = instance.demand_lower_bounds()?;
    let min_contribution: Vec<f64> = order
        .iter()
        .map(|&task| {
            let d = match instance.application().successor(task) {
                None => 1.0,
                Some(succ) => lower_demand[succ.index()],
            };
            let best_eff = instance
                .platform()
                .machines()
                .map(|u| instance.effective_time(task, u))
                .fold(f64::INFINITY, f64::min);
            d * best_eff
        })
        .collect();
    let total_min: f64 = min_contribution.iter().sum();

    let depths = order.len();
    let mut context = SearchContext {
        instance,
        order,
        min_contribution,
        candidate_scratch: vec![Vec::with_capacity(instance.machine_count()); depths],
        config,
        best_period: seed_period,
        best_mapping: Some(seed.as_slice().to_vec()),
        nodes: 0,
        aborted: false,
        lp: if config.lp_bounds {
            Some(LpBoundState::new(instance)?)
        } else {
            None
        },
    };
    let mut state = PartialState::new(instance);
    context.search(0, &mut state, total_min, 0.0, None);

    let assignment = context
        .best_mapping
        .expect("seeded with a feasible mapping");
    let mapping = Mapping::new(assignment, instance.machine_count())?;
    let period = instance.period(&mapping)?;
    let (lp_solves, lp_reuses) = context
        .lp
        .as_ref()
        .map_or((0, 0), |lp| (lp.solves, lp.reuses));
    Ok(BnbOutcome {
        mapping,
        period,
        proven_optimal: !context.aborted,
        nodes: context.nodes,
        lp_solves,
        lp_reuses,
    })
}

/// The root load-splitting LP relaxation's optimum: a certified lower bound
/// on the period of **every** mapping of the instance (the relaxation does
/// not encode the specialized rule, so the bound holds for general mappings
/// too). `None` when the simplex fails or the instance has no demand lower
/// bounds; callers fall back to the packing bound.
///
/// This is the bound the anytime solver streams before branch-and-bound
/// tightens it, and the one [`BnbConfig::lp_bounds`] applies at every node.
pub fn lp_root_bound(instance: &Instance) -> Option<f64> {
    let mut lp = LpBoundState::new(instance).ok()?;
    match lp.bound(None) {
        LpVerdict::Bound(solution) => Some(solution.objective),
        LpVerdict::Infeasible | LpVerdict::Unavailable => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::brute_force_specialized;

    fn random_instance(n: usize, m: usize, p: usize, seed: u64) -> Instance {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let types: Vec<usize> = (0..n).map(|i| i % p).collect();
        let app = Application::linear_chain(&types).unwrap();
        let times = (0..p)
            .map(|_| (0..m).map(|_| 100.0 + 900.0 * next()).collect())
            .collect();
        let platform = Platform::from_type_times(m, times).unwrap();
        let failures = FailureModel::from_matrix(
            (0..n)
                .map(|_| (0..m).map(|_| 0.005 + 0.015 * next()).collect())
                .collect(),
            m,
        )
        .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        for seed in 0..8 {
            let inst = random_instance(6, 3, 2, seed);
            let exact = brute_force_specialized(&inst).unwrap();
            let bnb = branch_and_bound(&inst, BnbConfig::default()).unwrap();
            assert!(bnb.proven_optimal);
            assert!(
                (bnb.period.value() - exact.period.value()).abs() < 1e-6,
                "seed {seed}: bnb {} != brute force {}",
                bnb.period.value(),
                exact.period.value()
            );
            assert!(inst.is_specialized(&bnb.mapping));
        }
    }

    #[test]
    fn evaluator_backed_and_legacy_bounds_explore_the_identical_tree() {
        // The staged evaluator must not change a single pruning decision:
        // node counts, mappings and period bits all agree with the legacy
        // O(m)-scan scoring on every instance.
        for seed in 0..6 {
            let inst = random_instance(9, 4, 2, 1000 + seed);
            let fast = branch_and_bound(&inst, BnbConfig::default()).unwrap();
            let legacy = branch_and_bound(
                &inst,
                BnbConfig {
                    legacy_bounds: true,
                    ..BnbConfig::default()
                },
            )
            .unwrap();
            assert_eq!(fast.nodes, legacy.nodes, "seed {seed}: tree diverged");
            assert_eq!(fast.mapping, legacy.mapping, "seed {seed}");
            assert_eq!(
                fast.period.value().to_bits(),
                legacy.period.value().to_bits(),
                "seed {seed}: period bits diverged"
            );
            assert_eq!(fast.proven_optimal, legacy.proven_optimal);
        }
    }

    #[test]
    fn never_worse_than_the_seeding_heuristic() {
        for seed in 0..5 {
            let inst = random_instance(12, 5, 3, seed);
            let h4w = H4wFastestMachine.period(&inst).unwrap().value();
            let bnb = branch_and_bound(&inst, BnbConfig::default()).unwrap();
            assert!(bnb.period.value() <= h4w + 1e-9);
        }
    }

    #[test]
    fn node_budget_degrades_gracefully() {
        let inst = random_instance(14, 5, 3, 99);
        let outcome = branch_and_bound(&inst, BnbConfig::with_node_budget(50)).unwrap();
        assert!(!outcome.proven_optimal);
        // The incumbent is still a valid specialized mapping.
        assert!(inst.is_specialized(&outcome.mapping));
        assert!(outcome.nodes <= 51);
    }

    #[test]
    fn lp_bounds_find_the_same_optimum() {
        for seed in 0..6 {
            let inst = random_instance(8, 4, 2, 400 + seed);
            let packing = branch_and_bound(&inst, BnbConfig::default()).unwrap();
            let lp = branch_and_bound(
                &inst,
                BnbConfig {
                    lp_bounds: true,
                    ..BnbConfig::default()
                },
            )
            .unwrap();
            assert!(lp.proven_optimal && packing.proven_optimal);
            assert!(
                (lp.period.value() - packing.period.value()).abs() <= 1e-9,
                "seed {seed}: LP optimum {} != packing optimum {}",
                lp.period.value(),
                packing.period.value()
            );
            assert!(
                lp.nodes <= packing.nodes,
                "seed {seed}: the LP bound dominates the packing bound, so \
                 its tree cannot be larger ({} vs {})",
                lp.nodes,
                packing.nodes
            );
            assert!(lp.lp_solves > 0, "seed {seed}: the LP never ran");
            assert_eq!(packing.lp_solves, 0);
            assert_eq!(packing.lp_reuses, 0);
        }
    }

    /// The blocking CI floor of the LP bound: on an `m ≫ p` instance —
    /// where the packing bound is weakest, because dividing by the many
    /// machines washes out the load concentration — the LP tree must be at
    /// most half the packing tree, at the same proven optimum.
    #[test]
    fn lp_bounds_halve_the_tree_on_many_machine_instances() {
        let inst = random_instance(12, 10, 3, 7);
        let packing = branch_and_bound(&inst, BnbConfig::default()).unwrap();
        let lp = branch_and_bound(
            &inst,
            BnbConfig {
                lp_bounds: true,
                ..BnbConfig::default()
            },
        )
        .unwrap();
        assert!(packing.proven_optimal && lp.proven_optimal);
        assert!((lp.period.value() - packing.period.value()).abs() <= 1e-9);
        assert!(
            lp.nodes * 2 <= packing.nodes,
            "LP bound visited {} nodes, packing bound {} — the ≤ 50% floor \
             regressed",
            lp.nodes,
            packing.nodes
        );
        assert!(
            lp.lp_reuses > 0,
            "warm starts never fired on a 12-task search path"
        );
    }

    #[test]
    fn root_lp_bound_is_a_valid_lower_bound_dominating_packing() {
        for seed in 0..6 {
            let inst = random_instance(8, 5, 2, 700 + seed);
            let bound = lp_root_bound(&inst).expect("feasible relaxation");
            let exact = brute_force_specialized(&inst).unwrap();
            assert!(
                bound <= exact.period.value() + 1e-6,
                "seed {seed}: root LP bound {bound} exceeds the optimum {}",
                exact.period.value()
            );
            // Dominates the root packing bound: Σ min-contributions / m.
            let lower_demand = inst.demand_lower_bounds().unwrap();
            let packing: f64 = inst
                .application()
                .tasks()
                .map(|task| {
                    let d = match inst.application().successor(task.id) {
                        None => 1.0,
                        Some(succ) => lower_demand[succ.index()],
                    };
                    let best = inst
                        .platform()
                        .machines()
                        .map(|u| inst.effective_time(task.id, u))
                        .fold(f64::INFINITY, f64::min);
                    d * best
                })
                .sum::<f64>()
                / inst.machine_count() as f64;
            assert!(
                bound >= packing - 1e-6,
                "seed {seed}: root LP bound {bound} below the packing bound {packing}"
            );
        }
    }

    #[test]
    fn infeasible_instances_are_rejected() {
        let inst = random_instance(4, 2, 3, 1); // p=3 > m=2
        assert!(branch_and_bound(&inst, BnbConfig::default()).is_err());
    }

    #[test]
    fn handles_in_tree_applications() {
        // The Figure 1 application (a join) with 3 machines.
        let app = Application::paper_figure1();
        let p = app.type_count();
        let n = app.task_count();
        let platform = Platform::from_type_times(
            3,
            (0..p)
                .map(|t| vec![100.0 + 50.0 * t as f64, 200.0, 150.0])
                .collect(),
        )
        .unwrap();
        let failures = FailureModel::uniform(n, 3, FailureRate::new(0.02).unwrap());
        let inst = Instance::new(app, platform, failures).unwrap();
        let exact = brute_force_specialized(&inst).unwrap();
        let bnb = branch_and_bound(&inst, BnbConfig::default()).unwrap();
        assert!((bnb.period.value() - exact.period.value()).abs() < 1e-6);
    }
}
