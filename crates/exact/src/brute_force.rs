//! Exhaustive enumeration of mappings.
//!
//! Only usable on tiny instances (the number of general mappings is `mⁿ`), but
//! invaluable as the ground truth against which the branch-and-bound, the MIP
//! and the heuristics are validated.

use mf_core::prelude::*;

/// The best mapping found by exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveOutcome {
    /// The optimal mapping.
    pub mapping: Mapping,
    /// Its period.
    pub period: Period,
    /// Number of complete mappings evaluated.
    pub evaluated: usize,
}

fn enumerate(instance: &Instance, kind: MappingKind) -> Result<ExhaustiveOutcome> {
    let n = instance.task_count();
    let m = instance.machine_count();
    let mut assignment = vec![0usize; n];
    let mut best: Option<(f64, Mapping)> = None;
    let mut evaluated = 0usize;

    loop {
        let mapping = Mapping::from_indices(&assignment, m)?;
        let acceptable = match kind {
            MappingKind::General => true,
            MappingKind::Specialized => instance.is_specialized(&mapping),
            MappingKind::OneToOne => mapping.is_one_to_one(),
        };
        if acceptable {
            evaluated += 1;
            let period = instance.period(&mapping)?.value();
            if best.as_ref().map_or(true, |(p, _)| period < *p) {
                best = Some((period, mapping));
            }
        }
        // Next assignment in lexicographic order.
        let mut i = 0;
        loop {
            if i == n {
                let (period, mapping) = best.ok_or(ModelError::NotEnoughMachines {
                    machines: m,
                    required: match kind {
                        MappingKind::OneToOne => n,
                        _ => instance.type_count(),
                    },
                })?;
                return Ok(ExhaustiveOutcome {
                    mapping,
                    period: Period::new(period),
                    evaluated,
                });
            }
            assignment[i] += 1;
            if assignment[i] < m {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// Optimal **general** mapping by exhaustive search (`mⁿ` candidates).
pub fn brute_force_general(instance: &Instance) -> Result<ExhaustiveOutcome> {
    enumerate(instance, MappingKind::General)
}

/// Optimal **specialized** mapping by exhaustive search.
pub fn brute_force_specialized(instance: &Instance) -> Result<ExhaustiveOutcome> {
    enumerate(instance, MappingKind::Specialized)
}

/// Optimal **one-to-one** mapping by exhaustive search.
pub fn brute_force_one_to_one(instance: &Instance) -> Result<ExhaustiveOutcome> {
    enumerate(instance, MappingKind::OneToOne)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance() -> Instance {
        let app = Application::linear_chain(&[0, 1, 0]).unwrap();
        let platform = Platform::from_type_times(
            3,
            vec![vec![100.0, 250.0, 400.0], vec![300.0, 120.0, 200.0]],
        )
        .unwrap();
        let failures = FailureModel::from_matrix(
            vec![
                vec![0.01, 0.05, 0.02],
                vec![0.03, 0.01, 0.08],
                vec![0.02, 0.02, 0.01],
            ],
            3,
        )
        .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn hierarchy_of_mapping_rules() {
        // More freedom can only improve (or keep) the optimal period.
        let inst = small_instance();
        let general = brute_force_general(&inst).unwrap();
        let specialized = brute_force_specialized(&inst).unwrap();
        let one_to_one = brute_force_one_to_one(&inst).unwrap();
        assert!(general.period.value() <= specialized.period.value() + 1e-9);
        assert!(specialized.period.value() <= one_to_one.period.value() + 1e-9);
        assert!(inst.is_specialized(&specialized.mapping));
        assert!(one_to_one.mapping.is_one_to_one());
        // 3 tasks on 3 machines: 27 general mappings.
        assert_eq!(general.evaluated, 27);
        assert_eq!(one_to_one.evaluated, 6);
    }

    #[test]
    fn one_to_one_needs_enough_machines() {
        let app = Application::linear_chain(&[0, 0, 0]).unwrap();
        let platform = Platform::homogeneous(2, 1, 100.0).unwrap();
        let failures = FailureModel::uniform(3, 2, FailureRate::ZERO);
        let inst = Instance::new(app, platform, failures).unwrap();
        assert!(brute_force_one_to_one(&inst).is_err());
        // The specialized problem is still solvable.
        assert!(brute_force_specialized(&inst).is_ok());
    }

    #[test]
    fn failure_free_homogeneous_optimum_is_balanced() {
        // 4 identical tasks, 2 identical machines: optimum splits 2/2.
        let app = Application::linear_chain(&[0, 0, 0, 0]).unwrap();
        let platform = Platform::homogeneous(2, 1, 100.0).unwrap();
        let failures = FailureModel::uniform(4, 2, FailureRate::ZERO);
        let inst = Instance::new(app, platform, failures).unwrap();
        let best = brute_force_specialized(&inst).unwrap();
        assert!((best.period.value() - 200.0).abs() < 1e-9);
    }
}
