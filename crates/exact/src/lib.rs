//! # mf-exact — exact solvers for the micro-factory mapping problems
//!
//! Four complementary exact methods, matching the paper's toolbox:
//!
//! * [`brute_force`] — exhaustive enumeration, the ground truth used by the
//!   test-suite to validate every other solver on tiny instances;
//! * [`bnb`] — a combinatorial branch-and-bound specialised to the
//!   specialized-mapping problem, the workhorse that plays the role of CPLEX in
//!   the experiments (Figures 10–12);
//! * [`mip`] — the paper's Mixed Integer Program (§6.1, constraints (3)–(8))
//!   built on the [`mf_lp`] simplex/branch-and-bound substrate;
//! * [`one_to_one`] — the polynomial optimal one-to-one mappings: Theorem 1's
//!   Hungarian reduction for linear chains on homogeneous machines, and the
//!   bottleneck-assignment optimum used as the reference of Figure 9 when
//!   failures are attached to tasks only.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bnb;
pub mod brute_force;
pub mod mip;
pub mod one_to_one;

pub use bnb::{branch_and_bound, branch_and_bound_seeded, lp_root_bound, BnbConfig, BnbOutcome};
pub use brute_force::{
    brute_force_general, brute_force_one_to_one, brute_force_specialized, ExhaustiveOutcome,
};
pub use mip::{solve_specialized_mip, MipConfig, MipOutcome, MipSolveStatus};
pub use one_to_one::{
    optimal_one_to_one_bottleneck, optimal_one_to_one_chain_homogeneous, OneToOneOutcome,
};
