//! The paper's Mixed Integer Program for specialized mappings (§6.1).
//!
//! Variables (for task `i`, machine `u`, type `j`):
//!
//! * `a_{i,u} ∈ {0,1}` — task `i` is executed by machine `u`;
//! * `t_{u,j} ∈ {0,1}` — machine `u` is specialized to type `j`;
//! * `x_i ≥ 0` — expected number of products task `i` must start;
//! * `y_{i,u} ≥ 0` — linearisation of `a_{i,u}·x_i`;
//! * `K ≥ 0` — the period, to be minimised.
//!
//! Constraints (numbered as in the paper):
//!
//! * (3) every task runs on exactly one machine;
//! * (4) every machine is specialized to at most one type;
//! * (5) a task can only run on a machine specialized to its type;
//! * (6) `x_i ≥ x_succ(i)/(1 − f_{i,u}) − (1 − a_{i,u})·MAXxᵢ`;
//! * (7) `Σᵢ y_{i,u}·w_{i,u} ≤ K` for every machine;
//! * (8) the three standard product-linearisation inequalities for `y`.
//!
//! The paper solves the MIP with CPLEX; here it runs on the branch-and-bound
//! of [`mf_lp`]. It is only practical for small instances — exactly the regime
//! of Figures 10–12 — and is cross-validated against the combinatorial
//! branch-and-bound and brute force in the test-suite.

use mf_core::prelude::*;
use mf_lp::{
    BranchRule, ConstraintSense, LpProblem, MipProblem, MipStatus, Objective, SolverBudget,
    VariableId,
};

/// Configuration for the MIP solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MipConfig {
    /// Budget handed to the LP-based branch-and-bound.
    pub budget: SolverBudget,
    /// Branching rule for the LP-based branch-and-bound.
    pub branch_rule: BranchRule,
}

impl Default for MipConfig {
    fn default() -> Self {
        MipConfig {
            budget: SolverBudget::nodes(200_000),
            branch_rule: BranchRule::MostFractional,
        }
    }
}

/// Outcome status of the MIP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipSolveStatus {
    /// Solved to proven optimality.
    Optimal,
    /// A feasible mapping was found but the budget ran out before the proof.
    Feasible,
    /// No mapping was found within the budget (the paper reports such points
    /// as "the MIP is not able to find solutions anymore").
    Failed,
}

/// Result of solving the specialized-mapping MIP.
#[derive(Debug, Clone, PartialEq)]
pub struct MipOutcome {
    /// Solve status.
    pub status: MipSolveStatus,
    /// The mapping extracted from the `a_{i,u}` variables, if any.
    pub mapping: Option<Mapping>,
    /// The period of that mapping (re-evaluated exactly on the model, not the
    /// LP objective), if any.
    pub period: Option<Period>,
    /// The raw MIP objective value `K`, if any.
    pub objective: Option<f64>,
    /// Number of branch-and-bound nodes explored by the LP solver.
    pub nodes: usize,
}

/// Builds and solves the paper's MIP for an instance.
pub fn solve_specialized_mip(instance: &Instance, config: MipConfig) -> Result<MipOutcome> {
    let n = instance.task_count();
    let m = instance.machine_count();
    let p = instance.type_count();
    let max_x = instance.demand_upper_bounds()?;

    let mut lp = LpProblem::new(Objective::Minimize);

    // Variables.
    let a: Vec<Vec<VariableId>> = (0..n)
        .map(|i| {
            (0..m)
                .map(|u| lp.add_binary_variable(format!("a_{i}_{u}")))
                .collect()
        })
        .collect();
    let t: Vec<Vec<VariableId>> = (0..m)
        .map(|u| {
            (0..p)
                .map(|j| lp.add_binary_variable(format!("t_{u}_{j}")))
                .collect()
        })
        .collect();
    let x: Vec<VariableId> = (0..n)
        .map(|i| {
            let v = lp.add_variable(format!("x_{i}"));
            // x_i can never exceed its mapping-independent upper bound.
            lp.set_bounds(v, 0.0, Some(max_x[i] + 1.0));
            v
        })
        .collect();
    let y: Vec<Vec<VariableId>> = (0..n)
        .map(|i| {
            (0..m)
                .map(|u| lp.add_variable(format!("y_{i}_{u}")))
                .collect()
        })
        .collect();
    let k = lp.add_variable("K");
    lp.set_objective_coefficient(k, 1.0);

    // (3) each task on exactly one machine.
    for a_row in &a {
        let terms = a_row.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(terms, ConstraintSense::Equal, 1.0);
    }

    // (4) each machine specialized to at most one type.
    for t_row in &t {
        let terms = t_row.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(terms, ConstraintSense::LessEqual, 1.0);
    }

    // (5) a_{i,u} ≤ t_{u, t(i)}.
    for (i, a_row) in a.iter().enumerate() {
        let ty = instance.application().task_type(TaskId(i)).index();
        for (u, &a_iu) in a_row.iter().enumerate() {
            lp.add_constraint(
                vec![(a_iu, 1.0), (t[u][ty], -1.0)],
                ConstraintSense::LessEqual,
                0.0,
            );
        }
    }

    // (6) demand propagation along the precedence graph.
    for i in 0..n {
        let task = TaskId(i);
        let successor = instance.application().successor(task);
        for (u, &a_iu) in a[i].iter().enumerate() {
            let factor = instance.factor(task, MachineId(u));
            // x_i - F·x_succ + MAXx_i·a_{i,u} ≥ MAXx_i - ... rearranged:
            // x_i ≥ F·x_succ − (1 − a_{i,u})·MAXx_i
            // ⇔ x_i − F·x_succ − MAXx_i·a_{i,u} ≥ −MAXx_i   (x_succ constant 1 for sinks)
            match successor {
                Some(succ) => {
                    lp.add_constraint(
                        vec![(x[i], 1.0), (x[succ.index()], -factor), (a_iu, -max_x[i])],
                        ConstraintSense::GreaterEqual,
                        -max_x[i],
                    );
                }
                None => {
                    lp.add_constraint(
                        vec![(x[i], 1.0), (a_iu, -max_x[i])],
                        ConstraintSense::GreaterEqual,
                        factor - max_x[i],
                    );
                }
            }
        }
    }

    // (7) machine periods bounded by K.
    for (u, machine) in (0..m).map(|u| (u, MachineId(u))) {
        let mut terms: Vec<(VariableId, f64)> = y
            .iter()
            .enumerate()
            .map(|(i, y_row)| (y_row[u], instance.time(TaskId(i), machine)))
            .collect();
        terms.push((k, -1.0));
        lp.add_constraint(terms, ConstraintSense::LessEqual, 0.0);
    }

    // (8) linearisation of y_{i,u} = a_{i,u}·x_i.
    for (i, y_row) in y.iter().enumerate() {
        for (u, &y_iu) in y_row.iter().enumerate() {
            lp.add_constraint(
                vec![(y_iu, 1.0), (a[i][u], -max_x[i])],
                ConstraintSense::LessEqual,
                0.0,
            );
            lp.add_constraint(
                vec![(y_iu, 1.0), (x[i], -1.0)],
                ConstraintSense::LessEqual,
                0.0,
            );
            lp.add_constraint(
                vec![(y_iu, 1.0), (x[i], -1.0), (a[i][u], -max_x[i])],
                ConstraintSense::GreaterEqual,
                -max_x[i],
            );
        }
    }

    // Integrality of the indicators.
    let mut mip = MipProblem::new(lp);
    mip.set_all_integer(a.iter().flatten().copied());
    mip.set_all_integer(t.iter().flatten().copied());

    let solution = mip
        .solve_with(config.budget, config.branch_rule)
        .map_err(|e| ModelError::RuleViolation {
            kind: MappingKind::Specialized,
            detail: format!("LP solver failed: {e}"),
        })?;

    match (&solution.status, &solution.values) {
        (MipStatus::Optimal | MipStatus::Feasible, Some(values)) => {
            // Extract the mapping from the a_{i,u} indicators.
            let mut assignment = Vec::with_capacity(n);
            for i in 0..n {
                let machine = (0..m)
                    .max_by(|&u1, &u2| {
                        values[a[i][u1].index()]
                            .partial_cmp(&values[a[i][u2].index()])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("at least one machine");
                assignment.push(machine);
            }
            let mapping = Mapping::from_indices(&assignment, m)?;
            let period = instance.period(&mapping)?;
            let status = if solution.status == MipStatus::Optimal {
                MipSolveStatus::Optimal
            } else {
                MipSolveStatus::Feasible
            };
            Ok(MipOutcome {
                status,
                mapping: Some(mapping),
                period: Some(period),
                objective: solution.objective,
                nodes: solution.nodes,
            })
        }
        _ => Ok(MipOutcome {
            status: MipSolveStatus::Failed,
            mapping: None,
            period: None,
            objective: None,
            nodes: solution.nodes,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::{branch_and_bound, BnbConfig};
    use crate::brute_force::brute_force_specialized;

    fn random_instance(n: usize, m: usize, p: usize, seed: u64) -> Instance {
        let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let types: Vec<usize> = (0..n).map(|i| i % p).collect();
        let app = Application::linear_chain(&types).unwrap();
        let times = (0..p)
            .map(|_| (0..m).map(|_| 100.0 + 900.0 * next()).collect())
            .collect();
        let platform = Platform::from_type_times(m, times).unwrap();
        let failures = FailureModel::from_matrix(
            (0..n)
                .map(|_| (0..m).map(|_| 0.005 + 0.015 * next()).collect())
                .collect(),
            m,
        )
        .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn mip_matches_brute_force_on_tiny_instances() {
        for seed in 0..3 {
            let inst = random_instance(4, 2, 2, seed);
            let exact = brute_force_specialized(&inst).unwrap();
            let mip = solve_specialized_mip(&inst, MipConfig::default()).unwrap();
            assert_eq!(mip.status, MipSolveStatus::Optimal, "seed {seed}");
            let period = mip.period.unwrap().value();
            assert!(
                (period - exact.period.value()).abs() / exact.period.value() < 1e-4,
                "seed {seed}: MIP {period} != brute force {}",
                exact.period.value()
            );
            assert!(inst.is_specialized(&mip.mapping.unwrap()));
        }
    }

    #[test]
    fn mip_matches_combinatorial_bnb() {
        let inst = random_instance(5, 3, 2, 7);
        let bnb = branch_and_bound(&inst, BnbConfig::default()).unwrap();
        let mip = solve_specialized_mip(&inst, MipConfig::default()).unwrap();
        assert_eq!(mip.status, MipSolveStatus::Optimal);
        let period = mip.period.unwrap().value();
        assert!((period - bnb.period.value()).abs() / bnb.period.value() < 1e-4);
    }

    #[test]
    fn tight_budget_reports_failure_or_feasible() {
        let inst = random_instance(6, 3, 2, 11);
        let config = MipConfig {
            budget: SolverBudget::nodes(1),
            ..Default::default()
        };
        let outcome = solve_specialized_mip(&inst, config).unwrap();
        assert!(matches!(
            outcome.status,
            MipSolveStatus::Failed | MipSolveStatus::Feasible
        ));
    }

    #[test]
    fn mip_objective_matches_reconstructed_period() {
        let inst = random_instance(4, 3, 2, 21);
        let mip = solve_specialized_mip(&inst, MipConfig::default()).unwrap();
        assert_eq!(mip.status, MipSolveStatus::Optimal);
        let objective = mip.objective.unwrap();
        let period = mip.period.unwrap().value();
        assert!(
            (objective - period).abs() / period < 1e-4,
            "objective {objective} should equal the mapping period {period}"
        );
    }
}
