//! Optimal one-to-one mappings (paper §5.1 and §7.2).
//!
//! Two polynomial special cases are implemented:
//!
//! * **Theorem 1** — linear chain on *homogeneous* machines (`w_{i,u} = w`):
//!   the period is `w·Π 1/(1 − f_{j,a(j)})`, so minimising it is a minimum
//!   weight bipartite matching with edge costs `−log(1 − f_{j,u})`, solved by
//!   the Hungarian algorithm;
//! * **task-attached failures** (`f_{i,u} = f_i`, the setting of Figure 9): the
//!   demands `xᵢ` do not depend on the mapping, the period of each machine is
//!   the cost of its single task, and the optimal one-to-one mapping is a
//!   bottleneck assignment over the costs `xᵢ·w_{i,u}`.

use mf_core::prelude::*;
use mf_matching::{bottleneck_assignment, hungarian, CostMatrix};

/// An optimal one-to-one mapping together with its period.
#[derive(Debug, Clone, PartialEq)]
pub struct OneToOneOutcome {
    /// The optimal one-to-one mapping.
    pub mapping: Mapping,
    /// Its period.
    pub period: Period,
}

fn require(condition: bool, detail: &str) -> Result<()> {
    if condition {
        Ok(())
    } else {
        Err(ModelError::RuleViolation {
            kind: MappingKind::OneToOne,
            detail: detail.to_string(),
        })
    }
}

/// Optimal one-to-one mapping for a **linear chain on homogeneous machines**
/// (Theorem 1). Fails if the application is not a linear chain, the platform
/// is not homogeneous, or there are fewer machines than tasks.
pub fn optimal_one_to_one_chain_homogeneous(instance: &Instance) -> Result<OneToOneOutcome> {
    require(
        instance.application().is_linear_chain(),
        "Theorem 1 requires a linear chain application",
    )?;
    require(
        instance.platform().is_homogeneous(),
        "Theorem 1 requires homogeneous machines (w_{i,u} = w)",
    )?;
    let n = instance.task_count();
    let m = instance.machine_count();
    if n > m {
        return Err(ModelError::NotEnoughMachines {
            machines: m,
            required: n,
        });
    }

    // Minimise Π F_j  ⇔  minimise Σ −log(1 − f_{j,u}).
    let costs = CostMatrix::from_fn(n, m, |i, u| {
        -instance.failure(TaskId(i), MachineId(u)).success().ln()
    });
    let assignment = hungarian(&costs).ok_or(ModelError::NotEnoughMachines {
        machines: m,
        required: n,
    })?;
    let mapping = Mapping::from_indices(&assignment.row_to_col, m)?;
    let period = instance.period(&mapping)?;
    Ok(OneToOneOutcome { mapping, period })
}

/// Optimal one-to-one mapping when failures are attached to tasks only
/// (`f_{i,u} = f_i`), the reference solution of Figure 9.
///
/// Fails if the failure model actually depends on the machine or if there are
/// fewer machines than tasks.
pub fn optimal_one_to_one_bottleneck(instance: &Instance) -> Result<OneToOneOutcome> {
    require(
        instance.failures().is_task_dependent_only(),
        "the bottleneck reduction requires f_{i,u} = f_i (task-attached failures)",
    )?;
    let n = instance.task_count();
    let m = instance.machine_count();
    if n > m {
        return Err(ModelError::NotEnoughMachines {
            machines: m,
            required: n,
        });
    }

    // Demands are mapping-independent here: x_i = Π_{j ∈ downstream(i) ∪ {i}} F_j.
    // Computing them with machine 0 is safe because f does not depend on u.
    let reference = Mapping::from_indices(&vec![0usize; n], m)?;
    let demands = instance.demands(&reference)?;

    let costs = CostMatrix::from_fn(n, m, |i, u| {
        demands.get(TaskId(i)) * instance.time(TaskId(i), MachineId(u))
    });
    let result = bottleneck_assignment(&costs).ok_or(ModelError::NotEnoughMachines {
        machines: m,
        required: n,
    })?;
    let mapping = Mapping::from_indices(&result.row_to_col, m)?;
    let period = instance.period(&mapping)?;
    Ok(OneToOneOutcome { mapping, period })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute_force::brute_force_one_to_one;

    fn xorshift(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn theorem1_matches_brute_force() {
        for seed in 0..5 {
            let mut next = xorshift(seed);
            let n = 5;
            let m = 6;
            let app = Application::linear_chain(&vec![0; n]).unwrap();
            let platform = Platform::homogeneous(m, 1, 100.0).unwrap();
            let failures = FailureModel::from_matrix(
                (0..n)
                    .map(|_| (0..m).map(|_| 0.3 * next()).collect())
                    .collect(),
                m,
            )
            .unwrap();
            let inst = Instance::new(app, platform, failures).unwrap();
            let optimal = optimal_one_to_one_chain_homogeneous(&inst).unwrap();
            let brute = brute_force_one_to_one(&inst).unwrap();
            assert!(
                (optimal.period.value() - brute.period.value()).abs() < 1e-6,
                "seed {seed}: {} != {}",
                optimal.period.value(),
                brute.period.value()
            );
            assert!(optimal.mapping.is_one_to_one());
        }
    }

    #[test]
    fn theorem1_preconditions_are_checked() {
        // Heterogeneous platform.
        let app = Application::linear_chain(&[0, 0]).unwrap();
        let platform = Platform::from_type_times(2, vec![vec![100.0, 200.0]]).unwrap();
        let failures = FailureModel::uniform(2, 2, FailureRate::new(0.1).unwrap());
        let inst = Instance::new(app, platform, failures).unwrap();
        assert!(optimal_one_to_one_chain_homogeneous(&inst).is_err());

        // Non-chain application.
        let app = Application::paper_figure1();
        let n = app.task_count();
        let platform = Platform::homogeneous(n, app.type_count(), 100.0).unwrap();
        let failures = FailureModel::uniform(n, n, FailureRate::new(0.1).unwrap());
        let inst = Instance::new(app, platform, failures).unwrap();
        assert!(optimal_one_to_one_chain_homogeneous(&inst).is_err());

        // Too few machines.
        let app = Application::linear_chain(&[0, 0, 0]).unwrap();
        let platform = Platform::homogeneous(2, 1, 100.0).unwrap();
        let failures = FailureModel::uniform(3, 2, FailureRate::ZERO);
        let inst = Instance::new(app, platform, failures).unwrap();
        assert!(matches!(
            optimal_one_to_one_chain_homogeneous(&inst).unwrap_err(),
            ModelError::NotEnoughMachines { .. }
        ));
    }

    #[test]
    fn bottleneck_matches_brute_force_with_task_failures() {
        for seed in 0..5 {
            let mut next = xorshift(seed + 100);
            let n = 5;
            let m = 6;
            let types: Vec<usize> = (0..n).map(|i| i % 2).collect();
            let app = Application::linear_chain(&types).unwrap();
            let times = (0..2)
                .map(|_| (0..m).map(|_| 100.0 + 900.0 * next()).collect())
                .collect();
            let platform = Platform::from_type_times(m, times).unwrap();
            let task_rates: Vec<FailureRate> = (0..n)
                .map(|_| FailureRate::new(0.2 * next()).unwrap())
                .collect();
            let failures = FailureModel::task_dependent(&task_rates, m);
            let inst = Instance::new(app, platform, failures).unwrap();
            let optimal = optimal_one_to_one_bottleneck(&inst).unwrap();
            let brute = brute_force_one_to_one(&inst).unwrap();
            assert!(
                (optimal.period.value() - brute.period.value()).abs() < 1e-6,
                "seed {seed}: {} != {}",
                optimal.period.value(),
                brute.period.value()
            );
        }
    }

    #[test]
    fn bottleneck_requires_task_attached_failures() {
        let app = Application::linear_chain(&[0, 0]).unwrap();
        let platform = Platform::homogeneous(2, 1, 100.0).unwrap();
        let failures = FailureModel::from_matrix(vec![vec![0.1, 0.2], vec![0.1, 0.1]], 2).unwrap();
        let inst = Instance::new(app, platform, failures).unwrap();
        assert!(optimal_one_to_one_bottleneck(&inst).is_err());
    }

    #[test]
    fn specialized_optimum_is_at_least_as_good_as_one_to_one() {
        // With task-attached failures and more machines than tasks, any
        // one-to-one mapping is specialized, so the specialized optimum can
        // only be better or equal.
        let mut next = xorshift(4242);
        let n = 5;
        let m = 6;
        let types: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let app = Application::linear_chain(&types).unwrap();
        let times = (0..2)
            .map(|_| (0..m).map(|_| 100.0 + 900.0 * next()).collect())
            .collect();
        let platform = Platform::from_type_times(m, times).unwrap();
        let task_rates: Vec<FailureRate> = (0..n)
            .map(|_| FailureRate::new(0.05 * next()).unwrap())
            .collect();
        let failures = FailureModel::task_dependent(&task_rates, m);
        let inst = Instance::new(app, platform, failures).unwrap();
        let oto = optimal_one_to_one_bottleneck(&inst).unwrap();
        let spec = crate::bnb::branch_and_bound(&inst, crate::bnb::BnbConfig::default()).unwrap();
        assert!(spec.period.value() <= oto.period.value() + 1e-9);
    }
}
