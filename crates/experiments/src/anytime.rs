//! Anytime solver: a deterministic incumbent/bound race under a step budget.
//!
//! [`solve_anytime`] chains the repo's solvers into a single run that always
//! holds a feasible mapping and a certified lower bound, tightening both as
//! the budget is consumed:
//!
//! 1. **Seed** — H4w (the paper's best constructive heuristic) provides a
//!    feasible incumbent immediately, and the root LP relaxation (falling
//!    back to the packing bound when the simplex is unavailable) provides a
//!    lower bound valid for *every* mapping. The first event carries both.
//! 2. **Heuristic slice** — a configurable share of the budget goes to the
//!    subtree-move LNS polishing the seed; every improvement is an event.
//! 3. **Exact phase** — the remaining budget drives LP-warm-started
//!    branch-and-bound seeded with the heuristic incumbent. If it finishes,
//!    the bound snaps to the incumbent and the gap closes to zero.
//!
//! Progress is measured in **steps** — heuristic evaluator calls plus
//! branch-and-bound nodes — never wall-clock, so a run is bit-identical
//! across machines, thread counts and re-runs. Events are monotone by
//! construction: incumbents never increase, bounds never decrease.
//!
//! Observability: each event is mirrored into an
//! [`mf_obs::ProgressEvent::Incumbent`] on the caller's
//! [`ProgressSink`], which the tracing layer records as `round` records.

use mf_core::prelude::*;
use mf_exact::{branch_and_bound_seeded, lp_root_bound, BnbConfig, BnbOutcome};
use mf_heuristics::search::{polish_with_telemetry, LnsConfig, SubtreeMoveLns};
use mf_heuristics::{H4wFastestMachine, Heuristic, HeuristicError, HeuristicResult};
use mf_obs::{NullSink, ProgressEvent, ProgressSink};

/// Configuration of an anytime solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnytimeConfig {
    /// Total step budget: heuristic evaluator calls plus branch-and-bound
    /// nodes. The run never exceeds it (the exact phase receives whatever
    /// the heuristic slice left over).
    pub step_budget: u64,
    /// Share of the budget handed to the LNS slice, in `[0, 1]`. The rest
    /// funds branch-and-bound. Zero skips straight to the exact phase.
    pub heuristic_fraction: f64,
    /// Seed of the LNS slice's tear-out randomisation.
    pub seed: u64,
    /// Relative optimality tolerance of the exact phase (see
    /// [`BnbConfig::tolerance`]).
    pub tolerance: f64,
    /// Prune the exact phase with the filtered LP relaxation (see
    /// [`BnbConfig::lp_bounds`]). On by default: the anytime mode targets
    /// instances large enough that the smaller tree pays for the simplex.
    pub lp_bounds: bool,
}

impl Default for AnytimeConfig {
    fn default() -> Self {
        AnytimeConfig {
            step_budget: 200_000,
            heuristic_fraction: 0.25,
            seed: 0x1A55_7B3E,
            tolerance: 1e-9,
            lp_bounds: true,
        }
    }
}

/// Which phase of the anytime pipeline produced an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnytimePhase {
    /// The constructive seed (first event of every run).
    Seed,
    /// The LNS slice.
    Heuristic,
    /// Branch-and-bound.
    Exact,
}

impl AnytimePhase {
    /// Single-token label used by the wire protocol and the trace.
    pub fn label(self) -> &'static str {
        match self {
            AnytimePhase::Seed => "seed",
            AnytimePhase::Heuristic => "lns",
            AnytimePhase::Exact => "bnb",
        }
    }
}

/// One incumbent/bound report. A run's event sequence has non-increasing
/// `period`, non-decreasing `bound`, non-decreasing `steps`, and at most
/// one `proven` event (always the last).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnytimeEvent {
    /// Incumbent period (feasible, from the mapping held at this point).
    pub period: f64,
    /// Certified lower bound on the optimal specialized period.
    pub bound: f64,
    /// Cumulative steps consumed when the event fired.
    pub steps: u64,
    /// Phase that produced the event.
    pub phase: AnytimePhase,
    /// Whether the incumbent is proven optimal (gap zero).
    pub proven: bool,
}

impl AnytimeEvent {
    /// Relative optimality gap `(period − bound) / period`, clamped to
    /// `[0, 1]`; zero when proven.
    pub fn gap(&self) -> f64 {
        if self.proven || self.period <= 0.0 {
            return 0.0;
        }
        ((self.period - self.bound) / self.period).clamp(0.0, 1.0)
    }
}

/// Result of an anytime solve.
#[derive(Debug, Clone)]
pub struct AnytimeOutcome {
    /// The best mapping found.
    pub mapping: Mapping,
    /// Its period.
    pub period: Period,
    /// The final lower bound (equals the period when proven).
    pub bound: f64,
    /// Whether optimality was proven within the budget.
    pub proven_optimal: bool,
    /// Steps consumed (≤ the budget).
    pub steps: u64,
    /// Branch-and-bound nodes explored by the exact phase.
    pub nodes: u64,
    /// LP relaxations solved / warm-reused by the exact phase.
    pub lp_solves: u64,
    /// See [`BnbOutcome::lp_reuses`].
    pub lp_reuses: u64,
    /// Every event emitted, in order.
    pub events: Vec<AnytimeEvent>,
}

impl AnytimeOutcome {
    /// Final relative gap (zero when proven).
    pub fn gap(&self) -> f64 {
        self.events.last().map_or(1.0, |e| e.gap())
    }
}

/// Runs the anytime pipeline, collecting events into the outcome.
pub fn solve_anytime(
    instance: &Instance,
    config: &AnytimeConfig,
) -> HeuristicResult<AnytimeOutcome> {
    solve_anytime_observed(instance, config, &mut |_| {}, &mut NullSink)
}

/// [`solve_anytime`] with live observation: `on_event` fires as each event
/// is produced (the serving tier streams them to the client), and every
/// event is mirrored into `sink` as a [`ProgressEvent::Incumbent`]. The
/// returned outcome is bit-identical to [`solve_anytime`]'s — observers
/// cannot steer the run.
pub fn solve_anytime_observed(
    instance: &Instance,
    config: &AnytimeConfig,
    on_event: &mut dyn FnMut(&AnytimeEvent),
    sink: &mut dyn ProgressSink,
) -> HeuristicResult<AnytimeOutcome> {
    let mut events: Vec<AnytimeEvent> = Vec::new();
    let mut emit =
        |event: AnytimeEvent, events: &mut Vec<AnytimeEvent>, sink: &mut dyn ProgressSink| {
            sink.emit(ProgressEvent::Incumbent {
                period_bits: event.period.to_bits(),
                steps: event.steps,
                proven: event.proven,
            });
            on_event(&event);
            events.push(event);
        };

    // Phase 1: constructive seed + root lower bound. The bound holds for
    // every mapping (LP relaxation / packing argument), so the incumbent can
    // only sit above it; clamp to guard against last-ulp rounding.
    let mut mapping = H4wFastestMachine.map(instance)?;
    let mut incumbent = instance.period(&mapping)?.value();
    let mut bound = root_lower_bound(instance)?.min(incumbent);
    let mut steps: u64 = 0;
    let mut proven = incumbent <= bound * (1.0 + config.tolerance);
    emit(
        AnytimeEvent {
            period: incumbent,
            bound,
            steps,
            phase: AnytimePhase::Seed,
            proven,
        },
        &mut events,
        sink,
    );

    // Phase 2: LNS slice.
    if !proven {
        let slice = (config.step_budget as f64 * config.heuristic_fraction.clamp(0.0, 1.0)).floor()
            as usize;
        if slice > 0 {
            let lns = SubtreeMoveLns::new(LnsConfig {
                seed: config.seed,
                ..LnsConfig::default()
            });
            let (polished, telemetry) = polish_with_telemetry(instance, &mapping, &lns, slice)?;
            steps += telemetry.map_or(0, |t| t.eval.dense_what_ifs + t.eval.exact_what_ifs);
            let polished_period = instance.period(&polished)?.value();
            if polished_period < incumbent {
                mapping = polished;
                incumbent = polished_period;
                proven = incumbent <= bound * (1.0 + config.tolerance);
                emit(
                    AnytimeEvent {
                        period: incumbent,
                        bound,
                        steps,
                        phase: AnytimePhase::Heuristic,
                        proven,
                    },
                    &mut events,
                    sink,
                );
            }
        }
    }

    // Phase 3: exact phase on the remaining budget, seeded with the
    // heuristic incumbent.
    let mut nodes = 0;
    let mut lp_solves = 0;
    let mut lp_reuses = 0;
    let remaining = config.step_budget.saturating_sub(steps);
    if !proven && remaining > 0 {
        let bnb_config = BnbConfig {
            max_nodes: remaining,
            tolerance: config.tolerance,
            lp_bounds: config.lp_bounds,
            ..BnbConfig::default()
        };
        let outcome: BnbOutcome = branch_and_bound_seeded(instance, bnb_config, &mapping)
            .map_err(HeuristicError::from)?;
        nodes = outcome.nodes;
        lp_solves = outcome.lp_solves;
        lp_reuses = outcome.lp_reuses;
        steps += outcome.nodes;
        let improved = outcome.period.value() < incumbent;
        if improved {
            mapping = outcome.mapping;
            incumbent = outcome.period.value();
        }
        if outcome.proven_optimal {
            proven = true;
            bound = incumbent;
        }
        if improved || proven {
            emit(
                AnytimeEvent {
                    period: incumbent,
                    bound,
                    steps,
                    phase: AnytimePhase::Exact,
                    proven,
                },
                &mut events,
                sink,
            );
        }
    }

    let period = instance.period(&mapping)?;
    Ok(AnytimeOutcome {
        mapping,
        period,
        bound,
        proven_optimal: proven,
        steps,
        nodes,
        lp_solves,
        lp_reuses,
        events,
    })
}

/// The strongest root lower bound available: the LP relaxation when the
/// simplex converges, otherwise the packing bound
/// `max(Σᵢ minᵤ cᵢᵤ / m, maxᵢ minᵤ cᵢᵤ)` over mapping-independent
/// contribution lower bounds.
fn root_lower_bound(instance: &Instance) -> HeuristicResult<f64> {
    let lower_demand = instance.demand_lower_bounds()?;
    let mut total = 0.0_f64;
    let mut largest = 0.0_f64;
    for task in instance.application().tasks() {
        let d = match instance.application().successor(task.id) {
            None => 1.0,
            Some(succ) => lower_demand[succ.index()],
        };
        let best = instance
            .platform()
            .machines()
            .map(|u| instance.effective_time(task.id, u))
            .fold(f64::INFINITY, f64::min);
        let c = d * best;
        total += c;
        largest = largest.max(c);
    }
    let packing = (total / instance.machine_count() as f64).max(largest);
    Ok(lp_root_bound(instance).map_or(packing, |lp| lp.max(packing)))
}
