//! Runs every figure experiment in sequence and prints all tables.

mod common;

use mf_experiments::figures;

fn main() {
    let options = common::parse_args();
    let reports = [
        figures::fig5::run(&options.config),
        figures::fig6::run(&options.config),
        figures::fig7::run(&options.config),
        figures::fig8::run(&options.config),
        figures::fig9::run(&options.config),
        figures::fig10::run(&options.config),
        figures::fig11::run(&options.config),
        figures::fig12::run(&options.config),
    ];
    for report in &reports {
        common::print_report(report, &options);
        println!();
    }
    let summary = figures::summary::run(&options.config);
    print!("{}", summary.to_table());
}
