//! Shared command-line handling for the figure binaries.
//!
//! Every binary accepts:
//!
//! * `--full` — run the paper's full protocol (30 repetitions) instead of the
//!   quick one;
//! * `--reps <N>` — override the number of repetitions;
//! * `--threads <N>` — worker threads for the batch runner (0 = one per CPU,
//!   capped at 16); results are identical for every thread count;
//! * `--csv` — print the CSV dump after the table.

use mf_experiments::{ExperimentConfig, FigureReport};

/// Parsed command-line options.
pub struct Options {
    /// Experiment configuration derived from the flags.
    pub config: ExperimentConfig,
    /// Whether to print the CSV dump.
    pub csv: bool,
}

/// Parses the process arguments.
pub fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--full") {
        ExperimentConfig::full()
    } else {
        ExperimentConfig::quick()
    };
    if let Some(pos) = args.iter().position(|a| a == "--reps") {
        if let Some(value) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            config.repetitions = value;
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        if let Some(value) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            config.threads = value;
        }
    }
    Options {
        config,
        csv: args.iter().any(|a| a == "--csv"),
    }
}

/// Prints a figure report as a table (and optionally CSV).
pub fn print_report(report: &FigureReport, options: &Options) {
    print!("{}", report.to_table());
    if options.csv {
        println!();
        print!("{}", report.to_csv());
    }
}
