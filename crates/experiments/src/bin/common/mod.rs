//! Shared command-line handling for the figure binaries.
//!
//! Every binary accepts:
//!
//! * `--full` — run the paper's full protocol (30 repetitions) instead of the
//!   quick one;
//! * `--reps <N>` — override the number of repetitions;
//! * `--threads <N>` — worker threads for the batch runner (0 = one per CPU,
//!   capped at 16); results are identical for every thread count;
//! * `--csv` — print the CSV dump after the table;
//! * `--out <path>` — also write the report in the deterministic
//!   `mf-report v1` format ([`mf_experiments::persist`]), so CI can diff the
//!   numbers across commits.

use mf_experiments::{ExperimentConfig, FigureReport};
use std::path::PathBuf;

/// Parsed command-line options.
pub struct Options {
    /// Experiment configuration derived from the flags.
    pub config: ExperimentConfig,
    /// Whether to print the CSV dump.
    pub csv: bool,
    /// Where to persist the serialized report, if anywhere.
    pub out: Option<PathBuf>,
}

/// Parses the process arguments.
pub fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = if args.iter().any(|a| a == "--full") {
        ExperimentConfig::full()
    } else {
        ExperimentConfig::quick()
    };
    if let Some(pos) = args.iter().position(|a| a == "--reps") {
        if let Some(value) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            config.repetitions = value;
        }
    }
    if let Some(pos) = args.iter().position(|a| a == "--threads") {
        if let Some(value) = args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            config.threads = value;
        }
    }
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|pos| args.get(pos + 1))
        .map(PathBuf::from);
    Options {
        config,
        csv: args.iter().any(|a| a == "--csv"),
        out,
    }
}

/// Prints a figure report as a table (and optionally CSV), persisting it to
/// `--out` when asked.
pub fn print_report(report: &FigureReport, options: &Options) {
    print!("{}", report.to_table());
    if options.csv {
        println!();
        print!("{}", report.to_csv());
    }
    if let Some(path) = &options.out {
        match mf_experiments::persist::write_figure(path, report) {
            Ok(()) => eprintln!("report written to {}", path.display()),
            Err(e) => {
                eprintln!("error: cannot write report to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}
