//! Extension experiment: H6 local-search polishing. Compares each
//! constructive heuristic with its H6-polished variant across the fig5–fig9
//! scenario families (one column per scenario).

mod common;

fn main() {
    let options = common::parse_args();
    let report = mf_experiments::figures::ext_localsearch::run(&options.config);
    common::print_report(&report, &options);
}
