//! Extension experiment: portfolio search. Compares the parallel portfolio
//! (all constructive seeds × strategies × RNG streams, deterministic early
//! termination) against H4w and the single search strategies across the
//! fig5–fig9 scenario families (one column per scenario).

mod common;

fn main() {
    let options = common::parse_args();
    let report = mf_experiments::figures::ext_portfolio::run(&options.config);
    common::print_report(&report, &options);
}
