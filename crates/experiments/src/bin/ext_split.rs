//! Extension experiment: workload splitting (the paper's future work, §8).
//! Compares the best classical heuristic H4w with the H5 splitting optimiser.

mod common;

fn main() {
    let options = common::parse_args();
    let report = mf_experiments::figures::ext_split::run(&options.config);
    common::print_report(&report, &options);
}
