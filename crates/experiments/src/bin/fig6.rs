//! Reproduces Figure 6 of the paper. Run with `--full` for the full protocol.

mod common;

fn main() {
    let options = common::parse_args();
    let report = mf_experiments::figures::fig6::run(&options.config);
    common::print_report(&report, &options);
}
