//! Reproduces Figure 9 of the paper. Run with `--full` for the full protocol.

mod common;

fn main() {
    let options = common::parse_args();
    let report = mf_experiments::figures::fig9::run(&options.config);
    common::print_report(&report, &options);
}
