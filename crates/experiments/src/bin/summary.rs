//! Recomputes the summary ratios of §7.2–§7.4 (factors from the optimal
//! one-to-one mapping and from the exact specialized optimum).

#[allow(dead_code)]
mod common;

fn main() {
    let options = common::parse_args();
    let summary = mf_experiments::figures::summary::run(&options.config);
    print!("{}", summary.to_table());
}
