//! Experiment configuration.

/// Global knobs shared by all figure experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Number of random instances averaged per point (30 in the paper for the
    /// specialized-mapping figures, 100 for Figure 9).
    pub repetitions: usize,
    /// Base seed from which every instance seed is derived.
    pub base_seed: u64,
    /// Node budget for the exact solver used as the "MIP" reference in
    /// Figures 10–12.
    pub exact_node_budget: u64,
    /// Number of worker threads for the sweep (0 = one per logical CPU, capped
    /// at 16).
    pub threads: usize,
}

impl ExperimentConfig {
    /// The paper's full protocol: 30 repetitions (100 for Figure 9, which
    /// scales its own repetition count ×3), generous exact budget.
    pub fn full() -> Self {
        ExperimentConfig {
            repetitions: 30,
            base_seed: 20100607,
            exact_node_budget: 50_000_000,
            threads: 0,
        }
    }

    /// A reduced protocol that keeps every curve's shape but runs in seconds:
    /// 10 repetitions and a tighter exact budget. Used by the test-suite, by
    /// the Criterion benches and as the default of the binaries.
    pub fn quick() -> Self {
        ExperimentConfig {
            repetitions: 10,
            base_seed: 20100607,
            exact_node_budget: 2_000_000,
            threads: 0,
        }
    }

    /// Seed for repetition `rep` of point `point` of figure `figure`.
    ///
    /// The packed coordinates go through [`mf_core::seed::splitmix64`] — the
    /// same mixer the batch runner and the H6 local search use — so the
    /// derived seeds stay well spread and reproducible.
    pub fn seed_for(&self, figure: u32, point: usize, rep: usize) -> u64 {
        mf_core::seed::splitmix64(
            self.base_seed
                .wrapping_add((figure as u64) << 48)
                .wrapping_add((point as u64) << 24)
                .wrapping_add(rep as u64),
        )
    }

    /// Effective number of worker threads.
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

/// The workspace-wide thread policy: an explicit count is used as-is, `0`
/// means one thread per logical CPU, capped at 16 (fallback 4 when the CPU
/// count is unknown). Shared by [`ExperimentConfig::effective_threads`] and
/// [`crate::runner::BatchRunner::new`] so the two can never diverge.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get().min(16))
            .unwrap_or(4)
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let config = ExperimentConfig::full();
        let a = config.seed_for(5, 0, 0);
        let b = config.seed_for(5, 0, 1);
        let c = config.seed_for(5, 1, 0);
        let d = config.seed_for(6, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, ExperimentConfig::full().seed_for(5, 0, 0));
    }

    #[test]
    fn presets_differ_in_cost() {
        assert!(ExperimentConfig::full().repetitions > ExperimentConfig::quick().repetitions);
        assert!(ExperimentConfig::quick().effective_threads() >= 1);
        let fixed = ExperimentConfig {
            threads: 3,
            ..ExperimentConfig::quick()
        };
        assert_eq!(fixed.effective_threads(), 3);
    }
}
