//! Extension experiment — H6 local-search polishing of the paper heuristics.
//!
//! Not a figure of the paper: it measures how much the H6 move/swap local
//! search (powered by the incremental evaluator of `mf-core`) improves each
//! constructive heuristic across the five §7 scenario families (the fig5–fig9
//! platform shapes). Raw and polished variants run as one
//! [`BatchGrid`](crate::runner::BatchGrid), so every cell keeps the runner's
//! per-cell SplitMix64 determinism: results are bit-identical for any thread
//! count, and raw/polished pairs are evaluated on the *same* instance (the
//! instance seed only depends on (scenario, repetition)).

use crate::config::ExperimentConfig;
use crate::figures::{fig5, fig6, fig7, fig8, fig9};
use crate::report::FigureReport;
use crate::runner::{BatchGrid, BatchReport, BatchRunner, ScenarioSpec};
use mf_sim::GeneratorConfig;

/// Raw/polished method pairs of the sweep, in grid order.
pub const METHODS: [&str; 6] = ["H2", "H6-H2", "H4w", "H6-H4w", "H1", "H6-H1"];

/// Figure-index-style salt mixed into the base seed so this sweep draws
/// instances independent of every paper figure.
pub const FIGURE_INDEX: u32 = 81;

/// The five scenario families of the paper's evaluation, one representative
/// instance shape each (task counts from the middle of each figure's sweep).
pub fn scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::new(
            "fig5",
            GeneratorConfig::paper_standard(100, fig5::MACHINES, fig5::TYPES),
        ),
        ScenarioSpec::new(
            "fig6",
            GeneratorConfig::paper_standard(50, fig6::MACHINES, fig6::TYPES),
        ),
        ScenarioSpec::new(
            "fig7",
            GeneratorConfig::paper_standard(150, fig7::MACHINES, fig7::TYPES),
        ),
        ScenarioSpec::new(
            "fig8",
            GeneratorConfig::paper_high_failure(50, fig8::MACHINES, fig8::TYPES),
        ),
        ScenarioSpec::new(
            "fig9",
            GeneratorConfig::paper_task_failures(fig9::TASKS, fig9::MACHINES, 40),
        ),
    ]
}

/// The batch grid of the sweep for a configuration (explicit scenarios and
/// methods — the entry point the determinism tests drive with reduced
/// settings).
pub fn grid_with(
    config: &ExperimentConfig,
    scenarios: Vec<ScenarioSpec>,
    methods: &[&str],
) -> BatchGrid {
    BatchGrid::new(
        config.base_seed.wrapping_add(u64::from(FIGURE_INDEX) << 48),
        config.repetitions.max(1),
        scenarios,
        methods,
    )
}

/// The full default grid.
pub fn grid(config: &ExperimentConfig) -> BatchGrid {
    grid_with(config, scenarios(), &METHODS)
}

/// Runs the sweep and returns the raw batch report.
pub fn run_batch(config: &ExperimentConfig) -> BatchReport {
    BatchRunner::from_config(config).run(&grid(config))
}

/// Runs the sweep and renders it as a figure-style report (one series per
/// method, one x value per scenario).
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_batch(config).to_figure_report(
        "ext_localsearch",
        "H6 local-search polishing across the fig5-fig9 scenario families",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polishing_never_degrades_a_deterministic_seed_heuristic() {
        // Reduced grid: two scenario families, raw/polished H2 and H4w.
        // Both members of a pair see the same instance, and the seed
        // heuristics are deterministic, so the comparison is exact per cell.
        let config = ExperimentConfig {
            repetitions: 3,
            threads: 1,
            ..ExperimentConfig::quick()
        };
        let scenarios = vec![
            ScenarioSpec::new("fig6", GeneratorConfig::paper_standard(30, 10, 2)),
            ScenarioSpec::new("fig8", GeneratorConfig::paper_high_failure(24, 10, 5)),
        ];
        let methods = ["H2", "H6-H2", "H4w", "H6-H4w"];
        let report = BatchRunner::new(1).run(&grid_with(&config, scenarios, &methods));
        for scenario in 0..2 {
            for pair in 0..2 {
                let raw = report.samples(scenario, 2 * pair);
                let polished = report.samples(scenario, 2 * pair + 1);
                assert_eq!(raw.len(), polished.len());
                assert!(!raw.is_empty(), "scenario {scenario} produced no samples");
                for (rep, (r, p)) in raw.iter().zip(&polished).enumerate() {
                    assert!(
                        p <= &(r + 1e-9),
                        "scenario {scenario}, pair {pair}, rep {rep}: \
                         polished {p} worse than raw {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn default_grid_covers_all_five_scenario_families() {
        let config = ExperimentConfig::quick();
        let grid = grid(&config);
        assert_eq!(grid.scenarios.len(), 5);
        assert_eq!(grid.methods.len(), METHODS.len());
        let names: Vec<&str> = grid.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["fig5", "fig6", "fig7", "fig8", "fig9"]);
        // The sweep's seeds must not collide with any paper figure's.
        assert_ne!(grid.base_seed, config.base_seed);
    }
}
