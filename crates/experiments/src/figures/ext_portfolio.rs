//! Extension experiment — the parallel portfolio versus its strongest
//! members.
//!
//! Not a figure of the paper: across the five §7 scenario families (the
//! fig5–fig9 platform shapes) it compares the best single constructive
//! heuristic (H4w), the three search strategies seeded from it (H6, SD, TS)
//! and the full [`portfolio`](crate::portfolio) — all constructive seeds ×
//! strategies × streams with deterministic early termination. The portfolio
//! is the min over its member cells, which include a cell polishing H4w's
//! own (deterministic) mapping, so it can never lose to the **H4w** column
//! on the same instance — that bound is asserted in the tests. No such
//! per-sample bound exists against the H6/SD/TS columns: they run with
//! different RNG streams and larger budgets than the sweep's portfolio
//! cells, so on an unlucky instance a standalone column can win. The
//! interesting number is *by how much* the portfolio usually wins and what
//! it costs.
//!
//! Determinism: single heuristics are evaluated from per-(scenario, rep,
//! method) SplitMix64 streams, and the portfolio inherits the batch runner's
//! bit-identical-for-every-thread-count guarantee, so the whole sweep is
//! pinned alongside the grids in `batch_determinism.rs`.

use crate::config::ExperimentConfig;
use crate::figures::{fig5, fig6, fig7, fig8, fig9};
use crate::portfolio::{run_portfolio, PortfolioConfig};
use crate::report::{FigureReport, Series};
use crate::runner::{BatchRunner, ScenarioSpec};
use crate::stats::Stats;
use mf_core::seed::splitmix64;
use mf_sim::{GeneratorConfig, InstanceGenerator};

/// The single-method columns next to the portfolio, in presentation order.
pub const METHODS: [&str; 4] = ["H4w", "H6", "SD", "TS"];

/// Figure-index-style salt mixed into the base seed so this sweep draws
/// instances independent of every paper figure and of `ext_localsearch`.
pub const FIGURE_INDEX: u32 = 82;

/// The five scenario families of the paper's evaluation, one representative
/// instance shape each (task counts from the middle of each figure's sweep).
pub fn scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::new(
            "fig5",
            GeneratorConfig::paper_standard(100, fig5::MACHINES, fig5::TYPES),
        ),
        ScenarioSpec::new(
            "fig6",
            GeneratorConfig::paper_standard(50, fig6::MACHINES, fig6::TYPES),
        ),
        ScenarioSpec::new(
            "fig7",
            GeneratorConfig::paper_standard(150, fig7::MACHINES, fig7::TYPES),
        ),
        ScenarioSpec::new(
            "fig8",
            GeneratorConfig::paper_high_failure(50, fig8::MACHINES, fig8::TYPES),
        ),
        ScenarioSpec::new(
            "fig9",
            GeneratorConfig::paper_task_failures(fig9::TASKS, fig9::MACHINES, 40),
        ),
    ]
}

/// A portfolio configuration scaled to a sweep (smaller budgets than the
/// [`Default`] so five scenario families stay minutes, not hours).
pub fn sweep_portfolio_config(config: &ExperimentConfig) -> PortfolioConfig {
    PortfolioConfig {
        base_seed: config.base_seed.wrapping_add(u64::from(FIGURE_INDEX) << 48),
        annealed_streams: 2,
        round_steps: 2000,
        sweep_budget: 50_000,
        max_rounds: 4,
        patience: 2,
    }
}

fn instance_seed(config: &ExperimentConfig, scenario: usize, rep: usize) -> u64 {
    config.seed_for(FIGURE_INDEX, scenario, rep)
}

fn method_seed(config: &ExperimentConfig, scenario: usize, rep: usize, method: usize) -> u64 {
    splitmix64(
        instance_seed(config, scenario, rep)
            .wrapping_add(0x6D_E7B0_D011_0CA1)
            .wrapping_add(method as u64),
    )
}

/// Runs the sweep over explicit scenarios (the entry point the determinism
/// tests drive with reduced settings).
pub fn run_with(
    config: &ExperimentConfig,
    scenarios: Vec<ScenarioSpec>,
    portfolio: &PortfolioConfig,
) -> FigureReport {
    let reps = config.repetitions.max(1);
    let runner = BatchRunner::from_config(config);
    let mut labels: Vec<String> = METHODS.iter().map(|m| m.to_string()).collect();
    labels.push("Portfolio".to_string());

    let mut series: Vec<Series> = labels
        .iter()
        .map(|label| Series {
            label: label.clone(),
            points: Vec::with_capacity(scenarios.len()),
        })
        .collect();

    for (s, spec) in scenarios.iter().enumerate() {
        // One sample vector per method column, reps entries each.
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); labels.len()];
        for rep in 0..reps {
            let Ok(instance) =
                InstanceGenerator::new(spec.generator).generate(instance_seed(config, s, rep))
            else {
                continue;
            };
            for (k, name) in METHODS.iter().enumerate() {
                let heuristic =
                    mf_heuristics::paper_heuristic(name, method_seed(config, s, rep, k))
                        .expect("METHODS only lists registry names");
                if let Ok(period) = heuristic.period(&instance) {
                    samples[k].push(period.value());
                }
            }
            // The portfolio itself fans its cells out on the runner's pool.
            let portfolio_seed = PortfolioConfig {
                base_seed: splitmix64(
                    portfolio
                        .base_seed
                        .wrapping_add((s as u64) << 40)
                        .wrapping_add(rep as u64),
                ),
                ..*portfolio
            };
            let outcome = run_portfolio(&instance, &portfolio_seed, &runner);
            if let Some(best) = outcome.best_period {
                samples[METHODS.len()].push(best);
            }
        }
        for (k, series) in series.iter_mut().enumerate() {
            series
                .points
                .push((s as f64, Stats::from_samples(&samples[k])));
        }
    }

    FigureReport {
        id: "ext_portfolio".into(),
        title: "portfolio search vs its strongest members across the fig5-fig9 families".into(),
        x_label: "scenario".into(),
        y_label: "period (ms)".into(),
        series,
    }
}

/// Runs the full default sweep.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_with(config, scenarios(), &sweep_portfolio_config(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reduced_scenarios() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::new("fig6", GeneratorConfig::paper_standard(20, 8, 2)),
            ScenarioSpec::new("fig8", GeneratorConfig::paper_high_failure(16, 8, 4)),
        ]
    }

    fn reduced_portfolio(config: &ExperimentConfig) -> PortfolioConfig {
        PortfolioConfig {
            annealed_streams: 1,
            round_steps: 400,
            sweep_budget: 10_000,
            max_rounds: 2,
            ..sweep_portfolio_config(config)
        }
    }

    #[test]
    fn portfolio_column_never_loses_to_the_constructive_baseline() {
        let config = ExperimentConfig {
            repetitions: 2,
            threads: 1,
            ..ExperimentConfig::quick()
        };
        let report = run_with(&config, reduced_scenarios(), &reduced_portfolio(&config));
        assert_eq!(report.series.len(), METHODS.len() + 1);
        let portfolio = report.series("Portfolio").unwrap();
        let h4w = report.series("H4w").unwrap();
        for x in report.x_values() {
            // Per instance the portfolio polishes H4w's own (deterministic)
            // mapping among its cells and a strategy never returns worse
            // than its seed — so the guarantee survives averaging. (The H6 /
            // SD / TS columns run with different streams and budgets than
            // the portfolio's cells, so no such per-sample bound exists for
            // them.)
            let portfolio_mean = portfolio.mean_at(x).expect("portfolio always succeeds");
            let h4w_mean = h4w.mean_at(x).expect("H4w succeeds on these scenarios");
            assert!(
                portfolio_mean <= h4w_mean + 1e-9,
                "portfolio mean {portfolio_mean} lost to H4w {h4w_mean} at x={x}"
            );
        }
    }
}
