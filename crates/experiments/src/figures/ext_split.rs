//! Extension experiment — workload splitting (the paper's future work, §8).
//!
//! Not a figure of the paper: it evaluates the improvement that the
//! future-work extension (dividing a task's workload across several machines
//! of its type) brings over the best classical heuristic H4w, on the same
//! platform family as Figure 6 (`m = 10`, `p = 2`).

use crate::config::ExperimentConfig;
use crate::figures::{run_sweep, steps, SweepSpec};
use crate::report::FigureReport;
use mf_heuristics::{H4wFastestMachine, H5WorkloadSplit, Heuristic};
use mf_sim::GeneratorConfig;

/// Series of the extension experiment.
pub const LABELS: [&str; 2] = ["H4w", "H5-split"];

/// Number of machines.
pub const MACHINES: usize = 10;
/// Number of task types.
pub const TYPES: usize = 2;

/// Runs the extension experiment over the default task range.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_with_tasks(config, steps(10, 100, 10))
}

/// Runs the extension experiment for an explicit list of task counts.
pub fn run_with_tasks(config: &ExperimentConfig, task_counts: Vec<usize>) -> FigureReport {
    let spec = SweepSpec {
        id: "ext_split",
        figure_index: 80,
        title: format!("m = {MACHINES}, p = {TYPES} — future-work workload splitting"),
        x_label: "tasks".into(),
        y_label: "period (ms)".into(),
        labels: LABELS.iter().map(|s| s.to_string()).collect(),
        x_values: task_counts,
    };
    run_sweep(
        config,
        spec,
        |n| GeneratorConfig::paper_standard(n, MACHINES, TYPES),
        |instance| {
            let base = match H4wFastestMachine.map(instance) {
                Ok(mapping) => mapping,
                Err(_) => return vec![None, None],
            };
            let base_period = instance.period(&base).ok().map(|p| p.value());
            let split_period = H5WorkloadSplit
                .split_from(instance, &base)
                .ok()
                .and_then(|split| split.period(instance).ok())
                .map(|p| p.value());
            vec![base_period, split_period]
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitting_never_degrades_the_period() {
        let config = ExperimentConfig {
            repetitions: 5,
            ..ExperimentConfig::quick()
        };
        let report = run_with_tasks(&config, vec![30, 60]);
        for &x in &[30.0, 60.0] {
            let base = report.series("H4w").unwrap().mean_at(x).unwrap();
            let split = report.series("H5-split").unwrap().mean_at(x).unwrap();
            assert!(
                split <= base + 1e-6,
                "splitting degraded the period at n = {x}"
            );
        }
    }
}
