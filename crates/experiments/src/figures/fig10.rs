//! Figure 10 — heuristics against the exact optimum on small instances,
//! `m = 5`, `p = 2`.
//!
//! Period as a function of `n ∈ [2, 16]`. The reference curve "MIP" is the
//! optimal specialized mapping. The paper obtains it with CPLEX and keeps an
//! instance only when the solver finishes; here the optimum is computed by the
//! combinatorial branch-and-bound of `mf-exact` under a node budget, and an
//! instance whose budget is exhausted is discarded the same way.

use crate::config::ExperimentConfig;
use crate::figures::{heuristic_periods, heuristics_by_name, run_sweep, steps, SweepSpec};
use crate::report::FigureReport;
use mf_exact::{branch_and_bound, BnbConfig};
use mf_sim::GeneratorConfig;

/// Series plotted in Figure 10: the six heuristics plus the exact optimum.
pub const LABELS: [&str; 7] = ["H1", "H2", "H3", "H4", "H4w", "H4f", "MIP"];

/// Number of machines.
pub const MACHINES: usize = 5;
/// Number of task types.
pub const TYPES: usize = 2;

/// Runs the Figure 10 experiment.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_with_tasks(config, steps(2, 16, 1))
}

/// Runs the Figure 10 experiment for an explicit list of task counts.
pub fn run_with_tasks(config: &ExperimentConfig, task_counts: Vec<usize>) -> FigureReport {
    let heuristics = heuristics_by_name(&["H1", "H2", "H3", "H4", "H4w", "H4f"]);
    let bnb_config = BnbConfig::with_node_budget(config.exact_node_budget);
    let spec = SweepSpec {
        id: "fig10",
        figure_index: 10,
        title: format!("m = {MACHINES}, p = {TYPES}"),
        x_label: "tasks".into(),
        y_label: "period (ms)".into(),
        labels: LABELS.iter().map(|s| s.to_string()).collect(),
        x_values: task_counts,
    };
    run_sweep(
        config,
        spec,
        |n| GeneratorConfig::paper_standard(n, MACHINES, TYPES.min(n.max(1))),
        move |instance| {
            // Keep the instance only when the exact solver proves optimality
            // ("MIP-compatible platform" in the paper's protocol).
            match branch_and_bound(instance, bnb_config) {
                Ok(outcome) if outcome.proven_optimal => {
                    let mut values = heuristic_periods(&heuristics, instance);
                    values.push(Some(outcome.period.value()));
                    values
                }
                _ => vec![None; LABELS.len()],
            }
        },
    )
}

/// Per-instance ratios heuristic / optimum for the same setting (shared with
/// Figure 11 and the summary module).
pub fn ratios_to_optimal(
    config: &ExperimentConfig,
    task_counts: Vec<usize>,
    heuristic_names: &[&str],
) -> FigureReport {
    let heuristics = heuristics_by_name(heuristic_names);
    let bnb_config = BnbConfig::with_node_budget(config.exact_node_budget);
    let labels: Vec<String> = heuristics.iter().map(|h| h.name().to_string()).collect();
    let spec = SweepSpec {
        id: "fig11",
        figure_index: 11,
        title: format!("m = {MACHINES}, p = {TYPES} — normalised to the optimum"),
        x_label: "tasks".into(),
        y_label: "period / optimal period".into(),
        labels,
        x_values: task_counts,
    };
    run_sweep(
        config,
        spec,
        |n| GeneratorConfig::paper_standard(n, MACHINES, TYPES.min(n.max(1))),
        move |instance| match branch_and_bound(instance, bnb_config) {
            Ok(outcome) if outcome.proven_optimal => {
                let optimal = outcome.period.value();
                heuristics
                    .iter()
                    .map(|h| h.period(instance).ok().map(|p| p.value() / optimal))
                    .collect()
            }
            _ => vec![None; heuristics.len()],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristics_never_beat_the_exact_optimum() {
        let config = ExperimentConfig {
            repetitions: 4,
            exact_node_budget: 500_000,
            ..ExperimentConfig::quick()
        };
        let report = run_with_tasks(&config, vec![4, 8]);
        let mip = report.series("MIP").unwrap();
        for label in ["H1", "H2", "H3", "H4", "H4w", "H4f"] {
            let series = report.series(label).unwrap();
            for &(x, _) in &series.points {
                if let (Some(h), Some(opt)) = (series.mean_at(x), mip.mean_at(x)) {
                    assert!(
                        h >= opt - 1e-6,
                        "{label} mean {h} beats the optimum {opt} at n = {x}"
                    );
                }
            }
        }
    }

    #[test]
    fn ratios_are_at_least_one() {
        let config = ExperimentConfig {
            repetitions: 3,
            exact_node_budget: 500_000,
            ..ExperimentConfig::quick()
        };
        let report = ratios_to_optimal(&config, vec![6], &["H2", "H4w"]);
        for series in &report.series {
            let mean = series.overall_mean().unwrap();
            assert!(mean >= 1.0 - 1e-9, "{} ratio {mean} below 1", series.label);
            assert!(
                mean < 3.0,
                "{} ratio {mean} suspiciously large",
                series.label
            );
        }
    }
}
