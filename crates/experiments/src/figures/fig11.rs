//! Figure 11 — normalisation of the Figure 10 results by the exact optimum.
//!
//! Same instances as Figure 10 (`m = 5`, `p = 2`, `n ∈ [2, 16]`), but every
//! heuristic period is divided by the optimal period of the instance. The
//! paper reports H2, H3 and H4w at factors of roughly 1.73, 1.58 and 1.33 from
//! the optimum.

use crate::config::ExperimentConfig;
use crate::figures::{fig10, steps};
use crate::report::FigureReport;

/// The heuristics normalised in Figure 11.
pub const LABELS: [&str; 6] = ["H1", "H2", "H3", "H4", "H4w", "H4f"];

/// Runs the Figure 11 experiment.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_with_tasks(config, steps(2, 16, 1))
}

/// Runs the Figure 11 experiment for an explicit list of task counts.
pub fn run_with_tasks(config: &ExperimentConfig, task_counts: Vec<usize>) -> FigureReport {
    fig10::ratios_to_optimal(config, task_counts, &LABELS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation_orders_the_heuristics_like_the_paper() {
        let config = ExperimentConfig {
            repetitions: 5,
            exact_node_budget: 500_000,
            ..ExperimentConfig::quick()
        };
        let report = run_with_tasks(&config, vec![8, 10]);
        let ratio = |label: &str| report.series(label).unwrap().overall_mean().unwrap();
        // The speed-aware greedy heuristics must stay well under the random one.
        assert!(
            ratio("H4w") < ratio("H1"),
            "H4w should normalise better than H1"
        );
        // And reasonably close to the optimum (paper: 1.33 on the full protocol).
        assert!(
            ratio("H4w") < 1.9,
            "H4w ratio {} too far from optimum",
            ratio("H4w")
        );
    }
}
