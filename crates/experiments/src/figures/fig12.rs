//! Figure 12 — heuristics against the exact optimum on a larger platform,
//! `m = 9`, `p = 4`, `n ∈ [5, 20]`.
//!
//! The defining feature of this figure is that the exact solver stops being
//! able to finish within its budget beyond roughly 15 tasks: the "MIP" curve
//! has holes while the heuristic curves continue. The heuristics are always
//! reported; the exact value only when it is proven within the node budget.

use crate::config::ExperimentConfig;
use crate::figures::{heuristic_periods, heuristics_by_name, run_sweep, steps, SweepSpec};
use crate::report::FigureReport;
use mf_exact::{branch_and_bound, BnbConfig};
use mf_sim::GeneratorConfig;

/// Series plotted in Figure 12.
pub const LABELS: [&str; 5] = ["H2", "H3", "H4", "H4w", "MIP"];

/// Number of machines.
pub const MACHINES: usize = 9;
/// Number of task types.
pub const TYPES: usize = 4;

/// Runs the Figure 12 experiment.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_with_tasks(config, steps(5, 20, 1))
}

/// Runs the Figure 12 experiment for an explicit list of task counts.
pub fn run_with_tasks(config: &ExperimentConfig, task_counts: Vec<usize>) -> FigureReport {
    let heuristics = heuristics_by_name(&["H2", "H3", "H4", "H4w"]);
    let bnb_config = BnbConfig::with_node_budget(config.exact_node_budget);
    let spec = SweepSpec {
        id: "fig12",
        figure_index: 12,
        title: format!("m = {MACHINES}, p = {TYPES}"),
        x_label: "tasks".into(),
        y_label: "period (ms)".into(),
        labels: LABELS.iter().map(|s| s.to_string()).collect(),
        x_values: task_counts,
    };
    run_sweep(
        config,
        spec,
        |n| GeneratorConfig::paper_standard(n, MACHINES, TYPES.min(n.max(1))),
        move |instance| {
            let mut values = heuristic_periods(&heuristics, instance);
            let exact = match branch_and_bound(instance, bnb_config) {
                Ok(outcome) if outcome.proven_optimal => Some(outcome.period.value()),
                _ => None,
            };
            values.push(exact);
            values
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_curve_is_present_on_small_instances_and_bounds_the_heuristics() {
        let config = ExperimentConfig {
            repetitions: 3,
            exact_node_budget: 500_000,
            ..ExperimentConfig::quick()
        };
        let report = run_with_tasks(&config, vec![6]);
        let mip = report.series("MIP").unwrap().mean_at(6.0);
        assert!(
            mip.is_some(),
            "the exact solver must finish on 6-task instances"
        );
        let mip = mip.unwrap();
        for label in ["H2", "H3", "H4", "H4w"] {
            let h = report.series(label).unwrap().mean_at(6.0).unwrap();
            assert!(
                h >= mip - 1e-6,
                "{label} ({h}) beats the exact optimum ({mip})"
            );
        }
    }

    #[test]
    fn tiny_budget_reproduces_the_mip_dropout() {
        // With an absurdly small node budget the exact curve disappears while
        // the heuristics are still reported — the Figure 12 phenomenon.
        let config = ExperimentConfig {
            repetitions: 2,
            exact_node_budget: 3,
            ..ExperimentConfig::quick()
        };
        let report = run_with_tasks(&config, vec![14]);
        assert!(report.series("MIP").unwrap().mean_at(14.0).is_none());
        assert!(report.series("H4w").unwrap().mean_at(14.0).is_some());
    }
}
