//! Figure 5 — specialized mappings, `m = 50`, `p = 5`, all six heuristics.
//!
//! Period (ms) as a function of the number of tasks `n ∈ [50, 150]`, processing
//! times uniform in `[100, 1000]` ms, failures uniform in `[0.5%, 2%]`.
//! Expected shape: H1 and H4f clearly worse; H2/H3/H4/H4w close together.

use crate::config::ExperimentConfig;
use crate::figures::{heuristic_periods, heuristics_by_name, run_sweep, steps, SweepSpec};
use crate::report::FigureReport;
use mf_sim::GeneratorConfig;

/// The heuristics plotted in Figure 5.
pub const LABELS: [&str; 6] = ["H1", "H2", "H3", "H4", "H4w", "H4f"];

/// Number of machines.
pub const MACHINES: usize = 50;
/// Number of task types.
pub const TYPES: usize = 5;

/// Runs the Figure 5 experiment.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_with_tasks(config, steps(50, 150, 10))
}

/// Runs the Figure 5 experiment for an explicit list of task counts (used by
/// the benches and tests with a reduced sweep).
pub fn run_with_tasks(config: &ExperimentConfig, task_counts: Vec<usize>) -> FigureReport {
    let heuristics = heuristics_by_name(&LABELS);
    let spec = SweepSpec {
        id: "fig5",
        figure_index: 5,
        title: format!("m = {MACHINES}, p = {TYPES}"),
        x_label: "tasks".into(),
        y_label: "period (ms)".into(),
        labels: LABELS.iter().map(|s| s.to_string()).collect(),
        x_values: task_counts,
    };
    run_sweep(
        config,
        spec,
        |n| GeneratorConfig::paper_standard(n, MACHINES, TYPES),
        |instance| heuristic_periods(&heuristics, instance),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let config = ExperimentConfig {
            repetitions: 6,
            ..ExperimentConfig::quick()
        };
        let report = run_with_tasks(&config, vec![60, 120]);
        assert_eq!(report.series.len(), 6);
        // The load grows with the number of tasks for every heuristic.
        for series in &report.series {
            let small = series.mean_at(60.0).unwrap();
            let large = series.mean_at(120.0).unwrap();
            assert!(
                large > small,
                "{}: {large} should exceed {small}",
                series.label
            );
        }
        // H4w (speed-aware) beats H4f (reliability-only) and H1 (random).
        let h4w = report.series("H4w").unwrap().overall_mean().unwrap();
        let h4f = report.series("H4f").unwrap().overall_mean().unwrap();
        let h1 = report.series("H1").unwrap().overall_mean().unwrap();
        assert!(h4w < h4f, "H4w ({h4w}) should beat H4f ({h4f})");
        assert!(h4w < h1, "H4w ({h4w}) should beat H1 ({h1})");
    }
}
