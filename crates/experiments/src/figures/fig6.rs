//! Figure 6 — specialized mappings, `m = 10`, `p = 2`.
//!
//! Period as a function of `n ∈ [10, 100]` for H2, H3, H4 and H4w (H1 and H4f
//! are dropped from the plot in the paper because they are not competitive).
//! Expected shape: H4 slightly below the others on this small platform, where
//! taking the failure rate into account pays off.

use crate::config::ExperimentConfig;
use crate::figures::{heuristic_periods, heuristics_by_name, run_sweep, steps, SweepSpec};
use crate::report::FigureReport;
use mf_sim::GeneratorConfig;

/// The heuristics plotted in Figure 6.
pub const LABELS: [&str; 4] = ["H2", "H3", "H4", "H4w"];

/// Number of machines.
pub const MACHINES: usize = 10;
/// Number of task types.
pub const TYPES: usize = 2;

/// Runs the Figure 6 experiment.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_with_tasks(config, steps(10, 100, 10))
}

/// Runs the Figure 6 experiment for an explicit list of task counts.
pub fn run_with_tasks(config: &ExperimentConfig, task_counts: Vec<usize>) -> FigureReport {
    let heuristics = heuristics_by_name(&LABELS);
    let spec = SweepSpec {
        id: "fig6",
        figure_index: 6,
        title: format!("m = {MACHINES}, p = {TYPES}"),
        x_label: "tasks".into(),
        y_label: "period (ms)".into(),
        labels: LABELS.iter().map(|s| s.to_string()).collect(),
        x_values: task_counts,
    };
    run_sweep(
        config,
        spec,
        |n| GeneratorConfig::paper_standard(n, MACHINES, TYPES),
        |instance| heuristic_periods(&heuristics, instance),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_heuristics_stay_close_to_binary_search() {
        let config = ExperimentConfig {
            repetitions: 6,
            ..ExperimentConfig::quick()
        };
        let report = run_with_tasks(&config, vec![40]);
        let h2 = report.series("H2").unwrap().overall_mean().unwrap();
        let h4 = report.series("H4").unwrap().overall_mean().unwrap();
        let h4w = report.series("H4w").unwrap().overall_mean().unwrap();
        // All three competitive heuristics are within a factor 2 of each other.
        let best = h2.min(h4).min(h4w);
        let worst = h2.max(h4).max(h4w);
        assert!(worst / best < 2.0, "spread too large: {h2} / {h4} / {h4w}");
    }
}
