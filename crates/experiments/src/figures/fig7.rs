//! Figure 7 — specialized mappings on a large platform, `m = 100`, `p = 5`.
//!
//! Period as a function of `n ∈ [100, 200]` for H2, H3 and H4w. On this large
//! platform speed dominates reliability and H4w comes out best.

use crate::config::ExperimentConfig;
use crate::figures::{heuristic_periods, heuristics_by_name, run_sweep, steps, SweepSpec};
use crate::report::FigureReport;
use mf_sim::GeneratorConfig;

/// The heuristics plotted in Figure 7.
pub const LABELS: [&str; 3] = ["H2", "H3", "H4w"];

/// Number of machines.
pub const MACHINES: usize = 100;
/// Number of task types.
pub const TYPES: usize = 5;

/// Runs the Figure 7 experiment.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_with_tasks(config, steps(100, 200, 10))
}

/// Runs the Figure 7 experiment for an explicit list of task counts.
pub fn run_with_tasks(config: &ExperimentConfig, task_counts: Vec<usize>) -> FigureReport {
    let heuristics = heuristics_by_name(&LABELS);
    let spec = SweepSpec {
        id: "fig7",
        figure_index: 7,
        title: format!("m = {MACHINES}, p = {TYPES}"),
        x_label: "tasks".into(),
        y_label: "period (ms)".into(),
        labels: LABELS.iter().map(|s| s.to_string()).collect(),
        x_values: task_counts,
    };
    run_sweep(
        config,
        spec,
        |n| GeneratorConfig::paper_standard(n, MACHINES, TYPES),
        |instance| heuristic_periods(&heuristics, instance),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h4w_is_competitive_on_large_platforms() {
        let config = ExperimentConfig {
            repetitions: 4,
            ..ExperimentConfig::quick()
        };
        let report = run_with_tasks(&config, vec![120]);
        let h4w = report.series("H4w").unwrap().overall_mean().unwrap();
        let h3 = report.series("H3").unwrap().overall_mean().unwrap();
        // The paper finds H4w best on this platform; allow slack but H4w must
        // not be dramatically worse than H3.
        assert!(
            h4w <= h3 * 1.25,
            "H4w ({h4w}) should be competitive with H3 ({h3})"
        );
    }
}
