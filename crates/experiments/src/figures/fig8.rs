//! Figure 8 — high failure rates, `m = 10`, `p = 5`, `f ∈ [0, 10%]`.
//!
//! Period as a function of `n ∈ [10, 100]` for all six heuristics. With
//! failures up to 10% the periods grow dramatically with the chain length and
//! only the binary-search heuristic H2 keeps up.

use crate::config::ExperimentConfig;
use crate::figures::{heuristic_periods, heuristics_by_name, run_sweep, steps, SweepSpec};
use crate::report::FigureReport;
use mf_sim::GeneratorConfig;

/// The heuristics plotted in Figure 8.
pub const LABELS: [&str; 6] = ["H1", "H2", "H3", "H4", "H4w", "H4f"];

/// Number of machines.
pub const MACHINES: usize = 10;
/// Number of task types.
pub const TYPES: usize = 5;

/// Runs the Figure 8 experiment.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_with_tasks(config, steps(10, 100, 10))
}

/// Runs the Figure 8 experiment for an explicit list of task counts.
pub fn run_with_tasks(config: &ExperimentConfig, task_counts: Vec<usize>) -> FigureReport {
    let heuristics = heuristics_by_name(&LABELS);
    let spec = SweepSpec {
        id: "fig8",
        figure_index: 8,
        title: format!("m = {MACHINES}, p = {TYPES}, 0 ≤ f ≤ 0.1"),
        x_label: "tasks".into(),
        y_label: "period (ms)".into(),
        labels: LABELS.iter().map(|s| s.to_string()).collect(),
        x_values: task_counts,
    };
    run_sweep(
        config,
        spec,
        |n| GeneratorConfig::paper_high_failure(n, MACHINES, TYPES),
        |instance| heuristic_periods(&heuristics, instance),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig6;

    #[test]
    fn high_failure_periods_exceed_standard_ones() {
        let config = ExperimentConfig {
            repetitions: 4,
            ..ExperimentConfig::quick()
        };
        // Same platform size as Figure 6 but with 5 types and f up to 10%:
        // the best heuristic's period must be clearly larger than under the
        // standard 0.5–2% failures on a comparable platform.
        let high = run_with_tasks(&config, vec![60]);
        let standard = fig6::run_with_tasks(&config, vec![60]);
        let high_h2 = high.series("H2").unwrap().overall_mean().unwrap();
        let std_h2 = standard.series("H2").unwrap().overall_mean().unwrap();
        assert!(
            high_h2 > std_h2,
            "high-failure H2 period ({high_h2}) should exceed the standard one ({std_h2})"
        );
    }

    #[test]
    fn h2_is_the_most_robust_under_high_failures() {
        let config = ExperimentConfig {
            repetitions: 6,
            ..ExperimentConfig::quick()
        };
        let report = run_with_tasks(&config, vec![80]);
        let h2 = report.series("H2").unwrap().overall_mean().unwrap();
        let h1 = report.series("H1").unwrap().overall_mean().unwrap();
        let h4f = report.series("H4f").unwrap().overall_mean().unwrap();
        assert!(
            h2 < h1,
            "H2 ({h2}) should beat H1 ({h1}) under high failures"
        );
        assert!(
            h2 < h4f,
            "H2 ({h2}) should beat H4f ({h4f}) under high failures"
        );
    }
}
