//! Figure 9 — heuristics against the optimal one-to-one mapping.
//!
//! Platform of `m = 100` machines, `n = 100` tasks, failures attached to tasks
//! only (`f_{i,u} = f_i`), period as a function of the number of types
//! `p ∈ [20, 100]`. The reference curve "OtO" is the optimal one-to-one
//! mapping, computable in polynomial time in this setting (bottleneck
//! assignment). Expected shape: H4w closest to the optimum, and all heuristics
//! converge towards it as `p → m` (grouping freedom disappears).

use crate::config::ExperimentConfig;
use crate::figures::{heuristic_periods, heuristics_by_name, run_sweep, steps, SweepSpec};
use crate::report::FigureReport;
use mf_exact::optimal_one_to_one_bottleneck;
use mf_sim::GeneratorConfig;

/// Series plotted in Figure 9 (three heuristics plus the optimal one-to-one).
pub const LABELS: [&str; 4] = ["H2", "H3", "H4w", "OtO"];

/// Number of machines (and of tasks).
pub const MACHINES: usize = 100;
/// Number of tasks.
pub const TASKS: usize = 100;

/// Runs the Figure 9 experiment.
pub fn run(config: &ExperimentConfig) -> FigureReport {
    run_with_types(config, steps(20, 100, 10))
}

/// Runs the Figure 9 experiment for an explicit list of type counts.
pub fn run_with_types(config: &ExperimentConfig, type_counts: Vec<usize>) -> FigureReport {
    let heuristics = heuristics_by_name(&["H2", "H3", "H4w"]);
    let spec = SweepSpec {
        id: "fig9",
        figure_index: 9,
        title: format!("m = {MACHINES}, n = {TASKS}, f_{{i,u}} = f_i"),
        x_label: "types".into(),
        y_label: "period (ms)".into(),
        labels: LABELS.iter().map(|s| s.to_string()).collect(),
        x_values: type_counts,
    };
    run_sweep(
        config,
        spec,
        |p| GeneratorConfig::paper_task_failures(TASKS, MACHINES, p),
        |instance| {
            let mut values = heuristic_periods(&heuristics, instance);
            values.push(
                optimal_one_to_one_bottleneck(instance)
                    .ok()
                    .map(|outcome| outcome.period.value()),
            );
            values
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristics_are_bounded_below_by_nothing_but_close_to_oto() {
        // Use a smaller platform so the test stays fast, keeping n = m and
        // task-attached failures.
        let config = ExperimentConfig {
            repetitions: 3,
            ..ExperimentConfig::quick()
        };
        let heuristics = heuristics_by_name(&["H2", "H3", "H4w"]);
        let spec = SweepSpec {
            id: "fig9-mini",
            figure_index: 90,
            title: "mini".into(),
            x_label: "types".into(),
            y_label: "period (ms)".into(),
            labels: LABELS.iter().map(|s| s.to_string()).collect(),
            x_values: vec![5, 20],
        };
        let report = run_sweep(
            &config,
            spec,
            |p| GeneratorConfig::paper_task_failures(20, 20, p),
            |instance| {
                let mut values = heuristic_periods(&heuristics, instance);
                values.push(
                    optimal_one_to_one_bottleneck(instance)
                        .ok()
                        .map(|outcome| outcome.period.value()),
                );
                values
            },
        );
        let oto = report.series("OtO").unwrap().overall_mean().unwrap();
        let h4w = report.series("H4w").unwrap().overall_mean().unwrap();
        assert!(oto > 0.0);
        // H4w groups tasks, so it can even beat the one-to-one optimum; it must
        // at least stay within a small factor of it (the paper reports 1.28).
        assert!(
            h4w <= oto * 2.0,
            "H4w ({h4w}) too far from the OtO optimum ({oto})"
        );
        // With p == n == m every specialized mapping degenerates and the curves
        // approach each other.
        let h2_at_max = report.series("H2").unwrap().mean_at(20.0).unwrap();
        let oto_at_max = report.series("OtO").unwrap().mean_at(20.0).unwrap();
        assert!(h2_at_max <= oto_at_max * 2.5);
    }
}
