//! One module per figure of the paper's evaluation section, plus the shared
//! sweep machinery and the summary ratios quoted in §7.2–§7.4.

pub mod ext_localsearch;
pub mod ext_portfolio;
pub mod ext_split;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod summary;

use crate::config::ExperimentConfig;
use crate::report::{FigureReport, Series};
use crate::runner::BatchRunner;
use crate::stats::Stats;
use mf_core::prelude::*;
use mf_heuristics::Heuristic;
use mf_sim::{GeneratorConfig, InstanceGenerator};

/// Static description of a sweep (axes, labels, x values).
pub struct SweepSpec {
    /// Report identifier (`"fig5"`, …).
    pub id: &'static str,
    /// Numeric figure index used for seed derivation.
    pub figure_index: u32,
    /// Human-readable title (platform parameters).
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label.
    pub y_label: String,
    /// One label per value returned by the evaluation closure.
    pub labels: Vec<String>,
    /// The x values swept.
    pub x_values: Vec<usize>,
}

/// Runs a sweep: for every x value, `config.repetitions` instances are drawn
/// from `generator_for(x)` and handed to `evaluate`, which returns one
/// (optional) measurement per label of the spec.
pub fn run_sweep<G, E>(
    config: &ExperimentConfig,
    spec: SweepSpec,
    generator_for: G,
    evaluate: E,
) -> FigureReport
where
    G: Fn(usize) -> GeneratorConfig + Sync,
    E: Fn(&Instance) -> Vec<Option<f64>> + Sync,
{
    let reps = config.repetitions.max(1);
    let points = spec.x_values.len();
    let labels = spec.labels.len();

    let per_item: Vec<Vec<Option<f64>>> =
        BatchRunner::from_config(config).map(points * reps, |item| {
            let point = item / reps;
            let rep = item % reps;
            let x = spec.x_values[point];
            let seed = config.seed_for(spec.figure_index, point, rep);
            let generator = InstanceGenerator::new(generator_for(x));
            match generator.generate(seed) {
                Ok(instance) => {
                    let mut values = evaluate(&instance);
                    values.resize(labels, None);
                    values
                }
                Err(_) => vec![None; labels],
            }
        });

    let mut series: Vec<Series> = spec
        .labels
        .iter()
        .map(|label| Series {
            label: label.clone(),
            points: Vec::with_capacity(points),
        })
        .collect();
    for point in 0..points {
        let x = spec.x_values[point] as f64;
        for (k, series) in series.iter_mut().enumerate() {
            let samples: Vec<f64> = (0..reps)
                .filter_map(|rep| per_item[point * reps + rep][k])
                .collect();
            series.points.push((x, Stats::from_samples(&samples)));
        }
    }

    FigureReport {
        id: spec.id.to_string(),
        title: spec.title,
        x_label: spec.x_label,
        y_label: spec.y_label,
        series,
    }
}

/// Periods achieved by a list of heuristics on one instance (`None` when a
/// heuristic fails, which only happens when `p > m`).
pub fn heuristic_periods(
    heuristics: &[Box<dyn Heuristic + Send + Sync>],
    instance: &Instance,
) -> Vec<Option<f64>> {
    heuristics
        .iter()
        .map(|h| h.period(instance).ok().map(|p| p.value()))
        .collect()
}

/// The heuristic subset used by a figure, by name, drawn from the paper
/// registry (H1's randomness is seeded from the instance-independent seed 1).
pub fn heuristics_by_name(names: &[&str]) -> Vec<Box<dyn Heuristic + Send + Sync>> {
    mf_heuristics::all_paper_heuristics(1)
        .into_iter()
        .filter(|h| names.contains(&h.name()))
        .collect()
}

/// Inclusive range with a step, e.g. `steps(50, 150, 10)`.
pub fn steps(from: usize, to: usize, step: usize) -> Vec<usize> {
    let mut values = Vec::new();
    let mut x = from;
    while x <= to {
        values.push(x);
        x += step;
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_generates_inclusive_ranges() {
        assert_eq!(steps(50, 80, 10), vec![50, 60, 70, 80]);
        assert_eq!(steps(2, 5, 1), vec![2, 3, 4, 5]);
        assert_eq!(steps(5, 4, 1), Vec::<usize>::new());
    }

    #[test]
    fn heuristics_by_name_filters_the_registry() {
        let subset = heuristics_by_name(&["H2", "H4w"]);
        let names: Vec<_> = subset.iter().map(|h| h.name().to_string()).collect();
        assert_eq!(names, vec!["H2", "H4w"]);
    }

    #[test]
    fn run_sweep_produces_one_series_per_label() {
        let config = ExperimentConfig {
            repetitions: 2,
            ..ExperimentConfig::quick()
        };
        let spec = SweepSpec {
            id: "test",
            figure_index: 99,
            title: "tiny".into(),
            x_label: "tasks".into(),
            y_label: "period".into(),
            labels: vec!["H2".into(), "H4w".into()],
            x_values: vec![4, 6],
        };
        let heuristics = heuristics_by_name(&["H2", "H4w"]);
        let report = run_sweep(
            &config,
            spec,
            |n| GeneratorConfig::paper_standard(n, 3, 2),
            |instance| heuristic_periods(&heuristics, instance),
        );
        assert_eq!(report.series.len(), 2);
        assert_eq!(report.x_values(), vec![4.0, 6.0]);
        for series in &report.series {
            for (_, stats) in &series.points {
                let stats = stats.expect("heuristics succeed on these instances");
                assert_eq!(stats.count, 2);
                assert!(stats.mean > 0.0);
            }
        }
    }
}
