//! Summary ratios quoted in the paper's §7.2–§7.4.
//!
//! * against the **optimal one-to-one mapping** (Figure 9 setting), the paper
//!   reports H2, H3 and H4w at factors 1.84, 1.75 and 1.28;
//! * against the **MIP optimum** (Figure 10 setting), at factors 1.73, 1.58
//!   and 1.33.
//!
//! This module recomputes both tables from the same experiments, using the
//! geometric mean of the per-instance ratios.

use crate::config::ExperimentConfig;
use crate::figures::{heuristics_by_name, steps};
use crate::runner::BatchRunner;
use crate::stats::geometric_mean;
use mf_exact::{branch_and_bound, optimal_one_to_one_bottleneck, BnbConfig};
use mf_sim::{GeneratorConfig, InstanceGenerator};
use std::fmt::Write as _;

/// The heuristics the paper summarises.
pub const LABELS: [&str; 3] = ["H2", "H3", "H4w"];

/// Average factors from the two reference optima.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRatios {
    /// (heuristic, geometric-mean ratio to the optimal one-to-one period).
    pub versus_one_to_one: Vec<(String, f64)>,
    /// (heuristic, geometric-mean ratio to the exact specialized optimum).
    pub versus_exact: Vec<(String, f64)>,
    /// Paper-reported factors, for side-by-side display.
    pub paper_versus_one_to_one: Vec<(String, f64)>,
    /// Paper-reported factors against the MIP.
    pub paper_versus_exact: Vec<(String, f64)>,
}

impl SummaryRatios {
    /// Renders the two tables as text.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# Summary — average factor from the optimal (geometric mean)"
        );
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>14} {:>14} {:>14}",
            "", "vs OtO", "paper", "vs exact", "paper"
        );
        for (i, label) in LABELS.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>6} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
                label,
                self.versus_one_to_one[i].1,
                self.paper_versus_one_to_one[i].1,
                self.versus_exact[i].1,
                self.paper_versus_exact[i].1
            );
        }
        out
    }
}

/// Computes both summary tables.
pub fn run(config: &ExperimentConfig) -> SummaryRatios {
    run_with(config, steps(30, 90, 20), steps(4, 12, 2))
}

/// Computes the summary with explicit sweeps (used by tests with smaller
/// settings).
pub fn run_with(
    config: &ExperimentConfig,
    one_to_one_type_counts: Vec<usize>,
    exact_task_counts: Vec<usize>,
) -> SummaryRatios {
    let heuristics = heuristics_by_name(&LABELS);
    let runner = BatchRunner::from_config(config);

    // --- Ratios against the optimal one-to-one mapping (Figure 9 setting). ---
    let reps = config.repetitions.max(1);
    let oto_items = one_to_one_type_counts.len() * reps;
    let oto_ratios: Vec<Vec<Option<f64>>> = runner.map(oto_items, |item| {
        let point = item / reps;
        let rep = item % reps;
        let p = one_to_one_type_counts[point];
        let seed = config.seed_for(91, point, rep);
        let generator = InstanceGenerator::new(GeneratorConfig::paper_task_failures(100, 100, p));
        let Ok(instance) = generator.generate(seed) else {
            return vec![None; heuristics.len()];
        };
        let Ok(reference) = optimal_one_to_one_bottleneck(&instance) else {
            return vec![None; heuristics.len()];
        };
        let optimal = reference.period.value();
        heuristics
            .iter()
            .map(|h| h.period(&instance).ok().map(|p| p.value() / optimal))
            .collect()
    });

    // --- Ratios against the exact specialized optimum (Figure 10 setting). ---
    let bnb_config = BnbConfig::with_node_budget(config.exact_node_budget);
    let exact_items = exact_task_counts.len() * reps;
    let exact_ratios: Vec<Vec<Option<f64>>> = runner.map(exact_items, |item| {
        let point = item / reps;
        let rep = item % reps;
        let n = exact_task_counts[point];
        let seed = config.seed_for(92, point, rep);
        let generator = InstanceGenerator::new(GeneratorConfig::paper_standard(n, 5, 2));
        let Ok(instance) = generator.generate(seed) else {
            return vec![None; heuristics.len()];
        };
        match branch_and_bound(&instance, bnb_config) {
            Ok(outcome) if outcome.proven_optimal => {
                let optimal = outcome.period.value();
                heuristics
                    .iter()
                    .map(|h| h.period(&instance).ok().map(|p| p.value() / optimal))
                    .collect()
            }
            _ => vec![None; heuristics.len()],
        }
    });

    let aggregate = |rows: &[Vec<Option<f64>>]| -> Vec<(String, f64)> {
        LABELS
            .iter()
            .enumerate()
            .map(|(k, label)| {
                let samples: Vec<f64> = rows.iter().filter_map(|row| row[k]).collect();
                (
                    label.to_string(),
                    geometric_mean(&samples).unwrap_or(f64::NAN),
                )
            })
            .collect()
    };

    SummaryRatios {
        versus_one_to_one: aggregate(&oto_ratios),
        versus_exact: aggregate(&exact_ratios),
        paper_versus_one_to_one: vec![
            ("H2".into(), 1.84),
            ("H3".into(), 1.75),
            ("H4w".into(), 1.28),
        ],
        paper_versus_exact: vec![
            ("H2".into(), 1.73),
            ("H3".into(), 1.58),
            ("H4w".into(), 1.33),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_ratios_have_the_expected_shape() {
        let config = ExperimentConfig {
            repetitions: 2,
            exact_node_budget: 500_000,
            ..ExperimentConfig::quick()
        };
        // Small sweeps to keep the test quick.
        let summary = run_with(&config, vec![10], vec![6]);
        assert_eq!(summary.versus_one_to_one.len(), 3);
        assert_eq!(summary.versus_exact.len(), 3);
        for (label, ratio) in summary.versus_exact.iter() {
            assert!(
                *ratio >= 1.0 - 1e-9,
                "{label} ratio {ratio} below 1 against the exact optimum"
            );
            assert!(*ratio < 4.0, "{label} ratio {ratio} implausibly large");
        }
        // H4w is the paper's best heuristic against the exact optimum.
        let h4w = summary
            .versus_exact
            .iter()
            .find(|(l, _)| l == "H4w")
            .unwrap()
            .1;
        let h2 = summary
            .versus_exact
            .iter()
            .find(|(l, _)| l == "H2")
            .unwrap()
            .1;
        assert!(h4w <= h2 + 0.5);
        let table = summary.to_table();
        assert!(table.contains("H4w"));
        assert!(table.contains("1.28"));
    }
}
