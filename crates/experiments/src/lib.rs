//! # mf-experiments — reproduction harness for the paper's evaluation (§7)
//!
//! Every figure of the paper has a module under [`figures`] and a binary
//! (`cargo run -p mf-experiments --release --bin fig5`, …) that regenerates the
//! corresponding series: period (ms) as a function of the number of tasks,
//! types, or the normalisation against the exact optimum.
//!
//! The harness is deliberately deterministic: every point is an average over
//! `repetitions` instances drawn from seeded generators, and the seeds are
//! derived from the experiment configuration, so two runs of the same binary
//! produce identical numbers.
//!
//! ```
//! use mf_experiments::config::ExperimentConfig;
//! use mf_experiments::figures::fig6;
//!
//! // A miniature run (2 repetitions) of the Figure 6 experiment.
//! let config = ExperimentConfig { repetitions: 2, ..ExperimentConfig::quick() };
//! let report = fig6::run(&config);
//! assert!(!report.series.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anytime;
pub mod config;
pub mod figures;
pub mod persist;
pub mod portfolio;
pub mod report;
pub mod runner;
pub mod stats;

pub use anytime::{
    solve_anytime, solve_anytime_observed, AnytimeConfig, AnytimeEvent, AnytimeOutcome,
    AnytimePhase,
};
pub use config::ExperimentConfig;
pub use persist::{batch_from_text, batch_to_text, figure_from_text, figure_to_text};
pub use portfolio::{
    CellRoundRecord, CellRoundSummary, PortfolioConfig, PortfolioOutcome, TracedPortfolio,
};
pub use report::{FigureReport, Series};
pub use stats::Stats;
