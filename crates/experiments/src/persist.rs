//! Deterministic on-disk persistence of sweep reports.
//!
//! CI wants to diff experiment numbers across commits, which needs a format
//! that is (a) **stable** — field order and layout never depend on map
//! iteration or scheduling — and (b) **lossless** — every `f64` survives a
//! write→parse round trip bit-for-bit. This module serializes
//! [`FigureReport`] and [`BatchReport`] to a line-oriented plain-text format
//! using Rust's shortest-round-trip float formatting (`{}`), which guarantees
//! `value.to_string().parse::<f64>() == value` exactly:
//!
//! ```text
//! mf-report v1 figure
//! id fig5
//! x-label number of tasks
//! y-label period (ms)
//! title m = 50, p = 5
//! series H2
//! point 50 30 1234.5678 12.25 1200 1280.5
//! point 60 -
//! end
//! ```
//!
//! A `point` line is `x count mean std_dev min max`, or `x -` for a point
//! where the method produced no result. Batch reports
//! (`mf-report v1 batch`) persist the raw cells instead:
//! `cell <scenario> <rep> <method> <period|->`.
//!
//! Labels and titles may contain spaces (they end the line); embedded
//! newlines are rejected at write time rather than silently corrupting the
//! format. All figure binaries take `--out <path>` to write this format, and
//! the CI portfolio smoke sweep diffs two independently produced files.

use crate::report::{FigureReport, Series};
use crate::runner::{BatchReport, CellOutcome};
use crate::stats::Stats;
use std::fmt::Write as _;

/// Format magic of figure reports.
const FIGURE_HEADER: &str = "mf-report v1 figure";
/// Format magic of batch reports.
const BATCH_HEADER: &str = "mf-report v1 batch";

/// Errors raised when writing or parsing a persisted report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// A label/title contained a newline and cannot be persisted losslessly.
    UnencodableText(String),
    /// The input is not a report in the expected format.
    Malformed {
        /// 1-based line number of the offending line (0 for global issues).
        line: usize,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::UnencodableText(text) => {
                write!(
                    f,
                    "text contains a newline and cannot be persisted: {text:?}"
                )
            }
            PersistError::Malformed { line, detail } => {
                write!(f, "malformed report at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

/// Result alias for persistence operations.
pub type PersistResult<T> = std::result::Result<T, PersistError>;

fn check_line(text: &str) -> PersistResult<&str> {
    if text.contains('\n') || text.contains('\r') {
        Err(PersistError::UnencodableText(text.to_string()))
    } else {
        Ok(text)
    }
}

/// Serializes a figure report. Deterministic: equal reports produce equal
/// bytes, and every float round-trips exactly.
pub fn figure_to_text(report: &FigureReport) -> PersistResult<String> {
    let mut out = String::new();
    let _ = writeln!(out, "{FIGURE_HEADER}");
    let _ = writeln!(out, "id {}", check_line(&report.id)?);
    let _ = writeln!(out, "x-label {}", check_line(&report.x_label)?);
    let _ = writeln!(out, "y-label {}", check_line(&report.y_label)?);
    let _ = writeln!(out, "title {}", check_line(&report.title)?);
    for series in &report.series {
        let _ = writeln!(out, "series {}", check_line(&series.label)?);
        for (x, stats) in &series.points {
            match stats {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "point {x} {} {} {} {} {}",
                        s.count, s.mean, s.std_dev, s.min, s.max
                    );
                }
                None => {
                    let _ = writeln!(out, "point {x} -");
                }
            }
        }
    }
    let _ = writeln!(out, "end");
    Ok(out)
}

/// Serializes a batch report (raw cells, scenario-major order preserved).
pub fn batch_to_text(report: &BatchReport) -> PersistResult<String> {
    let mut out = String::new();
    let _ = writeln!(out, "{BATCH_HEADER}");
    let _ = writeln!(out, "reps {}", report.reps);
    for name in &report.scenario_names {
        let _ = writeln!(out, "scenario {}", check_line(name)?);
    }
    for name in &report.method_names {
        let _ = writeln!(out, "method {}", check_line(name)?);
    }
    for cell in &report.cells {
        match cell.period {
            Some(period) => {
                let _ = writeln!(
                    out,
                    "cell {} {} {} {period}",
                    cell.scenario, cell.rep, cell.method
                );
            }
            None => {
                let _ = writeln!(out, "cell {} {} {} -", cell.scenario, cell.rep, cell.method);
            }
        }
    }
    let _ = writeln!(out, "end");
    Ok(out)
}

struct LineParser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> LineParser<'a> {
    fn new(text: &'a str) -> Self {
        LineParser {
            lines: text.lines().enumerate(),
        }
    }

    /// The next non-empty line as `(1-based number, content)`.
    fn next(&mut self) -> Option<(usize, &'a str)> {
        for (index, line) in self.lines.by_ref() {
            if !line.trim().is_empty() {
                return Some((index + 1, line));
            }
        }
        None
    }
}

fn malformed(line: usize, detail: impl Into<String>) -> PersistError {
    PersistError::Malformed {
        line,
        detail: detail.into(),
    }
}

fn expect_tag<'a>(entry: Option<(usize, &'a str)>, tag: &str) -> PersistResult<(usize, &'a str)> {
    let (line, content) = entry.ok_or_else(|| malformed(0, format!("missing `{tag}` line")))?;
    content
        .strip_prefix(tag)
        .and_then(|rest| {
            rest.strip_prefix(' ')
                .or(Some(rest).filter(|r| r.is_empty()))
        })
        .map(|rest| (line, rest))
        .ok_or_else(|| malformed(line, format!("expected `{tag} …`, found `{content}`")))
}

fn parse_f64(line: usize, token: &str) -> PersistResult<f64> {
    token
        .parse::<f64>()
        .map_err(|_| malformed(line, format!("not a float: `{token}`")))
}

fn parse_usize(line: usize, token: &str) -> PersistResult<usize> {
    token
        .parse::<usize>()
        .map_err(|_| malformed(line, format!("not an integer: `{token}`")))
}

/// Parses a figure report written by [`figure_to_text`].
pub fn figure_from_text(text: &str) -> PersistResult<FigureReport> {
    let mut parser = LineParser::new(text);
    let (line, _) = expect_tag(parser.next(), FIGURE_HEADER)
        .map_err(|_| malformed(1, format!("missing `{FIGURE_HEADER}` header")))?;
    let _ = line;
    let (_, id) = expect_tag(parser.next(), "id")?;
    let (_, x_label) = expect_tag(parser.next(), "x-label")?;
    let (_, y_label) = expect_tag(parser.next(), "y-label")?;
    let (_, title) = expect_tag(parser.next(), "title")?;
    let mut series: Vec<Series> = Vec::new();
    loop {
        let (line, content) = parser
            .next()
            .ok_or_else(|| malformed(0, "missing `end` line"))?;
        if content == "end" {
            break;
        }
        if let Some(label) = content.strip_prefix("series ") {
            series.push(Series {
                label: label.to_string(),
                points: Vec::new(),
            });
        } else if let Some(rest) = content.strip_prefix("point ") {
            let current = series
                .last_mut()
                .ok_or_else(|| malformed(line, "`point` before any `series`"))?;
            let tokens: Vec<&str> = rest.split(' ').collect();
            match tokens.as_slice() {
                [x, "-"] => current.points.push((parse_f64(line, x)?, None)),
                [x, count, mean, std_dev, min, max] => current.points.push((
                    parse_f64(line, x)?,
                    Some(Stats {
                        count: parse_usize(line, count)?,
                        mean: parse_f64(line, mean)?,
                        std_dev: parse_f64(line, std_dev)?,
                        min: parse_f64(line, min)?,
                        max: parse_f64(line, max)?,
                    }),
                )),
                _ => return Err(malformed(line, format!("bad point line: `{content}`"))),
            }
        } else {
            return Err(malformed(line, format!("unexpected line: `{content}`")));
        }
    }
    Ok(FigureReport {
        id: id.to_string(),
        title: title.to_string(),
        x_label: x_label.to_string(),
        y_label: y_label.to_string(),
        series,
    })
}

/// Parses a batch report written by [`batch_to_text`].
pub fn batch_from_text(text: &str) -> PersistResult<BatchReport> {
    let mut parser = LineParser::new(text);
    expect_tag(parser.next(), BATCH_HEADER)
        .map_err(|_| malformed(1, format!("missing `{BATCH_HEADER}` header")))?;
    let (line, reps) = expect_tag(parser.next(), "reps")?;
    let reps = parse_usize(line, reps)?;
    let mut scenario_names = Vec::new();
    let mut method_names = Vec::new();
    let mut cells = Vec::new();
    loop {
        let (line, content) = parser
            .next()
            .ok_or_else(|| malformed(0, "missing `end` line"))?;
        if content == "end" {
            break;
        }
        if let Some(name) = content.strip_prefix("scenario ") {
            scenario_names.push(name.to_string());
        } else if let Some(name) = content.strip_prefix("method ") {
            method_names.push(name.to_string());
        } else if let Some(rest) = content.strip_prefix("cell ") {
            let tokens: Vec<&str> = rest.split(' ').collect();
            let [scenario, rep, method, period] = tokens.as_slice() else {
                return Err(malformed(line, format!("bad cell line: `{content}`")));
            };
            cells.push(CellOutcome {
                scenario: parse_usize(line, scenario)?,
                rep: parse_usize(line, rep)?,
                method: parse_usize(line, method)?,
                period: if *period == "-" {
                    None
                } else {
                    Some(parse_f64(line, period)?)
                },
            });
        } else {
            return Err(malformed(line, format!("unexpected line: `{content}`")));
        }
    }
    Ok(BatchReport {
        scenario_names,
        method_names,
        reps,
        cells,
    })
}

/// Writes a figure report to a file (creating parent directories).
pub fn write_figure(path: &std::path::Path, report: &FigureReport) -> std::io::Result<()> {
    let text = figure_to_text(report)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> FigureReport {
        let stats = |mean: f64| Stats {
            count: 3,
            mean,
            std_dev: 0.1 + mean / 7.0,
            min: mean - 1.0,
            max: mean + 1.5,
        };
        FigureReport {
            id: "figX".into(),
            title: "m = 50, p = 5 — smoke".into(),
            x_label: "number of tasks".into(),
            y_label: "period (ms)".into(),
            series: vec![
                Series {
                    label: "H2".into(),
                    points: vec![(10.0, Some(stats(100.125))), (20.0, Some(stats(1.0 / 3.0)))],
                },
                Series {
                    label: "MIP (budget)".into(),
                    points: vec![(10.0, Some(stats(90.0))), (20.0, None)],
                },
            ],
        }
    }

    #[test]
    fn figure_round_trip_is_exact() {
        let report = sample_figure();
        let text = figure_to_text(&report).unwrap();
        let parsed = figure_from_text(&text).unwrap();
        assert_eq!(parsed, report);
        // Serialization is deterministic: same report, same bytes.
        assert_eq!(figure_to_text(&parsed).unwrap(), text);
    }

    #[test]
    fn figure_round_trip_preserves_awkward_floats() {
        let mut report = sample_figure();
        report.series[0].points[0] = (
            0.1,
            Some(Stats {
                count: 1,
                mean: f64::MIN_POSITIVE,
                std_dev: 1e300,
                min: -0.0,
                max: 12345.678901234567,
            }),
        );
        let text = figure_to_text(&report).unwrap();
        let parsed = figure_from_text(&text).unwrap();
        let (x, stats) = parsed.series[0].points[0];
        let (ex, expected) = report.series[0].points[0];
        assert_eq!(x.to_bits(), ex.to_bits());
        let (stats, expected) = (stats.unwrap(), expected.unwrap());
        assert_eq!(stats.mean.to_bits(), expected.mean.to_bits());
        assert_eq!(stats.std_dev.to_bits(), expected.std_dev.to_bits());
        assert_eq!(stats.min.to_bits(), expected.min.to_bits());
        assert_eq!(stats.max.to_bits(), expected.max.to_bits());
    }

    #[test]
    fn newlines_in_labels_are_rejected() {
        let mut report = sample_figure();
        report.series[0].label = "two\nlines".into();
        assert!(matches!(
            figure_to_text(&report),
            Err(PersistError::UnencodableText(_))
        ));
    }

    #[test]
    fn malformed_inputs_are_rejected_with_line_numbers() {
        assert!(figure_from_text("not a report").is_err());
        let mut text = figure_to_text(&sample_figure()).unwrap();
        text = text.replace("point 20 -", "point 20 oops");
        let err = figure_from_text(&text).unwrap_err();
        assert!(matches!(err, PersistError::Malformed { .. }), "{err}");
        // A report without its `end` marker is incomplete.
        let truncated = figure_to_text(&sample_figure()).unwrap().replace("end", "");
        assert!(figure_from_text(&truncated).is_err());
    }

    #[test]
    fn batch_round_trip_is_exact() {
        let report = BatchReport {
            scenario_names: vec!["standard".into(), "high failure".into()],
            method_names: vec!["H2".into(), "SD-H2".into()],
            reps: 2,
            cells: vec![
                CellOutcome {
                    scenario: 0,
                    rep: 0,
                    method: 0,
                    period: Some(123.456789),
                },
                CellOutcome {
                    scenario: 0,
                    rep: 0,
                    method: 1,
                    period: Some(1.0 / 7.0),
                },
                CellOutcome {
                    scenario: 1,
                    rep: 1,
                    method: 0,
                    period: None,
                },
            ],
        };
        let text = batch_to_text(&report).unwrap();
        let parsed = batch_from_text(&text).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(batch_to_text(&parsed).unwrap(), text);
    }
}
