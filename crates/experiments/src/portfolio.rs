//! Parallel portfolio search: all constructive seeds × search strategies ×
//! RNG streams, raced on the batch runner with deterministic early
//! termination.
//!
//! A portfolio **cell** is one (seed heuristic, strategy, stream) triple.
//! The run proceeds in synchronized *rounds*: every round, each live cell
//! continues its own search from its current mapping (annealed cells with a
//! fresh per-round RNG stream, sweep cells until their next convergence),
//! all cells in parallel on the [`BatchRunner`]'s rayon pool. After the
//! barrier the incumbent — the minimum period over all cells, lowest cell
//! index on ties — is recomputed; the run stops when every cell has
//! converged, when the incumbent has not improved for
//! [`PortfolioConfig::patience`] consecutive rounds, or at
//! [`PortfolioConfig::max_rounds`].
//!
//! Because each cell's work is a pure function of (instance, cell index,
//! round, its carried state), and rounds are barriers whose results are
//! collected in cell order, the outcome is **bit-identical for every thread
//! count** — the same guarantee the batch grid gives, pinned in
//! `batch_determinism.rs`.

use crate::runner::BatchRunner;
use mf_core::prelude::*;
use mf_core::seed::splitmix64;
use mf_heuristics::search::{
    polish_with, SearchEngine, SearchStrategy, SteepestDescent, TabuSearch,
};
use mf_heuristics::{paper_heuristic, H6LocalSearch, LocalSearchConfig, DEFAULT_SEARCH_BUDGET};

/// Tuning knobs of the portfolio runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Base seed every per-cell stream is derived from.
    pub base_seed: u64,
    /// Independent RNG streams per (seed heuristic × annealed climb) pair.
    /// The deterministic strategies (SD, TS) always run one cell each.
    pub annealed_streams: usize,
    /// Annealed-climb proposals per cell per round.
    pub round_steps: usize,
    /// Candidate-evaluation budget of each sweep-strategy cell per round.
    pub sweep_budget: usize,
    /// Hard cap on the number of rounds.
    pub max_rounds: usize,
    /// Stop after this many consecutive rounds without incumbent
    /// improvement.
    pub patience: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            base_seed: 0x90F0_0110,
            annealed_streams: 2,
            round_steps: 4000,
            sweep_budget: DEFAULT_SEARCH_BUDGET,
            max_rounds: 8,
            patience: 2,
        }
    }
}

/// The strategy a cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellStrategy {
    /// H6's annealed climb, continued every round with a fresh stream.
    Annealed {
        /// Stream index within the (seed, annealed) pair.
        stream: usize,
    },
    /// Steepest descent to a local optimum.
    Steepest,
    /// Tabu search.
    Tabu,
}

/// Static description of one cell.
#[derive(Debug, Clone)]
struct CellSpec {
    /// Constructive seed heuristic registry name (`"H1"` … `"H4f"`).
    base: String,
    strategy: CellStrategy,
    label: String,
}

/// Carried state of one cell across rounds.
#[derive(Debug, Clone)]
struct CellState {
    /// The cell's best mapping so far (`None`: seeding failed, e.g. p > m).
    mapping: Option<Mapping>,
    period: Option<f64>,
    /// A converged cell is skipped in later rounds.
    done: bool,
}

/// Final report of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioCellReport {
    /// Human-readable cell label, e.g. `"H6-H4w#1"`, `"SD-H2"`.
    pub label: String,
    /// The cell's best period (`None` when its seed heuristic failed).
    pub period: Option<f64>,
}

/// The outcome of a portfolio run.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioOutcome {
    /// The incumbent mapping (`None` when every cell failed — the instance
    /// admits no specialized mapping).
    pub best_mapping: Option<Mapping>,
    /// The incumbent period.
    pub best_period: Option<f64>,
    /// Index into [`cells`](Self::cells) of the cell that produced the
    /// incumbent (lowest index on exact ties).
    pub winner: Option<usize>,
    /// Rounds executed before termination.
    pub rounds: usize,
    /// Per-cell final reports, in cell order.
    pub cells: Vec<PortfolioCellReport>,
}

impl PortfolioOutcome {
    /// The label of the winning cell.
    pub fn winner_label(&self) -> Option<&str> {
        self.winner.map(|w| self.cells[w].label.as_str())
    }
}

/// The six constructive seeds of the portfolio, in presentation order.
const SEED_BASES: [&str; 6] = ["H1", "H2", "H3", "H4", "H4w", "H4f"];

/// Salt decorrelating portfolio streams from every other consumer of the
/// base seed.
const PORTFOLIO_SALT: u64 = 0x9E3_17F0_9791_0A10;

fn cell_specs(config: &PortfolioConfig) -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for base in SEED_BASES {
        for stream in 0..config.annealed_streams.max(1) {
            specs.push(CellSpec {
                base: base.to_string(),
                strategy: CellStrategy::Annealed { stream },
                label: format!("H6-{base}#{stream}"),
            });
        }
        specs.push(CellSpec {
            base: base.to_string(),
            strategy: CellStrategy::Steepest,
            label: format!("SD-{base}"),
        });
        specs.push(CellSpec {
            base: base.to_string(),
            strategy: CellStrategy::Tabu,
            label: format!("TS-{base}"),
        });
    }
    specs
}

/// The RNG seed of a cell at a round — a pure function of the grid
/// coordinates, so scheduling can never leak into the numbers.
fn cell_seed(config: &PortfolioConfig, cell: usize, round: usize) -> u64 {
    splitmix64(
        config
            .base_seed
            .wrapping_add(PORTFOLIO_SALT)
            .wrapping_add((cell as u64) << 32)
            .wrapping_add(round as u64),
    )
}

/// One cell's round: seed in round 0, then continue its strategy from the
/// carried mapping. Pure in (instance, spec, state, seed).
fn advance_cell(
    instance: &Instance,
    spec: &CellSpec,
    state: &CellState,
    config: &PortfolioConfig,
    seed: u64,
    round: usize,
) -> CellState {
    if state.done {
        return state.clone();
    }
    let mapping = if round == 0 {
        // Construct the seed mapping (H1 draws from the cell's stream).
        let Some(heuristic) = paper_heuristic(&spec.base, seed) else {
            unreachable!("SEED_BASES only lists registry names");
        };
        match heuristic.map(instance) {
            Ok(mapping) => mapping,
            Err(_) => {
                return CellState {
                    mapping: None,
                    period: None,
                    done: true,
                }
            }
        }
    } else {
        state
            .mapping
            .clone()
            .expect("live cells past round 0 carry a mapping")
    };

    // `converged` is the strategy's own verdict: steepest descent that
    // stopped *before* exhausting its budget sits at a local optimum, and
    // re-running it from that optimum can never help — the cell is done in
    // the same round, sparing the redundant confirmation sweep.
    let (polished, converged) = match spec.strategy {
        CellStrategy::Annealed { .. } => {
            let local = LocalSearchConfig {
                max_steps: config.round_steps,
                seed,
                ..LocalSearchConfig::default()
            };
            (H6LocalSearch::polish(instance, &mapping, &local), false)
        }
        CellStrategy::Steepest => match sweep_to_optimum(instance, &mapping, config.sweep_budget) {
            Ok((polished, converged)) => (Ok(polished), converged),
            Err(e) => (Err(e), false),
        },
        CellStrategy::Tabu => (
            polish_with(
                instance,
                &mapping,
                &TabuSearch::default(),
                config.sweep_budget,
            ),
            false,
        ),
    };
    let polished = match polished {
        Ok(polished) => polished,
        Err(_) => {
            return CellState {
                mapping: None,
                period: None,
                done: true,
            }
        }
    };
    let period = match instance.period(&polished) {
        Ok(period) => period.value(),
        Err(_) => {
            return CellState {
                mapping: None,
                period: None,
                done: true,
            }
        }
    };
    // A deterministic strategy (SD, TS) that failed to improve on its
    // previous round has also converged — re-running its walk from the same
    // mapping reproduces it. The annealed climb draws a fresh stream each
    // round, so it stays live and the incumbent-patience rule decides when
    // to stop it.
    let deterministic = !matches!(spec.strategy, CellStrategy::Annealed { .. });
    let stalled = deterministic
        && round > 0
        && state
            .period
            .map(|previous| period >= previous - 1e-12)
            .unwrap_or(false);
    CellState {
        mapping: Some(polished),
        period: Some(period),
        done: converged || stalled,
    }
}

/// Steepest descent plus its termination verdict: `true` when the descent
/// stopped on its own — at a local optimum or its sweep cap — rather than
/// on the evaluation budget.
fn sweep_to_optimum(
    instance: &Instance,
    mapping: &Mapping,
    budget: usize,
) -> mf_heuristics::HeuristicResult<(Mapping, bool)> {
    if instance.task_count() == 0 || instance.machine_count() < 2 || budget == 0 {
        return Ok((mapping.clone(), true));
    }
    let mut engine = SearchEngine::new(instance, mapping, budget)?;
    SteepestDescent::default().run(&mut engine)?;
    let converged = !engine.exhausted();
    Ok((engine.into_best(), converged))
}

/// The incumbent over cell states: `(index, period)` of the minimum period,
/// lowest index on exact ties.
fn incumbent(states: &[CellState]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (index, state) in states.iter().enumerate() {
        if let Some(period) = state.period {
            let improves = match best {
                None => true,
                Some((_, p)) => period < p,
            };
            if improves {
                best = Some((index, period));
            }
        }
    }
    best
}

/// Runs a full portfolio over one instance on the given runner's pool.
///
/// The outcome is bit-identical for every thread count of `runner`.
pub fn run_portfolio(
    instance: &Instance,
    config: &PortfolioConfig,
    runner: &BatchRunner,
) -> PortfolioOutcome {
    let specs = cell_specs(config);
    let mut states: Vec<CellState> = vec![
        CellState {
            mapping: None,
            period: None,
            done: false,
        };
        specs.len()
    ];
    let mut best: Option<(usize, f64)> = None;
    let mut stagnant = 0usize;
    let mut rounds = 0usize;

    for round in 0..config.max_rounds.max(1) {
        let advanced = runner.map(specs.len(), |cell| {
            advance_cell(
                instance,
                &specs[cell],
                &states[cell],
                config,
                cell_seed(config, cell, round),
                round,
            )
        });
        states = advanced;
        rounds = round + 1;

        let current = incumbent(&states);
        let improved = match (best, current) {
            (None, Some(_)) => true,
            (Some((_, old)), Some((_, new))) => new < old - 1e-12,
            _ => false,
        };
        if improved {
            best = current;
            stagnant = 0;
        } else {
            stagnant += 1;
        }
        if states.iter().all(|s| s.done) || stagnant >= config.patience.max(1) {
            break;
        }
    }

    // Harvest: the incumbent mapping comes from the winning cell's state.
    let final_best = incumbent(&states);
    let (winner, best_period, best_mapping) = match final_best {
        Some((index, period)) => (Some(index), Some(period), states[index].mapping.clone()),
        None => (None, None, None),
    };
    PortfolioOutcome {
        best_mapping,
        best_period,
        winner,
        rounds,
        cells: specs
            .iter()
            .zip(&states)
            .map(|(spec, state)| PortfolioCellReport {
                label: spec.label.clone(),
                period: state.period,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_heuristics::{H4wFastestMachine, Heuristic};
    use mf_sim::{GeneratorConfig, InstanceGenerator};

    fn quick_config() -> PortfolioConfig {
        PortfolioConfig {
            annealed_streams: 1,
            round_steps: 500,
            sweep_budget: 20_000,
            max_rounds: 3,
            ..PortfolioConfig::default()
        }
    }

    fn instance(seed: u64) -> Instance {
        InstanceGenerator::new(GeneratorConfig::paper_standard(24, 8, 3))
            .generate(seed)
            .unwrap()
    }

    #[test]
    fn incumbent_is_the_min_over_member_cells_and_beats_h4w() {
        let inst = instance(7);
        let outcome = run_portfolio(&inst, &quick_config(), &BatchRunner::new(1));
        let best = outcome.best_period.expect("feasible instance");
        let min_cell = outcome
            .cells
            .iter()
            .filter_map(|c| c.period)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best.to_bits(), min_cell.to_bits());
        // The winner index actually points at a cell achieving the best.
        let winner = outcome.winner.unwrap();
        assert_eq!(
            outcome.cells[winner].period.unwrap().to_bits(),
            best.to_bits()
        );
        // The portfolio can only improve on its best member seed.
        let h4w = H4wFastestMachine.period(&inst).unwrap().value();
        assert!(best <= h4w + 1e-9);
        // And the reported mapping really has the reported period.
        let mapping = outcome.best_mapping.unwrap();
        let recomputed = inst.period(&mapping).unwrap().value();
        assert!((recomputed - best).abs() <= 1e-9 * best.max(1.0));
        assert!(inst.is_specialized(&mapping));
    }

    #[test]
    fn infeasible_instances_fail_every_cell() {
        // 5 types on 3 machines: no specialized mapping exists.
        let inst = InstanceGenerator::new(GeneratorConfig::paper_standard(10, 3, 5))
            .generate(1)
            .unwrap();
        let outcome = run_portfolio(&inst, &quick_config(), &BatchRunner::new(1));
        assert!(outcome.best_mapping.is_none());
        assert!(outcome.winner.is_none());
        assert!(outcome.cells.iter().all(|c| c.period.is_none()));
    }

    #[test]
    fn cell_labels_cover_all_seeds_and_strategies() {
        let specs = cell_specs(&quick_config());
        assert_eq!(specs.len(), 6 * 3); // 1 annealed stream + SD + TS per seed
        let labels: Vec<&str> = specs.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"H6-H4w#0"));
        assert!(labels.contains(&"SD-H1"));
        assert!(labels.contains(&"TS-H4f"));
    }
}
