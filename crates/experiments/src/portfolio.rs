//! Parallel portfolio search: all constructive seeds × search strategies ×
//! RNG streams, raced on the batch runner with deterministic early
//! termination.
//!
//! A portfolio **cell** is one (seed heuristic, strategy, stream) triple.
//! The run proceeds in *rounds*: every round, each live cell continues its
//! own search from its current mapping (annealed cells with a fresh
//! per-round RNG stream, sweep cells until their next convergence). After
//! each round the incumbent — the minimum period over all cells, lowest
//! cell index on ties — is recomputed; the run stops when every cell has
//! converged, when the incumbent has not improved for
//! [`PortfolioConfig::patience`] consecutive rounds, or at
//! [`PortfolioConfig::max_rounds`].
//!
//! Two executors share that round semantics. [`run_portfolio_barrier`] is
//! the reference: a full thread-pool barrier between rounds, results
//! collected in cell order. [`run_portfolio`] is the production
//! work-stealing executor: idle workers pull the lowest outstanding
//! (round, cell) pair instead of waiting at the barrier, running ahead of
//! the round-stopping decision by a bounded lookahead, so one slow cell
//! (tabu on a hard instance, say) no longer serializes every round edge.
//!
//! Because each cell's work is a pure function of (instance, cell index,
//! round, its carried state) — the per-round RNG stream is a *logical
//! clock* derived from the grid coordinates, never from scheduling — and
//! the stopping rule is replayed in strict round order from the recorded
//! per-round states, both executors produce **bit-identical outcomes at
//! every thread count** — the same guarantee the batch grid gives, pinned
//! in `batch_determinism.rs`.

use crate::runner::BatchRunner;
use mf_core::prelude::*;
use mf_core::seed::splitmix64;
use mf_heuristics::search::{
    polish_with, SearchEngine, SearchStrategy, SteepestDescent, TabuSearch,
};
use mf_heuristics::{paper_heuristic, H6LocalSearch, LocalSearchConfig, DEFAULT_SEARCH_BUDGET};

/// Tuning knobs of the portfolio runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Base seed every per-cell stream is derived from.
    pub base_seed: u64,
    /// Independent RNG streams per (seed heuristic × annealed climb) pair.
    /// The deterministic strategies (SD, TS) always run one cell each.
    pub annealed_streams: usize,
    /// Annealed-climb proposals per cell per round.
    pub round_steps: usize,
    /// Candidate-evaluation budget of each sweep-strategy cell per round.
    pub sweep_budget: usize,
    /// Hard cap on the number of rounds.
    pub max_rounds: usize,
    /// Stop after this many consecutive rounds without incumbent
    /// improvement.
    pub patience: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            base_seed: 0x90F0_0110,
            annealed_streams: 2,
            round_steps: 4000,
            sweep_budget: DEFAULT_SEARCH_BUDGET,
            max_rounds: 8,
            patience: 2,
        }
    }
}

/// The strategy a cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellStrategy {
    /// H6's annealed climb, continued every round with a fresh stream.
    Annealed {
        /// Stream index within the (seed, annealed) pair.
        stream: usize,
    },
    /// Steepest descent to a local optimum.
    Steepest,
    /// Tabu search.
    Tabu,
}

/// Static description of one cell.
#[derive(Debug, Clone)]
struct CellSpec {
    /// Constructive seed heuristic registry name (`"H1"` … `"H4f"`).
    base: String,
    strategy: CellStrategy,
    label: String,
}

/// Carried state of one cell across rounds.
#[derive(Debug, Clone)]
struct CellState {
    /// The cell's best mapping so far (`None`: seeding failed, e.g. p > m).
    mapping: Option<Mapping>,
    period: Option<f64>,
    /// A converged cell is skipped in later rounds.
    done: bool,
}

/// Final report of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioCellReport {
    /// Human-readable cell label, e.g. `"H6-H4w#1"`, `"SD-H2"`.
    pub label: String,
    /// The cell's best period (`None` when its seed heuristic failed).
    pub period: Option<f64>,
}

/// The outcome of a portfolio run.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioOutcome {
    /// The incumbent mapping (`None` when every cell failed — the instance
    /// admits no specialized mapping).
    pub best_mapping: Option<Mapping>,
    /// The incumbent period.
    pub best_period: Option<f64>,
    /// Index into [`cells`](Self::cells) of the cell that produced the
    /// incumbent (lowest index on exact ties).
    pub winner: Option<usize>,
    /// Rounds executed before termination.
    pub rounds: usize,
    /// Per-cell final reports, in cell order.
    pub cells: Vec<PortfolioCellReport>,
}

impl PortfolioOutcome {
    /// The label of the winning cell.
    pub fn winner_label(&self) -> Option<&str> {
        self.winner.map(|w| self.cells[w].label.as_str())
    }
}

/// The six constructive seeds of the portfolio, in presentation order.
const SEED_BASES: [&str; 6] = ["H1", "H2", "H3", "H4", "H4w", "H4f"];

/// Salt decorrelating portfolio streams from every other consumer of the
/// base seed.
const PORTFOLIO_SALT: u64 = 0x9E3_17F0_9791_0A10;

fn cell_specs(config: &PortfolioConfig) -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for base in SEED_BASES {
        for stream in 0..config.annealed_streams.max(1) {
            specs.push(CellSpec {
                base: base.to_string(),
                strategy: CellStrategy::Annealed { stream },
                label: format!("H6-{base}#{stream}"),
            });
        }
        specs.push(CellSpec {
            base: base.to_string(),
            strategy: CellStrategy::Steepest,
            label: format!("SD-{base}"),
        });
        specs.push(CellSpec {
            base: base.to_string(),
            strategy: CellStrategy::Tabu,
            label: format!("TS-{base}"),
        });
    }
    specs
}

/// The RNG seed of a cell at a round — a pure function of the grid
/// coordinates, so scheduling can never leak into the numbers.
fn cell_seed(config: &PortfolioConfig, cell: usize, round: usize) -> u64 {
    splitmix64(
        config
            .base_seed
            .wrapping_add(PORTFOLIO_SALT)
            .wrapping_add((cell as u64) << 32)
            .wrapping_add(round as u64),
    )
}

/// One cell's round: seed in round 0, then continue its strategy from the
/// carried mapping. Pure in (instance, spec, state, seed).
fn advance_cell(
    instance: &Instance,
    spec: &CellSpec,
    state: &CellState,
    config: &PortfolioConfig,
    seed: u64,
    round: usize,
) -> CellState {
    if state.done {
        return state.clone();
    }
    let mapping = if round == 0 {
        // Construct the seed mapping (H1 draws from the cell's stream).
        let Some(heuristic) = paper_heuristic(&spec.base, seed) else {
            unreachable!("SEED_BASES only lists registry names");
        };
        match heuristic.map(instance) {
            Ok(mapping) => mapping,
            Err(_) => {
                return CellState {
                    mapping: None,
                    period: None,
                    done: true,
                }
            }
        }
    } else {
        state
            .mapping
            .clone()
            .expect("live cells past round 0 carry a mapping")
    };

    // `converged` is the strategy's own verdict: steepest descent that
    // stopped *before* exhausting its budget sits at a local optimum, and
    // re-running it from that optimum can never help — the cell is done in
    // the same round, sparing the redundant confirmation sweep.
    let (polished, converged) = match spec.strategy {
        CellStrategy::Annealed { .. } => {
            let local = LocalSearchConfig {
                max_steps: config.round_steps,
                seed,
                ..LocalSearchConfig::default()
            };
            (H6LocalSearch::polish(instance, &mapping, &local), false)
        }
        CellStrategy::Steepest => match sweep_to_optimum(instance, &mapping, config.sweep_budget) {
            Ok((polished, converged)) => (Ok(polished), converged),
            Err(e) => (Err(e), false),
        },
        CellStrategy::Tabu => (
            polish_with(
                instance,
                &mapping,
                &TabuSearch::default(),
                config.sweep_budget,
            ),
            false,
        ),
    };
    let polished = match polished {
        Ok(polished) => polished,
        Err(_) => {
            return CellState {
                mapping: None,
                period: None,
                done: true,
            }
        }
    };
    let period = match instance.period(&polished) {
        Ok(period) => period.value(),
        Err(_) => {
            return CellState {
                mapping: None,
                period: None,
                done: true,
            }
        }
    };
    // A deterministic strategy (SD, TS) that failed to improve on its
    // previous round has also converged — re-running its walk from the same
    // mapping reproduces it. The annealed climb draws a fresh stream each
    // round, so it stays live and the incumbent-patience rule decides when
    // to stop it.
    let deterministic = !matches!(spec.strategy, CellStrategy::Annealed { .. });
    let stalled = deterministic
        && round > 0
        && state
            .period
            .map(|previous| period >= previous - 1e-12)
            .unwrap_or(false);
    CellState {
        mapping: Some(polished),
        period: Some(period),
        done: converged || stalled,
    }
}

/// Steepest descent plus its termination verdict: `true` when the descent
/// stopped on its own — at a local optimum or its sweep cap — rather than
/// on the evaluation budget.
fn sweep_to_optimum(
    instance: &Instance,
    mapping: &Mapping,
    budget: usize,
) -> mf_heuristics::HeuristicResult<(Mapping, bool)> {
    if instance.task_count() == 0 || instance.machine_count() < 2 || budget == 0 {
        return Ok((mapping.clone(), true));
    }
    let mut engine = SearchEngine::new(instance, mapping, budget)?;
    SteepestDescent::default().run(&mut engine)?;
    let converged = !engine.exhausted();
    Ok((engine.into_best(), converged))
}

/// The incumbent over cell states: `(index, period)` of the minimum period,
/// lowest index on exact ties.
fn incumbent(states: &[CellState]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (index, state) in states.iter().enumerate() {
        if let Some(period) = state.period {
            let improves = match best {
                None => true,
                Some((_, p)) => period < p,
            };
            if improves {
                best = Some((index, period));
            }
        }
    }
    best
}

/// Runs a full portfolio over one instance with a thread-pool barrier
/// between rounds — the reference executor.
///
/// The outcome is bit-identical for every thread count of `runner`, and
/// bit-identical to [`run_portfolio`] (pinned in `batch_determinism.rs`).
/// Kept public as the A/B baseline for the `portfolio_rounds` bench rows;
/// production callers want [`run_portfolio`], which does the same work
/// without idling every worker at each round edge.
pub fn run_portfolio_barrier(
    instance: &Instance,
    config: &PortfolioConfig,
    runner: &BatchRunner,
) -> PortfolioOutcome {
    let specs = cell_specs(config);
    let mut states: Vec<CellState> = vec![
        CellState {
            mapping: None,
            period: None,
            done: false,
        };
        specs.len()
    ];
    let mut best: Option<(usize, f64)> = None;
    let mut stagnant = 0usize;
    let mut rounds = 0usize;

    for round in 0..config.max_rounds.max(1) {
        let advanced = runner.map(specs.len(), |cell| {
            advance_cell(
                instance,
                &specs[cell],
                &states[cell],
                config,
                cell_seed(config, cell, round),
                round,
            )
        });
        states = advanced;
        rounds = round + 1;

        let current = incumbent(&states);
        let improved = match (best, current) {
            (None, Some(_)) => true,
            (Some((_, old)), Some((_, new))) => new < old - 1e-12,
            _ => false,
        };
        if improved {
            best = current;
            stagnant = 0;
        } else {
            stagnant += 1;
        }
        if states.iter().all(|s| s.done) || stagnant >= config.patience.max(1) {
            break;
        }
    }

    // Harvest: the incumbent mapping comes from the winning cell's state.
    let final_best = incumbent(&states);
    let (winner, best_period, best_mapping) = match final_best {
        Some((index, period)) => (Some(index), Some(period), states[index].mapping.clone()),
        None => (None, None, None),
    };
    PortfolioOutcome {
        best_mapping,
        best_period,
        winner,
        rounds,
        cells: specs
            .iter()
            .zip(&states)
            .map(|(spec, state)| PortfolioCellReport {
                label: spec.label.clone(),
                period: state.period,
            })
            .collect(),
    }
}

/// How many rounds past the last *decided* round a worker may speculate.
///
/// Lookahead `0` would re-create the barrier (no cell may start round
/// `r + 1` before round `r`'s stopping decision); a small positive value
/// lets fast cells absorb the skew of slow ones. Speculative rounds past
/// the final decision are discarded unread, so the value affects wasted
/// work on stop — never the outcome.
const ROUND_LOOKAHEAD: usize = 2;

/// Shared state of the work-stealing round executor.
///
/// `history[cell]` records the cell's state after each computed round, so
/// the stopping rule can be replayed in strict round order — round `r` is
/// decided exactly when every cell either has a recorded state at `r` or
/// converged earlier (a done cell's state is carried forward unchanged,
/// which is also what [`advance_cell`] does with it) — making the decision
/// sequence, and hence the outcome, independent of completion order.
struct RoundScheduler {
    history: Vec<Vec<CellState>>,
    in_flight: Vec<bool>,
    /// The next round index awaiting a stopping decision.
    decided: usize,
    /// The round the run stops at, once decided.
    final_round: Option<usize>,
    best: Option<(usize, f64)>,
    stagnant: usize,
    round_cap: usize,
    patience: usize,
}

impl RoundScheduler {
    fn new(cells: usize, config: &PortfolioConfig) -> Self {
        RoundScheduler {
            history: vec![Vec::new(); cells],
            in_flight: vec![false; cells],
            decided: 0,
            final_round: None,
            best: None,
            stagnant: 0,
            round_cap: config.max_rounds.max(1),
            patience: config.patience.max(1),
        }
    }

    /// The cell's state as of round `r` (its last computed state once done).
    fn effective(&self, cell: usize, round: usize) -> &CellState {
        let h = &self.history[cell];
        &h[round.min(h.len() - 1)]
    }

    /// Claims the lowest outstanding (round, cell) pair, if any: the cell's
    /// next round, within the lookahead window of the decision frontier.
    /// Lowest-round-first means a single worker executes exactly the
    /// barrier schedule — no speculation, identical work.
    fn claim(&mut self) -> Option<(usize, usize, CellState)> {
        let mut pick: Option<(usize, usize)> = None;
        for cell in 0..self.history.len() {
            if self.in_flight[cell] {
                continue;
            }
            let round = self.history[cell].len();
            if round >= self.round_cap || round > self.decided + ROUND_LOOKAHEAD {
                continue;
            }
            if round > 0 && self.history[cell][round - 1].done {
                continue;
            }
            if pick.map_or(true, |(r, _)| round < r) {
                pick = Some((round, cell));
            }
        }
        let (round, cell) = pick?;
        self.in_flight[cell] = true;
        let state = if round == 0 {
            CellState {
                mapping: None,
                period: None,
                done: false,
            }
        } else {
            self.history[cell][round - 1].clone()
        };
        Some((cell, round, state))
    }

    /// Records a finished round of one cell and replays every stopping
    /// decision that is now unblocked, in round order.
    fn complete(&mut self, cell: usize, state: CellState) {
        self.history[cell].push(state);
        self.in_flight[cell] = false;
        while self.final_round.is_none() {
            let round = self.decided;
            let ready = (0..self.history.len()).all(|c| {
                let h = &self.history[c];
                h.len() > round || h.last().is_some_and(|s| s.done)
            });
            if !ready {
                return;
            }
            // The same incumbent/patience bookkeeping the barrier loop runs
            // after round `round`, over the same per-cell states.
            let mut current: Option<(usize, f64)> = None;
            let mut all_done = true;
            for c in 0..self.history.len() {
                let state = self.effective(c, round);
                all_done &= state.done;
                if let Some(period) = state.period {
                    if current.map_or(true, |(_, p)| period < p) {
                        current = Some((c, period));
                    }
                }
            }
            let improved = match (self.best, current) {
                (None, Some(_)) => true,
                (Some((_, old)), Some((_, new))) => new < old - 1e-12,
                _ => false,
            };
            if improved {
                self.best = current;
                self.stagnant = 0;
            } else {
                self.stagnant += 1;
            }
            if all_done || self.stagnant >= self.patience || round + 1 == self.round_cap {
                self.final_round = Some(round);
                return;
            }
            self.decided = round + 1;
        }
    }
}

/// One worker of the work-stealing executor: claim the lowest outstanding
/// (round, cell), advance it outside the lock, record the result, repeat
/// until the stopping round is decided.
fn portfolio_worker(
    instance: &Instance,
    specs: &[CellSpec],
    config: &PortfolioConfig,
    scheduler: &std::sync::Mutex<RoundScheduler>,
    ready: &std::sync::Condvar,
) {
    loop {
        let (cell, round, state) = {
            let mut guard = scheduler.lock().expect("portfolio scheduler poisoned");
            loop {
                if guard.final_round.is_some() {
                    return;
                }
                if let Some(claim) = guard.claim() {
                    break claim;
                }
                // Nothing claimable: every outstanding cell is in flight.
                // Their completions (under the lock) either open new work
                // or decide the final round, and notify us either way.
                guard = ready.wait(guard).expect("portfolio scheduler poisoned");
            }
        };
        let next = advance_cell(
            instance,
            &specs[cell],
            &state,
            config,
            cell_seed(config, cell, round),
            round,
        );
        let mut guard = scheduler.lock().expect("portfolio scheduler poisoned");
        guard.complete(cell, next);
        drop(guard);
        ready.notify_all();
    }
}

/// Runs a full portfolio over one instance with the work-stealing round
/// executor — same rounds, incumbent rule and stopping conditions as
/// [`run_portfolio_barrier`], without a barrier at round edges: idle
/// workers steal the next round of fast cells (up to [`ROUND_LOOKAHEAD`]
/// rounds past the decision frontier) while slow cells finish.
///
/// The outcome is bit-identical for every thread count of `runner`, and
/// bit-identical to the barrier executor: per-cell work is pure in
/// (instance, cell, round, carried state) with RNG streams derived from
/// those coordinates alone, and the stopping rule is replayed in strict
/// round order from recorded per-round states, so scheduling cannot leak
/// into any number. `runner` only contributes its thread count — with one
/// thread the loop runs inline on the caller and executes exactly the
/// barrier schedule.
pub fn run_portfolio(
    instance: &Instance,
    config: &PortfolioConfig,
    runner: &BatchRunner,
) -> PortfolioOutcome {
    let specs = cell_specs(config);
    let threads = runner.threads().clamp(1, specs.len());
    let scheduler = std::sync::Mutex::new(RoundScheduler::new(specs.len(), config));
    let ready = std::sync::Condvar::new();

    if threads == 1 {
        portfolio_worker(instance, &specs, config, &scheduler, &ready);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| portfolio_worker(instance, &specs, config, &scheduler, &ready));
            }
        });
    }

    let scheduler = scheduler
        .into_inner()
        .expect("portfolio scheduler poisoned");
    let final_round = scheduler
        .final_round
        .expect("the executor always decides a final round");
    // Harvest the effective per-cell states at the stopping round — the
    // exact states the barrier loop holds when it breaks; speculative
    // rounds past it are dropped unread.
    let states: Vec<&CellState> = (0..specs.len())
        .map(|cell| scheduler.effective(cell, final_round))
        .collect();
    let mut final_best: Option<(usize, f64)> = None;
    for (index, state) in states.iter().enumerate() {
        if let Some(period) = state.period {
            if final_best.map_or(true, |(_, p)| period < p) {
                final_best = Some((index, period));
            }
        }
    }
    let (winner, best_period, best_mapping) = match final_best {
        Some((index, period)) => (Some(index), Some(period), states[index].mapping.clone()),
        None => (None, None, None),
    };
    PortfolioOutcome {
        best_mapping,
        best_period,
        winner,
        rounds: final_round + 1,
        cells: specs
            .iter()
            .zip(&states)
            .map(|(spec, state)| PortfolioCellReport {
                label: spec.label.clone(),
                period: state.period,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_heuristics::{H4wFastestMachine, Heuristic};
    use mf_sim::{GeneratorConfig, InstanceGenerator};

    fn quick_config() -> PortfolioConfig {
        PortfolioConfig {
            annealed_streams: 1,
            round_steps: 500,
            sweep_budget: 20_000,
            max_rounds: 3,
            ..PortfolioConfig::default()
        }
    }

    fn instance(seed: u64) -> Instance {
        InstanceGenerator::new(GeneratorConfig::paper_standard(24, 8, 3))
            .generate(seed)
            .unwrap()
    }

    #[test]
    fn incumbent_is_the_min_over_member_cells_and_beats_h4w() {
        let inst = instance(7);
        let outcome = run_portfolio(&inst, &quick_config(), &BatchRunner::new(1));
        let best = outcome.best_period.expect("feasible instance");
        let min_cell = outcome
            .cells
            .iter()
            .filter_map(|c| c.period)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best.to_bits(), min_cell.to_bits());
        // The winner index actually points at a cell achieving the best.
        let winner = outcome.winner.unwrap();
        assert_eq!(
            outcome.cells[winner].period.unwrap().to_bits(),
            best.to_bits()
        );
        // The portfolio can only improve on its best member seed.
        let h4w = H4wFastestMachine.period(&inst).unwrap().value();
        assert!(best <= h4w + 1e-9);
        // And the reported mapping really has the reported period.
        let mapping = outcome.best_mapping.unwrap();
        let recomputed = inst.period(&mapping).unwrap().value();
        assert!((recomputed - best).abs() <= 1e-9 * best.max(1.0));
        assert!(inst.is_specialized(&mapping));
    }

    #[test]
    fn infeasible_instances_fail_every_cell() {
        // 5 types on 3 machines: no specialized mapping exists.
        let inst = InstanceGenerator::new(GeneratorConfig::paper_standard(10, 3, 5))
            .generate(1)
            .unwrap();
        let outcome = run_portfolio(&inst, &quick_config(), &BatchRunner::new(1));
        assert!(outcome.best_mapping.is_none());
        assert!(outcome.winner.is_none());
        assert!(outcome.cells.iter().all(|c| c.period.is_none()));
    }

    #[test]
    fn cell_labels_cover_all_seeds_and_strategies() {
        let specs = cell_specs(&quick_config());
        assert_eq!(specs.len(), 6 * 3); // 1 annealed stream + SD + TS per seed
        let labels: Vec<&str> = specs.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"H6-H4w#0"));
        assert!(labels.contains(&"SD-H1"));
        assert!(labels.contains(&"TS-H4f"));
    }
}
