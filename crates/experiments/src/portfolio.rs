//! Parallel portfolio search: all constructive seeds × search strategies ×
//! RNG streams, raced on the batch runner with deterministic early
//! termination.
//!
//! A portfolio **cell** is one (seed heuristic, strategy, stream) triple.
//! The run proceeds in *rounds*: every round, each live cell continues its
//! own search from its current mapping (annealed cells with a fresh
//! per-round RNG stream, sweep cells until their next convergence). After
//! each round the incumbent — the minimum period over all cells, lowest
//! cell index on ties — is recomputed; the run stops when every cell has
//! converged, when the incumbent has not improved for
//! [`PortfolioConfig::patience`] consecutive rounds, or at
//! [`PortfolioConfig::max_rounds`].
//!
//! Two executors share that round semantics. [`run_portfolio_barrier`] is
//! the reference: a full thread-pool barrier between rounds, results
//! collected in cell order. [`run_portfolio`] is the production
//! work-stealing executor: idle workers pull the lowest outstanding
//! (round, cell) pair instead of waiting at the barrier, running ahead of
//! the round-stopping decision by a bounded lookahead, so one slow cell
//! (tabu on a hard instance, say) no longer serializes every round edge.
//!
//! Because each cell's work is a pure function of (instance, cell index,
//! round, its carried state) — the per-round RNG stream is a *logical
//! clock* derived from the grid coordinates, never from scheduling — and
//! the stopping rule is replayed in strict round order from the recorded
//! per-round states, both executors produce **bit-identical outcomes at
//! every thread count** — the same guarantee the batch grid gives, pinned
//! in `batch_determinism.rs`.

use crate::runner::BatchRunner;
use mf_core::prelude::*;
use mf_core::seed::splitmix64;
use mf_heuristics::search::{
    polish_with, polish_with_progress, SearchEngine, SearchStrategy, SteepestDescent, TabuSearch,
};
use mf_heuristics::{paper_heuristic, H6LocalSearch, LocalSearchConfig, DEFAULT_SEARCH_BUDGET};
use mf_obs::{ProgressEvent, SamplingSink, TraceEvent};
use std::sync::Mutex;

/// Tuning knobs of the portfolio runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Base seed every per-cell stream is derived from.
    pub base_seed: u64,
    /// Independent RNG streams per (seed heuristic × annealed climb) pair.
    /// The deterministic strategies (SD, TS) always run one cell each.
    pub annealed_streams: usize,
    /// Annealed-climb proposals per cell per round.
    pub round_steps: usize,
    /// Candidate-evaluation budget of each sweep-strategy cell per round.
    pub sweep_budget: usize,
    /// Hard cap on the number of rounds.
    pub max_rounds: usize,
    /// Stop after this many consecutive rounds without incumbent
    /// improvement.
    pub patience: usize,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            base_seed: 0x90F0_0110,
            annealed_streams: 2,
            round_steps: 4000,
            sweep_budget: DEFAULT_SEARCH_BUDGET,
            max_rounds: 8,
            patience: 2,
        }
    }
}

/// The strategy a cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellStrategy {
    /// H6's annealed climb, continued every round with a fresh stream.
    Annealed {
        /// Stream index within the (seed, annealed) pair.
        stream: usize,
    },
    /// Steepest descent to a local optimum.
    Steepest,
    /// Tabu search.
    Tabu,
}

/// Static description of one cell.
#[derive(Debug, Clone)]
struct CellSpec {
    /// Constructive seed heuristic registry name (`"H1"` … `"H4f"`).
    base: String,
    strategy: CellStrategy,
    label: String,
}

/// Carried state of one cell across rounds.
#[derive(Debug, Clone)]
struct CellState {
    /// The cell's best mapping so far (`None`: seeding failed, e.g. p > m).
    mapping: Option<Mapping>,
    period: Option<f64>,
    /// A converged cell is skipped in later rounds.
    done: bool,
}

/// Final report of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioCellReport {
    /// Human-readable cell label, e.g. `"H6-H4w#1"`, `"SD-H2"`.
    pub label: String,
    /// The cell's best period (`None` when its seed heuristic failed).
    pub period: Option<f64>,
}

/// The outcome of a portfolio run.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioOutcome {
    /// The incumbent mapping (`None` when every cell failed — the instance
    /// admits no specialized mapping).
    pub best_mapping: Option<Mapping>,
    /// The incumbent period.
    pub best_period: Option<f64>,
    /// Index into [`cells`](Self::cells) of the cell that produced the
    /// incumbent (lowest index on exact ties).
    pub winner: Option<usize>,
    /// Rounds executed before termination.
    pub rounds: usize,
    /// Per-cell final reports, in cell order.
    pub cells: Vec<PortfolioCellReport>,
}

impl PortfolioOutcome {
    /// The label of the winning cell.
    pub fn winner_label(&self) -> Option<&str> {
        self.winner.map(|w| self.cells[w].label.as_str())
    }
}

/// Default per-(cell, round) retention cap for cache-outcome progress
/// events in a traced run. Commit events are never capped — a trace must
/// reconstruct the exact committed step sequence.
pub const TRACE_CACHE_EVENT_CAP: usize = 64;

/// Progress events harvested from one (cell, round) execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRoundRecord {
    /// Cell index (into [`PortfolioOutcome::cells`]).
    pub cell: usize,
    /// Round index.
    pub round: usize,
    /// The retained events, in emission order (commits lossless,
    /// cache outcomes capped).
    pub events: Vec<ProgressEvent>,
    /// Cache-outcome events the cap discarded.
    pub dropped: u64,
}

/// One cell's state after one round, as the stopping rule saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRoundSummary {
    /// Cell index.
    pub cell: usize,
    /// Round index.
    pub round: usize,
    /// `f64::to_bits` of the cell's period after the round (`None` when
    /// the cell holds no mapping).
    pub period_bits: Option<u64>,
    /// Whether the cell was done after this round.
    pub done: bool,
}

/// Thread-safe collector the work-stealing workers push per-(cell, round)
/// progress into. Collection order depends on scheduling; consumers sort.
struct PortfolioProgress {
    cache_event_cap: usize,
    collected: Mutex<Vec<CellRoundRecord>>,
}

impl PortfolioProgress {
    fn new(cache_event_cap: usize) -> Self {
        PortfolioProgress {
            cache_event_cap,
            collected: Mutex::new(Vec::new()),
        }
    }

    fn collect(&self, cell: usize, round: usize, sink: SamplingSink) {
        let (events, dropped) = sink.into_parts();
        if events.is_empty() && dropped == 0 {
            return;
        }
        self.collected
            .lock()
            .expect("portfolio progress collector poisoned")
            .push(CellRoundRecord {
                cell,
                round,
                events,
                dropped,
            });
    }
}

/// A portfolio run plus everything a trace consumer needs: per-(cell,
/// round) progress records and per-round cell summaries, both in
/// deterministic `(round, cell)` order regardless of thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedPortfolio {
    /// The run's outcome — bit-identical to an untraced [`run_portfolio`]
    /// of the same configuration.
    pub outcome: PortfolioOutcome,
    /// Progress records of every executed (cell, round) up to the stopping
    /// round, sorted by `(round, cell)`; cell-rounds that emitted nothing
    /// (done cells, failed seeds) are omitted.
    pub records: Vec<CellRoundRecord>,
    /// Every cell's effective state after every round up to the stopping
    /// round, sorted by `(round, cell)` — the data the stopping rule
    /// replayed.
    pub summaries: Vec<CellRoundSummary>,
}

impl TracedPortfolio {
    /// Serializes the run as `mf-trace v1` events: for each round in
    /// order, each cell's commit/cache events followed by its `round`
    /// summary record, then one `dropped` record if any cache events were
    /// capped. Deterministic for a given (instance, config).
    pub fn to_trace_events(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        let mut dropped_total = 0u64;
        let mut records = self.records.iter().peekable();
        for summary in &self.summaries {
            while let Some(record) = records.peek() {
                if (record.round, record.cell) < (summary.round, summary.cell) {
                    // Defensive: records for unknown summaries (cannot
                    // happen — every record's round is ≤ the final round).
                    records.next();
                    continue;
                }
                if (record.round, record.cell) != (summary.round, summary.cell) {
                    break;
                }
                let record = records.next().expect("peeked");
                for event in &record.events {
                    events.push(event.into_trace(record.cell as u64, record.round as u64));
                }
                dropped_total += record.dropped;
            }
            events.push(TraceEvent::Round {
                cell: summary.cell as u64,
                round: summary.round as u64,
                period_bits: summary.period_bits,
                done: summary.done,
            });
        }
        if dropped_total > 0 {
            events.push(TraceEvent::Dropped {
                class: "cache".to_string(),
                count: dropped_total,
            });
        }
        events
    }
}

/// The six constructive seeds of the portfolio, in presentation order.
const SEED_BASES: [&str; 6] = ["H1", "H2", "H3", "H4", "H4w", "H4f"];

/// Salt decorrelating portfolio streams from every other consumer of the
/// base seed.
const PORTFOLIO_SALT: u64 = 0x9E3_17F0_9791_0A10;

fn cell_specs(config: &PortfolioConfig) -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for base in SEED_BASES {
        for stream in 0..config.annealed_streams.max(1) {
            specs.push(CellSpec {
                base: base.to_string(),
                strategy: CellStrategy::Annealed { stream },
                label: format!("H6-{base}#{stream}"),
            });
        }
        specs.push(CellSpec {
            base: base.to_string(),
            strategy: CellStrategy::Steepest,
            label: format!("SD-{base}"),
        });
        specs.push(CellSpec {
            base: base.to_string(),
            strategy: CellStrategy::Tabu,
            label: format!("TS-{base}"),
        });
    }
    specs
}

/// The RNG seed of a cell at a round — a pure function of the grid
/// coordinates, so scheduling can never leak into the numbers.
fn cell_seed(config: &PortfolioConfig, cell: usize, round: usize) -> u64 {
    splitmix64(
        config
            .base_seed
            .wrapping_add(PORTFOLIO_SALT)
            .wrapping_add((cell as u64) << 32)
            .wrapping_add(round as u64),
    )
}

/// One cell's round: seed in round 0, then continue its strategy from the
/// carried mapping. Pure in (instance, spec, state, seed); an attached
/// progress sink is write-only and cannot change the returned state.
fn advance_cell(
    instance: &Instance,
    spec: &CellSpec,
    state: &CellState,
    config: &PortfolioConfig,
    seed: u64,
    round: usize,
    progress: Option<&mut SamplingSink>,
) -> CellState {
    if state.done {
        return state.clone();
    }
    let mapping = if round == 0 {
        // Construct the seed mapping (H1 draws from the cell's stream).
        let Some(heuristic) = paper_heuristic(&spec.base, seed) else {
            unreachable!("SEED_BASES only lists registry names");
        };
        match heuristic.map(instance) {
            Ok(mapping) => mapping,
            Err(_) => {
                return CellState {
                    mapping: None,
                    period: None,
                    done: true,
                }
            }
        }
    } else {
        state
            .mapping
            .clone()
            .expect("live cells past round 0 carry a mapping")
    };

    // `converged` is the strategy's own verdict: steepest descent that
    // stopped *before* exhausting its budget sits at a local optimum, and
    // re-running it from that optimum can never help — the cell is done in
    // the same round, sparing the redundant confirmation sweep.
    let (polished, converged) = match spec.strategy {
        CellStrategy::Annealed { .. } => {
            let local = LocalSearchConfig {
                max_steps: config.round_steps,
                seed,
                ..LocalSearchConfig::default()
            };
            let polished = match progress {
                Some(sink) => H6LocalSearch::polish_progress(instance, &mapping, &local, sink),
                None => H6LocalSearch::polish(instance, &mapping, &local),
            };
            (polished, false)
        }
        CellStrategy::Steepest => {
            match sweep_to_optimum(instance, &mapping, config.sweep_budget, progress) {
                Ok((polished, converged)) => (Ok(polished), converged),
                Err(e) => (Err(e), false),
            }
        }
        CellStrategy::Tabu => {
            let strategy = TabuSearch::default();
            let polished = match progress {
                Some(sink) => {
                    polish_with_progress(instance, &mapping, &strategy, config.sweep_budget, sink)
                        .map(|(mapping, _)| mapping)
                }
                None => polish_with(instance, &mapping, &strategy, config.sweep_budget),
            };
            (polished, false)
        }
    };
    let polished = match polished {
        Ok(polished) => polished,
        Err(_) => {
            return CellState {
                mapping: None,
                period: None,
                done: true,
            }
        }
    };
    let period = match instance.period(&polished) {
        Ok(period) => period.value(),
        Err(_) => {
            return CellState {
                mapping: None,
                period: None,
                done: true,
            }
        }
    };
    // A deterministic strategy (SD, TS) that failed to improve on its
    // previous round has also converged — re-running its walk from the same
    // mapping reproduces it. The annealed climb draws a fresh stream each
    // round, so it stays live and the incumbent-patience rule decides when
    // to stop it.
    let deterministic = !matches!(spec.strategy, CellStrategy::Annealed { .. });
    let stalled = deterministic
        && round > 0
        && state
            .period
            .map(|previous| period >= previous - 1e-12)
            .unwrap_or(false);
    CellState {
        mapping: Some(polished),
        period: Some(period),
        done: converged || stalled,
    }
}

/// Steepest descent plus its termination verdict: `true` when the descent
/// stopped on its own — at a local optimum or its sweep cap — rather than
/// on the evaluation budget.
fn sweep_to_optimum(
    instance: &Instance,
    mapping: &Mapping,
    budget: usize,
    progress: Option<&mut SamplingSink>,
) -> mf_heuristics::HeuristicResult<(Mapping, bool)> {
    if instance.task_count() == 0 || instance.machine_count() < 2 || budget == 0 {
        return Ok((mapping.clone(), true));
    }
    let mut engine = SearchEngine::new(instance, mapping, budget)?;
    if let Some(sink) = progress {
        engine.set_progress_sink(sink);
    }
    SteepestDescent::default().run(&mut engine)?;
    let converged = !engine.exhausted();
    Ok((engine.into_best(), converged))
}

/// The incumbent over cell states: `(index, period)` of the minimum period,
/// lowest index on exact ties.
fn incumbent(states: &[CellState]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (index, state) in states.iter().enumerate() {
        if let Some(period) = state.period {
            let improves = match best {
                None => true,
                Some((_, p)) => period < p,
            };
            if improves {
                best = Some((index, period));
            }
        }
    }
    best
}

/// Runs a full portfolio over one instance with a thread-pool barrier
/// between rounds — the reference executor.
///
/// The outcome is bit-identical for every thread count of `runner`, and
/// bit-identical to [`run_portfolio`] (pinned in `batch_determinism.rs`).
/// Kept public as the A/B baseline for the `portfolio_rounds` bench rows;
/// production callers want [`run_portfolio`], which does the same work
/// without idling every worker at each round edge.
pub fn run_portfolio_barrier(
    instance: &Instance,
    config: &PortfolioConfig,
    runner: &BatchRunner,
) -> PortfolioOutcome {
    let specs = cell_specs(config);
    let mut states: Vec<CellState> = vec![
        CellState {
            mapping: None,
            period: None,
            done: false,
        };
        specs.len()
    ];
    let mut best: Option<(usize, f64)> = None;
    let mut stagnant = 0usize;
    let mut rounds = 0usize;

    for round in 0..config.max_rounds.max(1) {
        let advanced = runner.map(specs.len(), |cell| {
            advance_cell(
                instance,
                &specs[cell],
                &states[cell],
                config,
                cell_seed(config, cell, round),
                round,
                None,
            )
        });
        states = advanced;
        rounds = round + 1;

        let current = incumbent(&states);
        let improved = match (best, current) {
            (None, Some(_)) => true,
            (Some((_, old)), Some((_, new))) => new < old - 1e-12,
            _ => false,
        };
        if improved {
            best = current;
            stagnant = 0;
        } else {
            stagnant += 1;
        }
        if states.iter().all(|s| s.done) || stagnant >= config.patience.max(1) {
            break;
        }
    }

    // Harvest: the incumbent mapping comes from the winning cell's state.
    let final_best = incumbent(&states);
    let (winner, best_period, best_mapping) = match final_best {
        Some((index, period)) => (Some(index), Some(period), states[index].mapping.clone()),
        None => (None, None, None),
    };
    PortfolioOutcome {
        best_mapping,
        best_period,
        winner,
        rounds,
        cells: specs
            .iter()
            .zip(&states)
            .map(|(spec, state)| PortfolioCellReport {
                label: spec.label.clone(),
                period: state.period,
            })
            .collect(),
    }
}

/// How many rounds past the last *decided* round a worker may speculate.
///
/// Lookahead `0` would re-create the barrier (no cell may start round
/// `r + 1` before round `r`'s stopping decision); a small positive value
/// lets fast cells absorb the skew of slow ones. Speculative rounds past
/// the final decision are discarded unread, so the value affects wasted
/// work on stop — never the outcome.
const ROUND_LOOKAHEAD: usize = 2;

/// Shared state of the work-stealing round executor.
///
/// `history[cell]` records the cell's state after each computed round, so
/// the stopping rule can be replayed in strict round order — round `r` is
/// decided exactly when every cell either has a recorded state at `r` or
/// converged earlier (a done cell's state is carried forward unchanged,
/// which is also what [`advance_cell`] does with it) — making the decision
/// sequence, and hence the outcome, independent of completion order.
struct RoundScheduler {
    history: Vec<Vec<CellState>>,
    in_flight: Vec<bool>,
    /// The next round index awaiting a stopping decision.
    decided: usize,
    /// The round the run stops at, once decided.
    final_round: Option<usize>,
    best: Option<(usize, f64)>,
    stagnant: usize,
    round_cap: usize,
    patience: usize,
}

impl RoundScheduler {
    fn new(cells: usize, config: &PortfolioConfig) -> Self {
        RoundScheduler {
            history: vec![Vec::new(); cells],
            in_flight: vec![false; cells],
            decided: 0,
            final_round: None,
            best: None,
            stagnant: 0,
            round_cap: config.max_rounds.max(1),
            patience: config.patience.max(1),
        }
    }

    /// The cell's state as of round `r` (its last computed state once done).
    fn effective(&self, cell: usize, round: usize) -> &CellState {
        let h = &self.history[cell];
        &h[round.min(h.len() - 1)]
    }

    /// Claims the lowest outstanding (round, cell) pair, if any: the cell's
    /// next round, within the lookahead window of the decision frontier.
    /// Lowest-round-first means a single worker executes exactly the
    /// barrier schedule — no speculation, identical work.
    fn claim(&mut self) -> Option<(usize, usize, CellState)> {
        let mut pick: Option<(usize, usize)> = None;
        for cell in 0..self.history.len() {
            if self.in_flight[cell] {
                continue;
            }
            let round = self.history[cell].len();
            if round >= self.round_cap || round > self.decided + ROUND_LOOKAHEAD {
                continue;
            }
            if round > 0 && self.history[cell][round - 1].done {
                continue;
            }
            if pick.map_or(true, |(r, _)| round < r) {
                pick = Some((round, cell));
            }
        }
        let (round, cell) = pick?;
        self.in_flight[cell] = true;
        let state = if round == 0 {
            CellState {
                mapping: None,
                period: None,
                done: false,
            }
        } else {
            self.history[cell][round - 1].clone()
        };
        Some((cell, round, state))
    }

    /// Records a finished round of one cell and replays every stopping
    /// decision that is now unblocked, in round order.
    fn complete(&mut self, cell: usize, state: CellState) {
        self.history[cell].push(state);
        self.in_flight[cell] = false;
        while self.final_round.is_none() {
            let round = self.decided;
            let ready = (0..self.history.len()).all(|c| {
                let h = &self.history[c];
                h.len() > round || h.last().is_some_and(|s| s.done)
            });
            if !ready {
                return;
            }
            // The same incumbent/patience bookkeeping the barrier loop runs
            // after round `round`, over the same per-cell states.
            let mut current: Option<(usize, f64)> = None;
            let mut all_done = true;
            for c in 0..self.history.len() {
                let state = self.effective(c, round);
                all_done &= state.done;
                if let Some(period) = state.period {
                    if current.map_or(true, |(_, p)| period < p) {
                        current = Some((c, period));
                    }
                }
            }
            let improved = match (self.best, current) {
                (None, Some(_)) => true,
                (Some((_, old)), Some((_, new))) => new < old - 1e-12,
                _ => false,
            };
            if improved {
                self.best = current;
                self.stagnant = 0;
            } else {
                self.stagnant += 1;
            }
            if all_done || self.stagnant >= self.patience || round + 1 == self.round_cap {
                self.final_round = Some(round);
                return;
            }
            self.decided = round + 1;
        }
    }
}

/// One worker of the work-stealing executor: claim the lowest outstanding
/// (round, cell), advance it outside the lock, record the result, repeat
/// until the stopping round is decided.
fn portfolio_worker(
    instance: &Instance,
    specs: &[CellSpec],
    config: &PortfolioConfig,
    scheduler: &Mutex<RoundScheduler>,
    ready: &std::sync::Condvar,
    progress: Option<&PortfolioProgress>,
) {
    loop {
        let (cell, round, state) = {
            let mut guard = scheduler.lock().expect("portfolio scheduler poisoned");
            loop {
                if guard.final_round.is_some() {
                    return;
                }
                if let Some(claim) = guard.claim() {
                    break claim;
                }
                // Nothing claimable: every outstanding cell is in flight.
                // Their completions (under the lock) either open new work
                // or decide the final round, and notify us either way.
                guard = ready.wait(guard).expect("portfolio scheduler poisoned");
            }
        };
        let mut sink = progress.map(|p| SamplingSink::new(p.cache_event_cap));
        let next = advance_cell(
            instance,
            &specs[cell],
            &state,
            config,
            cell_seed(config, cell, round),
            round,
            sink.as_mut(),
        );
        if let (Some(collector), Some(sink)) = (progress, sink) {
            collector.collect(cell, round, sink);
        }
        let mut guard = scheduler.lock().expect("portfolio scheduler poisoned");
        guard.complete(cell, next);
        drop(guard);
        ready.notify_all();
    }
}

/// Runs a full portfolio over one instance with the work-stealing round
/// executor — same rounds, incumbent rule and stopping conditions as
/// [`run_portfolio_barrier`], without a barrier at round edges: idle
/// workers steal the next round of fast cells (up to [`ROUND_LOOKAHEAD`]
/// rounds past the decision frontier) while slow cells finish.
///
/// The outcome is bit-identical for every thread count of `runner`, and
/// bit-identical to the barrier executor: per-cell work is pure in
/// (instance, cell, round, carried state) with RNG streams derived from
/// those coordinates alone, and the stopping rule is replayed in strict
/// round order from recorded per-round states, so scheduling cannot leak
/// into any number. `runner` only contributes its thread count — with one
/// thread the loop runs inline on the caller and executes exactly the
/// barrier schedule.
pub fn run_portfolio(
    instance: &Instance,
    config: &PortfolioConfig,
    runner: &BatchRunner,
) -> PortfolioOutcome {
    run_portfolio_inner(instance, config, runner, None).0
}

/// [`run_portfolio`], additionally harvesting solver progress: every
/// committed step of every cell (with the incumbent-improved verdict),
/// capped cache outcomes, and per-round cell summaries. The outcome is
/// **bit-identical** to the untraced run — progress sinks observe, they
/// never steer — and the harvested records are deterministic at every
/// thread count: each (cell, round)'s events are a pure function of its
/// grid coordinates, and the collection is sorted into `(round, cell)`
/// order with speculative rounds past the stopping decision discarded.
pub fn run_portfolio_traced(
    instance: &Instance,
    config: &PortfolioConfig,
    runner: &BatchRunner,
    cache_event_cap: usize,
) -> TracedPortfolio {
    let progress = PortfolioProgress::new(cache_event_cap);
    let (outcome, scheduler) = run_portfolio_inner(instance, config, runner, Some(&progress));
    let final_round = outcome.rounds - 1;
    let mut records = progress
        .collected
        .into_inner()
        .expect("portfolio progress collector poisoned");
    records.retain(|record| record.round <= final_round);
    records.sort_by_key(|record| (record.round, record.cell));
    let cells = scheduler.history.len();
    let mut summaries = Vec::with_capacity((final_round + 1) * cells);
    for round in 0..=final_round {
        for cell in 0..cells {
            let state = scheduler.effective(cell, round);
            summaries.push(CellRoundSummary {
                cell,
                round,
                period_bits: state.period.map(f64::to_bits),
                done: state.done,
            });
        }
    }
    TracedPortfolio {
        outcome,
        records,
        summaries,
    }
}

fn run_portfolio_inner(
    instance: &Instance,
    config: &PortfolioConfig,
    runner: &BatchRunner,
    progress: Option<&PortfolioProgress>,
) -> (PortfolioOutcome, RoundScheduler) {
    let specs = cell_specs(config);
    let threads = runner.threads().clamp(1, specs.len());
    let scheduler = Mutex::new(RoundScheduler::new(specs.len(), config));
    let ready = std::sync::Condvar::new();

    if threads == 1 {
        portfolio_worker(instance, &specs, config, &scheduler, &ready, progress);
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    portfolio_worker(instance, &specs, config, &scheduler, &ready, progress)
                });
            }
        });
    }

    let scheduler = scheduler
        .into_inner()
        .expect("portfolio scheduler poisoned");
    let final_round = scheduler
        .final_round
        .expect("the executor always decides a final round");
    // Harvest the effective per-cell states at the stopping round — the
    // exact states the barrier loop holds when it breaks; speculative
    // rounds past it are dropped unread.
    let states: Vec<&CellState> = (0..specs.len())
        .map(|cell| scheduler.effective(cell, final_round))
        .collect();
    let mut final_best: Option<(usize, f64)> = None;
    for (index, state) in states.iter().enumerate() {
        if let Some(period) = state.period {
            if final_best.map_or(true, |(_, p)| period < p) {
                final_best = Some((index, period));
            }
        }
    }
    let (winner, best_period, best_mapping) = match final_best {
        Some((index, period)) => (Some(index), Some(period), states[index].mapping.clone()),
        None => (None, None, None),
    };
    let outcome = PortfolioOutcome {
        best_mapping,
        best_period,
        winner,
        rounds: final_round + 1,
        cells: specs
            .iter()
            .zip(&states)
            .map(|(spec, state)| PortfolioCellReport {
                label: spec.label.clone(),
                period: state.period,
            })
            .collect(),
    };
    (outcome, scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_heuristics::{H4wFastestMachine, Heuristic};
    use mf_sim::{GeneratorConfig, InstanceGenerator};

    fn quick_config() -> PortfolioConfig {
        PortfolioConfig {
            annealed_streams: 1,
            round_steps: 500,
            sweep_budget: 20_000,
            max_rounds: 3,
            ..PortfolioConfig::default()
        }
    }

    fn instance(seed: u64) -> Instance {
        InstanceGenerator::new(GeneratorConfig::paper_standard(24, 8, 3))
            .generate(seed)
            .unwrap()
    }

    #[test]
    fn incumbent_is_the_min_over_member_cells_and_beats_h4w() {
        let inst = instance(7);
        let outcome = run_portfolio(&inst, &quick_config(), &BatchRunner::new(1));
        let best = outcome.best_period.expect("feasible instance");
        let min_cell = outcome
            .cells
            .iter()
            .filter_map(|c| c.period)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(best.to_bits(), min_cell.to_bits());
        // The winner index actually points at a cell achieving the best.
        let winner = outcome.winner.unwrap();
        assert_eq!(
            outcome.cells[winner].period.unwrap().to_bits(),
            best.to_bits()
        );
        // The portfolio can only improve on its best member seed.
        let h4w = H4wFastestMachine.period(&inst).unwrap().value();
        assert!(best <= h4w + 1e-9);
        // And the reported mapping really has the reported period.
        let mapping = outcome.best_mapping.unwrap();
        let recomputed = inst.period(&mapping).unwrap().value();
        assert!((recomputed - best).abs() <= 1e-9 * best.max(1.0));
        assert!(inst.is_specialized(&mapping));
    }

    #[test]
    fn infeasible_instances_fail_every_cell() {
        // 5 types on 3 machines: no specialized mapping exists.
        let inst = InstanceGenerator::new(GeneratorConfig::paper_standard(10, 3, 5))
            .generate(1)
            .unwrap();
        let outcome = run_portfolio(&inst, &quick_config(), &BatchRunner::new(1));
        assert!(outcome.best_mapping.is_none());
        assert!(outcome.winner.is_none());
        assert!(outcome.cells.iter().all(|c| c.period.is_none()));
    }

    #[test]
    fn traced_outcome_is_bit_identical_and_thread_independent() {
        let inst = instance(11);
        let config = quick_config();
        let untraced = run_portfolio(&inst, &config, &BatchRunner::new(2));
        let traced_1 =
            run_portfolio_traced(&inst, &config, &BatchRunner::new(1), TRACE_CACHE_EVENT_CAP);
        let traced_4 =
            run_portfolio_traced(&inst, &config, &BatchRunner::new(4), TRACE_CACHE_EVENT_CAP);
        // Attaching progress sinks changes nothing about the result…
        assert_eq!(traced_1.outcome, untraced);
        // …and the harvested progress is scheduling-independent.
        assert_eq!(traced_1, traced_4);
        assert_eq!(
            traced_1.summaries.len(),
            untraced.rounds * untraced.cells.len()
        );
        assert!(!traced_1.records.is_empty(), "some cell must commit steps");
        // The serialized form survives the mf-trace v1 round trip.
        let events = traced_1.to_trace_events();
        let text = mf_obs::events_to_text(&events).unwrap();
        assert_eq!(mf_obs::events_from_text(&text).unwrap(), events);
    }

    #[test]
    fn traced_commits_reconstruct_enable_commit_trace_exactly() {
        use mf_heuristics::search::{CommitStep, SteepestDescent};

        let inst = instance(7);
        let config = quick_config();
        let traced =
            run_portfolio_traced(&inst, &config, &BatchRunner::new(4), TRACE_CACHE_EVENT_CAP);
        let cell = traced
            .outcome
            .cells
            .iter()
            .position(|c| c.label == "SD-H2")
            .expect("the portfolio always fields an SD-H2 cell");

        // Replay the cell's rounds by hand through the engine's own commit
        // trace — the pre-existing ground truth — and demand the traced
        // run's progress events reproduce each round's step sequence
        // exactly (same kinds, operands and period bits).
        let mut carried: Option<Mapping> = None;
        let mut previous_period: Option<f64> = None;
        let mut compared_rounds = 0usize;
        for round in 0..traced.outcome.rounds {
            let mapping = match &carried {
                None => paper_heuristic("H2", cell_seed(&config, cell, round))
                    .unwrap()
                    .map(&inst)
                    .unwrap(),
                Some(mapping) => mapping.clone(),
            };
            let mut engine = SearchEngine::new(&inst, &mapping, config.sweep_budget).unwrap();
            engine.enable_commit_trace();
            SteepestDescent::default().run(&mut engine).unwrap();
            let expected: Vec<CommitStep> = engine.commit_trace().to_vec();
            let converged = !engine.exhausted();
            let polished = engine.into_best();
            let period = inst.period(&polished).unwrap().value();

            let observed: Vec<CommitStep> = traced
                .records
                .iter()
                .filter(|r| r.cell == cell && r.round == round)
                .flat_map(|r| r.events.iter())
                .filter_map(|event| match *event {
                    ProgressEvent::Commit {
                        swap,
                        a,
                        b,
                        period_bits,
                        ..
                    } => Some(if swap {
                        CommitStep::Swap {
                            a: a as usize,
                            b: b as usize,
                            period: period_bits,
                        }
                    } else {
                        CommitStep::Move {
                            task: a as usize,
                            to: b as usize,
                            period: period_bits,
                        }
                    }),
                    _ => None,
                })
                .collect();
            assert_eq!(observed, expected, "cell {cell} round {round}");
            compared_rounds += 1;

            let stalled = round > 0
                && previous_period
                    .map(|p| period >= p - 1e-12)
                    .unwrap_or(false);
            if converged || stalled {
                break;
            }
            previous_period = Some(period);
            carried = Some(polished);
        }
        assert!(compared_rounds > 0);
        assert!(
            traced
                .records
                .iter()
                .any(|r| r.cell == cell && r.round == 0 && !r.events.is_empty()),
            "round 0 of SD-H2 must commit at least one step"
        );
    }

    #[test]
    fn cell_labels_cover_all_seeds_and_strategies() {
        let specs = cell_specs(&quick_config());
        assert_eq!(specs.len(), 6 * 3); // 1 annealed stream + SD + TS per seed
        let labels: Vec<&str> = specs.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"H6-H4w#0"));
        assert!(labels.contains(&"SD-H1"));
        assert!(labels.contains(&"TS-H4f"));
    }
}
