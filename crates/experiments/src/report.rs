//! Experiment reports: series of (x, statistics) points rendered as text
//! tables and CSV.

use crate::stats::Stats;
use std::fmt::Write as _;

/// One curve of a figure: a label and its (x, statistics) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Curve label (heuristic name, "MIP", "OtO", …).
    pub label: String,
    /// Points of the curve: x value (number of tasks, of types, …) and the
    /// statistics of the measured quantity. `None` marks a point where the
    /// method produced no result (e.g. the exact solver timed out), matching
    /// the holes in the paper's Figure 12.
    pub points: Vec<(f64, Option<Stats>)>,
}

impl Series {
    /// Mean value at a given x, if present.
    pub fn mean_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < 1e-9)
            .and_then(|(_, stats)| stats.map(|s| s.mean))
    }

    /// Average of the per-point means (ignoring missing points).
    pub fn overall_mean(&self) -> Option<f64> {
        let values: Vec<f64> = self
            .points
            .iter()
            .filter_map(|(_, s)| s.map(|s| s.mean))
            .collect();
        crate::stats::mean(&values)
    }
}

/// A complete figure reproduction: metadata plus one series per method.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// Identifier, e.g. `"fig5"`.
    pub id: String,
    /// Human-readable title, e.g. `"m = 50, p = 5"`.
    pub title: String,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl FigureReport {
    /// Finds a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// The x values of the first series (all series share their x values).
    pub fn x_values(&self) -> Vec<f64> {
        self.series
            .first()
            .map(|s| s.points.iter().map(|(x, _)| *x).collect())
            .unwrap_or_default()
    }

    /// Renders the report as an aligned text table (one row per x value, one
    /// column per series).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# y: {}  (mean over instances)", self.y_label);
        let _ = write!(out, "{:>12}", self.x_label);
        for series in &self.series {
            let _ = write!(out, " {:>12}", series.label);
        }
        let _ = writeln!(out);
        for (row, x) in self.x_values().iter().enumerate() {
            let _ = write!(out, "{x:>12.0}");
            for series in &self.series {
                match series.points.get(row).and_then(|(_, s)| *s) {
                    Some(stats) => {
                        let _ = write!(out, " {:>12.1}", stats.mean);
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the report as CSV (`x,label,count,mean,std,min,max`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,series,count,mean,std_dev,min,max\n");
        for series in &self.series {
            for (x, stats) in &series.points {
                match stats {
                    Some(s) => {
                        let _ = writeln!(
                            out,
                            "{x},{},{},{},{},{},{}",
                            series.label, s.count, s.mean, s.std_dev, s.min, s.max
                        );
                    }
                    None => {
                        let _ = writeln!(out, "{x},{},0,,,,", series.label);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> FigureReport {
        let stats = |mean: f64| Stats {
            count: 3,
            mean,
            std_dev: 1.0,
            min: mean - 1.0,
            max: mean + 1.0,
        };
        FigureReport {
            id: "figX".into(),
            title: "test".into(),
            x_label: "tasks".into(),
            y_label: "period".into(),
            series: vec![
                Series {
                    label: "H2".into(),
                    points: vec![(10.0, Some(stats(100.0))), (20.0, Some(stats(200.0)))],
                },
                Series {
                    label: "MIP".into(),
                    points: vec![(10.0, Some(stats(90.0))), (20.0, None)],
                },
            ],
        }
    }

    #[test]
    fn table_rendering_contains_all_columns() {
        let report = sample_report();
        let table = report.to_table();
        assert!(table.contains("H2"));
        assert!(table.contains("MIP"));
        assert!(table.contains("100.0"));
        assert!(table.contains('-'), "missing points render as a dash");
        assert_eq!(report.x_values(), vec![10.0, 20.0]);
    }

    #[test]
    fn csv_rendering_has_one_line_per_point() {
        let report = sample_report();
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 1 + 4);
        assert!(lines[1].starts_with("10,H2,3,100"));
        assert!(lines[4].starts_with("20,MIP,0"));
    }

    #[test]
    fn series_lookup_helpers() {
        let report = sample_report();
        assert_eq!(report.series("H2").unwrap().mean_at(20.0), Some(200.0));
        assert_eq!(report.series("MIP").unwrap().mean_at(20.0), None);
        assert_eq!(report.series("H2").unwrap().overall_mean(), Some(150.0));
        assert!(report.series("nope").is_none());
    }
}
