//! Parallel sweep runner.
//!
//! Experiment points are embarrassingly parallel (one instance = one unit of
//! work), so the runner simply fans a work queue out to scoped crossbeam
//! threads. Results are written into a pre-allocated slot per work item, which
//! keeps the output order deterministic regardless of scheduling.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `work(i)` for every `i < items` on `threads` worker threads and
/// collects the results in index order.
pub fn parallel_map<T, F>(items: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if items == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(items);
    if threads == 1 {
        return (0..items).map(&work).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = (0..items).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items {
                    break;
                }
                let result = work(index);
                *slots[index].lock() = Some(result);
            });
        }
    })
    .expect("worker thread panicked");

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every work item produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_order() {
        let results = parallel_map(100, 4, |i| i * i);
        assert_eq!(results.len(), 100);
        for (i, &value) in results.iter().enumerate() {
            assert_eq!(value, i * i);
        }
    }

    #[test]
    fn single_thread_and_empty_cases() {
        assert_eq!(parallel_map(5, 1, |i| i + 1), vec![1, 2, 3, 4, 5]);
        let empty: Vec<usize> = parallel_map(0, 8, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let results = parallel_map(3, 16, |i| i as f64 * 0.5);
        assert_eq!(results, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn heavier_work_is_shared() {
        // Just a smoke test that nothing deadlocks with contention.
        let results = parallel_map(64, 8, |i| {
            let mut acc = 0u64;
            for k in 0..10_000u64 {
                acc = acc.wrapping_add(k.wrapping_mul(i as u64 + 1));
            }
            acc
        });
        assert_eq!(results.len(), 64);
        assert_eq!(results[0], (0..10_000u64).sum::<u64>());
    }
}
