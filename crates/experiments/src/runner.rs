//! The rayon-parallel batch-evaluation engine.
//!
//! Every experiment of §7 boils down to evaluating a grid of independent
//! **cells** — (failure scenario × instance seed × heuristic) — and
//! aggregating the measured periods. [`BatchRunner`] fans those cells out on
//! a rayon thread pool; [`BatchGrid`] describes the grid; [`BatchReport`]
//! holds the per-cell outcomes and aggregates them into the existing
//! [`Stats`] / [`FigureReport`](crate::report::FigureReport) layer.
//!
//! # Determinism
//!
//! Results are **bit-identical regardless of thread count**:
//!
//! * each cell derives its own RNG seed from the grid coordinates alone
//!   (SplitMix64 mixing, no shared mutable state), so a cell computes the
//!   same value no matter which worker runs it or when;
//! * the runner assembles results **by cell index**, not by completion
//!   order.
//!
//! The figure sweeps ([`crate::figures::run_sweep`]) and the summary tables
//! are all driven through [`BatchRunner::map`], so the whole §7 reproduction
//! inherits these guarantees.

use crate::config::ExperimentConfig;
use crate::report::{FigureReport, Series};
use crate::stats::Stats;
use mf_core::seed::splitmix64;
use mf_sim::{GeneratorConfig, InstanceGenerator};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Fans independent work items out across a rayon thread pool and collects
/// the results in item order.
///
/// The pool is built once per runner and reused across [`BatchRunner::map`]
/// calls, so repeated sweeps (e.g. the summary tables) don't pay per-call
/// thread spawn costs with a real rayon backend.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
    pool: std::sync::Arc<rayon::ThreadPool>,
}

impl BatchRunner {
    /// A runner with an explicit thread count (`0` = one per logical CPU,
    /// capped at 16 — the same convention as
    /// [`ExperimentConfig::effective_threads`]).
    pub fn new(threads: usize) -> Self {
        let threads = crate::config::resolve_threads(threads);
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("building a rayon pool cannot fail");
        BatchRunner {
            threads,
            pool: std::sync::Arc::new(pool),
        }
    }

    /// A runner using the thread count of an experiment configuration.
    pub fn from_config(config: &ExperimentConfig) -> Self {
        BatchRunner::new(config.effective_threads())
    }

    /// The effective number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `work(i)` for every `i < items` on the runner's pool and collects
    /// the results in index order — the output is identical for every thread
    /// count as long as `work` is a pure function of `i`.
    pub fn map<T, F>(&self, items: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if items == 0 {
            return Vec::new();
        }
        if self.threads == 1 || items == 1 {
            return (0..items).map(work).collect();
        }
        self.pool
            .install(|| (0..items).into_par_iter().map(work).collect())
    }

    /// Evaluates a full (scenario × seed × heuristic) grid.
    ///
    /// # Panics
    ///
    /// Panics if a method name is not in the heuristic registry
    /// ([`mf_heuristics::registry_names`]) — a typo would otherwise be
    /// indistinguishable from every cell being infeasible.
    pub fn run(&self, grid: &BatchGrid) -> BatchReport {
        for name in &grid.methods {
            // The registry walk in the message only runs on the failure path.
            assert!(
                mf_heuristics::paper_heuristic(name, 0).is_some(),
                "unknown heuristic `{name}` in batch grid (expected one of {})",
                mf_heuristics::registry_names().join(", ")
            );
        }
        let methods = grid.methods.len();
        let reps = grid.reps;
        let cells = self.map(grid.cell_count(), |index| {
            let scenario = index / (reps * methods);
            let rep = (index / methods) % reps;
            let method = index % methods;
            CellOutcome {
                scenario,
                rep,
                method,
                period: grid.evaluate_cell(scenario, rep, method),
            }
        });
        BatchReport {
            scenario_names: grid.scenarios.iter().map(|s| s.name.clone()).collect(),
            method_names: grid.methods.clone(),
            reps,
            cells,
        }
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new(0)
    }
}

/// A named failure scenario: one instance distribution.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario label (`"standard"`, `"high-failure"`, …).
    pub name: String,
    /// The instance distribution the scenario draws from.
    pub generator: GeneratorConfig,
}

impl ScenarioSpec {
    /// Builds a scenario from a label and a generator configuration.
    pub fn new(name: impl Into<String>, generator: GeneratorConfig) -> Self {
        ScenarioSpec {
            name: name.into(),
            generator,
        }
    }
}

/// The description of a batch evaluation: `reps` instance seeds per scenario,
/// every listed heuristic on every instance.
#[derive(Debug, Clone)]
pub struct BatchGrid {
    /// Base seed all per-cell seeds are derived from.
    pub base_seed: u64,
    /// Number of instances drawn per scenario.
    pub reps: usize,
    /// The failure scenarios (instance distributions) to sweep.
    pub scenarios: Vec<ScenarioSpec>,
    /// Heuristic names, resolved against [`mf_heuristics::paper_heuristic`]
    /// (see [`mf_heuristics::registry_names`]).
    pub methods: Vec<String>,
}

impl BatchGrid {
    /// A grid over the paper's heuristic registry.
    pub fn new(
        base_seed: u64,
        reps: usize,
        scenarios: Vec<ScenarioSpec>,
        methods: &[&str],
    ) -> Self {
        BatchGrid {
            base_seed,
            reps,
            scenarios,
            methods: methods.iter().map(|m| m.to_string()).collect(),
        }
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.scenarios.len() * self.reps * self.methods.len()
    }

    /// The instance seed of (scenario, rep) — shared by every heuristic so
    /// they are compared on the *same* instance.
    pub fn instance_seed(&self, scenario: usize, rep: usize) -> u64 {
        splitmix64(
            self.base_seed
                .wrapping_add((scenario as u64) << 40)
                .wrapping_add(rep as u64),
        )
    }

    /// The private RNG stream seed of a cell — distinct per (scenario, rep,
    /// heuristic), so randomized heuristics draw independent streams yet stay
    /// deterministic under any scheduling.
    pub fn cell_seed(&self, scenario: usize, rep: usize, method: usize) -> u64 {
        splitmix64(
            self.base_seed
                .wrapping_add(0x51_7CC1_B727_2202)
                .wrapping_add((scenario as u64) << 40)
                .wrapping_add((rep as u64) << 16)
                .wrapping_add(method as u64),
        )
    }

    /// Evaluates one cell: generate the instance, run the heuristic, return
    /// the achieved period (`None` if generation or mapping fails, or the
    /// method name is unknown — [`BatchRunner::run`] rejects unknown names up
    /// front).
    pub fn evaluate_cell(&self, scenario: usize, rep: usize, method: usize) -> Option<f64> {
        let name = self.methods.get(method)?;
        let spec = self.scenarios.get(scenario)?;
        let heuristic =
            mf_heuristics::paper_heuristic(name, self.cell_seed(scenario, rep, method))?;
        let instance = InstanceGenerator::new(spec.generator)
            .generate(self.instance_seed(scenario, rep))
            .ok()?;
        heuristic.period(&instance).ok().map(|p| p.value())
    }
}

/// One evaluated cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellOutcome {
    /// Scenario index in the grid.
    pub scenario: usize,
    /// Repetition (instance seed) index.
    pub rep: usize,
    /// Heuristic index in the grid's method list.
    pub method: usize,
    /// Achieved period, `None` when the cell failed (e.g. `p > m`).
    pub period: Option<f64>,
}

/// The raw and aggregated results of a batch evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Scenario labels, in grid order.
    pub scenario_names: Vec<String>,
    /// Heuristic labels, in grid order.
    pub method_names: Vec<String>,
    /// Repetitions per scenario.
    pub reps: usize,
    /// All cell outcomes, ordered scenario-major, then rep, then method.
    pub cells: Vec<CellOutcome>,
}

impl BatchReport {
    /// The period samples of (scenario, method) across repetitions.
    ///
    /// Uses O(reps) direct indexing when the cell vector still has the
    /// canonical scenario-major layout [`BatchRunner::run`] produces, falling
    /// back to a full scan if a caller reordered it.
    pub fn samples(&self, scenario: usize, method: usize) -> Vec<f64> {
        let methods = self.method_names.len();
        let index_of = |rep: usize| (scenario * self.reps + rep) * methods + method;
        let canonical = method < methods
            && scenario < self.scenario_names.len()
            && self.cells.len() == self.scenario_names.len() * self.reps * methods
            && (0..self.reps).all(|rep| {
                let cell = &self.cells[index_of(rep)];
                cell.scenario == scenario && cell.rep == rep && cell.method == method
            });
        if canonical {
            return (0..self.reps)
                .filter_map(|rep| self.cells[index_of(rep)].period)
                .collect();
        }
        self.cells
            .iter()
            .filter(|c| c.scenario == scenario && c.method == method)
            .filter_map(|c| c.period)
            .collect()
    }

    /// Aggregated statistics of (scenario, method), `None` when every cell
    /// failed.
    pub fn stats(&self, scenario: usize, method: usize) -> Option<Stats> {
        Stats::from_samples(&self.samples(scenario, method))
    }

    /// Renders the batch as a figure-style report: one series per heuristic,
    /// one x value per scenario (its grid index).
    pub fn to_figure_report(&self, id: &str, title: &str) -> FigureReport {
        let series = self
            .method_names
            .iter()
            .enumerate()
            .map(|(m, label)| Series {
                label: label.clone(),
                points: (0..self.scenario_names.len())
                    .map(|s| (s as f64, self.stats(s, m)))
                    .collect(),
            })
            .collect();
        FigureReport {
            id: id.to_string(),
            title: title.to_string(),
            x_label: "scenario".into(),
            y_label: "period (ms)".into(),
            series,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> BatchGrid {
        BatchGrid::new(
            7,
            6,
            vec![
                ScenarioSpec::new("standard", GeneratorConfig::paper_standard(10, 4, 2)),
                ScenarioSpec::new(
                    "high-failure",
                    GeneratorConfig::paper_high_failure(10, 4, 2),
                ),
            ],
            &["H1", "H2", "H4w"],
        )
    }

    #[test]
    fn map_preserves_order() {
        let results = BatchRunner::new(4).map(100, |i| i * i);
        assert_eq!(results.len(), 100);
        for (i, &value) in results.iter().enumerate() {
            assert_eq!(value, i * i);
        }
    }

    #[test]
    fn map_single_thread_and_empty_cases() {
        assert_eq!(BatchRunner::new(1).map(5, |i| i + 1), vec![1, 2, 3, 4, 5]);
        let empty: Vec<usize> = BatchRunner::new(8).map(0, |i| i);
        assert!(empty.is_empty());
        assert_eq!(
            BatchRunner::new(16).map(3, |i| i as f64 * 0.5),
            vec![0.0, 0.5, 1.0]
        );
    }

    #[test]
    fn grid_dimensions_and_seed_derivation() {
        let grid = small_grid();
        assert_eq!(grid.cell_count(), 2 * 6 * 3);
        // Instance seeds are shared across methods, cell seeds are not.
        assert_eq!(grid.instance_seed(0, 3), grid.instance_seed(0, 3));
        assert_ne!(grid.instance_seed(0, 3), grid.instance_seed(1, 3));
        assert_ne!(grid.cell_seed(0, 3, 0), grid.cell_seed(0, 3, 1));
        assert_ne!(grid.cell_seed(0, 3, 0), grid.instance_seed(0, 3));
    }

    #[test]
    fn batch_results_are_identical_for_every_thread_count() {
        let grid = small_grid();
        let reference = BatchRunner::new(1).run(&grid);
        for threads in [2usize, 3, 4, 8] {
            let report = BatchRunner::new(threads).run(&grid);
            assert_eq!(
                report, reference,
                "thread count {threads} changed the results"
            );
        }
    }

    #[test]
    fn aggregation_feeds_the_report_layer() {
        let report = BatchRunner::new(2).run(&small_grid());
        let stats = report
            .stats(0, 1)
            .expect("H2 succeeds on every standard instance");
        assert_eq!(stats.count, 6);
        assert!(stats.mean > 0.0);
        let figure = report.to_figure_report("batch", "smoke");
        assert_eq!(figure.series.len(), 3);
        assert_eq!(figure.x_values(), vec![0.0, 1.0]);
        // High-failure instances should have longer periods than standard
        // ones for the same heuristic.
        let h2 = figure.series("H2").unwrap();
        assert!(h2.mean_at(1.0).unwrap() > h2.mean_at(0.0).unwrap());
    }

    #[test]
    fn failing_methods_yield_empty_stats() {
        // 5 types on 3 machines: every heuristic must fail (p > m).
        let grid = BatchGrid::new(
            1,
            2,
            vec![ScenarioSpec::new(
                "infeasible",
                GeneratorConfig::paper_standard(8, 3, 5),
            )],
            &["H2"],
        );
        let report = BatchRunner::new(2).run(&grid);
        assert!(report.stats(0, 0).is_none());
        assert!(report.cells.iter().all(|c| c.period.is_none()));
    }
}
