//! Minimal descriptive statistics for experiment results.

/// Summary statistics of a sample of periods (or ratios).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Stats {
    /// Computes statistics over a sample; returns `None` for an empty sample.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Stats {
            count,
            mean,
            std_dev: variance.sqrt(),
            min,
            max,
        })
    }

    /// Half-width of the 95% normal-approximation confidence interval on the
    /// mean.
    pub fn confidence_95(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev / (self.count as f64).sqrt()
    }
}

/// Arithmetic mean of a slice (`None` when empty).
pub fn mean(samples: &[f64]) -> Option<f64> {
    Stats::from_samples(samples).map(|s| s.mean)
}

/// Geometric mean of a slice of positive values (`None` when empty).
///
/// The paper quotes heuristic quality as an average *factor from the optimal*;
/// the geometric mean is the natural average for ratios.
pub fn geometric_mean(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() || samples.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = samples.iter().map(|v| v.ln()).sum();
    Some((log_sum / samples.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let stats = Stats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(stats.count, 8);
        assert!((stats.mean - 5.0).abs() < 1e-12);
        assert!((stats.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(stats.min, 2.0);
        assert_eq!(stats.max, 9.0);
        assert!(stats.confidence_95() > 0.0);
    }

    #[test]
    fn empty_samples_have_no_stats() {
        assert!(Stats::from_samples(&[]).is_none());
        assert!(mean(&[]).is_none());
        assert!(geometric_mean(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let stats = Stats::from_samples(&[3.5]).unwrap();
        assert_eq!(stats.mean, 3.5);
        assert_eq!(stats.std_dev, 0.0);
        assert_eq!(stats.confidence_95(), 0.0);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        let g = geometric_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert!(geometric_mean(&[1.0, -1.0]).is_none());
        assert!(geometric_mean(&[2.0, 0.0]).is_none());
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
    }
}
