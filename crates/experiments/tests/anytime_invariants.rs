//! Invariants of the anytime solver's event stream and final answer.
//!
//! The protocol contract the serving tier relies on:
//!
//! * the **first** event already carries a feasible incumbent and a
//!   certified lower bound;
//! * incumbents never increase, bounds never decrease, steps never
//!   decrease, and a `proven` event (if any) is the last one with gap 0;
//! * given enough budget, the final mapping is **bit-identical** to the
//!   offline branch-and-bound optimum, regardless of how often the run is
//!   repeated or how many rayon workers are active around it;
//! * total steps stay within the budget's accounting and, on the `m ≫ p`
//!   shapes the mode targets, close the gap within fewer steps than plain
//!   branch-and-bound needs nodes.

use mf_exact::{branch_and_bound, BnbConfig};
use mf_experiments::anytime::{solve_anytime, solve_anytime_observed, AnytimeConfig, AnytimePhase};
use mf_experiments::runner::BatchRunner;
use mf_obs::{ProgressEvent, SamplingSink, TraceEvent};
use mf_sim::{GeneratorConfig, InstanceGenerator};

fn instance(tasks: usize, machines: usize, types: usize, seed: u64) -> mf_core::prelude::Instance {
    InstanceGenerator::new(GeneratorConfig::paper_standard(tasks, machines, types))
        .generate(seed)
        .unwrap()
}

#[test]
fn event_streams_are_monotone_and_start_feasible() {
    for seed in 0..6u64 {
        let inst = instance(10, 5, 2, 0xA11F + seed);
        let outcome = solve_anytime(&inst, &AnytimeConfig::default()).unwrap();

        assert!(!outcome.events.is_empty(), "a run always emits its seed");
        let first = outcome.events[0];
        assert_eq!(first.phase, AnytimePhase::Seed);
        assert_eq!(first.steps, 0, "the seed incumbent costs no steps");
        assert!(
            first.period.is_finite() && first.period > 0.0,
            "first event must carry a feasible incumbent"
        );
        assert!(first.bound <= first.period + 1e-9);

        for pair in outcome.events.windows(2) {
            assert!(pair[1].period <= pair[0].period + 1e-12, "incumbent rose");
            assert!(pair[1].bound >= pair[0].bound - 1e-12, "bound fell");
            assert!(pair[1].steps >= pair[0].steps, "steps went backwards");
            assert!(!pair[0].proven, "a proven event must be the last");
        }
        let last = *outcome.events.last().unwrap();
        assert_eq!(last.period, outcome.period.value());
        assert_eq!(last.proven, outcome.proven_optimal);
        if last.proven {
            assert_eq!(last.gap(), 0.0);
            assert_eq!(outcome.bound, outcome.period.value());
        }
    }
}

#[test]
fn full_budget_matches_the_offline_optimum_bit_for_bit() {
    for seed in 0..4u64 {
        let inst = instance(9, 4, 2, 0xBEEF + seed);
        let offline = branch_and_bound(&inst, BnbConfig::default()).unwrap();
        assert!(offline.proven_optimal);

        let anytime = solve_anytime(&inst, &AnytimeConfig::default()).unwrap();
        assert!(anytime.proven_optimal, "budget was ample; gap must close");
        assert_eq!(
            anytime.period.value().to_bits(),
            offline.period.value().to_bits(),
            "anytime and offline optima diverge on seed {seed}"
        );
        assert_eq!(anytime.gap(), 0.0);
    }
}

#[test]
fn runs_are_deterministic_and_worker_count_invariant() {
    let inst = instance(12, 6, 3, 0xD0_0D);
    let config = AnytimeConfig::default();
    let reference = solve_anytime(&inst, &config).unwrap();

    // Re-running in the same process is bit-identical.
    let again = solve_anytime(&inst, &config).unwrap();
    assert_eq!(reference.events, again.events);
    assert_eq!(reference.steps, again.steps);
    assert_eq!(
        reference.mapping.as_slice(),
        again.mapping.as_slice(),
        "re-run diverged"
    );

    // Running under rayon pools of different widths changes nothing: the
    // anytime pipeline is a single logical thread by design.
    for threads in [1usize, 2, 4] {
        let runner = BatchRunner::new(threads);
        let results = runner.map(3, |_| solve_anytime(&inst, &config).unwrap());
        for outcome in results {
            assert_eq!(outcome.events, reference.events, "{threads} threads");
            assert_eq!(outcome.mapping.as_slice(), reference.mapping.as_slice());
        }
    }
}

#[test]
fn steps_respect_the_budget_and_beat_plain_branch_and_bound() {
    // The m ≫ p shape the anytime mode targets: many machines, few types.
    let inst = instance(11, 8, 3, 0x5EED);

    let plain = branch_and_bound(&inst, BnbConfig::default()).unwrap();
    assert!(plain.proven_optimal);

    let config = AnytimeConfig::default();
    let anytime = solve_anytime(&inst, &config).unwrap();
    assert!(anytime.proven_optimal);
    assert_eq!(
        anytime.period.value().to_bits(),
        plain.period.value().to_bits()
    );
    assert!(
        anytime.steps <= plain.nodes,
        "anytime consumed {} steps, plain branch-and-bound {} nodes",
        anytime.steps,
        plain.nodes
    );
    assert!(anytime.steps <= config.step_budget);
}

#[test]
fn observers_see_every_event_and_change_nothing() {
    let inst = instance(10, 5, 2, 0x0B5E);
    let config = AnytimeConfig::default();
    let silent = solve_anytime(&inst, &config).unwrap();

    let mut seen = Vec::new();
    let mut sink = SamplingSink::new(0);
    let observed =
        solve_anytime_observed(&inst, &config, &mut |e| seen.push(*e), &mut sink).unwrap();

    assert_eq!(observed.events, silent.events, "observers steered the run");
    assert_eq!(seen, silent.events, "callback missed events");

    // Every event is mirrored into the sink as an Incumbent record that
    // traces as a Round.
    let incumbents: Vec<ProgressEvent> = sink.events().to_vec();
    assert_eq!(incumbents.len(), silent.events.len());
    for (progress, event) in incumbents.iter().zip(&silent.events) {
        match *progress {
            ProgressEvent::Incumbent {
                period_bits,
                steps,
                proven,
            } => {
                assert_eq!(period_bits, event.period.to_bits());
                assert_eq!(steps, event.steps);
                assert_eq!(proven, event.proven);
                assert_eq!(
                    progress.into_trace(0, 0),
                    TraceEvent::Round {
                        cell: 0,
                        round: event.steps,
                        period_bits: Some(event.period.to_bits()),
                        done: event.proven,
                    }
                );
            }
            other => panic!("unexpected progress event {other:?}"),
        }
    }
}
