//! Thread-count invariance of the batch-evaluation engine.
//!
//! The acceptance bar for the rayon runner: a fixed seed set must produce
//! **bit-identical** aggregate statistics whether the grid is evaluated on 1
//! thread or N. These tests exercise both entry points — the figure sweeps
//! ([`mf_experiments::figures::run_sweep`] via a fig7-class workload) and the
//! explicit [`BatchGrid`] API — and compare full reports with `==` on `f64`s:
//! any scheduling-dependent reduction order would fail them.

use mf_experiments::figures::{ext_localsearch, ext_portfolio, fig5, fig7, fig9};
use mf_experiments::portfolio::{run_portfolio, run_portfolio_barrier, PortfolioConfig};
use mf_experiments::runner::{BatchGrid, BatchRunner, ScenarioSpec};
use mf_experiments::ExperimentConfig;
use mf_sim::{GeneratorConfig, InstanceGenerator};

fn config_with_threads(threads: usize) -> ExperimentConfig {
    ExperimentConfig {
        repetitions: 3,
        threads,
        ..ExperimentConfig::quick()
    }
}

#[test]
fn fig7_class_sweep_is_thread_count_invariant() {
    // Figure 7 shape (m = 100, p = 5) at a reduced size: heavy enough that
    // work is actually shared, small enough for a test.
    let tasks = vec![100, 110];
    let reference = fig7::run_with_tasks(&config_with_threads(1), tasks.clone());
    for threads in [2usize, 4, 8] {
        let report = fig7::run_with_tasks(&config_with_threads(threads), tasks.clone());
        assert_eq!(
            report, reference,
            "fig7 sweep changed with {threads} threads"
        );
    }
}

#[test]
fn fig5_and_fig9_sweeps_are_thread_count_invariant() {
    let fig5_ref = fig5::run_with_tasks(&config_with_threads(1), vec![50, 60]);
    assert_eq!(
        fig5::run_with_tasks(&config_with_threads(4), vec![50, 60]),
        fig5_ref,
        "fig5 sweep must not depend on the thread count"
    );
    let fig9_ref = fig9::run_with_types(&config_with_threads(1), vec![2, 3]);
    assert_eq!(
        fig9::run_with_types(&config_with_threads(4), vec![2, 3]),
        fig9_ref,
        "fig9 sweep must not depend on the thread count"
    );
}

#[test]
fn batch_grid_aggregates_identically_for_one_and_many_threads() {
    let grid = BatchGrid::new(
        20100607,
        8,
        vec![
            ScenarioSpec::new("standard", GeneratorConfig::paper_standard(40, 10, 3)),
            ScenarioSpec::new(
                "high-failure",
                GeneratorConfig::paper_high_failure(40, 10, 3),
            ),
            ScenarioSpec::new(
                "task-failures",
                GeneratorConfig::paper_task_failures(40, 40, 3),
            ),
        ],
        &["H1", "H2", "H3", "H4", "H4w", "H4f", "SD-H2", "TS-H4w"],
    );
    let reference = BatchRunner::new(1).run(&grid);
    for threads in [2usize, 4] {
        let report = BatchRunner::new(threads).run(&grid);
        assert_eq!(
            report, reference,
            "grid results changed with {threads} threads"
        );
    }
    // Aggregate stats (not just raw cells) are identical too.
    let four = BatchRunner::new(4).run(&grid);
    for scenario in 0..3 {
        for method in 0..8 {
            let a = reference.stats(scenario, method);
            let b = four.stats(scenario, method);
            assert_eq!(a, b, "stats ({scenario}, {method}) changed with threads");
        }
    }
}

#[test]
fn ext_localsearch_sweep_is_thread_count_invariant() {
    // The H6 local search is the first *stateful, randomized* method driven
    // through the batch grid: its neighborhood stream must derive from the
    // cell coordinates alone, so a reduced ext_localsearch grid must be
    // bit-identical on 1 and N threads — the same bar batch_grid cells meet.
    let config = ExperimentConfig {
        repetitions: 3,
        ..ExperimentConfig::quick()
    };
    let scenarios = || {
        vec![
            ScenarioSpec::new("fig6", GeneratorConfig::paper_standard(30, 10, 2)),
            ScenarioSpec::new("fig9", GeneratorConfig::paper_task_failures(24, 24, 3)),
        ]
    };
    let methods = ["H4w", "H6-H4w", "H6-H1"];
    let reference =
        BatchRunner::new(1).run(&ext_localsearch::grid_with(&config, scenarios(), &methods));
    for threads in [2usize, 4] {
        let report = BatchRunner::new(threads).run(&ext_localsearch::grid_with(
            &config,
            scenarios(),
            &methods,
        ));
        assert_eq!(
            report, reference,
            "ext_localsearch grid changed with {threads} threads"
        );
    }
    // H6 cells actually produced numbers (the sweep is not vacuous).
    for scenario in 0..2 {
        for method in 0..methods.len() {
            assert_eq!(reference.samples(scenario, method).len(), 3);
        }
    }
}

#[test]
fn portfolio_outcome_is_thread_count_invariant_and_equals_the_cell_min() {
    // The portfolio runner advances its cells in synchronized rounds on the
    // batch runner's pool; every cell's work is a pure function of its grid
    // coordinates, so the full outcome — incumbent, winner, per-cell periods,
    // round count — must be bit-identical for every thread count, and the
    // incumbent must equal the min over the member cells by construction.
    let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(30, 10, 3))
        .generate(20100607)
        .unwrap();
    let config = PortfolioConfig {
        annealed_streams: 2,
        round_steps: 800,
        sweep_budget: 20_000,
        max_rounds: 3,
        ..PortfolioConfig::default()
    };
    let reference = run_portfolio(&instance, &config, &BatchRunner::new(1));
    for threads in [2usize, 4, 8] {
        let outcome = run_portfolio(&instance, &config, &BatchRunner::new(threads));
        assert_eq!(
            outcome, reference,
            "portfolio outcome changed with {threads} threads"
        );
    }
    let best = reference.best_period.expect("feasible instance");
    let min_cell = reference
        .cells
        .iter()
        .filter_map(|c| c.period)
        .fold(f64::INFINITY, f64::min);
    assert_eq!(
        best.to_bits(),
        min_cell.to_bits(),
        "incumbent must be the exact min over member cells"
    );
    let winner = reference.winner.expect("feasible instance has a winner");
    assert_eq!(
        reference.cells[winner].period.unwrap().to_bits(),
        best.to_bits()
    );
}

#[test]
fn workstealing_portfolio_matches_the_barrier_under_round_skew() {
    // Skew stress for the work-stealing round executor: a cell mix whose
    // members converge at very different rounds — steepest-descent cells
    // finish (done) after a round or two, tabu cells stall and stop, the
    // annealed cells stay live to the round cap — so workers speculate past
    // slow cells, replay stopping decisions out of completion order, and
    // carry done cells' states forward. The outcome must still be
    // bit-identical to the barrier reference at every thread count; any
    // scheduling leak (a claim order reaching an RNG stream, a decision
    // replayed out of round order, a speculative round surviving the stop)
    // would break `==` on the full outcome.
    let instance = InstanceGenerator::new(GeneratorConfig::paper_standard(24, 8, 3))
        .generate(0xBA11AD)
        .unwrap();
    let config = PortfolioConfig {
        annealed_streams: 2,
        round_steps: 400,
        sweep_budget: 6_000,
        max_rounds: 5,
        patience: 3,
        ..PortfolioConfig::default()
    };
    let reference = run_portfolio_barrier(&instance, &config, &BatchRunner::new(1));
    assert!(
        reference.rounds > 1,
        "the skew workload must survive past round 0 to exercise round edges"
    );
    for threads in [1usize, 2, 8] {
        let worksteal = run_portfolio(&instance, &config, &BatchRunner::new(threads));
        assert_eq!(
            worksteal, reference,
            "work-stealing outcome diverged from the barrier at {threads} threads"
        );
        let barrier = run_portfolio_barrier(&instance, &config, &BatchRunner::new(threads));
        assert_eq!(
            barrier, reference,
            "barrier outcome changed with {threads} threads"
        );
    }
    // The mix really is skewed: some cell converged (went done) while
    // another was still improving — otherwise this test exercises nothing.
    let done_spread = reference
        .cells
        .iter()
        .filter_map(|c| c.period)
        .collect::<Vec<_>>();
    assert!(
        done_spread.len() >= 3,
        "portfolio cells must mostly succeed"
    );
}

#[test]
fn ext_portfolio_sweep_is_thread_count_invariant() {
    let config = |threads| ExperimentConfig {
        repetitions: 2,
        threads,
        ..ExperimentConfig::quick()
    };
    let scenarios = || {
        vec![
            ScenarioSpec::new("fig6", GeneratorConfig::paper_standard(20, 8, 2)),
            ScenarioSpec::new("fig9", GeneratorConfig::paper_task_failures(16, 16, 3)),
        ]
    };
    let portfolio = PortfolioConfig {
        annealed_streams: 1,
        round_steps: 300,
        sweep_budget: 5_000,
        max_rounds: 2,
        ..ext_portfolio::sweep_portfolio_config(&config(1))
    };
    let reference = ext_portfolio::run_with(&config(1), scenarios(), &portfolio);
    for threads in [2usize, 4] {
        let report = ext_portfolio::run_with(&config(threads), scenarios(), &portfolio);
        assert_eq!(
            report, reference,
            "ext_portfolio sweep changed with {threads} threads"
        );
    }
    // The sweep is not vacuous: every series has samples on both scenarios.
    for series in &reference.series {
        for (_, stats) in &series.points {
            assert_eq!(stats.expect("cells succeed").count, 2, "{}", series.label);
        }
    }
}

#[test]
#[should_panic(expected = "unknown heuristic `H4W`")]
fn unknown_method_names_are_rejected_up_front() {
    // A typo'd heuristic name must fail loudly, not silently produce a series
    // of empty statistics that looks like infeasibility.
    let grid = BatchGrid::new(
        1,
        1,
        vec![ScenarioSpec::new(
            "standard",
            GeneratorConfig::paper_standard(6, 3, 2),
        )],
        &["H4W"],
    );
    let _ = BatchRunner::new(1).run(&grid);
}

#[test]
fn randomized_heuristic_streams_are_per_cell_deterministic() {
    // H1 is randomized: its per-cell seed must depend only on the grid
    // coordinates, never on scheduling. Two independent runs at different
    // thread counts must agree cell-by-cell.
    let grid = BatchGrid::new(
        7,
        12,
        vec![ScenarioSpec::new(
            "standard",
            GeneratorConfig::paper_standard(30, 8, 3),
        )],
        &["H1"],
    );
    let a = BatchRunner::new(3).run(&grid);
    let b = BatchRunner::new(7).run(&grid);
    assert_eq!(a.cells, b.cells);
    // ... and distinct cells draw distinct streams (astronomically unlikely
    // to collide if seeds are well spread).
    let values: Vec<f64> = a.cells.iter().filter_map(|c| c.period).collect();
    assert_eq!(values.len(), 12);
    let mut deduped = values.clone();
    deduped.dedup();
    assert_eq!(
        values.len(),
        deduped.len(),
        "adjacent H1 cells repeated a value"
    );
}

#[test]
#[ignore = "timing-sensitive: run in isolation (CI does, via --ignored --test-threads=1)"]
fn four_threads_beat_one_on_a_fig7_class_workload() {
    // Wall-clock scaling needs real cores AND an otherwise idle process:
    // under the default parallel libtest harness the sibling tests above
    // would contend for the same cores and make the measurement meaningless,
    // so this test is #[ignore]d and CI runs it in a dedicated isolated step.
    // On single- or dual-core runners (like a constrained dev container) it
    // only checks that the parallel path completes; the 2× bar is enforced
    // where ≥ 4 cores exist.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = |threads| ExperimentConfig {
        repetitions: 4,
        threads,
        ..ExperimentConfig::quick()
    };
    let workload = vec![100, 120, 140];

    // Best-of-two timing on each side filters one-off scheduler hiccups on
    // shared CI runners (the first run also warms caches for both sides).
    let timed = |threads: usize| {
        let mut best = std::time::Duration::MAX;
        let mut report = None;
        for _ in 0..2 {
            let start = std::time::Instant::now();
            let run = fig7::run_with_tasks(&config(threads), workload.clone());
            best = best.min(start.elapsed());
            report = Some(run);
        }
        (report.expect("two runs happened"), best)
    };
    let (serial, serial_time) = timed(1);
    let (parallel, parallel_time) = timed(4);

    assert_eq!(serial, parallel, "scaling must not change the numbers");
    if cores >= 4 {
        let speedup = serial_time.as_secs_f64() / parallel_time.as_secs_f64();
        assert!(
            speedup > 2.0,
            "expected > 2x speedup at 4 threads on {cores} cores, got {speedup:.2}x \
             (serial {serial_time:?}, parallel {parallel_time:?})"
        );
    } else {
        eprintln!(
            "skipping the 2x speedup assertion: only {cores} core(s) available \
             (serial {serial_time:?}, parallel {parallel_time:?})"
        );
    }
}
