//! Golden-file pin of the `mf-report v1` persistence format.
//!
//! CI diffs serialized reports across commits, so the byte layout is an
//! interface: if `figure_to_text` ever changes its output for the same
//! report, every stored report silently stops diffing cleanly. This test
//! pins the exact bytes for a fixed report (including awkward floats) and
//! proves the round trip is lossless — both directions, plus a real sweep.
//!
//! To regenerate after an *intentional* format change:
//! `UPDATE_GOLDEN=1 cargo test -p mf-experiments --test report_persist`.

use mf_experiments::figures::ext_localsearch;
use mf_experiments::persist::{batch_from_text, batch_to_text, figure_from_text, figure_to_text};
use mf_experiments::runner::{BatchRunner, ScenarioSpec};
use mf_experiments::{ExperimentConfig, FigureReport, Series, Stats};
use mf_sim::GeneratorConfig;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("figure_report_v1.txt")
}

/// A fixed report exercising the format's corners: spaces in labels and
/// title, a missing point, integers, fractions that need all 17 digits, and
/// subnormal/huge magnitudes. Built from literals only (no libm), so the
/// bytes are identical on every platform.
fn golden_report() -> FigureReport {
    FigureReport {
        id: "golden".into(),
        title: "m = 50, p = 5 — persistence pin".into(),
        x_label: "number of tasks".into(),
        y_label: "period (ms)".into(),
        series: vec![
            Series {
                label: "H2".into(),
                points: vec![
                    (
                        50.0,
                        Some(Stats {
                            count: 30,
                            mean: 1234.5678,
                            std_dev: 1.0 / 3.0,
                            min: 1200.0,
                            max: 1280.5,
                        }),
                    ),
                    (
                        60.0,
                        Some(Stats {
                            count: 30,
                            mean: 0.1 + 0.2, // famously 0.30000000000000004
                            std_dev: f64::MIN_POSITIVE,
                            min: -0.0,
                            max: 1e300,
                        }),
                    ),
                ],
            },
            Series {
                label: "MIP (node budget)".into(),
                points: vec![(50.0, None), (60.0, None)],
            },
        ],
    }
}

#[test]
fn golden_file_bytes_are_pinned() {
    let report = golden_report();
    let text = figure_to_text(&report).unwrap();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e} (run with UPDATE_GOLDEN=1)",
            path.display()
        )
    });
    assert_eq!(
        text,
        golden,
        "serialized bytes diverged from the golden file {}",
        path.display()
    );
    // And the golden file parses back to the exact report.
    let parsed = figure_from_text(&golden).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn a_real_sweep_round_trips_losslessly() {
    // A miniature ext_localsearch batch: deterministic methods only (H2,
    // H4w, SD-H2 — no exp() in sight), so this is stable across platforms.
    let config = ExperimentConfig {
        repetitions: 2,
        threads: 1,
        ..ExperimentConfig::quick()
    };
    let scenarios = vec![
        ScenarioSpec::new("fig6", GeneratorConfig::paper_standard(16, 6, 2)),
        ScenarioSpec::new("infeasible", GeneratorConfig::paper_standard(8, 3, 5)),
    ];
    let grid = ext_localsearch::grid_with(&config, scenarios, &["H2", "H4w", "SD-H2"]);
    let batch = BatchRunner::new(1).run(&grid);

    let batch_text = batch_to_text(&batch).unwrap();
    assert_eq!(batch_from_text(&batch_text).unwrap(), batch);
    // Serialization is deterministic: a second pass yields identical bytes.
    assert_eq!(batch_to_text(&batch).unwrap(), batch_text);

    let figure = batch.to_figure_report("persist_smoke", "round-trip smoke");
    let figure_text = figure_to_text(&figure).unwrap();
    assert_eq!(figure_from_text(&figure_text).unwrap(), figure);
}
