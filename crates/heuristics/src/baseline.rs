//! A pure random-mapping baseline.
//!
//! Unlike [`crate::h1_random::H1Random`], which at least follows the paper's
//! group-opening policy, this baseline draws a machine uniformly at random
//! among the admissible ones for every task. It exists to support the paper's
//! claim that "the best heuristics obtain a throughput much better than the
//! throughput achieved with a random mapping" with the weakest possible
//! opponent.

use crate::context::AssignmentState;
use crate::heuristic::{Heuristic, HeuristicError, HeuristicResult};
use mf_core::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Uniformly random specialized mapping.
#[derive(Debug, Clone)]
pub struct RandomMapping {
    seed: u64,
}

impl RandomMapping {
    /// Creates the baseline with a seed.
    pub fn new(seed: u64) -> Self {
        RandomMapping { seed }
    }
}

impl Default for RandomMapping {
    fn default() -> Self {
        RandomMapping::new(0xCAFE)
    }
}

impl Heuristic for RandomMapping {
    fn name(&self) -> &str {
        "Random"
    }

    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut state = AssignmentState::new(instance);
        for task in state.backward_order() {
            let candidates = state.admissible_machines(task);
            match candidates.choose(&mut rng) {
                Some(&machine) => {
                    state.assign(task, machine)?;
                }
                None => {
                    return Err(HeuristicError::NoFeasibleAssignment {
                        task,
                        detail: "no admissible machine".into(),
                    })
                }
            }
        }
        state.into_mapping()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_mapping_is_valid_and_reproducible() {
        let app = Application::linear_chain(&[0, 1, 0, 1, 0, 1]).unwrap();
        let platform = Platform::from_type_times(4, vec![vec![100.0; 4], vec![200.0; 4]]).unwrap();
        let failures = FailureModel::uniform(6, 4, FailureRate::new(0.01).unwrap());
        let inst = Instance::new(app, platform, failures).unwrap();
        let a = RandomMapping::new(1).map(&inst).unwrap();
        let b = RandomMapping::new(1).map(&inst).unwrap();
        assert_eq!(a, b);
        assert!(inst.is_specialized(&a));
        assert_eq!(RandomMapping::default().name(), "Random");
    }
}
