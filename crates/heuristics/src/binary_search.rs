//! H2 and H3 — binary-search heuristics (paper Algorithms 2 and 3).
//!
//! Both heuristics binary-search the achievable period between 0 and a
//! pessimistic upper bound (all tasks on the slowest machine). For a candidate
//! period they try to place every task, walking backwards, on the best machine
//! according to a *priority order*; the placement fails as soon as no
//! admissible machine can take the task without exceeding the candidate
//! period. A successful placement lowers the upper bound, a failure raises the
//! lower bound, until the bounds are within the configured tolerance
//! (1 ms in the paper's pseudo-code).
//!
//! They differ only in the priority order:
//!
//! * **H2 (potential optimisation)** ranks, for each machine, the processing
//!   times of all tasks; a task prefers the machine where its time has the best
//!   (smallest) rank, ties broken by the smaller time — "assign each machine a
//!   set of tasks for which it is efficient";
//! * **H3 (heterogeneity)** prefers the most *heterogeneous* machine (largest
//!   standard deviation of its processing times), keeping homogeneous machines
//!   in reserve for the remaining tasks.

use crate::context::AssignmentState;
use crate::heuristic::{Heuristic, HeuristicResult};
use mf_core::prelude::*;

/// Configuration shared by the binary-search heuristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinarySearchConfig {
    /// Stop once `maxPeriod − minPeriod` is below this value (the paper uses
    /// 1 ms).
    pub tolerance: f64,
    /// Hard cap on the number of search iterations (safety net; the search
    /// converges long before this for any sane tolerance).
    pub max_iterations: usize,
}

impl Default for BinarySearchConfig {
    fn default() -> Self {
        BinarySearchConfig {
            tolerance: 1.0,
            max_iterations: 128,
        }
    }
}

/// How a binary-search heuristic orders candidate machines for a task.
trait MachinePriority {
    /// Returns the candidate machines for `task`, most preferred first.
    /// Only admissibility is pre-filtered; the period check is done by the
    /// caller.
    fn ordered_candidates(
        &self,
        state: &AssignmentState<'_>,
        task: TaskId,
        precomputed: &Precomputed,
    ) -> Vec<MachineId>;
}

/// Per-instance data computed once before the binary search.
struct Precomputed {
    /// `rank[task][machine]`: rank (0-based) of `w_{task,machine}` among all
    /// task times on that machine, ascending.
    rank: Vec<Vec<usize>>,
    /// Heterogeneity level of every machine.
    heterogeneity: Vec<f64>,
}

impl Precomputed {
    fn new(instance: &Instance) -> Self {
        let n = instance.task_count();
        let m = instance.machine_count();
        // Ranks: for each machine, sort tasks by processing time.
        let mut rank = vec![vec![0usize; m]; n];
        for machine in (0..m).map(MachineId) {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                instance
                    .time(TaskId(a), machine)
                    .partial_cmp(&instance.time(TaskId(b), machine))
                    .unwrap()
            });
            for (position, &task) in order.iter().enumerate() {
                rank[task][machine.index()] = position;
            }
        }
        let heterogeneity = instance.platform().heterogeneity_levels();
        Precomputed {
            rank,
            heterogeneity,
        }
    }
}

/// Runs one placement round at a fixed candidate period.
///
/// Returns the completed state if every task fits, `None` otherwise.
fn try_period<'a, P: MachinePriority>(
    instance: &'a Instance,
    priority: &P,
    precomputed: &Precomputed,
    period: f64,
) -> Option<AssignmentState<'a>> {
    let mut state = AssignmentState::new(instance);
    for task in state.backward_order() {
        let mut placed = false;
        for machine in priority.ordered_candidates(&state, task, precomputed) {
            if state.projected_load(task, machine) <= period + 1e-9 {
                state.assign(task, machine).ok()?;
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }
    Some(state)
}

/// Shared binary-search driver.
fn binary_search_map<P: MachinePriority>(
    instance: &Instance,
    priority: &P,
    config: BinarySearchConfig,
) -> HeuristicResult<Mapping> {
    let precomputed = Precomputed::new(instance);
    let mut min_period = 0.0f64;
    let mut max_period = instance.worst_case_period()?.value();

    // The upper bound is always achievable (see `Instance::worst_case_period`),
    // so seed the search with it to guarantee a mapping exists.
    let mut best = match try_period(instance, priority, &precomputed, max_period) {
        Some(state) => state.into_mapping()?,
        None => {
            // Only possible when the platform cannot host the application at
            // all (more types than machines); surface the dead end.
            let mut state = AssignmentState::new(instance);
            let order = state.backward_order();
            for task in order {
                let candidates = state.admissible_machines(task);
                match candidates.first() {
                    Some(&machine) => {
                        state.assign(task, machine)?;
                    }
                    None => {
                        return Err(crate::heuristic::HeuristicError::NoFeasibleAssignment {
                            task,
                            detail: "no admissible machine at the pessimistic period".into(),
                        })
                    }
                }
            }
            state.into_mapping()?
        }
    };

    let mut iterations = 0usize;
    while max_period - min_period > config.tolerance && iterations < config.max_iterations {
        iterations += 1;
        let current = min_period + (max_period - min_period) / 2.0;
        match try_period(instance, priority, &precomputed, current) {
            Some(state) => {
                max_period = current;
                best = state.into_mapping()?;
            }
            None => {
                min_period = current;
            }
        }
    }
    Ok(best)
}

/// H2: binary search with the *potential* (rank) priority order.
#[derive(Debug, Clone, Copy, Default)]
pub struct H2BinaryPotential {
    /// Binary-search parameters.
    pub config: BinarySearchConfig,
}

struct RankPriority;

impl MachinePriority for RankPriority {
    fn ordered_candidates(
        &self,
        state: &AssignmentState<'_>,
        task: TaskId,
        precomputed: &Precomputed,
    ) -> Vec<MachineId> {
        let instance = state.instance();
        let mut candidates = state.admissible_machines(task);
        candidates.sort_by(|&a, &b| {
            let ra = precomputed.rank[task.index()][a.index()];
            let rb = precomputed.rank[task.index()][b.index()];
            ra.cmp(&rb).then_with(|| {
                instance
                    .time(task, a)
                    .partial_cmp(&instance.time(task, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        });
        candidates
    }
}

impl Heuristic for H2BinaryPotential {
    fn name(&self) -> &str {
        "H2"
    }

    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        binary_search_map(instance, &RankPriority, self.config)
    }
}

/// H3: binary search with the *heterogeneity* priority order.
#[derive(Debug, Clone, Copy, Default)]
pub struct H3BinaryHeterogeneity {
    /// Binary-search parameters.
    pub config: BinarySearchConfig,
}

struct HeterogeneityPriority;

impl MachinePriority for HeterogeneityPriority {
    fn ordered_candidates(
        &self,
        state: &AssignmentState<'_>,
        task: TaskId,
        precomputed: &Precomputed,
    ) -> Vec<MachineId> {
        let mut candidates = state.admissible_machines(task);
        candidates.sort_by(|&a, &b| {
            precomputed.heterogeneity[b.index()]
                .partial_cmp(&precomputed.heterogeneity[a.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.index().cmp(&b.index()))
        });
        candidates
    }
}

impl Heuristic for H3BinaryHeterogeneity {
    fn name(&self) -> &str {
        "H3"
    }

    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        binary_search_map(instance, &HeterogeneityPriority, self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h1_random::H1Random;

    fn heterogeneous_instance(types: &[usize], m: usize, seed: u64) -> Instance {
        // Deterministic pseudo-random times in [100, 1000] and failures in
        // [0.005, 0.02], mimicking the paper's experimental draws.
        let app = Application::linear_chain(types).unwrap();
        let p = app.type_count();
        let n = types.len();
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let times = (0..p)
            .map(|_| (0..m).map(|_| 100.0 + 900.0 * next()).collect())
            .collect();
        let platform = Platform::from_type_times(m, times).unwrap();
        let failures = FailureModel::from_matrix(
            (0..n)
                .map(|_| (0..m).map(|_| 0.005 + 0.015 * next()).collect())
                .collect(),
            m,
        )
        .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn h2_and_h3_produce_valid_specialized_mappings() {
        let inst = heterogeneous_instance(&[0, 1, 2, 0, 1, 2, 0, 1, 2, 0], 6, 3);
        for heuristic in [
            &H2BinaryPotential::default() as &dyn Heuristic,
            &H3BinaryHeterogeneity::default(),
        ] {
            let mapping = heuristic.map(&inst).unwrap();
            assert!(
                inst.is_specialized(&mapping),
                "{} not specialized",
                heuristic.name()
            );
        }
    }

    #[test]
    fn binary_search_beats_the_random_heuristic_on_average() {
        let mut h2_wins = 0;
        for seed in 0..10 {
            let inst = heterogeneous_instance(&[0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1], 8, seed);
            let h2 = H2BinaryPotential::default().period(&inst).unwrap().value();
            let h1 = H1Random::new(seed).period(&inst).unwrap().value();
            if h2 <= h1 + 1e-9 {
                h2_wins += 1;
            }
        }
        assert!(
            h2_wins >= 7,
            "H2 should beat random on most instances, won {h2_wins}/10"
        );
    }

    #[test]
    fn tighter_tolerance_never_hurts() {
        let inst = heterogeneous_instance(&[0, 1, 2, 0, 1, 2, 0, 1], 5, 11);
        let coarse = H2BinaryPotential {
            config: BinarySearchConfig {
                tolerance: 500.0,
                max_iterations: 128,
            },
        };
        let fine = H2BinaryPotential {
            config: BinarySearchConfig {
                tolerance: 0.01,
                max_iterations: 256,
            },
        };
        let pc = coarse.period(&inst).unwrap().value();
        let pf = fine.period(&inst).unwrap().value();
        assert!(
            pf <= pc + 1e-6,
            "finer search {pf} should not be worse than coarse {pc}"
        );
    }

    #[test]
    fn homogeneous_platform_is_load_balanced() {
        // On a homogeneous failure-free platform with as many machines as
        // tasks of each type, the optimal period is one task per machine.
        let app = Application::linear_chain(&[0, 0, 0, 0]).unwrap();
        let platform = Platform::homogeneous(4, 1, 100.0).unwrap();
        let failures = FailureModel::uniform(4, 4, FailureRate::ZERO);
        let inst = Instance::new(app, platform, failures).unwrap();
        let mapping = H2BinaryPotential::default().map(&inst).unwrap();
        let period = inst.period(&mapping).unwrap().value();
        assert!(
            (period - 100.0).abs() < 1.5,
            "expected ~100 ms, got {period}"
        );
    }

    #[test]
    fn h3_prefers_heterogeneous_machines_first() {
        // Machine 0 is heterogeneous (good at type 0, bad at type 1); machine 1
        // is homogeneous. With a single type-0 task H3 must pick machine 0.
        let app = Application::linear_chain(&[0]).unwrap();
        let platform =
            Platform::from_type_times(2, vec![vec![100.0, 300.0], vec![900.0, 300.0]]).unwrap();
        let failures = FailureModel::uniform(1, 2, FailureRate::ZERO);
        let inst = Instance::new(app, platform, failures).unwrap();
        let mapping = H3BinaryHeterogeneity::default().map(&inst).unwrap();
        assert_eq!(mapping.machine_of(TaskId(0)), MachineId(0));
    }

    #[test]
    fn more_types_than_machines_fails_cleanly() {
        let inst = heterogeneous_instance(&[0, 1, 2, 3], 2, 5);
        assert!(H2BinaryPotential::default().map(&inst).is_err());
        assert!(H3BinaryHeterogeneity::default().map(&inst).is_err());
    }
}
