//! Shared scaffolding for the backward assignment heuristics.
//!
//! All six heuristics of the paper walk the application in reverse topological
//! order and place one task at a time. [`AssignmentState`] encapsulates the
//! bookkeeping they share:
//!
//! * which type each machine is already specialized to,
//! * the accumulated load `Σ xⱼ·w_{j,u}` of each machine,
//! * the exact product demand of every placed task (so the *output demand*
//!   `dᵢ` of the task being placed is always known),
//! * the reservation rule that keeps one free machine per still-unseated type,
//!   guaranteeing that a specialized mapping can always be completed when
//!   `m ≥ p`.

use crate::heuristic::{HeuristicError, HeuristicResult};
use mf_core::prelude::*;

/// Mutable state of a backward task-by-task assignment.
#[derive(Debug, Clone)]
pub struct AssignmentState<'a> {
    instance: &'a Instance,
    assignment: Vec<Option<MachineId>>,
    /// Start demand `xᵢ` of every already-placed task.
    demand: Vec<f64>,
    /// Type each machine is specialized to (None = still free).
    machine_type: Vec<Option<TaskTypeId>>,
    /// Accumulated load `Σ xⱼ·w_{j,u}` of each machine.
    load: Vec<f64>,
    /// Number of machines with no assigned task.
    free_machines: usize,
    /// Number of unplaced tasks per type.
    remaining_per_type: Vec<usize>,
    /// Whether some machine is already dedicated to each type.
    seated: Vec<bool>,
    assigned_count: usize,
}

impl<'a> AssignmentState<'a> {
    /// Creates an empty assignment state for an instance.
    pub fn new(instance: &'a Instance) -> Self {
        let n = instance.task_count();
        let m = instance.machine_count();
        let p = instance.type_count();
        let mut remaining_per_type = vec![0usize; p];
        for task in instance.application().tasks() {
            remaining_per_type[task.ty.index()] += 1;
        }
        AssignmentState {
            instance,
            assignment: vec![None; n],
            demand: vec![0.0; n],
            machine_type: vec![None; m],
            load: vec![0.0; m],
            free_machines: m,
            remaining_per_type,
            seated: vec![false; p],
            assigned_count: 0,
        }
    }

    /// The instance being mapped.
    #[inline]
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }

    /// Tasks in the order the paper's heuristics visit them: from the last
    /// task of the application back to the first.
    pub fn backward_order(&self) -> Vec<TaskId> {
        self.instance.application().reverse_topological_order()
    }

    /// The *output demand* `dᵢ` of a task: the number of products it must
    /// deliver so that one product leaves the system. Requires the successor
    /// (if any) to be placed already, which the backward order guarantees.
    pub fn output_demand(&self, task: TaskId) -> f64 {
        match self.instance.application().successor(task) {
            None => 1.0,
            Some(succ) => {
                debug_assert!(
                    self.assignment[succ.index()].is_some(),
                    "successor {succ} must be placed before {task}"
                );
                self.demand[succ.index()]
            }
        }
    }

    /// The accumulated load of a machine.
    #[inline]
    pub fn load(&self, machine: MachineId) -> f64 {
        self.load[machine.index()]
    }

    /// The type a machine is specialized to, if any.
    #[inline]
    pub fn machine_type(&self, machine: MachineId) -> Option<TaskTypeId> {
        self.machine_type[machine.index()]
    }

    /// Number of machines that have no task yet.
    #[inline]
    pub fn free_machine_count(&self) -> usize {
        self.free_machines
    }

    /// Number of types that still have unplaced tasks but no dedicated machine.
    pub fn unseated_type_count(&self) -> usize {
        self.remaining_per_type
            .iter()
            .zip(&self.seated)
            .filter(|(&remaining, &seated)| remaining > 0 && !seated)
            .count()
    }

    /// The exact additional load machine `u` would receive if `task` were
    /// placed on it: `dᵢ · w_{i,u} / (1 − f_{i,u})`.
    #[inline]
    pub fn incremental_load(&self, task: TaskId, machine: MachineId) -> f64 {
        self.output_demand(task) * self.instance.effective_time(task, machine)
    }

    /// The load machine `u` would have after placing `task` on it.
    #[inline]
    pub fn projected_load(&self, task: TaskId, machine: MachineId) -> f64 {
        self.load(machine) + self.incremental_load(task, machine)
    }

    /// Whether `machine` may host `task` under the specialization rule *and*
    /// the reservation rule.
    ///
    /// * A machine dedicated to the task's type is always admissible.
    /// * A machine dedicated to another type never is.
    /// * A free machine is admissible unless opening it would leave fewer free
    ///   machines than types that still need one.
    pub fn is_admissible(&self, task: TaskId, machine: MachineId) -> bool {
        let ty = self.instance.application().task_type(task);
        match self.machine_type[machine.index()] {
            Some(existing) => existing == ty,
            None => {
                if self.seated[ty.index()] {
                    // Opening a second machine for an already-seated type
                    // consumes a free machine without reducing the number of
                    // unseated types.
                    self.free_machines > self.unseated_type_count()
                } else {
                    true
                }
            }
        }
    }

    /// All admissible machines for a task, in machine-index order.
    pub fn admissible_machines(&self, task: TaskId) -> Vec<MachineId> {
        self.instance
            .platform()
            .machines()
            .filter(|&u| self.is_admissible(task, u))
            .collect()
    }

    /// Places `task` on `machine`, updating demands, loads and specialization.
    ///
    /// Returns the start demand `xᵢ` the task received.
    pub fn assign(&mut self, task: TaskId, machine: MachineId) -> HeuristicResult<f64> {
        if self.assignment[task.index()].is_some() {
            return Err(HeuristicError::Model(ModelError::RuleViolation {
                kind: MappingKind::General,
                detail: format!("task {task} assigned twice"),
            }));
        }
        let ty = self.instance.application().task_type(task);
        if let Some(existing) = self.machine_type[machine.index()] {
            if existing != ty {
                return Err(HeuristicError::Model(ModelError::RuleViolation {
                    kind: MappingKind::Specialized,
                    detail: format!("machine {machine} is dedicated to {existing}, not {ty}"),
                }));
            }
        } else {
            self.machine_type[machine.index()] = Some(ty);
            self.free_machines -= 1;
            self.seated[ty.index()] = true;
        }
        let x = self.output_demand(task) * self.instance.factor(task, machine);
        self.demand[task.index()] = x;
        self.load[machine.index()] += x * self.instance.time(task, machine);
        self.assignment[task.index()] = Some(machine);
        self.remaining_per_type[ty.index()] -= 1;
        self.assigned_count += 1;
        Ok(x)
    }

    /// `true` once every task has been placed.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.assigned_count == self.instance.task_count()
    }

    /// The largest machine load so far (the period of the partial mapping).
    pub fn max_load(&self) -> f64 {
        self.load.iter().copied().fold(0.0, f64::max)
    }

    /// Finalises the assignment into a [`Mapping`].
    pub fn into_mapping(self) -> HeuristicResult<Mapping> {
        let mut assignment = Vec::with_capacity(self.assignment.len());
        for (i, slot) in self.assignment.iter().enumerate() {
            match slot {
                Some(machine) => assignment.push(*machine),
                None => {
                    return Err(HeuristicError::NoFeasibleAssignment {
                        task: TaskId(i),
                        detail: "task left unplaced".into(),
                    })
                }
            }
        }
        Ok(Mapping::new(assignment, self.instance.machine_count())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(n_types: &[usize], m: usize, f: f64) -> Instance {
        let app = Application::linear_chain(n_types).unwrap();
        let p = app.type_count();
        let platform = Platform::from_type_times(m, vec![vec![100.0; m]; p]).unwrap();
        let failures = FailureModel::uniform(n_types.len(), m, FailureRate::new(f).unwrap());
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn backward_order_visits_successors_first() {
        let inst = instance(&[0, 1, 0], 3, 0.0);
        let state = AssignmentState::new(&inst);
        let order = state.backward_order();
        assert_eq!(order, vec![TaskId(2), TaskId(1), TaskId(0)]);
    }

    #[test]
    fn demands_accumulate_backwards() {
        let inst = instance(&[0, 0, 0], 2, 0.5);
        let mut state = AssignmentState::new(&inst);
        // Last task: output demand 1, start demand 2.
        assert_eq!(state.output_demand(TaskId(2)), 1.0);
        let x = state.assign(TaskId(2), MachineId(0)).unwrap();
        assert_eq!(x, 2.0);
        // Middle task sees the downstream demand.
        assert_eq!(state.output_demand(TaskId(1)), 2.0);
        assert_eq!(
            state.incremental_load(TaskId(1), MachineId(0)),
            2.0 * 100.0 * 2.0
        );
        let x = state.assign(TaskId(1), MachineId(0)).unwrap();
        assert_eq!(x, 4.0);
        assert_eq!(state.output_demand(TaskId(0)), 4.0);
        // Load of machine 0: 2*100 + 4*100.
        assert_eq!(state.load(MachineId(0)), 600.0);
        assert_eq!(state.max_load(), 600.0);
    }

    #[test]
    fn specialization_is_enforced() {
        let inst = instance(&[0, 1], 2, 0.0);
        let mut state = AssignmentState::new(&inst);
        state.assign(TaskId(1), MachineId(0)).unwrap();
        assert_eq!(state.machine_type(MachineId(0)), Some(TaskTypeId(1)));
        // Machine 0 is now dedicated to type 1; task 0 has type 0.
        assert!(!state.is_admissible(TaskId(0), MachineId(0)));
        assert!(state.is_admissible(TaskId(0), MachineId(1)));
        let err = state.assign(TaskId(0), MachineId(0)).unwrap_err();
        assert!(matches!(
            err,
            HeuristicError::Model(ModelError::RuleViolation { .. })
        ));
    }

    #[test]
    fn reservation_rule_protects_unseated_types() {
        // Chain of 4 tasks: last three of type 0, first of type 1, 2 machines.
        let inst = instance(&[1, 0, 0, 0], 2, 0.0);
        let mut state = AssignmentState::new(&inst);
        // Place the three type-0 tasks (visited first backwards).
        state.assign(TaskId(3), MachineId(0)).unwrap();
        // Machine 1 is the only free machine left and type 1 is unseated:
        // a second type-0 machine must not be opened.
        assert!(state.is_admissible(TaskId(2), MachineId(0)));
        assert!(!state.is_admissible(TaskId(2), MachineId(1)));
        state.assign(TaskId(2), MachineId(0)).unwrap();
        state.assign(TaskId(1), MachineId(0)).unwrap();
        // Finally the type-1 task can use the reserved machine.
        assert!(state.is_admissible(TaskId(0), MachineId(1)));
        state.assign(TaskId(0), MachineId(1)).unwrap();
        assert!(state.is_complete());
        let mapping = state.into_mapping().unwrap();
        assert!(inst.is_specialized(&mapping));
    }

    #[test]
    fn admissible_machines_lists_all_options() {
        let inst = instance(&[0, 0], 3, 0.0);
        let state = AssignmentState::new(&inst);
        assert_eq!(
            state.admissible_machines(TaskId(1)),
            vec![MachineId(0), MachineId(1), MachineId(2)]
        );
        assert_eq!(state.free_machine_count(), 3);
        assert_eq!(state.unseated_type_count(), 1);
    }

    #[test]
    fn double_assignment_is_rejected() {
        let inst = instance(&[0, 0], 2, 0.0);
        let mut state = AssignmentState::new(&inst);
        state.assign(TaskId(1), MachineId(0)).unwrap();
        assert!(state.assign(TaskId(1), MachineId(1)).is_err());
    }

    #[test]
    fn incomplete_assignment_cannot_become_a_mapping() {
        let inst = instance(&[0, 0], 2, 0.0);
        let mut state = AssignmentState::new(&inst);
        state.assign(TaskId(1), MachineId(0)).unwrap();
        assert!(!state.is_complete());
        let err = state.into_mapping().unwrap_err();
        assert!(matches!(
            err,
            HeuristicError::NoFeasibleAssignment {
                task: TaskId(0),
                ..
            }
        ));
    }

    #[test]
    fn projected_load_matches_final_period() {
        let inst = instance(&[0, 1, 0], 3, 0.1);
        let mut state = AssignmentState::new(&inst);
        for task in state.backward_order() {
            let machine = state.admissible_machines(task)[0];
            let projected = state.projected_load(task, machine);
            state.assign(task, machine).unwrap();
            assert!((state.load(machine) - projected).abs() < 1e-9);
        }
        let max_load = state.max_load();
        let mapping = state.into_mapping().unwrap();
        let period = inst.period(&mapping).unwrap();
        assert!((period.value() - max_load).abs() < 1e-9);
    }
}
