//! H1 — the random heuristic (paper Algorithm 1).
//!
//! Each task is placed on a machine chosen at random among the admissible
//! ones: a machine already dedicated to the task's type, or a free machine if
//! opening one does not endanger the still-unseated types (the
//! `nbFreeMachines > nbTypesToGo` test of the pseudo-code). H1 pays no
//! attention to processing times or failure rates, which is why the paper uses
//! it as the "anything better than random?" reference.

use crate::context::AssignmentState;
use crate::heuristic::{Heuristic, HeuristicError, HeuristicResult};
use mf_core::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The random heuristic H1.
#[derive(Debug, Clone)]
pub struct H1Random {
    seed: u64,
}

impl H1Random {
    /// Creates the heuristic with a seed (mappings are reproducible for a
    /// given seed and instance).
    pub fn new(seed: u64) -> Self {
        H1Random { seed }
    }
}

impl Default for H1Random {
    fn default() -> Self {
        H1Random::new(0xB105_F00D)
    }
}

impl Heuristic for H1Random {
    fn name(&self) -> &str {
        "H1"
    }

    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut state = AssignmentState::new(instance);
        for task in state.backward_order() {
            let ty = instance.application().task_type(task);
            // Following Algorithm 1: prefer opening a new group (machine) when
            // there is slack, otherwise reuse an existing group of the type.
            let dedicated: Vec<MachineId> = state
                .admissible_machines(task)
                .into_iter()
                .filter(|&u| state.machine_type(u) == Some(ty))
                .collect();
            let free: Vec<MachineId> = state
                .admissible_machines(task)
                .into_iter()
                .filter(|&u| state.machine_type(u).is_none())
                .collect();
            let choice = if dedicated.is_empty() {
                free.choose(&mut rng).copied()
            } else if !free.is_empty() && rng.gen_bool(0.5) {
                // The pseudo-code opens a new group whenever
                // nbFreeMachines > nbTypesToGo; drawing at random between
                // "new group" and "existing group" keeps the same admissible
                // set while exploring both branches.
                free.choose(&mut rng).copied()
            } else {
                dedicated.choose(&mut rng).copied()
            };
            match choice {
                Some(machine) => {
                    state.assign(task, machine)?;
                }
                None => {
                    return Err(HeuristicError::NoFeasibleAssignment {
                        task,
                        detail: format!(
                            "no admissible machine (free: {}, unseated types: {})",
                            state.free_machine_count(),
                            state.unseated_type_count()
                        ),
                    })
                }
            }
        }
        state.into_mapping()
    }
}

// `rng.gen_bool` needs the Rng trait in scope.
use rand::Rng;

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(types: &[usize], m: usize) -> Instance {
        let app = Application::linear_chain(types).unwrap();
        let p = app.type_count();
        let platform = Platform::from_type_times(
            m,
            (0..p)
                .map(|t| (0..m).map(|u| 100.0 + (t * m + u) as f64).collect())
                .collect(),
        )
        .unwrap();
        let failures = FailureModel::uniform(types.len(), m, FailureRate::new(0.01).unwrap());
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn produces_valid_specialized_mappings() {
        let inst = instance(&[0, 1, 2, 0, 1, 2, 0, 1], 5);
        for seed in 0..20 {
            let mapping = H1Random::new(seed).map(&inst).unwrap();
            assert!(inst.is_specialized(&mapping));
            assert_eq!(mapping.task_count(), 8);
        }
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let inst = instance(&[0, 1, 0, 1, 0], 4);
        let a = H1Random::new(7).map(&inst).unwrap();
        let b = H1Random::new(7).map(&inst).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_explore_different_mappings() {
        let inst = instance(&[0, 1, 0, 1, 0, 1, 0, 1], 6);
        let mappings: Vec<_> = (0..10)
            .map(|s| H1Random::new(s).map(&inst).unwrap())
            .collect();
        let distinct = mappings
            .iter()
            .map(|m| m.as_slice().to_vec())
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(
            distinct > 1,
            "ten seeds should not all give the same mapping"
        );
    }

    #[test]
    fn works_when_machines_equal_types() {
        // m == p: every type gets exactly one machine.
        let inst = instance(&[0, 1, 2, 0, 1, 2], 3);
        let mapping = H1Random::default().map(&inst).unwrap();
        assert!(inst.is_specialized(&mapping));
        assert_eq!(mapping.used_machines().len(), 3);
    }

    #[test]
    fn fails_cleanly_when_types_exceed_machines() {
        let inst = instance(&[0, 1, 2], 2);
        let err = H1Random::default().map(&inst).unwrap_err();
        assert!(matches!(err, HeuristicError::NoFeasibleAssignment { .. }));
    }
}
