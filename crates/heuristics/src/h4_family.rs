//! The greedy H4 family (paper Algorithms 4, 5 and 6).
//!
//! All three heuristics walk the application backwards and place each task on
//! the admissible machine with the smallest *score*; they differ only in the
//! score:
//!
//! * **H4 — best performance**: the machine's load after the assignment,
//!   including the failure inflation
//!   (`accuᵤ + dᵢ·w_{i,u}/(1 − f_{i,u})`);
//! * **H4w — fastest machine**: the same load but ignoring the failure rate
//!   (`accuᵤ + dᵢ·w_{i,u}`);
//! * **H4f — reliable machine**: reliability only, ignoring the speed
//!   (`accuᵤ + dᵢ/(1 − f_{i,u})` — among equally loaded machines this picks
//!   the most reliable one, and it may well pick an arbitrarily slow machine,
//!   which is exactly the weakness the paper reports for it).
//!
//! §6.2 of the paper describes H4's score verbally as `wᵢᵤ · fᵢᵤ · xᵢ` while
//! the pseudo-code uses a symbol `F(i,u)`; this crate exposes both readings
//! through [`ScoringRule`] (`RawFailureWeight` / `RawReliabilityWeight` are the
//! literal-prose variants) and uses the failure-factor reading by default,
//! which makes H4's score the exact incremental period. The ablation bench
//! `ablation_scoring` compares the two.

use crate::context::AssignmentState;
use crate::heuristic::{Heuristic, HeuristicError, HeuristicResult};
use mf_core::prelude::*;

/// The scoring rule used by a greedy heuristic of the H4 family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoringRule {
    /// `accuᵤ + dᵢ · w_{i,u} / (1 − f_{i,u})` — exact incremental period (H4).
    BestPerformance,
    /// `accuᵤ + dᵢ · w_{i,u}` — speed only (H4w).
    FastestMachine,
    /// `accuᵤ + dᵢ / (1 − f_{i,u})` — reliability only (H4f).
    ReliableMachine,
    /// `accuᵤ + dᵢ · w_{i,u} · f_{i,u}` — literal reading of the §6.2 prose
    /// for H4 (ablation variant).
    RawFailureWeight,
    /// `accuᵤ + dᵢ · f_{i,u}` — literal reading of the §6.2 prose for H4f
    /// (ablation variant).
    RawReliabilityWeight,
}

impl ScoringRule {
    /// The score of placing `task` on `machine` given the current state.
    pub fn score(self, state: &AssignmentState<'_>, task: TaskId, machine: MachineId) -> f64 {
        let instance = state.instance();
        let accu = state.load(machine);
        let demand = state.output_demand(task);
        match self {
            ScoringRule::BestPerformance => {
                accu + demand * instance.time(task, machine) * instance.factor(task, machine)
            }
            ScoringRule::FastestMachine => accu + demand * instance.time(task, machine),
            ScoringRule::ReliableMachine => accu + demand * instance.factor(task, machine),
            ScoringRule::RawFailureWeight => {
                accu + demand
                    * instance.time(task, machine)
                    * instance.failure(task, machine).value()
            }
            ScoringRule::RawReliabilityWeight => {
                accu + demand * instance.failure(task, machine).value()
            }
        }
    }
}

/// A greedy backward heuristic parameterised by its scoring rule.
#[derive(Debug, Clone, Copy)]
pub struct GreedyHeuristic {
    name: &'static str,
    rule: ScoringRule,
}

impl GreedyHeuristic {
    /// Creates a greedy heuristic with an arbitrary name and scoring rule
    /// (used by the ablation benches).
    pub fn new(name: &'static str, rule: ScoringRule) -> Self {
        GreedyHeuristic { name, rule }
    }

    /// The scoring rule in use.
    pub fn rule(&self) -> ScoringRule {
        self.rule
    }
}

impl Heuristic for GreedyHeuristic {
    fn name(&self) -> &str {
        self.name
    }

    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        let mut state = AssignmentState::new(instance);
        for task in state.backward_order() {
            let candidates = state.admissible_machines(task);
            let best = candidates
                .into_iter()
                .map(|u| (u, self.rule.score(&state, task, u)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            match best {
                Some((machine, _)) => {
                    state.assign(task, machine)?;
                }
                None => {
                    return Err(HeuristicError::NoFeasibleAssignment {
                        task,
                        detail: "all machines are dedicated to other types".into(),
                    })
                }
            }
        }
        state.into_mapping()
    }
}

/// H4 — best-performance greedy heuristic.
#[derive(Debug, Clone, Copy, Default)]
pub struct H4BestPerformance;

impl Heuristic for H4BestPerformance {
    fn name(&self) -> &str {
        "H4"
    }
    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        GreedyHeuristic::new("H4", ScoringRule::BestPerformance).map(instance)
    }
}

/// H4w — fastest-machine greedy heuristic (ignores failures).
#[derive(Debug, Clone, Copy, Default)]
pub struct H4wFastestMachine;

impl Heuristic for H4wFastestMachine {
    fn name(&self) -> &str {
        "H4w"
    }
    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        GreedyHeuristic::new("H4w", ScoringRule::FastestMachine).map(instance)
    }
}

/// H4f — reliable-machine greedy heuristic (ignores speed).
#[derive(Debug, Clone, Copy, Default)]
pub struct H4fReliableMachine;

impl Heuristic for H4fReliableMachine {
    fn name(&self) -> &str {
        "H4f"
    }
    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        GreedyHeuristic::new("H4f", ScoringRule::ReliableMachine).map(instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(types: &[usize], type_times: Vec<Vec<f64>>, failures: Vec<Vec<f64>>) -> Instance {
        let m = type_times[0].len();
        let app = Application::linear_chain(types).unwrap();
        let platform = Platform::from_type_times(m, type_times).unwrap();
        let failures = FailureModel::from_matrix(failures, m).unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn h4w_picks_the_fastest_machine_for_a_single_task() {
        let inst = instance(
            &[0],
            vec![vec![500.0, 100.0, 300.0]],
            vec![vec![0.0, 0.3, 0.0]],
        );
        let mapping = H4wFastestMachine.map(&inst).unwrap();
        // Fastest machine is M1 even though it fails 30% of the time.
        assert_eq!(mapping.machine_of(TaskId(0)), MachineId(1));
    }

    #[test]
    fn h4_accounts_for_failures() {
        // M1 is nominally faster (100 ms) but fails half the time, so its
        // effective time is 200 ms; M2 takes 150 ms and never fails.
        let inst = instance(
            &[0],
            vec![vec![500.0, 100.0, 150.0]],
            vec![vec![0.0, 0.5, 0.0]],
        );
        let mapping = H4BestPerformance.map(&inst).unwrap();
        assert_eq!(mapping.machine_of(TaskId(0)), MachineId(2));
        // H4w, blind to failures, still picks M1.
        let mapping = H4wFastestMachine.map(&inst).unwrap();
        assert_eq!(mapping.machine_of(TaskId(0)), MachineId(1));
    }

    #[test]
    fn h4f_prefers_reliability_even_on_slow_machines() {
        // M0 is very slow but perfectly reliable; M1 is fast but failing.
        let inst = instance(&[0], vec![vec![1000.0, 100.0]], vec![vec![0.0, 0.1]]);
        let mapping = H4fReliableMachine.map(&inst).unwrap();
        assert_eq!(mapping.machine_of(TaskId(0)), MachineId(0));
        // Its period is therefore much worse than H4w's.
        let reliable = inst.period(&mapping).unwrap().value();
        let fast = H4wFastestMachine.period(&inst).unwrap().value();
        assert!(reliable > fast);
    }

    #[test]
    fn greedy_heuristics_balance_load_across_machines() {
        // Four identical type-0 tasks, two identical machines: a greedy that
        // tracks accumulated load must not put everything on one machine.
        let inst = instance(
            &[0, 0, 0, 0],
            vec![vec![100.0, 100.0]],
            vec![vec![0.0, 0.0]; 4],
        );
        for h in [
            &H4BestPerformance as &dyn Heuristic,
            &H4wFastestMachine,
            &H4fReliableMachine,
        ] {
            let mapping = h.map(&inst).unwrap();
            let periods = inst.machine_periods(&mapping).unwrap();
            assert_eq!(periods.of(MachineId(0)).value(), 200.0, "{}", h.name());
            assert_eq!(periods.of(MachineId(1)).value(), 200.0, "{}", h.name());
        }
    }

    #[test]
    fn specialization_is_respected_under_pressure() {
        // Two types, two machines: the reservation rule must force the type
        // seen second (backwards) onto the remaining machine.
        let inst = instance(
            &[1, 0, 0, 0],
            vec![vec![100.0, 100.0], vec![100.0, 100.0]],
            vec![vec![0.01, 0.01]; 4],
        );
        for h in [
            &H4BestPerformance as &dyn Heuristic,
            &H4wFastestMachine,
            &H4fReliableMachine,
        ] {
            let mapping = h.map(&inst).unwrap();
            assert!(inst.is_specialized(&mapping), "{}", h.name());
        }
    }

    #[test]
    fn raw_scoring_rules_are_available_for_ablation() {
        let inst = instance(
            &[0, 1, 0, 1],
            vec![vec![100.0, 300.0, 200.0], vec![250.0, 150.0, 200.0]],
            vec![vec![0.01, 0.02, 0.005]; 4],
        );
        let literal = GreedyHeuristic::new("H4-raw", ScoringRule::RawFailureWeight);
        let mapping = literal.map(&inst).unwrap();
        assert!(inst.is_specialized(&mapping));
        assert_eq!(literal.rule(), ScoringRule::RawFailureWeight);
        let literal_f = GreedyHeuristic::new("H4f-raw", ScoringRule::RawReliabilityWeight);
        assert!(inst.is_specialized(&literal_f.map(&inst).unwrap()));
    }

    #[test]
    fn too_many_types_fails_cleanly() {
        let inst = instance(
            &[0, 1, 2],
            vec![vec![100.0], vec![100.0], vec![100.0]],
            vec![vec![0.0]; 3],
        );
        assert!(matches!(
            H4wFastestMachine.map(&inst).unwrap_err(),
            HeuristicError::NoFeasibleAssignment { .. }
        ));
    }

    #[test]
    fn scores_match_their_definitions() {
        let inst = instance(&[0, 0], vec![vec![100.0, 200.0]], vec![vec![0.5, 0.0]; 2]);
        let mut state = AssignmentState::new(&inst);
        // Place the last task on M0 so loads and demands are non-trivial.
        state.assign(TaskId(1), MachineId(0)).unwrap();
        let accu = state.load(MachineId(0));
        let d = state.output_demand(TaskId(0)); // = 2.0 (downstream on M0, f=0.5)
        assert_eq!(d, 2.0);
        let s_perf = ScoringRule::BestPerformance.score(&state, TaskId(0), MachineId(0));
        assert!((s_perf - (accu + d * 100.0 * 2.0)).abs() < 1e-9);
        let s_fast = ScoringRule::FastestMachine.score(&state, TaskId(0), MachineId(0));
        assert!((s_fast - (accu + d * 100.0)).abs() < 1e-9);
        let s_rel = ScoringRule::ReliableMachine.score(&state, TaskId(0), MachineId(0));
        assert!((s_rel - (accu + d * 2.0)).abs() < 1e-9);
        let s_raw = ScoringRule::RawFailureWeight.score(&state, TaskId(0), MachineId(0));
        assert!((s_raw - (accu + d * 100.0 * 0.5)).abs() < 1e-9);
        let s_raw_f = ScoringRule::RawReliabilityWeight.score(&state, TaskId(0), MachineId(0));
        assert!((s_raw_f - (accu + d * 0.5)).abs() < 1e-9);
    }
}
