//! H5 — workload splitting, the paper's future-work extension (§8).
//!
//! The conclusion of the paper proposes letting the instances of one task be
//! processed by *several* machines, dividing its workload to improve the
//! throughput. This module implements that idea on top of any specialized
//! mapping:
//!
//! 1. a base heuristic (H4w by default) fixes the machine specializations —
//!    which machines are dedicated to which task type;
//! 2. walking the application backwards, every task's output demand is split
//!    across the machines dedicated to its type by *water-filling*: fractions
//!    are chosen so that the resulting machine loads are as equal as possible,
//!    accounting for each machine's effective time `w_{i,u}/(1 − f_{i,u})`.
//!
//! The resulting [`SplitMapping`] never has a larger period than the base
//! mapping (splitting strictly generalises it), and on heterogeneous platforms
//! it is often substantially better — quantifying how much the future-work
//! extension would buy.

use crate::h4_family::H4wFastestMachine;
use crate::heuristic::{Heuristic, HeuristicError, HeuristicResult};
use mf_core::prelude::*;

/// Workload-splitting optimiser built on top of a base specialized mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct H5WorkloadSplit;

impl H5WorkloadSplit {
    /// Splits the workload starting from the H4w base mapping.
    pub fn split(&self, instance: &Instance) -> HeuristicResult<SplitMapping> {
        let base = H4wFastestMachine.map(instance)?;
        self.split_from(instance, &base)
    }

    /// Splits the workload starting from an explicit base specialized mapping.
    pub fn split_from(&self, instance: &Instance, base: &Mapping) -> HeuristicResult<SplitMapping> {
        instance.validate_mapping(base, MappingKind::Specialized)?;
        let app = instance.application();
        let n = instance.task_count();
        let m = instance.machine_count();

        // Machines dedicated to each type by the base mapping.
        let specializations = base.machine_specializations(app)?;
        let mut machines_of_type: Vec<Vec<MachineId>> = vec![Vec::new(); instance.type_count()];
        for (u, spec) in specializations.iter().enumerate() {
            if let Some(ty) = spec {
                machines_of_type[ty.index()].push(MachineId(u));
            }
        }

        let mut weights = vec![vec![0.0f64; m]; n];
        let mut loads = vec![0.0f64; m];
        let mut total_started = vec![0.0f64; n];

        for &task in app.topological_order().iter().rev() {
            let demand = match app.successor(task) {
                None => 1.0,
                Some(succ) => total_started[succ.index()],
            };
            let ty = app.task_type(task);
            let candidates = &machines_of_type[ty.index()];
            if candidates.is_empty() {
                return Err(HeuristicError::NoFeasibleAssignment {
                    task,
                    detail: format!("no machine dedicated to {ty} in the base mapping"),
                });
            }
            let fractions = water_fill(
                &candidates
                    .iter()
                    .map(|&u| (loads[u.index()], demand * instance.effective_time(task, u)))
                    .collect::<Vec<_>>(),
            );
            let mut started_total = 0.0;
            for (&machine, &fraction) in candidates.iter().zip(&fractions) {
                if fraction <= 0.0 {
                    continue;
                }
                weights[task.index()][machine.index()] = fraction;
                let started = fraction * demand * instance.factor(task, machine);
                started_total += started;
                loads[machine.index()] += started * instance.time(task, machine);
            }
            total_started[task.index()] = started_total;
        }

        Ok(SplitMapping::new(weights, m)?)
    }

    /// Convenience: the period achieved by the split mapping.
    pub fn period(&self, instance: &Instance) -> HeuristicResult<Period> {
        let split = self.split(instance)?;
        Ok(split.period(instance)?)
    }
}

/// Distributes one unit of work over machines described by
/// `(current_load, cost_of_taking_everything)` pairs so that the maximum
/// resulting load is minimal. Returns the fraction given to each machine.
///
/// Machine `u` taking fraction `α` ends at load `load_u + α·cost_u`; the
/// optimal fractions equalise the final loads of every machine that receives
/// work (water-filling). The common level is found by bisection.
fn water_fill(machines: &[(f64, f64)]) -> Vec<f64> {
    debug_assert!(!machines.is_empty());
    if machines.len() == 1 {
        return vec![1.0];
    }
    let fractions_at_level = |level: f64| -> f64 {
        machines
            .iter()
            .map(|&(load, cost)| ((level - load) / cost).max(0.0))
            .sum::<f64>()
    };
    // The level lies between the smallest current load and the load reached by
    // dumping everything on the currently least-loaded machine.
    let min_load = machines
        .iter()
        .map(|&(l, _)| l)
        .fold(f64::INFINITY, f64::min);
    let mut hi = machines
        .iter()
        .map(|&(l, c)| l + c)
        .fold(f64::NEG_INFINITY, f64::max)
        .max(min_load + 1e-12);
    let mut lo = min_load;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if fractions_at_level(mid) >= 1.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let level = hi;
    let mut fractions: Vec<f64> = machines
        .iter()
        .map(|&(load, cost)| ((level - load) / cost).max(0.0))
        .collect();
    // Normalise the tiny bisection residue so the fractions sum to exactly 1.
    let sum: f64 = fractions.iter().sum();
    if sum > 0.0 {
        for f in &mut fractions {
            *f /= sum;
        }
    } else {
        fractions[0] = 1.0;
    }
    fractions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::Heuristic;

    fn instance(types: &[usize], type_times: Vec<Vec<f64>>, f: f64) -> Instance {
        let m = type_times[0].len();
        let app = Application::linear_chain(types).unwrap();
        let platform = Platform::from_type_times(m, type_times).unwrap();
        let failures = FailureModel::uniform(types.len(), m, FailureRate::new(f).unwrap());
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn water_fill_balances_two_equal_machines() {
        let fractions = water_fill(&[(0.0, 100.0), (0.0, 100.0)]);
        assert!((fractions[0] - 0.5).abs() < 1e-6);
        assert!((fractions[1] - 0.5).abs() < 1e-6);
        assert!((fractions.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn water_fill_prefers_the_cheaper_machine() {
        // Machine 0 is twice as fast: it should take two thirds of the work.
        let fractions = water_fill(&[(0.0, 100.0), (0.0, 200.0)]);
        assert!((fractions[0] - 2.0 / 3.0).abs() < 1e-6);
        assert!((fractions[1] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn water_fill_skips_overloaded_machines() {
        // Machine 1 is already far more loaded than machine 0 can ever become.
        let fractions = water_fill(&[(0.0, 100.0), (1000.0, 100.0)]);
        assert!(fractions[0] > 0.999);
        assert!(fractions[1] < 1e-3);
    }

    #[test]
    fn split_never_worse_than_the_base_mapping() {
        for seed in 0..5u64 {
            // Deterministic heterogeneous platform.
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                100.0 + 900.0 * ((s >> 11) as f64 / (1u64 << 53) as f64)
            };
            let types: Vec<usize> = (0..12).map(|i| i % 3).collect();
            let inst = instance(
                &types,
                (0..3).map(|_| (0..6).map(|_| next()).collect()).collect(),
                0.01,
            );
            let base = H4wFastestMachine.map(&inst).unwrap();
            let base_period = inst.period(&base).unwrap().value();
            let split = H5WorkloadSplit.split_from(&inst, &base).unwrap();
            let split_period = split.period(&inst).unwrap().value();
            assert!(
                split_period <= base_period + 1e-6,
                "seed {seed}: split {split_period} worse than base {base_period}"
            );
            assert!(split.is_specialized(inst.application()));
        }
    }

    #[test]
    fn splitting_helps_when_one_machine_carries_everything() {
        // Three identical tasks of one type, two identical machines, but the
        // base (one machine per task group) degenerates: force a base mapping
        // that puts everything on machine 0 and check splitting halves it.
        let inst = instance(&[0, 0, 0], vec![vec![100.0, 100.0]], 0.0);
        let base = Mapping::from_indices(&[0, 0, 0], 2).unwrap();
        let base_period = inst.period(&base).unwrap().value();
        assert_eq!(base_period, 300.0);
        let split = H5WorkloadSplit.split_from(&inst, &base).unwrap();
        // Only machine 0 is dedicated to type 0 in the base mapping, so the
        // split cannot use machine 1: the period is unchanged. This documents
        // that H5 refines *within* the base specialization.
        assert!((split.period(&inst).unwrap().value() - 300.0).abs() < 1e-9);

        // With a base mapping that opens both machines, splitting balances
        // the three tasks perfectly (150 ms each).
        let base = Mapping::from_indices(&[0, 1, 0], 2).unwrap();
        let split = H5WorkloadSplit.split_from(&inst, &base).unwrap();
        assert!((split.period(&inst).unwrap().value() - 150.0).abs() < 1e-6);
    }

    #[test]
    fn default_entry_point_uses_h4w_as_base() {
        let inst = instance(
            &[0, 1, 0, 1, 0, 1],
            vec![
                vec![100.0, 150.0, 300.0, 250.0],
                vec![200.0, 120.0, 180.0, 260.0],
            ],
            0.01,
        );
        let h4w = H4wFastestMachine.period(&inst).unwrap().value();
        let h5 = H5WorkloadSplit.period(&inst).unwrap().value();
        assert!(h5 <= h4w + 1e-6);
    }

    #[test]
    fn base_mapping_must_be_specialized() {
        let inst = instance(&[0, 1], vec![vec![100.0, 100.0], vec![100.0, 100.0]], 0.0);
        let general = Mapping::from_indices(&[0, 0], 2).unwrap();
        assert!(H5WorkloadSplit.split_from(&inst, &general).is_err());
    }
}
