//! H6 — local-search refinement of a constructive heuristic's mapping.
//!
//! The paper's six heuristics build one mapping and stop. H6 takes any of
//! them as a *seed* and polishes it with the
//! [`AnnealedClimb`](crate::search::AnnealedClimb) strategy on the shared
//! [`SearchEngine`](crate::search::SearchEngine): seeded stochastic hill
//! climbing (with optional simulated annealing) over the move/swap
//! neighborhoods, scored incrementally so one proposal costs
//! `O(affected tasks + log m)` instead of the `O(n·m)` full recompute a naive
//! search would pay.
//!
//! When the seed mapping is specialized, every proposal is filtered through
//! the same type constraints the constructive heuristics enforce (a machine
//! executes tasks of at most one type), so the polished mapping stays
//! specialized. General seed mappings are polished without restriction.
//!
//! H6 never returns a worse mapping than its seed: the best assignment seen
//! (starting with the seed itself) is snapshotted by the engine and returned
//! at the end, even when annealing wandered uphill.
//!
//! This type predates the [`search`](crate::search) subsystem and is kept as
//! the stable entry point: for the same [`LocalSearchConfig`] it produces the
//! **bit-identical** mapping the pre-refactor monolithic loop did (pinned by
//! the `h6_regression` integration test).

use crate::heuristic::{parse_strategy_name, strategy_inner_heuristic, Heuristic, HeuristicResult};
use crate::search::{polish_with, polish_with_progress, AnnealedClimb};
use mf_core::prelude::*;
use mf_obs::ProgressSink;

pub use crate::search::annealed::LocalSearchConfig;

/// The H6 local-search heuristic: seed with an inner heuristic, then polish.
pub struct H6LocalSearch {
    inner: Box<dyn Heuristic + Send + Sync>,
    config: LocalSearchConfig,
    name: String,
}

impl H6LocalSearch {
    /// H6 over an explicit inner heuristic, named `H6-<inner>`.
    pub fn new(inner: Box<dyn Heuristic + Send + Sync>, config: LocalSearchConfig) -> Self {
        let name = format!("H6-{}", inner.name());
        H6LocalSearch {
            inner,
            config,
            name,
        }
    }

    /// Resolves a registry name: `"H6"` (H4w seed) or `"H6-<base>"` where
    /// `<base>` is one of the six paper heuristics. The inner heuristic's
    /// own randomness (H1) draws from a stream derived from `seed` with
    /// [`mf_core::seed::splitmix64`], decorrelated from H6's neighborhood
    /// stream — the same derivation every search-strategy registry name uses.
    pub fn by_registry_name(name: &str, seed: u64) -> Option<Self> {
        let (prefix, base) = parse_strategy_name(name)?;
        if prefix != "H6" {
            return None;
        }
        let inner = strategy_inner_heuristic(base, seed)?;
        let config = LocalSearchConfig {
            seed,
            ..LocalSearchConfig::default()
        };
        let mut h6 = Self::new(inner, config);
        h6.name = name.to_string();
        Some(h6)
    }

    /// The configuration in use.
    pub fn config(&self) -> &LocalSearchConfig {
        &self.config
    }

    /// Polishes an existing mapping without re-running the inner heuristic.
    ///
    /// The returned mapping's period is never worse than `mapping`'s, and a
    /// specialized `mapping` stays specialized.
    pub fn polish(
        instance: &Instance,
        mapping: &Mapping,
        config: &LocalSearchConfig,
    ) -> HeuristicResult<Mapping> {
        polish_with(
            instance,
            mapping,
            &AnnealedClimb::new(*config),
            config.max_steps,
        )
    }

    /// [`polish`](Self::polish), streaming progress events into `sink`.
    /// Bit-identical result — the sink observes, it never steers.
    pub fn polish_progress(
        instance: &Instance,
        mapping: &Mapping,
        config: &LocalSearchConfig,
        sink: &mut dyn ProgressSink,
    ) -> HeuristicResult<Mapping> {
        Ok(polish_with_progress(
            instance,
            mapping,
            &AnnealedClimb::new(*config),
            config.max_steps,
            sink,
        )?
        .0)
    }
}

impl Heuristic for H6LocalSearch {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        let seeded = self.inner.map(instance)?;
        Self::polish(instance, &seeded, &self.config)
    }

    fn map_with_progress(
        &self,
        instance: &Instance,
        sink: &mut dyn ProgressSink,
    ) -> HeuristicResult<Mapping> {
        let seeded = self.inner.map(instance)?;
        Self::polish_progress(instance, &seeded, &self.config, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h4_family::H4wFastestMachine;

    fn instance(types: &[usize], m: usize, seed: u64) -> Instance {
        let app = Application::linear_chain(types).unwrap();
        let p = app.type_count();
        let mut state = seed;
        let mut draw = |lo: f64, hi: f64| {
            state = mf_core::splitmix64(state);
            lo + (state >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        let platform = Platform::from_type_times(
            m,
            (0..p)
                .map(|_| (0..m).map(|_| draw(100.0, 1000.0)).collect())
                .collect(),
        )
        .unwrap();
        let failures = FailureModel::from_matrix(
            (0..types.len())
                .map(|_| (0..m).map(|_| draw(0.005, 0.05)).collect())
                .collect(),
            m,
        )
        .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn polishing_never_degrades_and_stays_specialized() {
        for seed in 0..8u64 {
            let inst = instance(&[0, 1, 0, 1, 0, 2, 1, 2, 0, 1], 5, 100 + seed);
            let seeded = H4wFastestMachine.map(&inst).unwrap();
            let seed_period = inst.period(&seeded).unwrap().value();
            let config = LocalSearchConfig {
                seed,
                ..LocalSearchConfig::default()
            };
            let polished = H6LocalSearch::polish(&inst, &seeded, &config).unwrap();
            let polished_period = inst.period(&polished).unwrap().value();
            assert!(
                polished_period <= seed_period + 1e-9,
                "seed {seed}: H6 degraded {seed_period} to {polished_period}"
            );
            assert!(inst.is_specialized(&polished), "seed {seed}");
        }
    }

    #[test]
    fn polishing_finds_an_obvious_improvement() {
        // Two same-type tasks stacked on a slow machine while a fast one
        // idles: one move fixes it, and H6 must find that move.
        let app = Application::linear_chain(&[0, 0]).unwrap();
        let platform = Platform::from_type_times(2, vec![vec![1000.0, 100.0]]).unwrap();
        let failures = FailureModel::uniform(2, 2, FailureRate::ZERO);
        let inst = Instance::new(app, platform, failures).unwrap();
        let bad = Mapping::from_indices(&[0, 0], 2).unwrap();
        let polished = H6LocalSearch::polish(&inst, &bad, &LocalSearchConfig::default()).unwrap();
        let period = inst.period(&polished).unwrap().value();
        // The seed stacks both tasks on the slow M0 (period 2·1000). The
        // optimum stacks both on the fast M1 (period 2·100 = 200) — spreading
        // them would leave the slow machine critical at 1000.
        assert!(
            period <= 200.0 + 1e-9,
            "H6 missed the improvement: period {period}"
        );
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let inst = instance(&[0, 1, 0, 1, 0, 1], 4, 7);
        let h6 = H6LocalSearch::by_registry_name("H6-H1", 99).unwrap();
        let a = h6.map(&inst).unwrap();
        let b = h6.map(&inst).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn registry_names_resolve() {
        assert_eq!(
            H6LocalSearch::by_registry_name("H6", 1).unwrap().name(),
            "H6"
        );
        assert_eq!(
            H6LocalSearch::by_registry_name("H6-H2", 1).unwrap().name(),
            "H6-H2"
        );
        assert!(H6LocalSearch::by_registry_name("H6-H9", 1).is_none());
        assert!(H6LocalSearch::by_registry_name("H6-H6", 1).is_none());
        assert!(H6LocalSearch::by_registry_name("H5", 1).is_none());
        // Other strategy prefixes resolve elsewhere, never to an H6.
        assert!(H6LocalSearch::by_registry_name("SD", 1).is_none());
        assert!(H6LocalSearch::by_registry_name("TS-H2", 1).is_none());
    }

    #[test]
    fn degenerate_platforms_return_the_seed_unchanged() {
        let app = Application::linear_chain(&[0, 0]).unwrap();
        let platform = Platform::from_type_times(1, vec![vec![100.0]]).unwrap();
        let failures = FailureModel::uniform(2, 1, FailureRate::ZERO);
        let inst = Instance::new(app, platform, failures).unwrap();
        let seed_mapping = Mapping::from_indices(&[0, 0], 1).unwrap();
        let polished =
            H6LocalSearch::polish(&inst, &seed_mapping, &LocalSearchConfig::default()).unwrap();
        assert_eq!(polished, seed_mapping);
    }
}
