//! H6 — local-search refinement of a constructive heuristic's mapping.
//!
//! The paper's six heuristics build one mapping and stop. H6 takes any of
//! them as a *seed* and polishes it by seeded stochastic hill climbing (with
//! optional simulated annealing) over two neighborhoods:
//!
//! * **move** — reassign one task to another machine;
//! * **swap** — exchange the machines of two tasks.
//!
//! Candidate neighbors are scored with the
//! [`IncrementalEvaluator`](mf_core::incremental::IncrementalEvaluator), so
//! one proposal costs `O(affected tasks + log m)` instead of the `O(n·m)`
//! full recompute a naive search would pay.
//!
//! When the seed mapping is specialized, every proposal is filtered through
//! the same type constraints the constructive heuristics enforce (a machine
//! executes tasks of at most one type), so the polished mapping stays
//! specialized. General seed mappings are polished without restriction.
//!
//! H6 never returns a worse mapping than its seed: the best assignment seen
//! (starting with the seed itself) is snapshotted and returned at the end,
//! even when annealing wandered uphill.

use crate::heuristic::{base_paper_heuristic, Heuristic, HeuristicResult};
use mf_core::prelude::*;
use mf_core::seed::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs of the H6 local search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalSearchConfig {
    /// Maximum number of neighborhood proposals.
    pub max_steps: usize,
    /// Stop after this many consecutive proposals without a new best period.
    pub stale_limit: usize,
    /// Initial annealing temperature as a fraction of the seed period
    /// (`0.0` disables annealing: pure hill climbing).
    pub initial_temperature: f64,
    /// Multiplicative temperature decay per proposal.
    pub cooling: f64,
    /// Probability of proposing a swap instead of a move.
    pub swap_probability: f64,
    /// Seed of the neighborhood RNG stream (mixed through
    /// [`splitmix64`], the same derivation the batch runner uses for its
    /// per-cell streams).
    pub seed: u64,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_steps: 4000,
            stale_limit: 1000,
            initial_temperature: 0.02,
            cooling: 0.995,
            swap_probability: 0.4,
            seed: 0x4853_6C0C,
        }
    }
}

/// The H6 local-search heuristic: seed with an inner heuristic, then polish.
pub struct H6LocalSearch {
    inner: Box<dyn Heuristic + Send + Sync>,
    config: LocalSearchConfig,
    name: String,
}

impl H6LocalSearch {
    /// H6 over an explicit inner heuristic, named `H6-<inner>`.
    pub fn new(inner: Box<dyn Heuristic + Send + Sync>, config: LocalSearchConfig) -> Self {
        let name = format!("H6-{}", inner.name());
        H6LocalSearch {
            inner,
            config,
            name,
        }
    }

    /// Resolves a registry name: `"H6"` (H4w seed) or `"H6-<base>"` where
    /// `<base>` is one of the six paper heuristics. The inner heuristic's
    /// own randomness (H1) draws from a stream derived from `seed` with
    /// [`splitmix64`], decorrelated from H6's neighborhood stream.
    pub fn by_registry_name(name: &str, seed: u64) -> Option<Self> {
        let base = match name {
            "H6" => "H4w",
            other => other.strip_prefix("H6-")?,
        };
        let inner = base_paper_heuristic(base, splitmix64(seed ^ INNER_SEED_SALT))?;
        let config = LocalSearchConfig {
            seed,
            ..LocalSearchConfig::default()
        };
        let mut h6 = Self::new(inner, config);
        if name == "H6" {
            h6.name = "H6".to_string();
        }
        Some(h6)
    }

    /// The configuration in use.
    pub fn config(&self) -> &LocalSearchConfig {
        &self.config
    }

    /// Polishes an existing mapping without re-running the inner heuristic.
    ///
    /// The returned mapping's period is never worse than `mapping`'s, and a
    /// specialized `mapping` stays specialized.
    pub fn polish(
        instance: &Instance,
        mapping: &Mapping,
        config: &LocalSearchConfig,
    ) -> HeuristicResult<Mapping> {
        let n = instance.task_count();
        let m = instance.machine_count();
        if n == 0 || m < 2 || config.max_steps == 0 {
            return Ok(mapping.clone());
        }
        let app = instance.application();
        let specialized = instance.is_specialized(mapping);
        let mut eval = IncrementalEvaluator::new(instance, mapping)?;

        // Type bookkeeping for the specialized rule: the type a machine
        // currently serves and how many tasks it hosts.
        let mut machine_type: Vec<Option<TaskTypeId>> = vec![None; m];
        let mut task_count = vec![0usize; m];
        for task in app.tasks() {
            let u = mapping.machine_of(task.id).index();
            task_count[u] += 1;
            machine_type[u] = Some(task.ty);
        }

        let mut rng = StdRng::seed_from_u64(splitmix64(config.seed));
        let mut current = eval.period().value();
        let mut best = current;
        let mut best_mapping = mapping.clone();
        let mut temperature = config.initial_temperature.max(0.0) * current;
        let mut stale = 0usize;

        for _ in 0..config.max_steps {
            if stale >= config.stale_limit {
                break;
            }
            stale += 1;
            temperature *= config.cooling;

            let candidate = if rng.gen_bool(config.swap_probability) {
                // --- swap proposal ---
                let a = TaskId(rng.gen_range(0..n));
                let b = TaskId(rng.gen_range(0..n));
                if a == b {
                    continue;
                }
                let (ua, ub) = (eval.machine_of(a), eval.machine_of(b));
                if ua == ub {
                    continue;
                }
                let (ta, tb) = (app.task_type(a), app.task_type(b));
                // Same-type swaps keep both machines' types; cross-type swaps
                // are only specialized when both machines host a single task
                // (they exchange their dedications).
                if specialized
                    && ta != tb
                    && !(task_count[ua.index()] == 1 && task_count[ub.index()] == 1)
                {
                    continue;
                }
                let period = eval.evaluate_swap(a, b)?.period.value();
                if !accept(period - current, temperature, &mut rng) {
                    continue;
                }
                // Track the exact committed period, not the (ratio-scaled,
                // ulp-approximate) what-if — `best` must never understate.
                let committed = eval.apply_swap(a, b)?.period.value();
                if ta != tb {
                    machine_type[ua.index()] = Some(tb);
                    machine_type[ub.index()] = Some(ta);
                }
                committed
            } else {
                // --- move proposal ---
                let t = TaskId(rng.gen_range(0..n));
                let to = MachineId(rng.gen_range(0..m));
                let from = eval.machine_of(t);
                if to == from {
                    continue;
                }
                let ty = app.task_type(t);
                if specialized && machine_type[to.index()] != Some(ty) && task_count[to.index()] > 0
                {
                    continue;
                }
                let period = eval.evaluate_move(t, to)?.period.value();
                if !accept(period - current, temperature, &mut rng) {
                    continue;
                }
                let committed = eval.apply_move(t, to)?.period.value();
                task_count[from.index()] -= 1;
                if task_count[from.index()] == 0 {
                    machine_type[from.index()] = None;
                }
                task_count[to.index()] += 1;
                machine_type[to.index()] = Some(ty);
                committed
            };

            current = candidate;
            if current < best - IMPROVEMENT_EPSILON {
                best = current;
                best_mapping = eval.mapping();
                stale = 0;
            }
        }
        Ok(best_mapping)
    }
}

/// Relative slack below which a new period does not count as an improvement
/// (guards against accumulating no-op "improvements" from float noise).
const IMPROVEMENT_EPSILON: f64 = 1e-12;

/// Salt decorrelating the inner heuristic's RNG stream from H6's own.
const INNER_SEED_SALT: u64 = 0x5EED_1AAE_0F1A_A3E5;

/// Metropolis acceptance: always take improvements, take uphill steps with
/// probability `exp(−Δ/T)` while the temperature is positive.
fn accept(delta: f64, temperature: f64, rng: &mut StdRng) -> bool {
    if delta < -IMPROVEMENT_EPSILON {
        return true;
    }
    if temperature <= f64::EPSILON {
        return false;
    }
    rng.gen_bool((-delta / temperature).exp().clamp(0.0, 1.0))
}

impl Heuristic for H6LocalSearch {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        let seeded = self.inner.map(instance)?;
        Self::polish(instance, &seeded, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h4_family::H4wFastestMachine;

    fn instance(types: &[usize], m: usize, seed: u64) -> Instance {
        let app = Application::linear_chain(types).unwrap();
        let p = app.type_count();
        let mut state = seed;
        let mut draw = |lo: f64, hi: f64| {
            state = mf_core::splitmix64(state);
            lo + (state >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
        };
        let platform = Platform::from_type_times(
            m,
            (0..p)
                .map(|_| (0..m).map(|_| draw(100.0, 1000.0)).collect())
                .collect(),
        )
        .unwrap();
        let failures = FailureModel::from_matrix(
            (0..types.len())
                .map(|_| (0..m).map(|_| draw(0.005, 0.05)).collect())
                .collect(),
            m,
        )
        .unwrap();
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn polishing_never_degrades_and_stays_specialized() {
        for seed in 0..8u64 {
            let inst = instance(&[0, 1, 0, 1, 0, 2, 1, 2, 0, 1], 5, 100 + seed);
            let seeded = H4wFastestMachine.map(&inst).unwrap();
            let seed_period = inst.period(&seeded).unwrap().value();
            let config = LocalSearchConfig {
                seed,
                ..LocalSearchConfig::default()
            };
            let polished = H6LocalSearch::polish(&inst, &seeded, &config).unwrap();
            let polished_period = inst.period(&polished).unwrap().value();
            assert!(
                polished_period <= seed_period + 1e-9,
                "seed {seed}: H6 degraded {seed_period} to {polished_period}"
            );
            assert!(inst.is_specialized(&polished), "seed {seed}");
        }
    }

    #[test]
    fn polishing_finds_an_obvious_improvement() {
        // Two same-type tasks stacked on a slow machine while a fast one
        // idles: one move fixes it, and H6 must find that move.
        let app = Application::linear_chain(&[0, 0]).unwrap();
        let platform = Platform::from_type_times(2, vec![vec![1000.0, 100.0]]).unwrap();
        let failures = FailureModel::uniform(2, 2, FailureRate::ZERO);
        let inst = Instance::new(app, platform, failures).unwrap();
        let bad = Mapping::from_indices(&[0, 0], 2).unwrap();
        let polished = H6LocalSearch::polish(&inst, &bad, &LocalSearchConfig::default()).unwrap();
        let period = inst.period(&polished).unwrap().value();
        // The seed stacks both tasks on the slow M0 (period 2·1000). The
        // optimum stacks both on the fast M1 (period 2·100 = 200) — spreading
        // them would leave the slow machine critical at 1000.
        assert!(
            period <= 200.0 + 1e-9,
            "H6 missed the improvement: period {period}"
        );
    }

    #[test]
    fn is_deterministic_for_a_seed() {
        let inst = instance(&[0, 1, 0, 1, 0, 1], 4, 7);
        let h6 = H6LocalSearch::by_registry_name("H6-H1", 99).unwrap();
        let a = h6.map(&inst).unwrap();
        let b = h6.map(&inst).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn registry_names_resolve() {
        assert_eq!(
            H6LocalSearch::by_registry_name("H6", 1).unwrap().name(),
            "H6"
        );
        assert_eq!(
            H6LocalSearch::by_registry_name("H6-H2", 1).unwrap().name(),
            "H6-H2"
        );
        assert!(H6LocalSearch::by_registry_name("H6-H9", 1).is_none());
        assert!(H6LocalSearch::by_registry_name("H6-H6", 1).is_none());
        assert!(H6LocalSearch::by_registry_name("H5", 1).is_none());
    }

    #[test]
    fn degenerate_platforms_return_the_seed_unchanged() {
        let app = Application::linear_chain(&[0, 0]).unwrap();
        let platform = Platform::from_type_times(1, vec![vec![100.0]]).unwrap();
        let failures = FailureModel::uniform(2, 1, FailureRate::ZERO);
        let inst = Instance::new(app, platform, failures).unwrap();
        let seed_mapping = Mapping::from_indices(&[0, 0], 1).unwrap();
        let polished =
            H6LocalSearch::polish(&inst, &seed_mapping, &LocalSearchConfig::default()).unwrap();
        assert_eq!(polished, seed_mapping);
    }
}
