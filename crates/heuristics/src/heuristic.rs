//! The [`Heuristic`] trait, its error type and the registry of the paper's six
//! heuristics.

use mf_core::prelude::*;
use std::fmt;

/// Result alias for heuristics.
pub type HeuristicResult<T> = std::result::Result<T, HeuristicError>;

/// Errors raised while building a mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum HeuristicError {
    /// No admissible machine remained for a task (this can only happen when
    /// the platform has fewer machines than the application has task types).
    NoFeasibleAssignment {
        /// The task that could not be placed.
        task: TaskId,
        /// Explanation of the dead end.
        detail: String,
    },
    /// The underlying model rejected an operation.
    Model(ModelError),
}

impl fmt::Display for HeuristicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeuristicError::NoFeasibleAssignment { task, detail } => {
                write!(f, "no admissible machine for task {task}: {detail}")
            }
            HeuristicError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for HeuristicError {}

impl From<ModelError> for HeuristicError {
    fn from(e: ModelError) -> Self {
        HeuristicError::Model(e)
    }
}

/// A mapping heuristic: consumes a problem instance, produces a specialized
/// mapping.
pub trait Heuristic {
    /// Short name used in experiment reports (e.g. `"H4w"`).
    fn name(&self) -> &str;

    /// Builds a specialized mapping for the instance.
    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping>;

    /// Convenience: the period achieved by this heuristic on the instance.
    fn period(&self, instance: &Instance) -> HeuristicResult<Period> {
        let mapping = self.map(instance)?;
        Ok(instance.period(&mapping)?)
    }
}

/// The six heuristics evaluated in the paper, in presentation order
/// (H1, H2, H3, H4, H4w, H4f), with the given seed for the random heuristic.
pub fn all_paper_heuristics(seed: u64) -> Vec<Box<dyn Heuristic + Send + Sync>> {
    vec![
        Box::new(crate::h1_random::H1Random::new(seed)),
        Box::new(crate::binary_search::H2BinaryPotential::default()),
        Box::new(crate::binary_search::H3BinaryHeterogeneity::default()),
        Box::new(crate::h4_family::H4BestPerformance),
        Box::new(crate::h4_family::H4wFastestMachine),
        Box::new(crate::h4_family::H4fReliableMachine),
    ]
}

/// Constructs one of the six *constructive* paper heuristics by name
/// (`"H1"` … `"H4f"`). `None` for anything else — in particular the H6
/// names, so H6 can never recursively seed itself.
pub(crate) fn base_paper_heuristic(
    name: &str,
    seed: u64,
) -> Option<Box<dyn Heuristic + Send + Sync>> {
    match name {
        "H1" => Some(Box::new(crate::h1_random::H1Random::new(seed))),
        "H2" => Some(Box::new(crate::binary_search::H2BinaryPotential::default())),
        "H3" => Some(Box::new(
            crate::binary_search::H3BinaryHeterogeneity::default(),
        )),
        "H4" => Some(Box::new(crate::h4_family::H4BestPerformance)),
        "H4w" => Some(Box::new(crate::h4_family::H4wFastestMachine)),
        "H4f" => Some(Box::new(crate::h4_family::H4fReliableMachine)),
        _ => None,
    }
}

/// Constructs a single heuristic by its report name, with the given seed for
/// any internal randomness. `None` for unknown names.
///
/// Accepted names are the six paper heuristics (`"H1"` … `"H4f"`), the H6
/// local search over its default H4w seed (`"H6"`), and H6 over an explicit
/// seed heuristic (`"H6-H1"` … `"H6-H4f"`) — see [`registry_names`].
///
/// Cheaper than filtering [`all_paper_heuristics`] when only one heuristic is
/// needed — the batch-evaluation engine calls this once per grid cell.
pub fn paper_heuristic(name: &str, seed: u64) -> Option<Box<dyn Heuristic + Send + Sync>> {
    base_paper_heuristic(name, seed).or_else(|| {
        crate::h6_local_search::H6LocalSearch::by_registry_name(name, seed)
            .map(|h6| Box::new(h6) as Box<dyn Heuristic + Send + Sync>)
    })
}

/// Every canonical name [`paper_heuristic`] resolves, in presentation order:
/// the six paper heuristics, then `"H6"` and its explicit-seed variants.
pub fn registry_names() -> Vec<String> {
    let bases = ["H1", "H2", "H3", "H4", "H4w", "H4f"];
    let mut names: Vec<String> = bases.iter().map(|n| n.to_string()).collect();
    names.push("H6".to_string());
    names.extend(bases.iter().map(|n| format!("H6-{n}")));
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_the_six_paper_heuristics() {
        let heuristics = all_paper_heuristics(42);
        let names: Vec<_> = heuristics.iter().map(|h| h.name().to_string()).collect();
        assert_eq!(names, vec!["H1", "H2", "H3", "H4", "H4w", "H4f"]);
    }

    #[test]
    fn by_name_constructor_agrees_with_the_registry() {
        for reference in all_paper_heuristics(42) {
            let built = paper_heuristic(reference.name(), 42)
                .unwrap_or_else(|| panic!("`{}` must be constructible by name", reference.name()));
            assert_eq!(built.name(), reference.name());
        }
        assert!(paper_heuristic("H4W", 1).is_none());
        assert!(paper_heuristic("", 1).is_none());
    }

    #[test]
    fn every_registry_name_is_constructible() {
        for name in registry_names() {
            let built = paper_heuristic(&name, 7)
                .unwrap_or_else(|| panic!("`{name}` must be constructible by name"));
            assert_eq!(built.name(), name);
        }
        assert!(registry_names().contains(&"H6".to_string()));
        assert!(registry_names().contains(&"H6-H4f".to_string()));
        assert!(paper_heuristic("H6-H6", 1).is_none());
        assert!(paper_heuristic("H6-", 1).is_none());
    }

    #[test]
    fn error_display() {
        let e = HeuristicError::NoFeasibleAssignment {
            task: TaskId(3),
            detail: "all machines specialized elsewhere".into(),
        };
        assert!(e.to_string().contains("T4"));
        let e: HeuristicError = ModelError::EmptyApplication.into();
        assert!(e.to_string().contains("model error"));
    }
}
