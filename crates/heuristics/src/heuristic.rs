//! The [`Heuristic`] trait, its error type and the registry of mapping
//! methods: the paper's six constructive heuristics plus the search
//! strategies layered on top of them.
//!
//! Every name the workspace accepts — [`registry_names`],
//! [`paper_heuristic`], the CLI's `--heuristic`/`--all` parsing and the batch
//! runner's grid validation — is driven from **one table** here
//! ([`BASE_TABLE`] for the constructive heuristics, [`STRATEGY_PREFIXES`]
//! for the search strategies), so the list and the constructors cannot
//! drift apart.

use mf_core::prelude::*;
use mf_core::seed::splitmix64;
use std::fmt;

/// Result alias for heuristics.
pub type HeuristicResult<T> = std::result::Result<T, HeuristicError>;

/// Errors raised while building a mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum HeuristicError {
    /// No admissible machine remained for a task (this can only happen when
    /// the platform has fewer machines than the application has task types).
    NoFeasibleAssignment {
        /// The task that could not be placed.
        task: TaskId,
        /// Explanation of the dead end.
        detail: String,
    },
    /// The underlying model rejected an operation.
    Model(ModelError),
}

impl fmt::Display for HeuristicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeuristicError::NoFeasibleAssignment { task, detail } => {
                write!(f, "no admissible machine for task {task}: {detail}")
            }
            HeuristicError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for HeuristicError {}

impl From<ModelError> for HeuristicError {
    fn from(e: ModelError) -> Self {
        HeuristicError::Model(e)
    }
}

/// A mapping heuristic: consumes a problem instance, produces a specialized
/// mapping.
pub trait Heuristic {
    /// Short name used in experiment reports (e.g. `"H4w"`).
    fn name(&self) -> &str;

    /// Builds a specialized mapping for the instance.
    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping>;

    /// Like [`map`](Self::map), additionally reporting search telemetry
    /// (sweep-cache and evaluator counters) when the heuristic drives a
    /// [`SearchEngine`](crate::search::SearchEngine) under the hood. The
    /// default — every constructive heuristic — returns `None`; the
    /// returned mapping is always bit-identical to [`map`](Self::map)'s.
    fn map_traced(
        &self,
        instance: &Instance,
    ) -> HeuristicResult<(Mapping, Option<crate::search::SearchTelemetry>)> {
        Ok((self.map(instance)?, None))
    }

    /// Like [`map`](Self::map), additionally streaming progress events
    /// (committed steps, incumbent improvements, cache outcomes) into
    /// `sink` when the heuristic drives a
    /// [`SearchEngine`](crate::search::SearchEngine) under the hood. The
    /// default — every constructive heuristic — emits nothing; the
    /// returned mapping is always bit-identical to [`map`](Self::map)'s.
    fn map_with_progress(
        &self,
        instance: &Instance,
        sink: &mut dyn mf_obs::ProgressSink,
    ) -> HeuristicResult<Mapping> {
        let _ = sink;
        self.map(instance)
    }

    /// Convenience: the period achieved by this heuristic on the instance.
    fn period(&self, instance: &Instance) -> HeuristicResult<Period> {
        let mapping = self.map(instance)?;
        Ok(instance.period(&mapping)?)
    }
}

/// A heuristic behind a name in the registry.
pub type BoxedHeuristic = Box<dyn Heuristic + Send + Sync>;

type Constructor = fn(u64) -> BoxedHeuristic;

/// The constructive heuristics of the paper, in presentation order — the
/// single source of truth for names *and* constructors.
const BASE_TABLE: &[(&str, Constructor)] = &[
    ("H1", |seed| Box::new(crate::h1_random::H1Random::new(seed))),
    ("H2", |_| {
        Box::new(crate::binary_search::H2BinaryPotential::default())
    }),
    ("H3", |_| {
        Box::new(crate::binary_search::H3BinaryHeterogeneity::default())
    }),
    ("H4", |_| Box::new(crate::h4_family::H4BestPerformance)),
    ("H4w", |_| Box::new(crate::h4_family::H4wFastestMachine)),
    ("H4f", |_| Box::new(crate::h4_family::H4fReliableMachine)),
];

/// Search-strategy prefixes registered over every base heuristic: the bare
/// prefix seeds from [`DEFAULT_SEED_BASE`], `"<prefix>-<base>"` seeds from an
/// explicit one.
///
/// * `"H6"` — annealed hill climb ([`crate::search::AnnealedClimb`]);
/// * `"SD"` — steepest-descent full-neighborhood sweep
///   ([`crate::search::SteepestDescent`]);
/// * `"TS"` — tabu search ([`crate::search::TabuSearch`]);
/// * `"LNS"` — subtree-move large-neighborhood search
///   ([`crate::search::SubtreeMoveLns`]).
pub const STRATEGY_PREFIXES: &[&str] = &["H6", "SD", "TS", "LNS"];

/// The seed heuristic behind a bare strategy name (`"H6"`, `"SD"`, `"TS"`):
/// H4w, the paper's best constructive heuristic.
pub const DEFAULT_SEED_BASE: &str = "H4w";

/// Default candidate-evaluation budget of the sweep-based strategies (SD and
/// TS registry names). H6 keeps its own proposal budget
/// ([`crate::search::LocalSearchConfig::max_steps`]).
pub const DEFAULT_SEARCH_BUDGET: usize = 200_000;

/// Salt decorrelating a seed heuristic's RNG stream from the search
/// strategy's own neighborhood stream.
const INNER_SEED_SALT: u64 = 0x5EED_1AAE_0F1A_A3E5;

/// Salt decorrelating the LNS root-selection stream from both the inner
/// seed heuristic's stream and the caller's raw seed.
const LNS_SEED_SALT: u64 = 0x7EA2_0C7B_5A15_9E11;

/// The six heuristics evaluated in the paper, in presentation order
/// (H1, H2, H3, H4, H4w, H4f), with the given seed for the random heuristic.
pub fn all_paper_heuristics(seed: u64) -> Vec<BoxedHeuristic> {
    BASE_TABLE.iter().map(|(_, build)| build(seed)).collect()
}

fn base_constructor(name: &str) -> Option<Constructor> {
    BASE_TABLE
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, build)| *build)
}

/// Constructs one of the six *constructive* paper heuristics by name
/// (`"H1"` … `"H4f"`). `None` for anything else — in particular the search
/// strategy names, so a strategy can never recursively seed itself.
pub(crate) fn base_paper_heuristic(name: &str, seed: u64) -> Option<BoxedHeuristic> {
    base_constructor(name).map(|build| build(seed))
}

/// Splits a search-strategy registry name into `(prefix, base)`:
/// `"SD"` → `("SD", "H4w")`, `"TS-H2"` → `("TS", "H2")`. `None` when the
/// prefix or the base is unknown.
pub(crate) fn parse_strategy_name(name: &str) -> Option<(&'static str, &str)> {
    for prefix in STRATEGY_PREFIXES {
        if name == *prefix {
            return Some((prefix, DEFAULT_SEED_BASE));
        }
        if let Some(base) = name
            .strip_prefix(prefix)
            .and_then(|rest| rest.strip_prefix('-'))
        {
            return base_constructor(base).map(|_| (*prefix, base));
        }
    }
    None
}

/// The seed (inner) heuristic of a strategy registry name, drawing its own
/// randomness from a stream decorrelated from the strategy's.
pub(crate) fn strategy_inner_heuristic(base: &str, seed: u64) -> Option<BoxedHeuristic> {
    base_paper_heuristic(base, splitmix64(seed ^ INNER_SEED_SALT))
}

/// Constructs a single heuristic by its report name, with the given seed for
/// any internal randomness. `None` for unknown names.
///
/// Accepted names are the six paper heuristics (`"H1"` … `"H4f"`) and, for
/// every strategy prefix in [`STRATEGY_PREFIXES`], the bare prefix (H4w
/// seed) and `"<prefix>-<base>"` — see [`registry_names`].
///
/// Cheaper than filtering [`all_paper_heuristics`] when only one heuristic is
/// needed — the batch-evaluation engine calls this once per grid cell.
pub fn paper_heuristic(name: &str, seed: u64) -> Option<BoxedHeuristic> {
    if let Some(heuristic) = base_paper_heuristic(name, seed) {
        return Some(heuristic);
    }
    let (prefix, base) = parse_strategy_name(name)?;
    match prefix {
        "H6" => crate::h6_local_search::H6LocalSearch::by_registry_name(name, seed)
            .map(|h6| Box::new(h6) as BoxedHeuristic),
        "SD" => {
            let inner = strategy_inner_heuristic(base, seed)?;
            Some(Box::new(crate::search::SearchHeuristic::new(
                inner,
                Box::new(crate::search::SteepestDescent::default()),
                DEFAULT_SEARCH_BUDGET,
                name,
            )))
        }
        "TS" => {
            let inner = strategy_inner_heuristic(base, seed)?;
            Some(Box::new(crate::search::SearchHeuristic::new(
                inner,
                Box::new(crate::search::TabuSearch::default()),
                DEFAULT_SEARCH_BUDGET,
                name,
            )))
        }
        "LNS" => {
            let inner = strategy_inner_heuristic(base, seed)?;
            let config = crate::search::LnsConfig {
                seed: splitmix64(seed ^ LNS_SEED_SALT),
                ..crate::search::LnsConfig::default()
            };
            Some(Box::new(crate::search::SearchHeuristic::new(
                inner,
                Box::new(crate::search::SubtreeMoveLns::new(config)),
                DEFAULT_SEARCH_BUDGET,
                name,
            )))
        }
        _ => unreachable!("every prefix in STRATEGY_PREFIXES is matched"),
    }
}

/// Normalizes a user-supplied method name to its canonical registry form,
/// case-insensitively: `"sd-h2"` → `"SD-H2"`, `"h4W"` → `"H4w"`. `None` for
/// names no cased variant of which is in the registry.
///
/// Both front ends — the CLI's `--heuristic` flag and the server's
/// `solve … heuristic …` request — resolve names through this single helper,
/// so they can never accept different spellings.
pub fn canonical_registry_name(name: &str) -> Option<String> {
    registry_names()
        .into_iter()
        .find(|canonical| canonical.eq_ignore_ascii_case(name))
}

/// Every canonical name [`paper_heuristic`] resolves, in presentation order:
/// the six paper heuristics, then — per strategy prefix — the bare prefix
/// and its explicit-seed variants.
pub fn registry_names() -> Vec<String> {
    let mut names: Vec<String> = BASE_TABLE.iter().map(|(n, _)| n.to_string()).collect();
    for prefix in STRATEGY_PREFIXES {
        names.push(prefix.to_string());
        names.extend(BASE_TABLE.iter().map(|(n, _)| format!("{prefix}-{n}")));
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_the_six_paper_heuristics() {
        let heuristics = all_paper_heuristics(42);
        let names: Vec<_> = heuristics.iter().map(|h| h.name().to_string()).collect();
        assert_eq!(names, vec!["H1", "H2", "H3", "H4", "H4w", "H4f"]);
    }

    #[test]
    fn by_name_constructor_agrees_with_the_registry() {
        for reference in all_paper_heuristics(42) {
            let built = paper_heuristic(reference.name(), 42)
                .unwrap_or_else(|| panic!("`{}` must be constructible by name", reference.name()));
            assert_eq!(built.name(), reference.name());
        }
        assert!(paper_heuristic("H4W", 1).is_none());
        assert!(paper_heuristic("", 1).is_none());
    }

    #[test]
    fn every_registry_name_is_constructible() {
        for name in registry_names() {
            let built = paper_heuristic(&name, 7)
                .unwrap_or_else(|| panic!("`{name}` must be constructible by name"));
            assert_eq!(built.name(), name);
        }
        for expected in [
            "H6", "H6-H4f", "SD", "SD-H1", "TS", "TS-H4w", "LNS", "LNS-H2",
        ] {
            assert!(
                registry_names().contains(&expected.to_string()),
                "`{expected}` missing from the registry"
            );
        }
        for rejected in [
            "H6-H6", "H6-", "SD-SD", "SD-H6", "TS-", "TS-TS", "LNS-", "LNS-LNS", "LNS-SD", "XX-H2",
        ] {
            assert!(
                paper_heuristic(rejected, 1).is_none(),
                "`{rejected}` must not resolve"
            );
        }
    }

    #[test]
    fn canonical_name_lookup_is_case_insensitive() {
        assert_eq!(canonical_registry_name("h4w"), Some("H4w".to_string()));
        assert_eq!(canonical_registry_name("SD-h2"), Some("SD-H2".to_string()));
        assert_eq!(canonical_registry_name("ts"), Some("TS".to_string()));
        assert_eq!(canonical_registry_name("H6-H1"), Some("H6-H1".to_string()));
        assert_eq!(canonical_registry_name("portolio"), None);
        assert_eq!(canonical_registry_name(""), None);
    }

    #[test]
    fn strategy_name_parsing_covers_every_prefix() {
        assert_eq!(parse_strategy_name("H6"), Some(("H6", "H4w")));
        assert_eq!(parse_strategy_name("SD-H2"), Some(("SD", "H2")));
        assert_eq!(parse_strategy_name("TS-H4f"), Some(("TS", "H4f")));
        assert_eq!(parse_strategy_name("LNS"), Some(("LNS", "H4w")));
        assert_eq!(parse_strategy_name("LNS-H1"), Some(("LNS", "H1")));
        assert_eq!(parse_strategy_name("H4w"), None);
        assert_eq!(parse_strategy_name("SD-"), None);
        assert_eq!(parse_strategy_name("SDX"), None);
    }

    #[test]
    fn error_display() {
        let e = HeuristicError::NoFeasibleAssignment {
            task: TaskId(3),
            detail: "all machines specialized elsewhere".into(),
        };
        assert!(e.to_string().contains("T4"));
        let e: HeuristicError = ModelError::EmptyApplication.into();
        assert!(e.to_string().contains("model error"));
    }
}
