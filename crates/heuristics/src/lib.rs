//! # mf-heuristics — polynomial-time mapping heuristics (paper §6.2)
//!
//! The specialized-mapping problem — group tasks of the same type onto
//! machines so that the maximum machine period is minimal — is NP-hard even
//! for linear chains, so the paper proposes six polynomial heuristics, all of
//! which walk the application **backwards** (from the last task to the first)
//! so that the downstream product demand of a task is known when it is placed:
//!
//! | Name | Idea |
//! |------|------|
//! | [`H1Random`] | random machine among the admissible ones |
//! | [`H2BinaryPotential`] | binary search on the period; each task goes to the machine where its processing time has the best *rank* |
//! | [`H3BinaryHeterogeneity`] | binary search on the period; most *heterogeneous* admissible machine first |
//! | [`H4BestPerformance`] | greedy: minimise the resulting machine load including the failure factor |
//! | [`H4wFastestMachine`] | greedy: minimise the resulting machine load ignoring failures |
//! | [`H4fReliableMachine`] | greedy: most reliable admissible machine, ignoring speed |
//!
//! plus a [`RandomMapping`] baseline that ignores load altogether, and the
//! [`search`] subsystem — a strategy-driven neighborhood search (shared
//! [`SearchEngine`] over the incremental evaluator of `mf-core`, plus the
//! [`AnnealedClimb`] behind [`H6LocalSearch`], the full-sweep
//! [`SteepestDescent`] and [`TabuSearch`] strategies) that polishes any of
//! the six constructive mappings and never returns a worse period than its
//! seed. Registry names (`"H6"`, `"SD-H2"`, `"TS"`, … — see
//! [`registry_names`]) are driven from a single table in [`heuristic`].
//!
//! All heuristics guarantee a *valid* specialized mapping whenever the
//! platform has at least as many machines as the application has types, thanks
//! to a shared reservation rule (never exhaust the free machines while some
//! type still lacks a dedicated machine — the safeguard that Algorithm 1 of
//! the paper applies explicitly).
//!
//! ```
//! use mf_core::prelude::*;
//! use mf_heuristics::{Heuristic, H4wFastestMachine};
//!
//! let app = Application::linear_chain(&[0, 1, 0, 1]).unwrap();
//! let platform = Platform::from_type_times(3, vec![vec![100.0, 150.0, 120.0]; 2]).unwrap();
//! let failures = FailureModel::uniform(4, 3, FailureRate::new(0.01).unwrap());
//! let instance = Instance::new(app, platform, failures).unwrap();
//! let mapping = H4wFastestMachine.map(&instance).unwrap();
//! assert!(instance.is_specialized(&mapping));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod binary_search;
pub mod context;
pub mod h1_random;
pub mod h4_family;
pub mod h5_split;
pub mod h6_local_search;
pub mod heuristic;
pub mod search;

pub use baseline::RandomMapping;
pub use binary_search::{BinarySearchConfig, H2BinaryPotential, H3BinaryHeterogeneity};
pub use context::AssignmentState;
pub use h1_random::H1Random;
pub use h4_family::{
    GreedyHeuristic, H4BestPerformance, H4fReliableMachine, H4wFastestMachine, ScoringRule,
};
pub use h5_split::H5WorkloadSplit;
pub use h6_local_search::{H6LocalSearch, LocalSearchConfig};
pub use heuristic::{
    all_paper_heuristics, canonical_registry_name, paper_heuristic, registry_names, BoxedHeuristic,
    Heuristic, HeuristicError, HeuristicResult, DEFAULT_SEARCH_BUDGET, STRATEGY_PREFIXES,
};
pub use search::{
    AnnealedClimb, SearchEngine, SearchHeuristic, SearchStrategy, SearchTelemetry, SteepestDescent,
    TabuSearch,
};
