//! The annealed hill climb — the search policy behind H6.
//!
//! Seeded stochastic proposals over the move/swap neighborhoods with
//! Metropolis acceptance and a geometrically cooling temperature. This is a
//! behavior-preserving extraction of the loop that lived inside
//! `H6LocalSearch::polish` before the search subsystem existed: for the same
//! [`LocalSearchConfig`] (same seed, same knobs) it consumes the identical
//! RNG stream and produces the **bit-identical** mapping, which the
//! `h6_regression` test pins.

use crate::search::engine::{metropolis, SearchEngine};
use crate::search::strategy::SearchStrategy;
use crate::HeuristicResult;
use mf_core::prelude::*;
use mf_core::seed::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs of the annealed hill climb (and therefore of H6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalSearchConfig {
    /// Maximum number of neighborhood proposals.
    pub max_steps: usize,
    /// Stop after this many consecutive proposals without a new best period.
    pub stale_limit: usize,
    /// Initial annealing temperature as a fraction of the seed period
    /// (`0.0` disables annealing: pure hill climbing).
    pub initial_temperature: f64,
    /// Multiplicative temperature decay per proposal.
    pub cooling: f64,
    /// Probability of proposing a swap instead of a move.
    pub swap_probability: f64,
    /// Seed of the neighborhood RNG stream (mixed through
    /// [`splitmix64`], the same derivation the batch runner uses for its
    /// per-cell streams).
    pub seed: u64,
    /// Additional restart waves after the first climb stalls (`0` — the
    /// default — is the classic single-wave H6, bit-identical to the
    /// pre-restart behavior). Each wave rewinds to the best-so-far mapping,
    /// reheats the temperature and climbs again on a fresh RNG stream; all
    /// waves share the one evaluation budget, and the engine's best-so-far
    /// snapshot makes extra waves never worse than fewer.
    pub restarts: usize,
    /// Reheat factor of a restart wave: wave `w > 0` starts at
    /// `reheat × initial_temperature × best_period`. The factor adapts to
    /// the landscape: after a wave that found no new best it doubles (capped
    /// at 8× this base) to push the climb over higher barriers — the rugged
    /// high-failure regime — and a productive wave resets it.
    pub reheat: f64,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_steps: 4000,
            stale_limit: 1000,
            initial_temperature: 0.02,
            cooling: 0.995,
            swap_probability: 0.4,
            seed: 0x4853_6C0C,
            restarts: 0,
            reheat: 0.5,
        }
    }
}

/// Stream salt decorrelating each restart wave's RNG from the first wave's
/// (wave 0 keeps the historical `splitmix64(seed)` stream untouched).
const RESTART_STREAM_SALT: u64 = 0xA11E_A7ED_5EED_0B61;

/// Seeded move/swap proposals with Metropolis acceptance and annealing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealedClimb {
    config: LocalSearchConfig,
}

impl AnnealedClimb {
    /// A climb with explicit knobs.
    pub fn new(config: LocalSearchConfig) -> Self {
        AnnealedClimb { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LocalSearchConfig {
        &self.config
    }
}

impl Default for AnnealedClimb {
    fn default() -> Self {
        AnnealedClimb::new(LocalSearchConfig::default())
    }
}

impl SearchStrategy for AnnealedClimb {
    fn name(&self) -> &str {
        "annealed"
    }

    fn run(&self, engine: &mut SearchEngine<'_>) -> HeuristicResult<()> {
        let n = engine.tasks();
        let m = engine.machines();
        if n == 0 || m < 2 {
            return Ok(());
        }
        let config = &self.config;
        let base_stream = splitmix64(config.seed);
        let base_scale = config.initial_temperature.max(0.0);
        let base_reheat = config.reheat.max(0.0);
        let mut reheat = base_reheat;

        for wave in 0..=config.restarts {
            if engine.exhausted() {
                break;
            }
            // Wave 0 is the historical climb on the historical stream —
            // bit-identical to the pre-restart H6 (pinned by
            // `h6_regression`). Restart waves rewind to the best-so-far
            // mapping, reheat and climb on a decorrelated stream.
            let scale = if wave == 0 {
                base_scale
            } else {
                engine.rewind_to_best()?;
                reheat * base_scale
            };
            let stream = if wave == 0 {
                base_stream
            } else {
                splitmix64(base_stream ^ (wave as u64).wrapping_mul(RESTART_STREAM_SALT))
            };
            let mut rng = StdRng::seed_from_u64(stream);
            let mut temperature = scale * engine.current_period();
            let mut stale = 0usize;
            let mut wave_improved = false;

            // One budget unit per proposal, drawn or filtered — the same
            // accounting the pre-refactor H6 loop used for `max_steps`.
            while !engine.exhausted() {
                if stale >= config.stale_limit {
                    break;
                }
                engine.charge(1);
                stale += 1;
                temperature *= config.cooling;

                let improved = if rng.gen_bool(config.swap_probability) {
                    let a = TaskId(rng.gen_range(0..n));
                    let b = TaskId(rng.gen_range(0..n));
                    if !engine.allows_swap(a, b) {
                        continue;
                    }
                    let period = engine.evaluate_swap(a, b)?;
                    if !metropolis(period - engine.current_period(), temperature, &mut rng) {
                        continue;
                    }
                    engine.commit_swap(a, b)?.improved_best
                } else {
                    let t = TaskId(rng.gen_range(0..n));
                    let to = MachineId(rng.gen_range(0..m));
                    if !engine.allows_move(t, to) {
                        continue;
                    }
                    let period = engine.evaluate_move(t, to)?;
                    if !metropolis(period - engine.current_period(), temperature, &mut rng) {
                        continue;
                    }
                    engine.commit_move(t, to)?.improved_best
                };
                if improved {
                    stale = 0;
                    wave_improved = true;
                }
            }

            // Adaptive reheat: a barren wave doubles the next wave's starting
            // temperature (up to 8× the configured base) so the climb can
            // cross higher barriers on rugged landscapes; a productive wave
            // resets the escalation.
            reheat = if wave_improved {
                base_reheat
            } else {
                (reheat * 2.0).min(base_reheat * 8.0)
            };
        }
        Ok(())
    }
}
