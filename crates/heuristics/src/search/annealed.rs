//! The annealed hill climb — the search policy behind H6.
//!
//! Seeded stochastic proposals over the move/swap neighborhoods with
//! Metropolis acceptance and a geometrically cooling temperature. This is a
//! behavior-preserving extraction of the loop that lived inside
//! `H6LocalSearch::polish` before the search subsystem existed: for the same
//! [`LocalSearchConfig`] (same seed, same knobs) it consumes the identical
//! RNG stream and produces the **bit-identical** mapping, which the
//! `h6_regression` test pins.

use crate::search::engine::{metropolis, SearchEngine};
use crate::search::strategy::SearchStrategy;
use crate::HeuristicResult;
use mf_core::prelude::*;
use mf_core::seed::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs of the annealed hill climb (and therefore of H6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalSearchConfig {
    /// Maximum number of neighborhood proposals.
    pub max_steps: usize,
    /// Stop after this many consecutive proposals without a new best period.
    pub stale_limit: usize,
    /// Initial annealing temperature as a fraction of the seed period
    /// (`0.0` disables annealing: pure hill climbing).
    pub initial_temperature: f64,
    /// Multiplicative temperature decay per proposal.
    pub cooling: f64,
    /// Probability of proposing a swap instead of a move.
    pub swap_probability: f64,
    /// Seed of the neighborhood RNG stream (mixed through
    /// [`splitmix64`], the same derivation the batch runner uses for its
    /// per-cell streams).
    pub seed: u64,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_steps: 4000,
            stale_limit: 1000,
            initial_temperature: 0.02,
            cooling: 0.995,
            swap_probability: 0.4,
            seed: 0x4853_6C0C,
        }
    }
}

/// Seeded move/swap proposals with Metropolis acceptance and annealing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealedClimb {
    config: LocalSearchConfig,
}

impl AnnealedClimb {
    /// A climb with explicit knobs.
    pub fn new(config: LocalSearchConfig) -> Self {
        AnnealedClimb { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LocalSearchConfig {
        &self.config
    }
}

impl Default for AnnealedClimb {
    fn default() -> Self {
        AnnealedClimb::new(LocalSearchConfig::default())
    }
}

impl SearchStrategy for AnnealedClimb {
    fn name(&self) -> &str {
        "annealed"
    }

    fn run(&self, engine: &mut SearchEngine<'_>) -> HeuristicResult<()> {
        let n = engine.tasks();
        let m = engine.machines();
        if n == 0 || m < 2 {
            return Ok(());
        }
        let config = &self.config;
        let mut rng = StdRng::seed_from_u64(splitmix64(config.seed));
        let mut temperature = config.initial_temperature.max(0.0) * engine.current_period();
        let mut stale = 0usize;

        // One budget unit per proposal, drawn or filtered — the same
        // accounting the pre-refactor H6 loop used for `max_steps`.
        while !engine.exhausted() {
            if stale >= config.stale_limit {
                break;
            }
            engine.charge(1);
            stale += 1;
            temperature *= config.cooling;

            let improved = if rng.gen_bool(config.swap_probability) {
                let a = TaskId(rng.gen_range(0..n));
                let b = TaskId(rng.gen_range(0..n));
                if !engine.allows_swap(a, b) {
                    continue;
                }
                let period = engine.evaluate_swap(a, b)?;
                if !metropolis(period - engine.current_period(), temperature, &mut rng) {
                    continue;
                }
                engine.commit_swap(a, b)?.improved_best
            } else {
                let t = TaskId(rng.gen_range(0..n));
                let to = MachineId(rng.gen_range(0..m));
                if !engine.allows_move(t, to) {
                    continue;
                }
                let period = engine.evaluate_move(t, to)?;
                if !metropolis(period - engine.current_period(), temperature, &mut rng) {
                    continue;
                }
                engine.commit_move(t, to)?.improved_best
            };
            if improved {
                stale = 0;
            }
        }
        Ok(())
    }
}
