//! The candidate representation the sweep-based strategies share.

use crate::search::engine::{CommitOutcome, SearchEngine};
use crate::HeuristicResult;
use mf_core::prelude::*;

/// One neighbor of the current mapping.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Candidate {
    /// Reassign one task to another machine.
    Move(TaskId, MachineId),
    /// Exchange the machines of two tasks.
    Swap(TaskId, TaskId),
}

impl Candidate {
    /// Commits this candidate on the engine.
    pub(crate) fn commit(self, engine: &mut SearchEngine<'_>) -> HeuristicResult<CommitOutcome> {
        match self {
            Candidate::Move(task, to) => engine.commit_move(task, to),
            Candidate::Swap(a, b) => engine.commit_swap(a, b),
        }
    }
}

/// Strict improvement over the best candidate so far (strict `<` keeps the
/// first candidate in scan order on ties, so sweeps stay deterministic).
#[inline]
pub(crate) fn better_than(period: f64, best: &Option<(f64, Candidate)>) -> bool {
    match best {
        None => true,
        Some((p, _)) => period < *p,
    }
}
