//! The shared search engine: incremental candidate evaluation, specialized-
//! rule preservation, best-so-far tracking and the evaluation budget.
//!
//! Strategies ([`SearchStrategy`](crate::search::SearchStrategy)) never touch
//! the [`IncrementalEvaluator`] directly: they ask the engine whether a move
//! or swap is admissible, what period it would produce, and commit the ones
//! they take. The engine keeps the invariants every strategy relies on:
//!
//! * a specialized seed mapping stays specialized — proposals that would put
//!   two task types on one machine are inadmissible;
//! * the best mapping seen (starting with the seed itself) is snapshotted, so
//!   [`SearchEngine::into_best`] is never worse than the seed, no matter how
//!   far a strategy wandered uphill;
//! * the budget ([`SearchEngine::charge`] / [`SearchEngine::exhausted`])
//!   meters work in *candidate evaluations*, the unit every strategy shares.

use crate::heuristic::HeuristicResult;
use crate::search::sweep_cache::{CacheAnswer, SweepCache, SweepCacheStats};
use mf_core::incremental::EvalCounters;
use mf_core::prelude::*;
use mf_obs::{ProgressEvent, ProgressSink};
use rand::rngs::StdRng;
use rand::Rng;

/// Relative slack below which a new period does not count as an improvement
/// (guards against accumulating no-op "improvements" from float noise).
pub const IMPROVEMENT_EPSILON: f64 = 1e-12;

/// Machine count from which the dirty-candidate sweep cache defaults **on**
/// for dense-fast-path evaluators. Below this, a dense what-if (an `O(m)`
/// load scan) is cheaper than the cache's probe bookkeeping, so caching
/// costs wall-clock even while it saves evaluator calls; above it, the scan
/// dominates and the saved calls win. Evaluators off the dense fast path
/// (exact ancestor walks) always default on. Calibrated on the
/// `bench_summary` steepest-descent rows; [`SearchEngine::set_sweep_cache`]
/// overrides the default either way.
pub const SWEEP_CACHE_MIN_MACHINES: usize = 48;

/// Metropolis acceptance: always take improvements, take uphill steps with
/// probability `exp(−Δ/T)` while the temperature is positive.
///
/// Only draws from `rng` when the step is not an improvement and the
/// temperature is positive — callers that rely on reproducible streams (the
/// annealed climb) count on that.
pub fn metropolis(delta: f64, temperature: f64, rng: &mut StdRng) -> bool {
    if delta < -IMPROVEMENT_EPSILON {
        return true;
    }
    if temperature <= f64::EPSILON {
        return false;
    }
    rng.gen_bool((-delta / temperature).exp().clamp(0.0, 1.0))
}

/// Outcome of a large-neighborhood restage probe
/// ([`SearchEngine::restage_greedy`]): the staged period of the candidate
/// and the number of staged placements tried — the budget units the probe
/// consumed, in the same "candidate evaluations" currency every strategy
/// charges in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestageProbe {
    /// Staged period of the restaged mapping.
    pub period: f64,
    /// Staged placements tried while building it.
    pub trials: usize,
}

/// The outcome of committing a move or swap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitOutcome {
    /// The committed (exact, not what-if) period of the new mapping.
    pub period: f64,
    /// `true` when the commit set a new best-so-far period.
    pub improved_best: bool,
}

/// One committed step, as recorded by the (opt-in) commit trace — the
/// observable the sweep-cache differential pins: dirty-candidate sweeps must
/// produce the identical step sequence a full sweep does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitStep {
    /// A committed single-task move and the bits of the resulting period.
    Move {
        /// Reassigned task.
        task: usize,
        /// Target machine.
        to: usize,
        /// `f64::to_bits` of the committed period.
        period: u64,
    },
    /// A committed two-task swap and the bits of the resulting period.
    Swap {
        /// First task.
        a: usize,
        /// Second task.
        b: usize,
        /// `f64::to_bits` of the committed period.
        period: u64,
    },
}

/// Shared state of a neighborhood search over one instance.
///
/// Built from a seed mapping, driven by a strategy, harvested with
/// [`SearchEngine::into_best`].
pub struct SearchEngine<'a> {
    instance: &'a Instance,
    eval: IncrementalEvaluator<'a>,
    /// Whether the *seed* was specialized — if so, every proposal must keep
    /// the mapping specialized.
    specialized: bool,
    /// The task type a machine currently serves (`None` when idle). Tracked
    /// even for general seeds so commits stay cheap.
    machine_type: Vec<Option<TaskTypeId>>,
    /// Number of tasks currently hosted per machine.
    tasks_on: Vec<usize>,
    current: f64,
    best: f64,
    best_mapping: Mapping,
    steps: usize,
    max_steps: usize,
    /// Per-candidate score cache driving the dirty-candidate sweeps.
    sweep: SweepCache,
    sweep_enabled: bool,
    /// Evaluator commit count at the last footprint sync (no-op applies do
    /// not commit, so the count — not the call — is the commit signal).
    commit_count: u64,
    /// Opt-in record of every committed step (for differential pinning).
    trace: Option<Vec<CommitStep>>,
    /// Opt-in live observer of the run (see
    /// [`set_progress_sink`](Self::set_progress_sink)). Never consulted for
    /// decisions, so an attached sink cannot change search results.
    progress: Option<&'a mut dyn ProgressSink>,
}

impl<'a> SearchEngine<'a> {
    /// Builds an engine over `instance`, starting from `mapping`, with a
    /// budget of `max_steps` candidate evaluations.
    pub fn new(
        instance: &'a Instance,
        mapping: &Mapping,
        max_steps: usize,
    ) -> HeuristicResult<Self> {
        let app = instance.application();
        let m = instance.machine_count();
        let specialized = instance.is_specialized(mapping);
        let eval = IncrementalEvaluator::new(instance, mapping)?;
        let mut machine_type: Vec<Option<TaskTypeId>> = vec![None; m];
        let mut tasks_on = vec![0usize; m];
        for task in app.tasks() {
            let u = mapping.machine_of(task.id).index();
            tasks_on[u] += 1;
            machine_type[u] = Some(task.ty);
        }
        let current = eval.period().value();
        let spans: Vec<(u32, u32)> = (0..instance.task_count())
            .map(|t| {
                let (start, end) = eval.topology().subtree_span(TaskId(t));
                (start as u32, end as u32)
            })
            .collect();
        let sweep = SweepCache::new(instance.task_count(), m, spans);
        // The cache only pays when an evaluator call costs more than a probe's
        // bookkeeping (slot read + transform walk). On the dense fast path a
        // what-if is an O(m) scan, so for small machine counts the probe
        // overhead exceeds the calls it saves — default the cache off there
        // and on everywhere the evaluator is genuinely expensive (the exact
        // ancestor walk, or wide instances). `set_sweep_cache` still
        // overrides either way, and chosen steps are bit-identical
        // regardless (the cache never changes which move a sweep picks).
        let sweep_enabled = !eval.is_dense_fast_path() || m >= SWEEP_CACHE_MIN_MACHINES;
        Ok(SearchEngine {
            instance,
            eval,
            specialized,
            machine_type,
            tasks_on,
            current,
            best: current,
            best_mapping: mapping.clone(),
            steps: 0,
            max_steps,
            sweep,
            sweep_enabled,
            commit_count: 0,
            trace: None,
            progress: None,
        })
    }

    /// The instance being searched.
    #[inline]
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }

    /// Number of tasks.
    #[inline]
    pub fn tasks(&self) -> usize {
        self.instance.task_count()
    }

    /// Number of machines.
    #[inline]
    pub fn machines(&self) -> usize {
        self.instance.machine_count()
    }

    /// `true` when the seed mapping was specialized (and therefore every
    /// proposal is filtered through the specialized rule).
    #[inline]
    pub fn preserves_specialization(&self) -> bool {
        self.specialized
    }

    /// The machine currently executing a task.
    #[inline]
    pub fn machine_of(&self, task: TaskId) -> MachineId {
        self.eval.machine_of(task)
    }

    /// The period of the current (last committed) mapping.
    #[inline]
    pub fn current_period(&self) -> f64 {
        self.current
    }

    /// The best period seen so far (never worse than the seed's).
    #[inline]
    pub fn best_period(&self) -> f64 {
        self.best
    }

    /// Candidate evaluations consumed so far.
    #[inline]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Consumes `amount` units of budget (saturating).
    #[inline]
    pub fn charge(&mut self, amount: usize) {
        self.steps = self.steps.saturating_add(amount);
    }

    /// `true` once the evaluation budget is spent.
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.steps >= self.max_steps
    }

    /// `true` when moving `task` to `to` is admissible: a real change, and —
    /// for specialized seeds — one that keeps the mapping specialized.
    pub fn allows_move(&self, task: TaskId, to: MachineId) -> bool {
        let from = self.eval.machine_of(task);
        if to == from {
            return false;
        }
        if self.specialized {
            let ty = self.instance.application().task_type(task);
            let u = to.index();
            if self.machine_type[u] != Some(ty) && self.tasks_on[u] > 0 {
                return false;
            }
        }
        true
    }

    /// `true` when exchanging the machines of `a` and `b` is admissible.
    /// Same-type swaps keep both machines' types; cross-type swaps are only
    /// specialized when both machines host a single task (they exchange their
    /// dedications).
    pub fn allows_swap(&self, a: TaskId, b: TaskId) -> bool {
        if a == b {
            return false;
        }
        let (ua, ub) = (self.eval.machine_of(a), self.eval.machine_of(b));
        if ua == ub {
            return false;
        }
        if self.specialized {
            let app = self.instance.application();
            let (ta, tb) = (app.task_type(a), app.task_type(b));
            if ta != tb && !(self.tasks_on[ua.index()] == 1 && self.tasks_on[ub.index()] == 1) {
                return false;
            }
        }
        true
    }

    /// What-if period of moving `task` to `to` (state untouched). Callers are
    /// expected to [`charge`](Self::charge) for the evaluation.
    pub fn evaluate_move(&mut self, task: TaskId, to: MachineId) -> HeuristicResult<f64> {
        Ok(self.eval.evaluate_move(task, to)?.period.value())
    }

    /// What-if period of swapping the machines of `a` and `b`.
    pub fn evaluate_swap(&mut self, a: TaskId, b: TaskId) -> HeuristicResult<f64> {
        Ok(self.eval.evaluate_swap(a, b)?.period.value())
    }

    /// Turns the dirty-candidate sweep cache on or off, overriding the
    /// construction-time default (on exactly when an evaluator call costs
    /// more than a probe: off the dense fast path, or at
    /// [`SWEEP_CACHE_MIN_MACHINES`]+ machines). Turning it off makes
    /// [`probe_move`](Self::probe_move)/[`probe_swap`](Self::probe_swap)
    /// evaluate every candidate — the pre-cache full-sweep behavior the
    /// differential tests compare against. Either setting picks the
    /// bit-identical step sequence; only evaluator-call counts differ.
    pub fn set_sweep_cache(&mut self, enabled: bool) {
        if enabled != self.sweep_enabled {
            self.sweep.reset();
        }
        self.sweep_enabled = enabled;
    }

    /// `true` when the dirty-candidate sweep cache is active.
    #[inline]
    pub fn sweep_cache_enabled(&self) -> bool {
        self.sweep_enabled
    }

    /// Hit/miss counters of the sweep cache (probes, evaluator calls, skips,
    /// exact reuses).
    #[inline]
    pub fn sweep_stats(&self) -> SweepCacheStats {
        self.sweep.stats
    }

    /// The underlying evaluator's diagnostics counters (dense/exact what-if
    /// split, commits, mass-row churn).
    #[inline]
    pub fn evaluator_counters(&self) -> EvalCounters {
        self.eval.counters()
    }

    /// Starts recording every committed step (see [`CommitStep`]); used by
    /// the differential tests that pin cached sweeps against full sweeps.
    pub fn enable_commit_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The committed steps recorded since
    /// [`enable_commit_trace`](Self::enable_commit_trace) (empty when
    /// tracing is off).
    pub fn commit_trace(&self) -> &[CommitStep] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Attaches a live progress observer: every real commit is reported as
    /// a [`ProgressEvent::Commit`] (mirroring the commit trace, plus the
    /// incumbent-improved verdict) followed by a cumulative
    /// [`ProgressEvent::CacheOutcome`]. The sink is write-only — search
    /// decisions, budgets and results are bit-identical with or without it.
    pub fn set_progress_sink(&mut self, sink: &'a mut dyn ProgressSink) {
        self.progress = Some(sink);
    }

    /// Sweep-cached what-if of moving `task` to `to`: returns the exact
    /// candidate period, or `None` when the cache certifies the candidate
    /// cannot score strictly below `bound` (in which case a sweep that
    /// tie-breaks by scan order can ignore it without changing its choice).
    ///
    /// Callers [`charge`](Self::charge) per *probe*, exactly as the full
    /// sweep charged per evaluation, so budget accounting — and therefore
    /// strategy behavior — is unchanged by cache hits.
    pub fn probe_move(
        &mut self,
        task: TaskId,
        to: MachineId,
        bound: f64,
    ) -> HeuristicResult<Option<f64>> {
        if !self.sweep_enabled {
            self.sweep.stats.probes += 1;
            self.sweep.stats.evaluations += 1;
            return Ok(Some(self.eval.evaluate_move(task, to)?.period.value()));
        }
        // The candidate's own demand-rescale ratio, computed lazily from the
        // immutable instance factors: valid whenever the cache can certify
        // anything, because any commit of `task` itself classifies as
        // Unknown (and forces an evaluation) before the machine could drift.
        let from = self.eval.machine_of(task);
        let ratio = self.instance.factor(task, to) / self.instance.factor(task, from);
        match self.sweep.probe_move(task, to, ratio, bound) {
            CacheAnswer::Reuse(score) => Ok(Some(score)),
            CacheAnswer::Skip => Ok(None),
            CacheAnswer::Evaluate => {
                let score = self.eval.evaluate_move(task, to)?.period.value();
                self.sweep.store_move(task, to, score);
                Ok(Some(score))
            }
        }
    }

    /// Sweep-cached what-if of swapping `a` and `b`; see
    /// [`probe_move`](Self::probe_move).
    pub fn probe_swap(&mut self, a: TaskId, b: TaskId, bound: f64) -> HeuristicResult<Option<f64>> {
        if !self.sweep_enabled {
            self.sweep.stats.probes += 1;
            self.sweep.stats.evaluations += 1;
            return Ok(Some(self.eval.evaluate_swap(a, b)?.period.value()));
        }
        let (ua, ub) = (self.eval.machine_of(a), self.eval.machine_of(b));
        let ratios = (
            self.instance.factor(a, ub) / self.instance.factor(a, ua),
            self.instance.factor(b, ua) / self.instance.factor(b, ub),
        );
        match self.sweep.probe_swap(a, b, ratios, bound) {
            CacheAnswer::Reuse(score) => Ok(Some(score)),
            CacheAnswer::Skip => Ok(None),
            CacheAnswer::Evaluate => {
                let score = self.eval.evaluate_swap(a, b)?.period.value();
                self.sweep.store_swap(a, b, score);
                Ok(Some(score))
            }
        }
    }

    /// Number of tasks strictly upstream of `task` — the size of the subtree
    /// a restage probe tears out (0 for sources, where a restage degenerates
    /// to a plain move).
    #[inline]
    pub fn subtree_size(&self, task: TaskId) -> usize {
        let (start, end) = self.eval.topology().subtree_span(task);
        end - start
    }

    /// Tears `task`'s strict subtree (its Euler-tour mass row) plus the
    /// task's own contribution out of the committed loads, then restages the
    /// whole span on the same machines with `task` itself on `to`: every
    /// upstream demand rescales by the one factor ratio the move induces, so
    /// the restage is one ratio-scaled [`place_row`] over the torn loads —
    /// `O(m log m)` instead of a full re-evaluate. Returns the staged period
    /// (within 1e-9 of a full recompute; the LNS differential test pins
    /// this). `to == machine_of(task)` restages in place and returns the
    /// current period up to staging noise.
    ///
    /// [`place_row`]: mf_core::incremental::PartialAssignmentEvaluator::place_row
    pub fn restage_move(&mut self, task: TaskId, to: MachineId) -> f64 {
        let inst = self.instance;
        let from = self.eval.machine_of(task);
        let ratio = inst.factor(task, to) / inst.factor(task, from);
        let row = self.eval.subtree_mass_row(task).to_vec();
        let mut torn = self.eval.loads().to_vec();
        for (u, &mass) in row.iter().enumerate() {
            torn[u] -= mass;
        }
        let own_old = self.eval.demand_of(task) * inst.time(task, from);
        torn[from.index()] -= own_old;
        let mut staged = PartialAssignmentEvaluator::from_loads(&torn);
        let scaled: Vec<f64> = row.iter().map(|&mass| mass * ratio).collect();
        staged.place_row(&scaled);
        staged.place(to, self.eval.demand_of(task) * ratio * inst.time(task, to));
        staged.period().value()
    }

    /// The full large-neighborhood probe: tears `root`'s strict subtree out
    /// of the committed loads, lands `root` on `to`, then re-places every
    /// subtree member greedily (consumers before producers, so each member's
    /// rechained demand is exact) on the machine minimising the staged
    /// period among its admissible targets. `plan` receives the `(task,
    /// machine)` moves that differ from the committed mapping, in a commit
    /// order that keeps demands consistent; the probe itself never mutates
    /// engine state.
    ///
    /// Specialized seeds stay specialized: members only land on machines
    /// already dedicated to their type (including ones the plan itself
    /// dedicates) or on idle machines, the same rule
    /// [`allows_move`](Self::allows_move) enforces at commit time.
    pub fn restage_greedy(
        &mut self,
        root: TaskId,
        to: MachineId,
        plan: &mut Vec<(TaskId, MachineId)>,
    ) -> RestageProbe {
        plan.clear();
        let inst = self.instance;
        let app = inst.application();
        let m = inst.machine_count();
        let from = self.eval.machine_of(root);
        let row = self.eval.subtree_mass_row(root).to_vec();
        let mut torn = self.eval.loads().to_vec();
        for (u, &mass) in row.iter().enumerate() {
            torn[u] -= mass;
        }
        let own_old = self.eval.demand_of(root) * inst.time(root, from);
        torn[from.index()] -= own_old;
        let mut staged = PartialAssignmentEvaluator::from_loads(&torn);
        let mut trials = 0usize;

        // The root lands on `to`; its demand rescales by the factor ratio.
        let out_demand_root = self.eval.demand_of(root) / inst.factor(root, from);
        staged.place(to, out_demand_root * inst.effective_time(root, to));
        trials += 1;
        if to != from {
            plan.push((root, to));
        }

        // Members in consumer-first order (reversed tour slice: every task's
        // successor has a later tour position, so it is processed first and
        // its rechained demand is available).
        let members: Vec<TaskId> = self
            .eval
            .topology()
            .strict_subtree(root)
            .iter()
            .rev()
            .map(|&t| TaskId(t as usize))
            .collect();
        // Rechained demand of the already-placed tasks (root + members).
        let mut demand_new = vec![0.0f64; inst.task_count()];
        demand_new[root.index()] = out_demand_root * inst.factor(root, to);
        // Type claims the plan has made so far, seeded from the committed
        // dedication map — the conservative specialized filter.
        let mut claimed = self.machine_type.clone();
        if self.specialized {
            claimed[to.index()] = Some(app.task_type(root));
        }
        for &s in &members {
            let ty = app.task_type(s);
            let succ = app
                .successor(s)
                .expect("strict-subtree members have a successor");
            let out_demand = demand_new[succ.index()];
            let here = self.eval.machine_of(s);
            let mut best: Option<(f64, MachineId, f64)> = None;
            for (u, claim) in claimed.iter().enumerate().take(m) {
                let v = MachineId(u);
                if self.specialized && claim.is_some() && *claim != Some(ty) {
                    continue;
                }
                let contribution = out_demand * inst.effective_time(s, v);
                staged.place(v, contribution);
                let period = staged.period().value();
                staged.unplace();
                trials += 1;
                let better = match best {
                    None => true,
                    Some((incumbent, _, _)) => period < incumbent - IMPROVEMENT_EPSILON,
                };
                if better {
                    best = Some((period, v, contribution));
                }
            }
            // An admissible machine always exists: the member's own machine
            // is dedicated to its type.
            let (_, v, contribution) =
                best.expect("the member's current machine is always admissible");
            staged.place(v, contribution);
            demand_new[s.index()] = out_demand * inst.factor(s, v);
            if self.specialized {
                claimed[v.index()] = Some(ty);
            }
            if v != here {
                plan.push((s, v));
            }
        }
        RestageProbe {
            period: staged.period().value(),
            trials,
        }
    }

    /// Syncs the sweep cache (and the opt-in trace) with the evaluator after
    /// a commit attempt; `step` builds the trace record lazily. Returns
    /// whether a real commit happened (no-op applies return `false`).
    fn after_commit(&mut self, step: impl FnOnce() -> CommitStep) -> bool {
        let commits = self.eval.counters().commits;
        if commits == self.commit_count {
            // A no-op apply: nothing changed, nothing to invalidate.
            return false;
        }
        self.commit_count = commits;
        if let Some(footprint) = self.eval.last_commit().copied() {
            self.sweep.note_commit(&footprint);
        }
        if let Some(trace) = &mut self.trace {
            trace.push(step());
        }
        true
    }

    /// Reports a real commit (and the cumulative sweep-cache counters) to
    /// the attached progress sink, if any.
    fn emit_progress(&mut self, swap: bool, a: usize, b: usize, outcome: &CommitOutcome) {
        let Some(sink) = self.progress.as_deref_mut() else {
            return;
        };
        sink.emit(ProgressEvent::Commit {
            swap,
            a: a as u64,
            b: b as u64,
            period_bits: outcome.period.to_bits(),
            improved: outcome.improved_best,
        });
        let stats = self.sweep.stats;
        sink.emit(ProgressEvent::CacheOutcome {
            probes: stats.probes,
            evaluations: stats.evaluations,
            skips: stats.skips,
            reuses: stats.reuses,
            rescales: stats.rescales,
        });
    }

    /// Commits a move, updating the type bookkeeping, the current period and
    /// the best-so-far snapshot. The returned period is the exact committed
    /// one (what-ifs on chains are ratio-scaled and may differ by a few ulp —
    /// `best` must never understate).
    pub fn commit_move(&mut self, task: TaskId, to: MachineId) -> HeuristicResult<CommitOutcome> {
        let from = self.eval.machine_of(task);
        let ty = self.instance.application().task_type(task);
        let committed = self.eval.apply_move(task, to)?.period.value();
        let real_commit = self.after_commit(|| CommitStep::Move {
            task: task.index(),
            to: to.index(),
            period: committed.to_bits(),
        });
        if from != to {
            self.tasks_on[from.index()] -= 1;
            if self.tasks_on[from.index()] == 0 {
                self.machine_type[from.index()] = None;
            }
            self.tasks_on[to.index()] += 1;
            self.machine_type[to.index()] = Some(ty);
        }
        let outcome = self.record(committed);
        if real_commit {
            self.emit_progress(false, task.index(), to.index(), &outcome);
        }
        Ok(outcome)
    }

    /// Commits a swap of the machines of `a` and `b`.
    pub fn commit_swap(&mut self, a: TaskId, b: TaskId) -> HeuristicResult<CommitOutcome> {
        let (ua, ub) = (self.eval.machine_of(a), self.eval.machine_of(b));
        let app = self.instance.application();
        let (ta, tb) = (app.task_type(a), app.task_type(b));
        let committed = self.eval.apply_swap(a, b)?.period.value();
        let real_commit = self.after_commit(|| CommitStep::Swap {
            a: a.index(),
            b: b.index(),
            period: committed.to_bits(),
        });
        if ua != ub && ta != tb {
            self.machine_type[ua.index()] = Some(tb);
            self.machine_type[ub.index()] = Some(ta);
        }
        let outcome = self.record(committed);
        if real_commit {
            self.emit_progress(true, a.index(), b.index(), &outcome);
        }
        Ok(outcome)
    }

    fn record(&mut self, committed: f64) -> CommitOutcome {
        self.current = committed;
        let improved_best = committed < self.best - IMPROVEMENT_EPSILON;
        if improved_best {
            self.best = committed;
            self.best_mapping = self.eval.mapping();
        }
        CommitOutcome {
            period: committed,
            improved_best,
        }
    }

    /// Rewinds the current mapping to the best-so-far snapshot — the restart
    /// primitive behind [`AnnealedClimb`](crate::search::AnnealedClimb)'s
    /// restart waves. Rebuilds the evaluator and the type bookkeeping from
    /// the best mapping and resets the sweep cache (its certificates
    /// describe the abandoned trajectory). The budget, the best period and
    /// the best mapping are untouched, so the never-worse-than-seed
    /// guarantee survives any number of rewinds.
    pub fn rewind_to_best(&mut self) -> HeuristicResult<()> {
        let mapping = self.best_mapping.clone();
        self.eval = IncrementalEvaluator::new(self.instance, &mapping)?;
        let app = self.instance.application();
        self.machine_type.iter_mut().for_each(|ty| *ty = None);
        self.tasks_on.iter_mut().for_each(|count| *count = 0);
        for task in app.tasks() {
            let u = mapping.machine_of(task.id).index();
            self.tasks_on[u] += 1;
            self.machine_type[u] = Some(task.ty);
        }
        self.current = self.eval.period().value();
        self.sweep.reset();
        self.commit_count = self.eval.counters().commits;
        Ok(())
    }

    /// Materialises the current (last committed) assignment — which may be
    /// worse than [`into_best`](Self::into_best) when the strategy accepted
    /// uphill steps.
    pub fn current_mapping(&self) -> Mapping {
        self.eval.mapping()
    }

    /// The best mapping seen (the seed itself if nothing improved on it).
    pub fn into_best(self) -> Mapping {
        self.best_mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::h4_family::H4wFastestMachine;
    use crate::Heuristic;
    use rand::SeedableRng;

    fn instance() -> Instance {
        let app = Application::linear_chain(&[0, 1, 0, 1]).unwrap();
        let platform = Platform::from_type_times(
            3,
            vec![vec![100.0, 200.0, 400.0], vec![300.0, 150.0, 250.0]],
        )
        .unwrap();
        let failures = FailureModel::uniform(4, 3, FailureRate::new(0.05).unwrap());
        Instance::new(app, platform, failures).unwrap()
    }

    #[test]
    fn budget_is_metered_and_saturates() {
        let inst = instance();
        let seed = H4wFastestMachine.map(&inst).unwrap();
        let mut engine = SearchEngine::new(&inst, &seed, 3).unwrap();
        assert!(!engine.exhausted());
        engine.charge(2);
        assert!(!engine.exhausted());
        engine.charge(usize::MAX);
        assert!(engine.exhausted());
        assert_eq!(engine.steps(), usize::MAX);
    }

    #[test]
    fn specialized_filters_apply_and_commits_update_bookkeeping() {
        let inst = instance();
        let seed = H4wFastestMachine.map(&inst).unwrap();
        assert!(inst.is_specialized(&seed));
        let mut engine = SearchEngine::new(&inst, &seed, 100).unwrap();
        assert!(engine.preserves_specialization());
        // Self-moves and same-machine swaps are never admissible.
        let t0 = TaskId(0);
        assert!(!engine.allows_move(t0, engine.machine_of(t0)));
        assert!(!engine.allows_swap(t0, t0));
        // Every admissible committed move keeps the mapping specialized.
        for t in 0..inst.task_count() {
            for u in 0..inst.machine_count() {
                let (task, to) = (TaskId(t), MachineId(u));
                if engine.allows_move(task, to) {
                    engine.commit_move(task, to).unwrap();
                    assert!(inst.is_specialized(&engine.current_mapping()));
                }
            }
        }
    }

    #[test]
    fn best_is_never_worse_than_the_seed() {
        let inst = instance();
        let seed = H4wFastestMachine.map(&inst).unwrap();
        let seed_period = inst.period(&seed).unwrap().value();
        let mut engine = SearchEngine::new(&inst, &seed, 100).unwrap();
        // Commit a few arbitrary (possibly degrading) admissible moves.
        for t in 0..inst.task_count() {
            for u in 0..inst.machine_count() {
                let (task, to) = (TaskId(t), MachineId(u));
                if engine.allows_move(task, to) {
                    engine.commit_move(task, to).unwrap();
                }
            }
        }
        let best = engine.best_period();
        let mapping = engine.into_best();
        let final_period = inst.period(&mapping).unwrap().value();
        assert!(final_period <= seed_period + 1e-9);
        assert!((final_period - best).abs() <= 1e-9 * best.max(1.0));
    }

    #[test]
    fn progress_sink_mirrors_the_commit_trace_and_changes_nothing() {
        use crate::search::SearchStrategy;
        use crate::search::SteepestDescent;
        use mf_obs::{ProgressEvent, SamplingSink};

        let inst = instance();
        let seed = H4wFastestMachine.map(&inst).unwrap();

        let mut reference = SearchEngine::new(&inst, &seed, 10_000).unwrap();
        reference.enable_commit_trace();
        SteepestDescent::default().run(&mut reference).unwrap();
        let steps: Vec<CommitStep> = reference.commit_trace().to_vec();
        let reference_best = reference.into_best();

        let mut sink = SamplingSink::new(usize::MAX);
        let mut observed = SearchEngine::new(&inst, &seed, 10_000).unwrap();
        observed.set_progress_sink(&mut sink);
        SteepestDescent::default().run(&mut observed).unwrap();
        let observed_best = observed.into_best();

        // The sink is write-only: identical result with or without it.
        assert_eq!(observed_best, reference_best);

        // Every commit event mirrors the commit-trace step exactly.
        let commits: Vec<(bool, u64, u64, u64)> = sink
            .events()
            .iter()
            .filter_map(|event| match *event {
                ProgressEvent::Commit {
                    swap,
                    a,
                    b,
                    period_bits,
                    ..
                } => Some((swap, a, b, period_bits)),
                _ => None,
            })
            .collect();
        let expected: Vec<(bool, u64, u64, u64)> = steps
            .iter()
            .map(|step| match *step {
                CommitStep::Move { task, to, period } => (false, task as u64, to as u64, period),
                CommitStep::Swap { a, b, period } => (true, a as u64, b as u64, period),
            })
            .collect();
        assert!(!expected.is_empty(), "the fixture must commit something");
        assert_eq!(commits, expected);
    }

    #[test]
    fn metropolis_accepts_improvements_and_respects_zero_temperature() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(metropolis(-1.0, 0.0, &mut rng));
        assert!(!metropolis(1.0, 0.0, &mut rng));
        // Positive temperature: uphill steps are sometimes taken.
        let taken = (0..1000).filter(|_| metropolis(1.0, 2.0, &mut rng)).count();
        assert!(taken > 200 && taken < 900, "exp(-0.5) ≈ 0.61, got {taken}");
    }
}
