//! Subtree-move large-neighborhood search (LNS).
//!
//! SD/H6/tabu walk the single-move/swap neighborhood; on the paper's
//! Figure-1 joins they stall in local optima where no *single* reassignment
//! helps but relocating a whole producer subtree does. This strategy
//! searches that larger neighborhood directly:
//!
//! 1. pick a subtree root (seeded RNG, uniform over tasks with a non-empty
//!    strict subtree);
//! 2. rank every admissible landing machine for the root with
//!    [`SearchEngine::restage_move`] — tear the subtree's Euler-tour mass
//!    row plus the root's own contribution out of the committed loads, then
//!    restage the ratio-scaled row with one
//!    [`place_row`](mf_core::incremental::PartialAssignmentEvaluator::place_row)
//!    over the torn loads, `O(m log m)` per probe instead of a full
//!    re-evaluate;
//! 3. on the best landing spot, run the full greedy restage
//!    ([`SearchEngine::restage_greedy`]): members re-place one by one,
//!    consumers before producers so every rechained demand is exact,
//!    each on the staged-period-minimising admissible machine;
//! 4. commit whichever candidate (compound plan or plain root move)
//!    improves the incumbent, as ordinary engine moves — so the sweep
//!    cache, the commit trace and the progress sink all see LNS commits
//!    exactly like SD/H6 ones.
//!
//! Determinism: one seeded RNG stream, ties broken by scan order, budget
//! metered through [`SearchEngine::charge`] in candidate evaluations. The
//! engine's best-so-far snapshot makes the result never worse than the
//! seed, like every strategy.

use crate::search::engine::{SearchEngine, IMPROVEMENT_EPSILON};
use crate::search::strategy::SearchStrategy;
use crate::HeuristicResult;
use mf_core::prelude::*;
use mf_core::seed::splitmix64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs of the subtree-move LNS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LnsConfig {
    /// Stop after this many consecutive rounds without an improvement.
    pub stale_limit: usize,
    /// Seed of the root-selection RNG stream (mixed through
    /// [`splitmix64`] like every strategy stream).
    pub seed: u64,
}

impl Default for LnsConfig {
    fn default() -> Self {
        LnsConfig {
            stale_limit: 64,
            seed: 0x1A55_7B3E,
        }
    }
}

/// Tear-out-and-restage large-neighborhood search over subtree moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubtreeMoveLns {
    config: LnsConfig,
}

impl SubtreeMoveLns {
    /// An LNS with explicit knobs.
    pub fn new(config: LnsConfig) -> Self {
        SubtreeMoveLns { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LnsConfig {
        &self.config
    }
}

impl Default for SubtreeMoveLns {
    fn default() -> Self {
        SubtreeMoveLns::new(LnsConfig::default())
    }
}

impl SearchStrategy for SubtreeMoveLns {
    fn name(&self) -> &str {
        "subtree-lns"
    }

    fn run(&self, engine: &mut SearchEngine<'_>) -> HeuristicResult<()> {
        let n = engine.tasks();
        let m = engine.machines();
        if n == 0 || m < 2 {
            return Ok(());
        }
        // Roots worth tearing: tasks with at least one upstream producer.
        // Sources degrade the restage to a plain move, so only fall back to
        // them when the application has no joins or chains at all.
        let mut roots: Vec<TaskId> = (0..n)
            .map(TaskId)
            .filter(|&t| engine.subtree_size(t) > 0)
            .collect();
        if roots.is_empty() {
            roots = (0..n).map(TaskId).collect();
        }
        let mut rng = StdRng::seed_from_u64(splitmix64(self.config.seed));
        let mut stale = 0usize;
        let mut plan: Vec<(TaskId, MachineId)> = Vec::new();

        while !engine.exhausted() && stale < self.config.stale_limit {
            let root = roots[rng.gen_range(0..roots.len())];
            let from = engine.machine_of(root);

            // Rank landing machines with the cheap ratio-scaled restage.
            // The current machine is always a candidate: `to == from` makes
            // the follow-up greedy a pure member reshuffle.
            let mut best_to = from;
            let mut best_score = f64::INFINITY;
            for u in 0..m {
                let to = MachineId(u);
                if to != from && !engine.allows_move(root, to) {
                    continue;
                }
                engine.charge(1);
                let score = engine.restage_move(root, to);
                if score < best_score - IMPROVEMENT_EPSILON {
                    best_score = score;
                    best_to = to;
                }
                if engine.exhausted() {
                    break;
                }
            }

            // Full greedy restage on the chosen landing spot.
            let probe = engine.restage_greedy(root, best_to, &mut plan);
            engine.charge(probe.trials);

            let current = engine.current_period();
            if probe.period < current - IMPROVEMENT_EPSILON && !plan.is_empty() {
                // Commit the compound plan as ordinary moves, in the
                // demand-consistent order the probe produced. Re-check
                // admissibility defensively; the plan's claims make
                // refusals impossible, but a skipped member still leaves a
                // valid specialized mapping.
                for &(task, to) in plan.iter() {
                    if engine.allows_move(task, to) {
                        engine.commit_move(task, to)?;
                    }
                }
                stale = 0;
            } else if best_score < current - IMPROVEMENT_EPSILON && best_to != from {
                engine.commit_move(root, best_to)?;
                stale = 0;
            } else {
                stale += 1;
            }
        }
        Ok(())
    }
}
