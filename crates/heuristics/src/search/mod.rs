//! Strategy-driven neighborhood search over mapping move/swap neighborhoods.
//!
//! The paper's best results pair a cheap constructive mapping with search;
//! this module factors the search loop that used to live inside
//! [`H6LocalSearch`](crate::h6_local_search::H6LocalSearch) into reusable
//! parts:
//!
//! * [`SearchEngine`] — the shared machinery every strategy drives: it owns
//!   the [`IncrementalEvaluator`](mf_core::incremental::IncrementalEvaluator)
//!   (so one candidate costs `O(affected tasks + log m)` instead of a full
//!   recompute), enforces the specialized rule on every proposal, tracks the
//!   best mapping seen (a strategy can therefore never return worse than its
//!   seed), meters the evaluation budget, and runs the **dirty-candidate
//!   sweep cache**: each commit's
//!   [`CommitFootprint`](mf_core::incremental::CommitFootprint) (touched
//!   machines + invalidated tour spans) lets the next sweep re-evaluate only the
//!   candidates the commit could have helped, reusing certified scores for
//!   the rest — bit-identical chosen moves, measurably fewer evaluator
//!   calls ([`SweepCacheStats`]);
//! * [`SearchStrategy`] — the policy layer: which neighbors to look at, in
//!   what order, and which one to take;
//! * three strategies:
//!   [`AnnealedClimb`] (the H6 hill climb with mild annealing, bit-identical
//!   to the pre-refactor `H6` for the same seeds),
//!   [`SteepestDescent`] (full `n·m` move + swap sweep per iteration,
//!   descending until a local optimum), and
//!   [`TabuSearch`] (steepest admissible neighbor even when uphill, with a
//!   recency-keyed tabu list and aspiration);
//! * [`SearchHeuristic`] — an adapter that seeds the engine with a
//!   constructive heuristic and registers the pair under a registry name
//!   (`"SD"`, `"TS-H2"`, … — see
//!   [`registry_names`](crate::heuristic::registry_names)).
//!
//! ```
//! use mf_core::prelude::*;
//! use mf_heuristics::search::{SearchEngine, SearchStrategy, SteepestDescent};
//! use mf_heuristics::{H4wFastestMachine, Heuristic};
//!
//! let app = Application::linear_chain(&[0, 1, 0, 1, 0, 1]).unwrap();
//! let platform = Platform::from_type_times(3, vec![vec![100.0, 150.0, 120.0]; 2]).unwrap();
//! let failures = FailureModel::uniform(6, 3, FailureRate::new(0.01).unwrap());
//! let instance = Instance::new(app, platform, failures).unwrap();
//!
//! let seed = H4wFastestMachine.map(&instance).unwrap();
//! let mut engine = SearchEngine::new(&instance, &seed, 10_000).unwrap();
//! SteepestDescent::default().run(&mut engine).unwrap();
//! let polished = engine.into_best();
//! assert!(instance.period(&polished).unwrap() <= instance.period(&seed).unwrap());
//! ```

pub mod annealed;
pub(crate) mod candidate;
pub mod engine;
pub mod lns;
pub mod steepest;
pub mod strategy;
mod sweep_cache;
pub mod tabu;

pub use annealed::{AnnealedClimb, LocalSearchConfig};
pub use engine::{
    metropolis, CommitOutcome, CommitStep, RestageProbe, SearchEngine, IMPROVEMENT_EPSILON,
    SWEEP_CACHE_MIN_MACHINES,
};
pub use lns::{LnsConfig, SubtreeMoveLns};
pub use steepest::{SteepestDescent, SteepestDescentConfig};
pub use strategy::{
    polish_with, polish_with_progress, polish_with_telemetry, SearchHeuristic, SearchStrategy,
    SearchTelemetry,
};
pub use sweep_cache::SweepCacheStats;
pub use tabu::{TabuConfig, TabuSearch};
