//! Steepest descent: full-neighborhood sweeps until a local optimum.
//!
//! Each iteration scores **every** admissible move (`n·m` candidates) and —
//! optionally — every admissible swap (`n·(n−1)/2` candidates) through the
//! engine's incremental evaluator, then commits the single best improving
//! neighbor. On linear chains the evaluator answers each what-if from its
//! prefix-mass row cache, so a whole sweep costs `O(n·m)` row work amortized
//! plus one `O(m)` scan per candidate — cheap enough that sweeping the full
//! neighborhood is competitive with H6's random probing (the
//! `search_strategies` bench and the ignored `sweep_scaling` probe measure
//! this).
//!
//! The strategy is fully deterministic: no RNG, ties broken by scan order
//! (lowest task, then lowest machine, moves before swaps).

use crate::search::candidate::{better_than, Candidate};
use crate::search::engine::{SearchEngine, IMPROVEMENT_EPSILON};
use crate::search::strategy::SearchStrategy;
use crate::HeuristicResult;
use mf_core::prelude::*;

/// Tuning knobs of the steepest-descent sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SteepestDescentConfig {
    /// Maximum number of sweep-and-commit iterations (the search usually
    /// stops earlier, at a local optimum).
    pub max_sweeps: usize,
    /// Also sweep the two-task swap neighborhood (`n·(n−1)/2` extra
    /// candidates per iteration). Swaps escape the "both machines full"
    /// plateaus that moves alone cannot.
    pub include_swaps: bool,
}

impl Default for SteepestDescentConfig {
    fn default() -> Self {
        SteepestDescentConfig {
            max_sweeps: 256,
            include_swaps: true,
        }
    }
}

/// Full-neighborhood steepest descent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SteepestDescent {
    config: SteepestDescentConfig,
}

impl SteepestDescent {
    /// A descent with explicit knobs.
    pub fn new(config: SteepestDescentConfig) -> Self {
        SteepestDescent { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SteepestDescentConfig {
        &self.config
    }

    /// Scores the full neighborhood and returns the best candidate with its
    /// what-if period (scan-order tie-break). `None` when no candidate is
    /// admissible.
    ///
    /// Candidates are probed through the engine's dirty-candidate sweep
    /// cache: a candidate whose cached score certifies it cannot score
    /// strictly below the incumbent-so-far is skipped without an evaluator
    /// call. Ties break to the earlier candidate in scan order, so the
    /// chosen neighbor — and the whole descent — is bit-identical to an
    /// uncached full sweep.
    fn best_neighbor(
        &self,
        engine: &mut SearchEngine<'_>,
    ) -> HeuristicResult<Option<(f64, Candidate)>> {
        let n = engine.tasks();
        let m = engine.machines();
        let mut best: Option<(f64, Candidate)> = None;
        for t in 0..n {
            let task = TaskId(t);
            for u in 0..m {
                let to = MachineId(u);
                if !engine.allows_move(task, to) {
                    continue;
                }
                engine.charge(1);
                let bound = best.map_or(f64::INFINITY, |(period, _)| period);
                let Some(period) = engine.probe_move(task, to, bound)? else {
                    continue;
                };
                if better_than(period, &best) {
                    best = Some((period, Candidate::Move(task, to)));
                }
            }
        }
        if self.config.include_swaps {
            for a in 0..n {
                for b in (a + 1)..n {
                    let (a, b) = (TaskId(a), TaskId(b));
                    if !engine.allows_swap(a, b) {
                        continue;
                    }
                    engine.charge(1);
                    let bound = best.map_or(f64::INFINITY, |(period, _)| period);
                    let Some(period) = engine.probe_swap(a, b, bound)? else {
                        continue;
                    };
                    if better_than(period, &best) {
                        best = Some((period, Candidate::Swap(a, b)));
                    }
                }
            }
        }
        Ok(best)
    }
}

impl SearchStrategy for SteepestDescent {
    fn name(&self) -> &str {
        "steepest-descent"
    }

    fn run(&self, engine: &mut SearchEngine<'_>) -> HeuristicResult<()> {
        if engine.tasks() == 0 || engine.machines() < 2 {
            return Ok(());
        }
        // Sweeps are atomic: the budget is checked between sweeps, so the
        // last sweep may overrun it by one neighborhood.
        for _ in 0..self.config.max_sweeps {
            if engine.exhausted() {
                break;
            }
            let current = engine.current_period();
            match self.best_neighbor(engine)? {
                Some((period, candidate)) if period < current - IMPROVEMENT_EPSILON => {
                    candidate.commit(engine)?;
                }
                // Local optimum (or nothing admissible): done.
                _ => break,
            }
        }
        Ok(())
    }
}
