//! The [`SearchStrategy`] trait and the [`SearchHeuristic`] adapter that
//! turns (constructive seed heuristic + strategy) into a registrable
//! [`Heuristic`].

use crate::heuristic::{Heuristic, HeuristicResult};
use crate::search::engine::SearchEngine;
use crate::search::sweep_cache::SweepCacheStats;
use mf_core::incremental::EvalCounters;
use mf_core::prelude::*;
use mf_obs::ProgressSink;

/// Telemetry harvested from one search-driven solve: the sweep-cache
/// probe/skip/rescale counters and the evaluator's what-if/mass-row
/// counters. Surfaced through [`Heuristic::map_traced`] so callers (the
/// serving tier's `stats` keys, for one) can report evaluator-call savings
/// without re-running the search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchTelemetry {
    /// Sweep-cache effectiveness of the run.
    pub sweep: SweepCacheStats,
    /// Evaluator counters accumulated over the run.
    pub eval: EvalCounters,
}

/// A search policy over the move/swap neighborhoods.
///
/// A strategy drives a [`SearchEngine`]: it decides which neighbors to score
/// and which to commit; the engine supplies incremental evaluation, the
/// specialized-rule filter, best-so-far tracking and the budget. Because the
/// engine snapshots the best mapping seen (seeded with the start mapping),
/// **no strategy can return a mapping worse than its seed**.
pub trait SearchStrategy {
    /// Short policy name used in labels (`"annealed"`, `"steepest-descent"`,
    /// `"tabu"`).
    fn name(&self) -> &str;

    /// Runs the policy until its own termination rule or the engine budget
    /// stops it. The result is harvested from the engine afterwards.
    fn run(&self, engine: &mut SearchEngine<'_>) -> HeuristicResult<()>;
}

/// Polishes an existing mapping with a strategy, within an evaluation
/// budget. The returned mapping's period is never worse than `mapping`'s,
/// and a specialized `mapping` stays specialized.
pub fn polish_with(
    instance: &Instance,
    mapping: &Mapping,
    strategy: &dyn SearchStrategy,
    budget: usize,
) -> HeuristicResult<Mapping> {
    Ok(polish_with_telemetry(instance, mapping, strategy, budget)?.0)
}

/// [`polish_with`], additionally reporting the run's [`SearchTelemetry`]
/// (`None` when the degenerate-shape short-circuit skipped the engine).
/// The returned mapping is bit-identical to [`polish_with`]'s — the same
/// engine drives the same strategy; only the harvest differs.
pub fn polish_with_telemetry(
    instance: &Instance,
    mapping: &Mapping,
    strategy: &dyn SearchStrategy,
    budget: usize,
) -> HeuristicResult<(Mapping, Option<SearchTelemetry>)> {
    if instance.task_count() == 0 || instance.machine_count() < 2 || budget == 0 {
        return Ok((mapping.clone(), None));
    }
    let mut engine = SearchEngine::new(instance, mapping, budget)?;
    strategy.run(&mut engine)?;
    let telemetry = SearchTelemetry {
        sweep: engine.sweep_stats(),
        eval: engine.evaluator_counters(),
    };
    Ok((engine.into_best(), Some(telemetry)))
}

/// [`polish_with`], additionally streaming every committed step and the
/// cumulative cache outcomes into `sink` (see
/// [`SearchEngine::set_progress_sink`]). The returned mapping is
/// bit-identical to [`polish_with`]'s — the sink is write-only, it cannot
/// steer the search. The degenerate-shape short-circuit emits nothing.
pub fn polish_with_progress(
    instance: &Instance,
    mapping: &Mapping,
    strategy: &dyn SearchStrategy,
    budget: usize,
    sink: &mut dyn ProgressSink,
) -> HeuristicResult<(Mapping, Option<SearchTelemetry>)> {
    if instance.task_count() == 0 || instance.machine_count() < 2 || budget == 0 {
        return Ok((mapping.clone(), None));
    }
    let mut engine = SearchEngine::new(instance, mapping, budget)?;
    engine.set_progress_sink(sink);
    strategy.run(&mut engine)?;
    let telemetry = SearchTelemetry {
        sweep: engine.sweep_stats(),
        eval: engine.evaluator_counters(),
    };
    Ok((engine.into_best(), Some(telemetry)))
}

/// A constructive seed heuristic refined by a search strategy — the shape
/// behind every `H6`/`SD`/`TS` registry name.
pub struct SearchHeuristic {
    inner: Box<dyn Heuristic + Send + Sync>,
    strategy: Box<dyn SearchStrategy + Send + Sync>,
    budget: usize,
    name: String,
}

impl SearchHeuristic {
    /// Seeds the engine with `inner`'s mapping, then runs `strategy` with
    /// `budget` candidate evaluations. `name` is the registry name
    /// (e.g. `"SD-H2"`).
    pub fn new(
        inner: Box<dyn Heuristic + Send + Sync>,
        strategy: Box<dyn SearchStrategy + Send + Sync>,
        budget: usize,
        name: impl Into<String>,
    ) -> Self {
        SearchHeuristic {
            inner,
            strategy,
            budget,
            name: name.into(),
        }
    }

    /// The evaluation budget handed to the engine.
    pub fn budget(&self) -> usize {
        self.budget
    }
}

impl Heuristic for SearchHeuristic {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(&self, instance: &Instance) -> HeuristicResult<Mapping> {
        let seeded = self.inner.map(instance)?;
        polish_with(instance, &seeded, self.strategy.as_ref(), self.budget)
    }

    fn map_traced(
        &self,
        instance: &Instance,
    ) -> HeuristicResult<(Mapping, Option<SearchTelemetry>)> {
        let seeded = self.inner.map(instance)?;
        polish_with_telemetry(instance, &seeded, self.strategy.as_ref(), self.budget)
    }

    fn map_with_progress(
        &self,
        instance: &Instance,
        sink: &mut dyn ProgressSink,
    ) -> HeuristicResult<Mapping> {
        let seeded = self.inner.map(instance)?;
        Ok(polish_with_progress(instance, &seeded, self.strategy.as_ref(), self.budget, sink)?.0)
    }
}
