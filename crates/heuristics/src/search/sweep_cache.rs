//! The dirty-candidate sweep cache: skip re-evaluating candidates a commit
//! provably did not help.
//!
//! A steepest-descent or tabu iteration scores the whole `n·m` move (and
//! `n²/2` swap) neighborhood, then commits **one** candidate. That commit
//! only changes the loads of the machines it touched and the demands of the
//! committed tasks' subtrees (their tour spans, see
//! [`Topology`](mf_core::incremental::Topology)) — the *structure* of every
//! other candidate is untouched, and its score can only shift by the load
//! deltas the commit applied.
//!
//! The cache stores the last **exact** what-if score of every candidate plus
//! the commit index it was scored at. On the next sweep a candidate is
//! skipped — without calling the evaluator — when
//!
//! 1. it is **structure-clean**: no commit since its score was taken has a
//!    [`CommitFootprint`] span overlapping the candidate's subtree span(s)
//!    (overlap would change its demands, factors or mass rows), and
//! 2. its **certified lower bound** `score + Σ min(0, min_load_delta) −
//!    guard` is already no better than the best exact score seen earlier in
//!    the scan: since every machine value is monotone in the machine load
//!    and no load dropped by more than `min_load_delta` per commit, the
//!    candidate's true current score cannot beat the incumbent, and —
//!    because sweeps tie-break strictly by scan order — skipping it cannot
//!    change the chosen move.
//!
//! The guard term (`1e-9` relative per commit) over-covers float
//! accumulation between the cached and the live evaluation by several
//! orders of magnitude, so the bound stays *certified*: dirty-candidate
//! sweeps pick the **bit-identical** move sequence of a full sweep (pinned
//! by the `sweep_cache_differential` test), they just call the evaluator
//! less — [`SweepCacheStats`] counts how much less.

use mf_core::incremental::CommitFootprint;
use mf_core::prelude::*;

/// Hit/miss counters of one engine's sweep cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCacheStats {
    /// Candidate probes routed through the cache.
    pub probes: u64,
    /// Probes that had to call the evaluator (cold, structure-dirty, or the
    /// bound could not rule the candidate out).
    pub evaluations: u64,
    /// Probes answered "provably not better than the incumbent" without an
    /// evaluator call.
    pub skips: u64,
    /// Probes answered with a stored exact score (no commit since it was
    /// taken) without an evaluator call.
    pub reuses: u64,
}

/// Per-candidate score cache with commit-footprint invalidation.
///
/// `stamp` values are `commit index + 1` (`0` = never scored). The commit
/// log keeps, per commit, the invalidated tour spans and the running sum of
/// `min(0, min_load_delta)`; both are consulted lazily at probe time.
#[derive(Debug)]
pub(crate) struct SweepCache {
    tasks: usize,
    machines: usize,
    /// `true` when a candidate table would exceed [`MAX_ENTRIES`]; that
    /// table then stays off entirely.
    moves_capped: bool,
    swaps_capped: bool,
    /// Move candidates, `task · m + machine` — allocated on first probe, so
    /// strategies that never sweep (the annealed climb) pay nothing.
    move_score: Vec<f64>,
    move_stamp: Vec<u32>,
    /// Swap candidates, `min · n + max` (only `min < max` slots are used);
    /// allocated on first swap probe.
    swap_score: Vec<f64>,
    swap_stamp: Vec<u32>,
    /// Inclusive tour span of every task's subtree.
    span: Vec<(u32, u32)>,
    /// Tour spans invalidated by each commit since the last reset.
    commit_spans: Vec<[Option<(u32, u32)>; 2]>,
    /// `drop_prefix[k]` = Σ over the first `k` commits of
    /// `min(0, min_load_delta)` — how far any load (and so any clean
    /// candidate's score) can have dropped.
    drop_prefix: Vec<f64>,
    pub(crate) stats: SweepCacheStats,
}

/// Commits a candidate may look back through before it counts as dirty
/// (bounds the per-probe span scan; sweeps refresh far sooner anyway).
const MAX_LOOKBACK: u32 = 32;

/// Commit-log length that triggers a full reset (keeps memory flat for
/// commit-heavy non-sweep strategies that share the engine).
const MAX_LOG: usize = 4096;

/// Candidate-table cap: above this many entries per table the cache turns
/// itself off rather than allocate unbounded score storage.
const MAX_ENTRIES: usize = 1 << 22;

impl SweepCache {
    /// An empty cache over the engine's candidate space. `span` is the
    /// inclusive tour span of every task (from the evaluator's topology).
    pub(crate) fn new(tasks: usize, machines: usize, span: Vec<(u32, u32)>) -> Self {
        SweepCache {
            tasks,
            machines,
            moves_capped: tasks.saturating_mul(machines) > MAX_ENTRIES,
            swaps_capped: tasks.saturating_mul(tasks) > MAX_ENTRIES,
            move_score: Vec::new(),
            move_stamp: Vec::new(),
            swap_score: Vec::new(),
            swap_stamp: Vec::new(),
            span,
            commit_spans: Vec::new(),
            drop_prefix: vec![0.0],
            stats: SweepCacheStats::default(),
        }
    }

    /// Forgets every cached score (keeps the allocations).
    pub(crate) fn reset(&mut self) {
        self.move_stamp.fill(0);
        self.swap_stamp.fill(0);
        self.commit_spans.clear();
        self.drop_prefix.clear();
        self.drop_prefix.push(0.0);
    }

    /// Records a committed operation's invalidation footprint.
    pub(crate) fn note_commit(&mut self, footprint: &CommitFootprint) {
        if self.commit_spans.len() >= MAX_LOG {
            self.reset();
        }
        let shrink =
            |span: Option<(usize, usize)>| span.map(|(start, end)| (start as u32, end as u32));
        self.commit_spans
            .push([shrink(footprint.spans[0]), shrink(footprint.spans[1])]);
        let total =
            self.drop_prefix.last().copied().unwrap_or(0.0) + footprint.min_load_delta.min(0.0);
        self.drop_prefix.push(total);
    }

    /// Number of commits recorded since the last reset.
    #[inline]
    fn now(&self) -> u32 {
        self.commit_spans.len() as u32
    }

    /// `true` when none of the commits in `stamp-1..now` overlaps any of the
    /// candidate's subtree spans (its structure is unchanged).
    fn structure_clean(&self, stamp: u32, candidate_spans: &[(u32, u32)]) -> bool {
        let since = stamp - 1;
        if self.now() - since > MAX_LOOKBACK {
            return false;
        }
        self.commit_spans[since as usize..].iter().all(|commit| {
            commit.iter().flatten().all(|&(s, e)| {
                candidate_spans
                    .iter()
                    .all(|&(cs, ce)| !(cs <= e && s <= ce))
            })
        })
    }

    /// The certified lower bound on the candidate's current exact score,
    /// given its cached score and stamp: the cached value minus every load
    /// drop since, minus a per-commit float guard.
    fn lower_bound(&self, score: f64, stamp: u32) -> f64 {
        let since = (stamp - 1) as usize;
        let drop = self.drop_prefix[self.now() as usize] - self.drop_prefix[since];
        let commits = (self.now() as usize - since) as f64;
        score + drop - commits * 1e-9 * (1.0 + score.abs())
    }

    /// Consults the cache for move `(task, to)`: `Reuse(score)` when the
    /// stored exact score is still current, `Skip` when the candidate
    /// provably cannot beat `bound`, `Evaluate` otherwise.
    /// Allocates the move tables on first use.
    fn ensure_moves(&mut self) {
        if self.move_score.is_empty() {
            self.move_score = vec![0.0; self.tasks * self.machines];
            self.move_stamp = vec![0; self.tasks * self.machines];
        }
    }

    /// Allocates the swap tables on first use.
    fn ensure_swaps(&mut self) {
        if self.swap_score.is_empty() {
            self.swap_score = vec![0.0; self.tasks * self.tasks];
            self.swap_stamp = vec![0; self.tasks * self.tasks];
        }
    }

    pub(crate) fn probe_move(&mut self, task: TaskId, to: MachineId, bound: f64) -> CacheAnswer {
        self.stats.probes += 1;
        if self.moves_capped {
            self.stats.evaluations += 1;
            return CacheAnswer::Evaluate;
        }
        self.ensure_moves();
        let slot = task.index() * self.machines + to.index();
        self.answer(
            self.move_stamp[slot],
            self.move_score[slot],
            &[self.span[task.index()]],
            bound,
        )
    }

    /// Stores the exact score of move `(task, to)` at the current commit
    /// index.
    pub(crate) fn store_move(&mut self, task: TaskId, to: MachineId, score: f64) {
        if self.moves_capped {
            return;
        }
        self.ensure_moves();
        let slot = task.index() * self.machines + to.index();
        self.move_score[slot] = score;
        self.move_stamp[slot] = self.now() + 1;
    }

    /// Consults the cache for the swap of `a` and `b` (order-insensitive).
    pub(crate) fn probe_swap(&mut self, a: TaskId, b: TaskId, bound: f64) -> CacheAnswer {
        self.stats.probes += 1;
        if self.swaps_capped {
            self.stats.evaluations += 1;
            return CacheAnswer::Evaluate;
        }
        self.ensure_swaps();
        let slot = self.swap_slot(a, b);
        self.answer(
            self.swap_stamp[slot],
            self.swap_score[slot],
            &[self.span[a.index()], self.span[b.index()]],
            bound,
        )
    }

    /// Stores the exact score of the swap of `a` and `b`.
    pub(crate) fn store_swap(&mut self, a: TaskId, b: TaskId, score: f64) {
        if self.swaps_capped {
            return;
        }
        self.ensure_swaps();
        let slot = self.swap_slot(a, b);
        self.swap_score[slot] = score;
        self.swap_stamp[slot] = self.now() + 1;
    }

    #[inline]
    fn swap_slot(&self, a: TaskId, b: TaskId) -> usize {
        let (lo, hi) = if a.index() < b.index() {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        lo * self.tasks + hi
    }

    fn answer(&mut self, stamp: u32, score: f64, spans: &[(u32, u32)], bound: f64) -> CacheAnswer {
        if stamp == 0 {
            self.stats.evaluations += 1;
            return CacheAnswer::Evaluate;
        }
        if stamp == self.now() + 1 {
            // No commit since the score was taken: it is exact right now.
            self.stats.reuses += 1;
            return CacheAnswer::Reuse(score);
        }
        // The bound is cheap float math and usually decides; the span-overlap
        // scan only runs when the bound could actually certify a skip.
        if self.lower_bound(score, stamp) >= bound && self.structure_clean(stamp, spans) {
            self.stats.skips += 1;
            return CacheAnswer::Skip;
        }
        self.stats.evaluations += 1;
        CacheAnswer::Evaluate
    }
}

/// What a cache probe concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CacheAnswer {
    /// The stored score is exact for the current committed state.
    Reuse(f64),
    /// The candidate provably cannot beat the caller's bound.
    Skip,
    /// The cache cannot certify anything: evaluate (and store) the score.
    Evaluate,
}
