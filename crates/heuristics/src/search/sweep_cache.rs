//! The dirty-candidate sweep cache: skip re-evaluating candidates a commit
//! provably did not help.
//!
//! A steepest-descent or tabu iteration scores the whole `n·m` move (and
//! `n²/2` swap) neighborhood, then commits **one** candidate. That commit
//! only changes the loads of the machines it touched and the demands of the
//! committed tasks' subtrees (their tour spans, see
//! [`Topology`](mf_core::incremental::Topology)) — every other candidate's
//! score moves in a way the commit's [`CommitFootprint`] describes exactly.
//!
//! The cache stores the last **exact** what-if score of every candidate plus
//! the commit index it was scored at. On the next sweep it walks the commits
//! since that stamp and classifies each one against the candidate's subtree
//! span(s):
//!
//! * **Transfer** — the commit's spans are each either *disjoint* from the
//!   candidate's span or *contained in its strict subtree*. The candidate's
//!   structure is intact and every committed load delta transfers into its
//!   score with the factor `ρ` (the product of the candidate's own rescale
//!   ratios over the containing tasks; `ρ = 1` for the pure-disjoint case):
//!   the score cannot have dropped below `score + ρ·min(0, min_load_delta)`.
//! * **Rescale** — every candidate task sits *strictly inside* a uniformly
//!   rescaled region of the commit (ratio `r`): on a chain this is every
//!   candidate upstream of the committed task, exactly the case that used to
//!   invalidate the whole prefix. All of the candidate's demand-dependent
//!   terms scale by `r`, so its score `S` satisfies
//!   `S' ≥ r·S + min(0, (1−r)·P) + min(0, min_load_delta)` where `P` is the
//!   committed period just before the commit (an upper bound on every load).
//! * **Unknown** — anything else (in particular a commit of one of the
//!   candidate's own tasks): the walk aborts and the candidate is
//!   re-evaluated.
//!
//! Composing the per-commit transforms (each monotone in the running bound,
//! minus a `1e-9` relative float guard per commit) yields a **certified
//! lower bound** on the candidate's current exact score. When that bound is
//! already no better than the best exact score seen earlier in the scan, the
//! candidate cannot beat the incumbent — and because sweeps tie-break
//! strictly by scan order, skipping it cannot change the chosen move:
//! dirty-candidate sweeps pick the **bit-identical** move sequence of a full
//! sweep (pinned by the `sweep_cache_differential` test), they just call the
//! evaluator less — [`SweepCacheStats`] counts how much less.

use mf_core::incremental::CommitFootprint;
use mf_core::prelude::*;

/// Hit/miss counters of one engine's sweep cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepCacheStats {
    /// Candidate probes routed through the cache.
    pub probes: u64,
    /// Probes that had to call the evaluator (cold, structure-dirty, or the
    /// bound could not rule the candidate out).
    pub evaluations: u64,
    /// Probes answered "provably not better than the incumbent" without an
    /// evaluator call.
    pub skips: u64,
    /// Probes answered with a stored exact score (no commit since it was
    /// taken) without an evaluator call.
    pub reuses: u64,
    /// Skips whose certificate went through at least one non-unit ratio
    /// transform (chain delta-transfer or upstream rescale) — a subset of
    /// `skips`; `0` before this optimization existed.
    pub rescales: u64,
}

/// One committed operation, as the probe-time transform walk sees it.
#[derive(Debug, Clone, Copy)]
struct CommitEntry {
    /// Inclusive tour spans of the changed tasks' subtrees.
    spans: [Option<(u32, u32)>; 2],
    /// Demand-rescale ratio of each changed task, span-aligned.
    ratios: [f64; 2],
    /// Committed period just before this commit (`max` over loads then).
    prior_period: f64,
    /// `min(0, min_load_delta)` of the commit.
    drop: f64,
}

/// How one commit relates to one cached candidate.
enum Classification {
    /// Structure intact; load deltas transfer with factor `ρ`.
    Transfer(f64),
    /// Every candidate task inside one uniformly rescaled region (`r`).
    Rescale(f64),
    /// No certificate — the candidate must be re-evaluated.
    Unknown,
}

/// How one commit relates to one candidate *task* span.
#[derive(Clone, Copy, PartialEq)]
enum TaskClass {
    /// Every commit span inside the task's strict subtree.
    Contains,
    /// Every commit span disjoint from the task's inclusive span.
    Disjoint,
    /// The task's inclusive span strictly inside a uniform rescale region.
    In(f64),
    Unknown,
}

/// One candidate's cached state: its last exact score and the commit stamp
/// it was taken at, interleaved so a probe touches **one** cache line
/// instead of two parallel arrays (the stamp check and the score read are
/// always paired on the probe hot path).
#[derive(Debug, Clone, Copy)]
struct Slot {
    score: f64,
    stamp: u32,
}

impl Slot {
    const EMPTY: Slot = Slot {
        score: 0.0,
        stamp: 0,
    };
}

/// Per-candidate score cache with commit-footprint transforms.
///
/// `stamp` values are `commit index + 1` (`0` = never scored). The commit
/// log keeps, per commit, the changed tour spans, their demand-rescale
/// ratios, the pre-commit period and the worst load drop; all are consulted
/// lazily at probe time.
#[derive(Debug)]
pub(crate) struct SweepCache {
    tasks: usize,
    machines: usize,
    /// `true` when a candidate table would exceed [`MAX_ENTRIES`]; that
    /// table then stays off entirely.
    moves_capped: bool,
    swaps_capped: bool,
    /// Move candidates, `task · m + machine` — allocated on first probe, so
    /// strategies that never sweep (the annealed climb) pay nothing.
    move_slots: Vec<Slot>,
    /// Swap candidates, `min · n + max` (only `min < max` slots are used);
    /// allocated on first swap probe.
    swap_slots: Vec<Slot>,
    /// Inclusive tour span of every task's subtree.
    span: Vec<(u32, u32)>,
    /// Commits since the last reset, in order.
    log: Vec<CommitEntry>,
    pub(crate) stats: SweepCacheStats,
}

/// Commits a candidate may look back through before it counts as dirty
/// (bounds the per-probe transform walk; sweeps refresh far sooner anyway).
const MAX_LOOKBACK: u32 = 32;

/// Commit-log length that triggers a full reset (keeps memory flat for
/// commit-heavy non-sweep strategies that share the engine).
const MAX_LOG: usize = 4096;

/// Candidate-table cap: above this many entries per table the cache turns
/// itself off rather than allocate unbounded score storage.
const MAX_ENTRIES: usize = 1 << 22;

impl SweepCache {
    /// An empty cache over the engine's candidate space. `span` is the
    /// inclusive tour span of every task (from the evaluator's topology).
    pub(crate) fn new(tasks: usize, machines: usize, span: Vec<(u32, u32)>) -> Self {
        SweepCache {
            tasks,
            machines,
            moves_capped: tasks.saturating_mul(machines) > MAX_ENTRIES,
            swaps_capped: tasks.saturating_mul(tasks) > MAX_ENTRIES,
            move_slots: Vec::new(),
            swap_slots: Vec::new(),
            span,
            log: Vec::new(),
            stats: SweepCacheStats::default(),
        }
    }

    /// Forgets every cached score (keeps the allocations).
    pub(crate) fn reset(&mut self) {
        self.move_slots.fill(Slot::EMPTY);
        self.swap_slots.fill(Slot::EMPTY);
        self.log.clear();
    }

    /// Records a committed operation's footprint.
    pub(crate) fn note_commit(&mut self, footprint: &CommitFootprint) {
        if self.log.len() >= MAX_LOG {
            self.reset();
        }
        let shrink =
            |span: Option<(usize, usize)>| span.map(|(start, end)| (start as u32, end as u32));
        self.log.push(CommitEntry {
            spans: [shrink(footprint.spans[0]), shrink(footprint.spans[1])],
            ratios: footprint.ratios,
            prior_period: footprint.prior_period,
            drop: footprint.min_load_delta.min(0.0),
        });
    }

    /// Number of commits recorded since the last reset.
    #[inline]
    fn now(&self) -> u32 {
        self.log.len() as u32
    }

    /// Allocates the move table on first use.
    fn ensure_moves(&mut self) {
        if self.move_slots.is_empty() {
            self.move_slots = vec![Slot::EMPTY; self.tasks * self.machines];
        }
    }

    /// Allocates the swap table on first use.
    fn ensure_swaps(&mut self) {
        if self.swap_slots.is_empty() {
            self.swap_slots = vec![Slot::EMPTY; self.tasks * self.tasks];
        }
    }

    /// Consults the cache for move `(task, to)`: `Reuse(score)` when the
    /// stored exact score is still current, `Skip` when the candidate
    /// provably cannot beat `bound`, `Evaluate` otherwise. `ratio` is the
    /// candidate's own demand-rescale ratio `F(task, to) / F(task, current)`.
    pub(crate) fn probe_move(
        &mut self,
        task: TaskId,
        to: MachineId,
        ratio: f64,
        bound: f64,
    ) -> CacheAnswer {
        self.stats.probes += 1;
        if self.moves_capped {
            self.stats.evaluations += 1;
            return CacheAnswer::Evaluate;
        }
        self.ensure_moves();
        let slot = self.move_slots[task.index() * self.machines + to.index()];
        self.answer(
            slot.stamp,
            slot.score,
            &[(self.span[task.index()], ratio)],
            bound,
        )
    }

    /// Stores the exact score of move `(task, to)` at the current commit
    /// index.
    pub(crate) fn store_move(&mut self, task: TaskId, to: MachineId, score: f64) {
        if self.moves_capped {
            return;
        }
        self.ensure_moves();
        let stamp = self.now() + 1;
        self.move_slots[task.index() * self.machines + to.index()] = Slot { score, stamp };
    }

    /// Consults the cache for the swap of `a` and `b` (order-insensitive).
    /// `ratios` are the candidates' demand-rescale ratios
    /// `(F(a, m_b) / F(a, m_a), F(b, m_a) / F(b, m_b))`.
    pub(crate) fn probe_swap(
        &mut self,
        a: TaskId,
        b: TaskId,
        ratios: (f64, f64),
        bound: f64,
    ) -> CacheAnswer {
        self.stats.probes += 1;
        if self.swaps_capped {
            self.stats.evaluations += 1;
            return CacheAnswer::Evaluate;
        }
        self.ensure_swaps();
        let slot = self.swap_slots[self.swap_slot(a, b)];
        self.answer(
            slot.stamp,
            slot.score,
            &[
                (self.span[a.index()], ratios.0),
                (self.span[b.index()], ratios.1),
            ],
            bound,
        )
    }

    /// Stores the exact score of the swap of `a` and `b`.
    pub(crate) fn store_swap(&mut self, a: TaskId, b: TaskId, score: f64) {
        if self.swaps_capped {
            return;
        }
        self.ensure_swaps();
        let stamp = self.now() + 1;
        let slot = self.swap_slot(a, b);
        self.swap_slots[slot] = Slot { score, stamp };
    }

    #[inline]
    fn swap_slot(&self, a: TaskId, b: TaskId) -> usize {
        let (lo, hi) = if a.index() < b.index() {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        lo * self.tasks + hi
    }

    fn answer(
        &mut self,
        stamp: u32,
        score: f64,
        cand: &[((u32, u32), f64)],
        bound: f64,
    ) -> CacheAnswer {
        if stamp == 0 {
            self.stats.evaluations += 1;
            return CacheAnswer::Evaluate;
        }
        if stamp == self.now() + 1 {
            // No commit since the score was taken: it is exact right now.
            self.stats.reuses += 1;
            return CacheAnswer::Reuse(score);
        }
        let since = stamp - 1;
        if self.now() - since > MAX_LOOKBACK {
            self.stats.evaluations += 1;
            return CacheAnswer::Evaluate;
        }
        // Walk the commits since the score was taken, composing the
        // per-commit lower-bound transforms (each monotone non-decreasing in
        // `lb`, so the composition stays a certified bound). A NaN ratio
        // (degenerate factors) poisons `lb` and falls through to Evaluate.
        let mut lb = score;
        let mut rescaled = false;
        for k in since as usize..self.log.len() {
            let entry = self.log[k];
            match classify(&entry, cand) {
                Classification::Transfer(rho) => {
                    if rho != 1.0 {
                        rescaled = true;
                    }
                    lb += rho * entry.drop;
                }
                Classification::Rescale(r) => {
                    if r != 1.0 {
                        rescaled = true;
                    }
                    lb = r * lb + ((1.0 - r) * entry.prior_period).min(0.0) + entry.drop;
                }
                Classification::Unknown => {
                    self.stats.evaluations += 1;
                    return CacheAnswer::Evaluate;
                }
            }
            // Per-commit float guard: over-covers both cached-vs-live
            // accumulation drift and the transform's own rounding by
            // several orders of magnitude.
            lb -= 1e-9 * (1.0 + lb.abs());
        }
        if lb >= bound {
            self.stats.skips += 1;
            if rescaled {
                self.stats.rescales += 1;
            }
            return CacheAnswer::Skip;
        }
        self.stats.evaluations += 1;
        CacheAnswer::Evaluate
    }
}

/// Classifies one commit against a whole candidate (its task spans and their
/// own rescale ratios): the candidate is a **Transfer** when every task
/// either contains the entire commit in its strict subtree or is disjoint
/// from it (`ρ` = product of the containing tasks' ratios), a **Rescale**
/// when every task sits inside a uniform rescale region with one common
/// ratio, and **Unknown** otherwise.
fn classify(entry: &CommitEntry, cand: &[((u32, u32), f64)]) -> Classification {
    let mut rho = 1.0f64;
    let mut transfer_ok = true;
    let mut rescale_ok = true;
    let mut region: Option<f64> = None;
    for &(span, cand_ratio) in cand {
        match classify_task(entry, span) {
            TaskClass::Contains => {
                rho *= cand_ratio;
                rescale_ok = false;
            }
            TaskClass::Disjoint => {
                rescale_ok = false;
            }
            TaskClass::In(r) => {
                transfer_ok = false;
                match region {
                    None => region = Some(r),
                    // Bit-equality: two regions certify jointly only when
                    // they scale the candidate's terms identically.
                    Some(prev) if prev == r => {}
                    Some(_) => rescale_ok = false,
                }
            }
            TaskClass::Unknown => return Classification::Unknown,
        }
    }
    if transfer_ok {
        return Classification::Transfer(rho);
    }
    if rescale_ok {
        if let Some(r) = region {
            return Classification::Rescale(r);
        }
    }
    Classification::Unknown
}

/// Classifies one commit against one candidate task's inclusive span
/// `(cs, ce)`. Spans are laminar (nested or disjoint), so the containment
/// tests below are exhaustive; a commit of the candidate task itself shares
/// its span end and lands on `Unknown`.
fn classify_task(entry: &CommitEntry, span: (u32, u32)) -> TaskClass {
    let (cs, ce) = span;
    // Commit span inside the candidate's *strict* subtree.
    let contains = |s: u32, e: u32| cs <= s && e < ce;
    // Commit span disjoint from the candidate's inclusive span.
    let disjoint = |s: u32, e: u32| e < cs || ce < s;
    // Candidate span strictly inside the commit span (the rescaled region).
    let inside = |s: u32, e: u32| s <= cs && ce < e;
    match (entry.spans[0], entry.spans[1]) {
        (Some((s, e)), None) => {
            if contains(s, e) {
                TaskClass::Contains
            } else if disjoint(s, e) {
                TaskClass::Disjoint
            } else if inside(s, e) {
                TaskClass::In(entry.ratios[0])
            } else {
                TaskClass::Unknown
            }
        }
        (Some((s0, e0)), Some((s1, e1))) => {
            if contains(s0, e0) && contains(s1, e1) {
                return TaskClass::Contains;
            }
            if disjoint(s0, e0) && disjoint(s1, e1) {
                return TaskClass::Disjoint;
            }
            // The uniform rescale regions of a two-task (swap) commit:
            // inside the nested span both ratios apply; inside only the
            // outer (or one of two disjoint) spans, that span's ratio.
            if s1 <= s0 && e0 < e1 {
                // Span 0 nested in span 1.
                if inside(s0, e0) {
                    return TaskClass::In(entry.ratios[0] * entry.ratios[1]);
                }
                if inside(s1, e1) && disjoint(s0, e0) {
                    return TaskClass::In(entry.ratios[1]);
                }
            } else if s0 <= s1 && e1 < e0 {
                // Span 1 nested in span 0.
                if inside(s1, e1) {
                    return TaskClass::In(entry.ratios[0] * entry.ratios[1]);
                }
                if inside(s0, e0) && disjoint(s1, e1) {
                    return TaskClass::In(entry.ratios[0]);
                }
            } else {
                // Disjoint commit spans.
                if inside(s0, e0) && disjoint(s1, e1) {
                    return TaskClass::In(entry.ratios[0]);
                }
                if inside(s1, e1) && disjoint(s0, e0) {
                    return TaskClass::In(entry.ratios[1]);
                }
            }
            TaskClass::Unknown
        }
        _ => TaskClass::Unknown,
    }
}

/// What a cache probe concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CacheAnswer {
    /// The stored score is exact for the current committed state.
    Reuse(f64),
    /// The candidate provably cannot beat the caller's bound.
    Skip,
    /// The cache cannot certify anything: evaluate (and store) the score.
    Evaluate,
}
