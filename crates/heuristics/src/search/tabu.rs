//! Tabu search: steepest admissible neighbor, even uphill, with a
//! recency-keyed tabu list and aspiration.
//!
//! Where [`SteepestDescent`](crate::search::SteepestDescent) stops at the
//! first local optimum, tabu search keeps walking: every iteration commits
//! the best admissible neighbor *even when it degrades the period*, and a
//! **recency-keyed tabu list** forbids undoing recent reassignments — after
//! task `t` leaves machine `u`, the pair `(t, u)` is tabu for
//! [`TabuConfig::tenure`] iterations, so the search cannot oscillate back
//! into the optimum it just escaped. The **aspiration** rule overrides the
//! list for any candidate that would beat the best period seen so far (a
//! tabu should never censor a new global best).
//!
//! The engine snapshots the best mapping seen, so tabu search — like every
//! strategy — never returns worse than its seed. The walk itself is fully
//! deterministic (no RNG; scan-order tie-breaks).

use crate::search::candidate::{better_than, Candidate};
use crate::search::engine::{SearchEngine, IMPROVEMENT_EPSILON};
use crate::search::strategy::SearchStrategy;
use crate::HeuristicResult;
use mf_core::prelude::*;

/// Tuning knobs of the tabu search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TabuConfig {
    /// Maximum number of commit iterations.
    pub max_iterations: usize,
    /// Iterations a reversed reassignment `(task, old machine)` stays
    /// forbidden after a commit.
    pub tenure: usize,
    /// Stop after this many consecutive iterations without a new best
    /// period.
    pub stale_limit: usize,
    /// Also sweep the two-task swap neighborhood each iteration.
    pub include_swaps: bool,
}

impl Default for TabuConfig {
    fn default() -> Self {
        TabuConfig {
            max_iterations: 128,
            tenure: 12,
            stale_limit: 32,
            include_swaps: true,
        }
    }
}

/// Recency-keyed tabu search over the move/swap neighborhoods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TabuSearch {
    config: TabuConfig,
}

impl TabuSearch {
    /// A tabu search with explicit knobs.
    pub fn new(config: TabuConfig) -> Self {
        TabuSearch { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TabuConfig {
        &self.config
    }
}

/// The recency list: per `(task, machine)` pair, the last iteration at which
/// assigning the task to the machine is still forbidden.
struct TabuList {
    until: Vec<usize>,
    machines: usize,
}

impl TabuList {
    fn new(tasks: usize, machines: usize) -> Self {
        TabuList {
            until: vec![0; tasks * machines],
            machines,
        }
    }

    #[inline]
    fn forbidden(&self, task: TaskId, machine: MachineId, iteration: usize) -> bool {
        self.until[task.index() * self.machines + machine.index()] >= iteration
    }

    #[inline]
    fn forbid(&mut self, task: TaskId, machine: MachineId, until: usize) {
        self.until[task.index() * self.machines + machine.index()] = until;
    }
}

impl SearchStrategy for TabuSearch {
    fn name(&self) -> &str {
        "tabu"
    }

    fn run(&self, engine: &mut SearchEngine<'_>) -> HeuristicResult<()> {
        let n = engine.tasks();
        let m = engine.machines();
        if n == 0 || m < 2 {
            return Ok(());
        }
        let config = &self.config;
        let mut tabu = TabuList::new(n, m);
        let mut stale = 0usize;

        for iteration in 1..=config.max_iterations {
            if engine.exhausted() || stale >= config.stale_limit {
                break;
            }
            let best_period = engine.best_period();
            // Aspiration: a candidate beating the global best is admissible
            // no matter what the tabu list says.
            let aspired = |period: f64| period < best_period - IMPROVEMENT_EPSILON;

            let mut chosen: Option<(f64, Candidate)> = None;
            for t in 0..n {
                let task = TaskId(t);
                for u in 0..m {
                    let to = MachineId(u);
                    if !engine.allows_move(task, to) {
                        continue;
                    }
                    engine.charge(1);
                    // A tabu candidate is only usable when it aspires (beats
                    // the global best), so the sweep-cache bound tightens to
                    // the smaller of incumbent and global best: anything
                    // certified at or above it can be skipped unevaluated
                    // without changing the choice.
                    let forbidden = tabu.forbidden(task, to, iteration);
                    let mut bound = chosen.map_or(f64::INFINITY, |(period, _)| period);
                    if forbidden {
                        bound = bound.min(best_period);
                    }
                    let Some(period) = engine.probe_move(task, to, bound)? else {
                        continue;
                    };
                    if forbidden && !aspired(period) {
                        continue;
                    }
                    if better_than(period, &chosen) {
                        chosen = Some((period, Candidate::Move(task, to)));
                    }
                }
            }
            if config.include_swaps {
                for a in 0..n {
                    for b in (a + 1)..n {
                        let (a, b) = (TaskId(a), TaskId(b));
                        if !engine.allows_swap(a, b) {
                            continue;
                        }
                        // After the swap, `a` runs on `b`'s machine and vice
                        // versa — both targets must be non-tabu.
                        let (ua, ub) = (engine.machine_of(a), engine.machine_of(b));
                        engine.charge(1);
                        let forbidden =
                            tabu.forbidden(a, ub, iteration) || tabu.forbidden(b, ua, iteration);
                        let mut bound = chosen.map_or(f64::INFINITY, |(period, _)| period);
                        if forbidden {
                            bound = bound.min(best_period);
                        }
                        let Some(period) = engine.probe_swap(a, b, bound)? else {
                            continue;
                        };
                        if forbidden && !aspired(period) {
                            continue;
                        }
                        if better_than(period, &chosen) {
                            chosen = Some((period, Candidate::Swap(a, b)));
                        }
                    }
                }
            }

            let Some((_, candidate)) = chosen else {
                // Everything admissible is tabu: the walk is stuck.
                break;
            };
            let improved = match candidate {
                Candidate::Move(task, to) => {
                    let from = engine.machine_of(task);
                    let outcome = engine.commit_move(task, to)?;
                    tabu.forbid(task, from, iteration + config.tenure);
                    outcome.improved_best
                }
                Candidate::Swap(a, b) => {
                    let (ua, ub) = (engine.machine_of(a), engine.machine_of(b));
                    let outcome = engine.commit_swap(a, b)?;
                    tabu.forbid(a, ua, iteration + config.tenure);
                    tabu.forbid(b, ub, iteration + config.tenure);
                    outcome.improved_best
                }
            };
            if improved {
                stale = 0;
            } else {
                stale += 1;
            }
        }
        Ok(())
    }
}
