//! Bit-identical H6 regression pin.
//!
//! The search-subsystem refactor (engine + strategies) must not change what
//! `H6` computes: for a fixed instance and seed, the polished mapping and its
//! period must match the pre-refactor monolithic loop **bit for bit** — the
//! expected values below were captured from the last commit before the
//! refactor. If an intentional change to the annealed climb breaks this
//! test, re-capture the values and say so loudly in the commit message: every
//! downstream experiment table shifts with them.

use mf_core::prelude::*;
use mf_heuristics::{paper_heuristic, H6LocalSearch, LocalSearchConfig};

fn instance(types: &[usize], m: usize, seed: u64) -> Instance {
    let app = Application::linear_chain(types).unwrap();
    let p = app.type_count();
    let mut state = seed;
    let mut draw = |lo: f64, hi: f64| {
        state = mf_core::splitmix64(state);
        lo + (state >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    };
    let platform = Platform::from_type_times(
        m,
        (0..p)
            .map(|_| (0..m).map(|_| draw(100.0, 1000.0)).collect())
            .collect(),
    )
    .unwrap();
    let failures = FailureModel::from_matrix(
        (0..types.len())
            .map(|_| (0..m).map(|_| draw(0.005, 0.05)).collect())
            .collect(),
        m,
    )
    .unwrap();
    Instance::new(app, platform, failures).unwrap()
}

fn fixture_types() -> Vec<usize> {
    (0..24).map(|i| [0, 1, 0, 2, 1, 0][i % 6]).collect()
}

#[test]
fn registry_h6_variants_are_bit_identical_to_the_pre_refactor_loop() {
    // (registry name, H6 seed, expected period bits, expected assignment).
    #[rustfmt::skip]
    let expected: &[(&str, u64, u64, [usize; 24])] = &[
        ("H6", 1, 0x409863e32dd33b2f,
         [7, 0, 7, 2, 3, 7, 4, 6, 7, 2, 0, 4, 7, 0, 5, 2, 6, 7, 5, 1, 5, 2, 1, 4]),
        ("H6-H1", 1, 0x40a679a8c32612a7,
         [1, 4, 0, 7, 4, 2, 2, 6, 1, 5, 6, 2, 2, 6, 2, 7, 6, 2, 0, 3, 0, 5, 3, 2]),
        ("H6-H2", 1, 0x409b7460e2c70c25,
         [7, 1, 3, 2, 6, 3, 4, 5, 7, 2, 6, 3, 7, 0, 3, 2, 0, 7, 7, 0, 4, 2, 0, 4]),
        ("H6", 42, 0x4091380d0c485b06,
         [4, 0, 7, 6, 0, 2, 7, 5, 7, 3, 0, 7, 2, 1, 2, 3, 5, 7, 2, 0, 2, 3, 5, 2]),
        ("H6-H1", 42, 0x4094fb33d2eb747a,
         [7, 0, 4, 3, 0, 5, 7, 2, 4, 3, 2, 7, 5, 2, 7, 3, 1, 7, 5, 0, 7, 3, 6, 7]),
        ("H6-H2", 42, 0x4090328265c2f81c,
         [4, 0, 2, 6, 0, 7, 7, 5, 2, 6, 0, 7, 2, 1, 2, 6, 0, 7, 3, 5, 2, 6, 5, 7]),
        ("H6", 20100607, 0x40960779f1df5f11,
         [5, 3, 2, 4, 3, 2, 7, 3, 7, 0, 3, 7, 1, 3, 7, 0, 6, 7, 7, 3, 7, 4, 6, 7]),
        ("H6-H1", 20100607, 0x4097be5f8f1d2270,
         [0, 3, 1, 4, 3, 7, 7, 3, 7, 4, 3, 7, 7, 2, 7, 4, 2, 7, 5, 6, 5, 4, 2, 7]),
        ("H6-H2", 20100607, 0x409425d3ce7c984c,
         [1, 0, 2, 4, 3, 5, 7, 3, 7, 4, 3, 7, 6, 3, 7, 4, 3, 7, 2, 3, 7, 4, 3, 7]),
    ];
    let types = fixture_types();
    for (name, seed, period_bits, assignment) in expected {
        let inst = instance(&types, 8, seed ^ 0xABCD);
        let heuristic = paper_heuristic(name, *seed).unwrap();
        let mapping = heuristic.map(&inst).unwrap();
        let period = inst.period(&mapping).unwrap().value();
        assert_eq!(
            period.to_bits(),
            *period_bits,
            "{name} seed={seed}: period drifted to {period}"
        );
        let indices: Vec<usize> = mapping.as_slice().iter().map(|m| m.index()).collect();
        assert_eq!(
            indices,
            assignment.to_vec(),
            "{name} seed={seed}: assignment drifted"
        );
    }
}

#[test]
fn polish_entry_point_is_bit_identical_to_the_pre_refactor_loop() {
    #[rustfmt::skip]
    let expected: &[(u64, u64, [usize; 24])] = &[
        (5, 0x409a051e45a33995,
         [6, 5, 3, 7, 5, 0, 2, 5, 1, 6, 2, 3, 3, 0, 3, 5, 4, 4, 0, 7, 6, 6, 3, 4]),
        (99, 0x409929306cf42bae,
         [1, 0, 6, 7, 4, 0, 2, 5, 3, 6, 4, 3, 3, 2, 5, 5, 4, 3, 0, 7, 6, 6, 3, 5]),
    ];
    let types = fixture_types();
    let inst = instance(&types, 8, 77);
    let seed_mapping =
        Mapping::from_indices(&(0..24).map(|i| i % 3).collect::<Vec<_>>(), 8).unwrap();
    for (seed, period_bits, assignment) in expected {
        let config = LocalSearchConfig {
            seed: *seed,
            ..LocalSearchConfig::default()
        };
        let polished = H6LocalSearch::polish(&inst, &seed_mapping, &config).unwrap();
        let period = inst.period(&polished).unwrap().value();
        assert_eq!(
            period.to_bits(),
            *period_bits,
            "polish seed={seed}: period drifted to {period}"
        );
        let indices: Vec<usize> = polished.as_slice().iter().map(|m| m.index()).collect();
        assert_eq!(
            indices,
            assignment.to_vec(),
            "polish seed={seed}: assignment drifted"
        );
    }
}
