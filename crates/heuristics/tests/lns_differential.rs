//! Differential pin of the subtree-move LNS restage arithmetic.
//!
//! The LNS probes score candidates on a staged evaluator seeded with torn
//! loads (`from_loads` + `place_row`) instead of re-evaluating the mapping
//! from scratch. This harness pins that shortcut: for every registry seed
//! heuristic, on chains and on general in-forests, the restaged score of
//! every (root, machine) candidate must match a full recompute of the moved
//! mapping within 1e-9 relative, and the greedy restage plan must realise
//! exactly the staged period it promised. The LNS registry heuristics are
//! additionally pinned deterministic and never worse than their seeds.

use mf_core::prelude::*;
use mf_heuristics::search::SearchEngine;
use mf_heuristics::{all_paper_heuristics, paper_heuristic};
use mf_sim::{GeneratorConfig, InstanceGenerator};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn chain_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_standard(tasks, machines, types))
        .generate(seed)
        .expect("the standard generator produces valid instances")
}

fn forest_instance(tasks: usize, machines: usize, types: usize, rng: &mut StdRng) -> Instance {
    InstanceGenerator::new(GeneratorConfig::standard_in_forest(tasks, machines, types))
        .generate(rng.next_u64())
        .expect("the forest generator produces valid instances")
}

fn fixtures() -> Vec<(String, Instance)> {
    let mut rng = StdRng::seed_from_u64(0x1A5D_1FFE);
    vec![
        ("chain n=16 m=5".into(), chain_instance(16, 5, 3, 0xC3)),
        (
            "forest n=20 m=6".into(),
            forest_instance(20, 6, 3, &mut rng),
        ),
        (
            "forest n=28 m=8".into(),
            forest_instance(28, 8, 4, &mut rng),
        ),
    ]
}

/// `restage_move` (tear + one ratio-scaled `place_row`) must equal the full
/// recompute of the moved mapping within 1e-9 relative, for every (root,
/// machine) pair reachable from every registry seed.
#[test]
fn restaged_subtree_scores_match_full_recompute() {
    for (label, instance) in fixtures() {
        for heuristic in all_paper_heuristics(7) {
            let Ok(seed) = heuristic.map(&instance) else {
                continue;
            };
            let mut engine = SearchEngine::new(&instance, &seed, usize::MAX).unwrap();
            for t in 0..instance.task_count() {
                let root = TaskId(t);
                for u in 0..instance.machine_count() {
                    let to = MachineId(u);
                    if to != engine.machine_of(root) && !engine.allows_move(root, to) {
                        continue;
                    }
                    let staged = engine.restage_move(root, to);
                    let mut moved: Vec<usize> =
                        seed.as_slice().iter().map(|mm| mm.index()).collect();
                    moved[t] = u;
                    let full = instance
                        .period(&Mapping::from_indices(&moved, instance.machine_count()).unwrap())
                        .unwrap()
                        .value();
                    assert!(
                        (staged - full).abs() <= 1e-9 * full.max(1.0),
                        "{label} {}: restage T{t}->M{u} staged {staged} vs full {full}",
                        heuristic.name(),
                    );
                }
            }
        }
    }
}

/// The greedy restage's staged period must be realised exactly (≤ 1e-9
/// relative) when its plan is applied to the committed mapping, and the
/// plan must preserve the specialized rule.
#[test]
fn greedy_restage_plans_realise_their_staged_period() {
    let mut rng = StdRng::seed_from_u64(0x9E3D_77A0);
    for (label, instance) in fixtures() {
        for heuristic in all_paper_heuristics(11) {
            let Ok(seed) = heuristic.map(&instance) else {
                continue;
            };
            let specialized = instance.is_specialized(&seed);
            let mut engine = SearchEngine::new(&instance, &seed, usize::MAX).unwrap();
            let mut plan = Vec::new();
            for _ in 0..12 {
                let root = TaskId((rng.next_u64() % instance.task_count() as u64) as usize);
                let to = MachineId((rng.next_u64() % instance.machine_count() as u64) as usize);
                if to != engine.machine_of(root) && !engine.allows_move(root, to) {
                    continue;
                }
                let probe = engine.restage_greedy(root, to, &mut plan);
                let mut moved: Vec<usize> = seed.as_slice().iter().map(|mm| mm.index()).collect();
                for &(task, machine) in &plan {
                    moved[task.index()] = machine.index();
                }
                let mapping = Mapping::from_indices(&moved, instance.machine_count()).unwrap();
                let full = instance.period(&mapping).unwrap().value();
                assert!(
                    (probe.period - full).abs() <= 1e-9 * full.max(1.0),
                    "{label} {}: greedy restage of T{} -> M{} promised {} but realises {full}",
                    heuristic.name(),
                    root.index(),
                    to.index(),
                    probe.period,
                );
                if specialized {
                    assert!(
                        instance.is_specialized(&mapping),
                        "{label} {}: greedy plan broke the specialized rule",
                        heuristic.name(),
                    );
                }
                assert!(probe.trials > 0);
            }
        }
    }
}

/// The LNS registry heuristics are deterministic per seed and never worse
/// than their constructive seeds.
#[test]
fn lns_registry_heuristics_are_deterministic_and_never_worse() {
    for (label, instance) in fixtures() {
        for name in ["LNS", "LNS-H2", "LNS-H4f"] {
            let lns = paper_heuristic(name, 3).unwrap();
            let Ok(first) = lns.map(&instance) else {
                continue;
            };
            let second = lns.map(&instance).unwrap();
            assert_eq!(first, second, "{label} {name}: non-deterministic");
            let base = name.strip_prefix("LNS-").unwrap_or("H4w");
            // The inner seed heuristic draws from a decorrelated stream; the
            // never-worse bound is against the engine's actual seed, which
            // `paper_heuristic(base, …)` cannot reproduce for H1. Compare
            // against deterministic bases only.
            if base != "H1" {
                let seeded = paper_heuristic(base, 3).unwrap().period(&instance).unwrap();
                let polished = instance.period(&first).unwrap();
                assert!(
                    polished.value() <= seeded.value() + 1e-9,
                    "{label} {name}: LNS worse than its seed"
                );
            }
        }
    }
}
