//! Ordering and safety properties of the search strategies.
//!
//! Seeded-loop property tests (the workspace's offline stand-in for
//! proptest): on every generated instance,
//!
//! * steepest descent (polishing H6's result) ≤ the H6 annealed climb ≤ the
//!   seed period — the full-neighborhood descent can only lower what H6
//!   hands it, and this chain holds *by construction* on every instance
//!   (H6's random restarts can beat SD-from-seed on rugged landscapes, so
//!   the chain is anchored on a shared starting point);
//! * tabu search never returns worse than its seed (the engine's best-so-far
//!   snapshot guarantees it even though the walk itself goes uphill);
//! * steepest descent halts at a genuine local optimum: no admissible move
//!   or swap improves its result (when its budget wasn't the stopper);
//! * all three strategies preserve the specialized rule.

use mf_core::prelude::*;
use mf_heuristics::search::{polish_with, SearchEngine, SteepestDescent, TabuConfig, TabuSearch};
use mf_heuristics::{H4wFastestMachine, H6LocalSearch, Heuristic, LocalSearchConfig};

fn instance(n: usize, m: usize, p: usize, seed: u64) -> Instance {
    let types: Vec<usize> = (0..n).map(|i| i % p).collect();
    let app = Application::linear_chain(&types).unwrap();
    let mut state = seed;
    let mut draw = |lo: f64, hi: f64| {
        state = mf_core::splitmix64(state);
        lo + (state >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    };
    let platform = Platform::from_type_times(
        m,
        (0..p)
            .map(|_| (0..m).map(|_| draw(100.0, 1000.0)).collect())
            .collect(),
    )
    .unwrap();
    let failures = FailureModel::from_matrix(
        (0..n)
            .map(|_| (0..m).map(|_| draw(0.005, 0.05)).collect())
            .collect(),
        m,
    )
    .unwrap();
    Instance::new(app, platform, failures).unwrap()
}

const BUDGET: usize = 2_000_000;

#[test]
fn steepest_descent_beats_h6_beats_the_seed() {
    for case in 0u64..12 {
        let (n, m, p) = [(12, 4, 2), (20, 6, 3), (30, 8, 3)][case as usize % 3];
        let inst = instance(n, m, p, 0xC0FFEE ^ (case * 7919));
        let seeded = H4wFastestMachine.map(&inst).unwrap();
        let seed_period = inst.period(&seeded).unwrap().value();

        let h6_config = LocalSearchConfig {
            seed: case,
            ..LocalSearchConfig::default()
        };
        let h6 = H6LocalSearch::polish(&inst, &seeded, &h6_config).unwrap();
        let h6_period = inst.period(&h6).unwrap().value();

        // The chain anchor: descend the full neighborhood from H6's result.
        let sd = polish_with(&inst, &h6, &SteepestDescent::default(), BUDGET).unwrap();
        let sd_period = inst.period(&sd).unwrap().value();
        // And from the raw seed, SD still never degrades it.
        let sd_raw = polish_with(&inst, &seeded, &SteepestDescent::default(), BUDGET).unwrap();
        let sd_raw_period = inst.period(&sd_raw).unwrap().value();

        assert!(
            h6_period <= seed_period + 1e-9,
            "case {case}: H6 {h6_period} worse than seed {seed_period}"
        );
        assert!(
            sd_period <= h6_period + 1e-9,
            "case {case}: steepest descent {sd_period} worse than H6 {h6_period}"
        );
        assert!(
            sd_raw_period <= seed_period + 1e-9,
            "case {case}: steepest descent {sd_raw_period} worse than seed {seed_period}"
        );
        assert!(inst.is_specialized(&sd), "case {case}: SD broke the rule");
        assert!(inst.is_specialized(&h6), "case {case}: H6 broke the rule");
    }
}

#[test]
fn steepest_descent_halts_at_a_local_optimum() {
    for case in 0u64..6 {
        let inst = instance(16, 5, 2, 0xBEEF ^ (case * 104729));
        let seeded = H4wFastestMachine.map(&inst).unwrap();
        let sd = polish_with(&inst, &seeded, &SteepestDescent::default(), BUDGET).unwrap();
        let sd_period = inst.period(&sd).unwrap().value();

        // No admissible move or swap may improve the result.
        let mut probe = SearchEngine::new(&inst, &sd, usize::MAX).unwrap();
        let n = inst.task_count();
        let m = inst.machine_count();
        for t in 0..n {
            for u in 0..m {
                let (task, to) = (TaskId(t), MachineId(u));
                if probe.allows_move(task, to) {
                    let period = probe.evaluate_move(task, to).unwrap();
                    assert!(
                        period >= sd_period - 1e-9,
                        "case {case}: move T{t}->M{u} improves {sd_period} to {period}"
                    );
                }
            }
        }
        for a in 0..n {
            for b in (a + 1)..n {
                let (a, b) = (TaskId(a), TaskId(b));
                if probe.allows_swap(a, b) {
                    let period = probe.evaluate_swap(a, b).unwrap();
                    assert!(
                        period >= sd_period - 1e-9,
                        "case {case}: a swap improves {sd_period} to {period}"
                    );
                }
            }
        }
    }
}

#[test]
fn tabu_search_never_returns_worse_than_its_seed() {
    for case in 0u64..12 {
        let (n, m, p) = [(12, 4, 2), (24, 6, 3), (30, 10, 5)][case as usize % 3];
        let inst = instance(n, m, p, 0x7AB0 ^ (case * 6151));
        let seeded = H4wFastestMachine.map(&inst).unwrap();
        let seed_period = inst.period(&seeded).unwrap().value();
        // A deliberately short, aggressive walk: plenty of uphill commits.
        let tabu = TabuSearch::new(TabuConfig {
            max_iterations: 40,
            tenure: 5,
            stale_limit: 40,
            include_swaps: true,
        });
        let polished = polish_with(&inst, &seeded, &tabu, BUDGET).unwrap();
        let period = inst.period(&polished).unwrap().value();
        assert!(
            period <= seed_period + 1e-9,
            "case {case}: tabu degraded {seed_period} to {period}"
        );
        assert!(inst.is_specialized(&polished), "case {case}");
    }
}

/// A rugged landscape: same chain family but with high, widely spread
/// failure rates, where the effective times vary steeply across machines
/// and single-move basins are deep.
fn rugged_instance(n: usize, m: usize, p: usize, seed: u64) -> Instance {
    let types: Vec<usize> = (0..n).map(|i| i % p).collect();
    let app = Application::linear_chain(&types).unwrap();
    let mut state = seed;
    let mut draw = |lo: f64, hi: f64| {
        state = mf_core::splitmix64(state);
        lo + (state >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    };
    let platform = Platform::from_type_times(
        m,
        (0..p)
            .map(|_| (0..m).map(|_| draw(100.0, 1000.0)).collect())
            .collect(),
    )
    .unwrap();
    let failures = FailureModel::from_matrix(
        (0..n)
            .map(|_| (0..m).map(|_| draw(0.05, 0.35)).collect())
            .collect(),
        m,
    )
    .unwrap();
    Instance::new(app, platform, failures).unwrap()
}

#[test]
fn h6_restarts_are_deterministic_and_never_worse_than_a_single_wave() {
    for case in 0u64..8 {
        let (n, m, p) = [(12, 4, 2), (20, 6, 3)][case as usize % 2];
        let inst = rugged_instance(n, m, p, 0xAB5E ^ (case * 2477));
        let seeded = H4wFastestMachine.map(&inst).unwrap();
        let seed_period = inst.period(&seeded).unwrap().value();

        let single = LocalSearchConfig {
            max_steps: 20_000,
            stale_limit: 400,
            seed: case,
            ..LocalSearchConfig::default()
        };
        let restarted = LocalSearchConfig {
            restarts: 6,
            ..single
        };
        let base = H6LocalSearch::polish(&inst, &seeded, &single).unwrap();
        let first = H6LocalSearch::polish(&inst, &seeded, &restarted).unwrap();
        let second = H6LocalSearch::polish(&inst, &seeded, &restarted).unwrap();
        assert_eq!(first, second, "case {case}: restarts non-deterministic");

        let base_period = inst.period(&base).unwrap().value();
        let restarted_period = inst.period(&first).unwrap().value();
        // Wave 0 replays the single-wave stream exactly, and extra waves can
        // only improve the engine's best-so-far snapshot.
        assert!(
            restarted_period <= base_period + 1e-9,
            "case {case}: restarts degraded {base_period} to {restarted_period}"
        );
        assert!(
            restarted_period <= seed_period + 1e-9,
            "case {case}: restarts worse than the seed"
        );
        assert!(inst.is_specialized(&first), "case {case}");
    }
}

#[test]
fn h6_restarts_escape_local_optima_on_rugged_landscapes() {
    // Across a family of rugged high-failure instances, the restarted climb
    // must strictly beat the single wave somewhere — otherwise the rewind /
    // reheat machinery is dead weight.
    let mut strictly_better = 0usize;
    for case in 0u64..24 {
        let inst = rugged_instance(18, 6, 3, 0xD1CE ^ (case * 48271));
        let seeded = H4wFastestMachine.map(&inst).unwrap();
        let single = LocalSearchConfig {
            max_steps: 20_000,
            stale_limit: 400,
            seed: case,
            ..LocalSearchConfig::default()
        };
        let restarted = LocalSearchConfig {
            restarts: 6,
            ..single
        };
        let base = H6LocalSearch::polish(&inst, &seeded, &single).unwrap();
        let multi = H6LocalSearch::polish(&inst, &seeded, &restarted).unwrap();
        let base_period = inst.period(&base).unwrap().value();
        let multi_period = inst.period(&multi).unwrap().value();
        assert!(multi_period <= base_period + 1e-9, "case {case}");
        if multi_period < base_period - 1e-9 {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better > 0,
        "restart waves never escaped a single-wave optimum on 24 rugged instances"
    );
}

#[test]
fn tabu_escapes_local_optima_that_stop_steepest_descent() {
    // Across a family of instances, tabu (which keeps walking uphill past
    // the first optimum) must find a strictly better mapping than steepest
    // descent on at least one — otherwise the tabu list is dead machinery.
    let mut tabu_strictly_better = 0usize;
    for case in 0u64..24 {
        let inst = instance(18, 5, 2, 0x5EED ^ (case * 31337));
        let seeded = H4wFastestMachine.map(&inst).unwrap();
        let sd = polish_with(&inst, &seeded, &SteepestDescent::default(), BUDGET).unwrap();
        let ts = polish_with(&inst, &seeded, &TabuSearch::default(), BUDGET).unwrap();
        let sd_period = inst.period(&sd).unwrap().value();
        let ts_period = inst.period(&ts).unwrap().value();
        if ts_period < sd_period - 1e-9 {
            tabu_strictly_better += 1;
        }
    }
    assert!(
        tabu_strictly_better > 0,
        "tabu never escaped a steepest-descent local optimum on 24 instances"
    );
}
