//! Differential pin of the dirty-candidate sweep cache.
//!
//! `SteepestDescent` and `TabuSearch` route every candidate through the
//! engine's sweep cache, which skips evaluator calls for candidates a commit
//! provably did not help. That optimization must be *invisible* in behavior:
//! for every registry seed heuristic, on chains and on general in-forests,
//! the cached sweep must commit the **identical step sequence** (tasks,
//! machines and period bits), consume the identical budget, and return the
//! bit-identical best mapping the uncached full sweep returns — while
//! making strictly fewer evaluator calls overall.

use mf_core::prelude::*;
use mf_heuristics::search::{
    CommitStep, SearchEngine, SearchStrategy, SteepestDescent, SweepCacheStats, TabuSearch,
};
use mf_heuristics::{all_paper_heuristics, Heuristic};
use mf_sim::{GeneratorConfig, InstanceGenerator};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Candidate-evaluation budget per run: enough for several full sweeps on
/// the shapes below, small enough to keep the differential fast in debug.
const BUDGET: usize = 20_000;

fn chain_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_standard(tasks, machines, types))
        .generate(seed)
        .expect("the standard generator produces valid instances")
}

/// A random in-forest (mixed fan-in, several roots), drawn from the shared
/// `standard_in_forest` generator configuration.
fn forest_instance(tasks: usize, machines: usize, types: usize, rng: &mut StdRng) -> Instance {
    InstanceGenerator::new(GeneratorConfig::standard_in_forest(tasks, machines, types))
        .generate(rng.next_u64())
        .expect("the forest generator produces valid instances")
}

struct RunOutcome {
    trace: Vec<CommitStep>,
    mapping: Vec<usize>,
    best_bits: u64,
    steps: usize,
    stats: SweepCacheStats,
}

fn run(
    instance: &Instance,
    seed: &Mapping,
    strategy: &dyn SearchStrategy,
    cached: bool,
) -> RunOutcome {
    let mut engine = SearchEngine::new(instance, seed, BUDGET).unwrap();
    engine.set_sweep_cache(cached);
    engine.enable_commit_trace();
    strategy.run(&mut engine).unwrap();
    RunOutcome {
        trace: engine.commit_trace().to_vec(),
        best_bits: engine.best_period().to_bits(),
        steps: engine.steps(),
        stats: engine.sweep_stats(),
        mapping: engine
            .into_best()
            .as_slice()
            .iter()
            .map(|u| u.index())
            .collect(),
    }
}

#[test]
fn cached_sweeps_match_full_sweeps_for_every_registry_seed() {
    let mut rng = StdRng::seed_from_u64(0x5EEE_BCAC);
    let instances: Vec<(String, Instance)> = vec![
        ("chain n=20 m=5".into(), chain_instance(20, 5, 3, 0xA1)),
        ("chain n=30 m=6".into(), chain_instance(30, 6, 3, 0xB2)),
        (
            "forest n=24 m=6".into(),
            forest_instance(24, 6, 3, &mut rng),
        ),
        (
            "forest n=32 m=8".into(),
            forest_instance(32, 8, 4, &mut rng),
        ),
    ];
    let strategies: Vec<(&str, Box<dyn SearchStrategy>)> = vec![
        ("SD", Box::new(SteepestDescent::default())),
        ("TS", Box::new(TabuSearch::default())),
    ];
    let mut total_full = 0u64;
    let mut total_cached = 0u64;
    let mut total_saved = 0u64;
    let mut chain_full = 0u64;
    let mut chain_cached = 0u64;
    let mut chain_rescales = 0u64;
    for (label, instance) in &instances {
        let is_chain = label.starts_with("chain");
        for seeder in all_paper_heuristics(5) {
            let Ok(seed) = seeder.map(instance) else {
                continue; // a seed that cannot place this shape is not a pin
            };
            for (name, strategy) in &strategies {
                let context = format!("{name} from {} on {label}", seeder.name());
                let full = run(instance, &seed, strategy.as_ref(), false);
                let cached = run(instance, &seed, strategy.as_ref(), true);
                assert_eq!(
                    full.trace, cached.trace,
                    "{context}: committed step sequences diverged"
                );
                assert_eq!(
                    full.mapping, cached.mapping,
                    "{context}: best mappings diverged"
                );
                assert_eq!(
                    full.best_bits, cached.best_bits,
                    "{context}: best periods diverged at the bit level"
                );
                assert_eq!(
                    full.steps, cached.steps,
                    "{context}: budget accounting diverged"
                );
                assert_eq!(
                    full.stats.probes, cached.stats.probes,
                    "{context}: probe counts diverged"
                );
                assert!(
                    cached.stats.evaluations <= full.stats.evaluations,
                    "{context}: the cache must never add evaluator calls"
                );
                total_full += full.stats.evaluations;
                total_cached += cached.stats.evaluations;
                total_saved += cached.stats.skips + cached.stats.reuses;
                if is_chain {
                    chain_full += full.stats.evaluations;
                    chain_cached += cached.stats.evaluations;
                    chain_rescales += cached.stats.rescales;
                }
            }
        }
    }
    assert!(
        total_cached < total_full,
        "the sweep cache never skipped anything ({total_cached} vs {total_full} evaluations)"
    );
    assert!(total_saved > 0, "no probe was ever answered from the cache");
    // The chain regression floor (blocking in CI): the delta-transfer
    // rescaling must keep at least 15 % of chain sweep evaluator calls out
    // of the evaluator — before it, chain savings were exactly 0 % (every
    // commit overlaps every prefix span). Evaluator-call counts are
    // deterministic, so this cannot flake on timing.
    assert!(
        (chain_cached as f64) <= 0.85 * chain_full as f64,
        "chain sweep-cache savings regressed below the 15 % floor \
         ({chain_cached} of {chain_full} evaluator calls)"
    );
    assert!(
        chain_rescales > 0,
        "no chain skip was certified through a ratio transform"
    );
    println!(
        "sweep cache: {total_cached}/{total_full} evaluator calls \
         ({total_saved} probes answered from cache); \
         chains {chain_cached}/{chain_full} ({chain_rescales} ratio-rescaled skips)"
    );
}

/// The cache must also be invisible when a strategy runs *after* unrelated
/// commits (a warm, partially-stale cache), not just from a cold engine.
#[test]
fn warm_cache_stays_correct_across_interleaved_commits() {
    let mut rng = StdRng::seed_from_u64(0xFACE);
    let instance = forest_instance(18, 5, 3, &mut rng);
    let seed = mf_heuristics::H4wFastestMachine.map(&instance).unwrap();
    let strategy = SteepestDescent::default();

    let mut reference = SearchEngine::new(&instance, &seed, BUDGET).unwrap();
    reference.set_sweep_cache(false);
    let mut warmed = SearchEngine::new(&instance, &seed, BUDGET).unwrap();
    // Small dense instances default the cache off; this pin is *about* the
    // cache path, so force it on.
    warmed.set_sweep_cache(true);

    // Interleave: run one descent, then hand-commit a few degrading moves
    // (staling parts of the cache), then descend again. Both engines see
    // the identical command stream.
    for round in 0..3 {
        strategy.run(&mut reference).unwrap();
        strategy.run(&mut warmed).unwrap();
        assert_eq!(
            reference.current_period().to_bits(),
            warmed.current_period().to_bits(),
            "round {round}: descents diverged"
        );
        let task = TaskId(round * 3 % instance.task_count());
        let to = MachineId((round + 1) % instance.machine_count());
        if reference.allows_move(task, to) {
            let a = reference.commit_move(task, to).unwrap();
            let b = warmed.commit_move(task, to).unwrap();
            assert_eq!(a.period.to_bits(), b.period.to_bits());
        }
    }
    assert_eq!(
        reference.best_period().to_bits(),
        warmed.best_period().to_bits()
    );
    assert_eq!(
        reference.into_best().as_slice(),
        warmed.into_best().as_slice()
    );
}

/// The delta-transfer rescaling path specifically: on a chain, every commit
/// overlaps every candidate span, so each warm probe after a hand-commit
/// exercises the transfer (downstream candidates) and rescale (upstream
/// candidates) transforms rather than the old all-invalidate path. The
/// interleaving — descend, commit, descend, probe — must stay bit-identical
/// to the uncached engine through arbitrary staleness.
#[test]
fn warm_chain_cache_rescales_across_interleaved_commits() {
    for (tasks, machines, seed) in [(16usize, 4usize, 0xC3u64), (25, 6, 0xD4)] {
        let instance = chain_instance(tasks, machines, 3, seed);
        let seed_map = mf_heuristics::H4wFastestMachine.map(&instance).unwrap();
        let strategy = SteepestDescent::default();

        let mut reference = SearchEngine::new(&instance, &seed_map, BUDGET).unwrap();
        reference.set_sweep_cache(false);
        let mut warmed = SearchEngine::new(&instance, &seed_map, BUDGET).unwrap();
        warmed.set_sweep_cache(true);

        for round in 0..4 {
            strategy.run(&mut reference).unwrap();
            strategy.run(&mut warmed).unwrap();
            assert_eq!(
                reference.current_period().to_bits(),
                warmed.current_period().to_bits(),
                "chain n={tasks}, round {round}: descents diverged"
            );
            // Hand-commit a (usually degrading) move in the middle of the
            // chain: upstream candidates must be rescaled, downstream ones
            // delta-transferred, and the next descent must not notice.
            let task = TaskId((round * 5 + tasks / 2) % tasks);
            let to = MachineId((round + 1) % machines);
            if reference.allows_move(task, to) {
                let a = reference.commit_move(task, to).unwrap();
                let b = warmed.commit_move(task, to).unwrap();
                assert_eq!(a.period.to_bits(), b.period.to_bits());
            }
        }
        let rescales = warmed.sweep_stats().rescales;
        assert!(
            rescales > 0,
            "chain n={tasks}: interleaved sweeps never certified a skip \
             through a ratio transform"
        );
        assert_eq!(
            reference.best_period().to_bits(),
            warmed.best_period().to_bits()
        );
        assert_eq!(
            reference.into_best().as_slice(),
            warmed.into_best().as_slice()
        );
    }
}

/// Degenerate shapes must not trip the transform walk: a single-task chain
/// (every commit span *is* the candidate span → Unknown → evaluate) and a
/// single-machine platform (no admissible candidates at all).
#[test]
fn degenerate_shapes_stay_exact_under_the_cache() {
    // One task, three machines: moves exist, swaps do not.
    let app = Application::linear_chain(&[0]).unwrap();
    let platform = Platform::from_type_times(3, vec![vec![100.0, 80.0, 120.0]]).unwrap();
    let failures = FailureModel::uniform(1, 3, FailureRate::new(0.05).unwrap());
    let single_task = Instance::new(app, platform, failures).unwrap();
    let seed = Mapping::from_indices(&[0], 3).unwrap();
    let strategy = SteepestDescent::default();

    let mut reference = SearchEngine::new(&single_task, &seed, BUDGET).unwrap();
    reference.set_sweep_cache(false);
    let mut cached = SearchEngine::new(&single_task, &seed, BUDGET).unwrap();
    cached.set_sweep_cache(true);
    for _ in 0..3 {
        strategy.run(&mut reference).unwrap();
        strategy.run(&mut cached).unwrap();
        assert_eq!(
            reference.current_period().to_bits(),
            cached.current_period().to_bits(),
            "single-task chain: descents diverged"
        );
    }
    assert_eq!(
        reference.best_period().to_bits(),
        cached.best_period().to_bits()
    );

    // Three tasks, one machine: every move/swap is inadmissible; the engine
    // must simply terminate without probing anything into the cache.
    let app = Application::linear_chain(&[0, 0, 0]).unwrap();
    let platform = Platform::from_type_times(1, vec![vec![100.0]]).unwrap();
    let failures = FailureModel::uniform(3, 1, FailureRate::new(0.05).unwrap());
    let single_machine = Instance::new(app, platform, failures).unwrap();
    let seed = Mapping::from_indices(&[0, 0, 0], 1).unwrap();
    let mut engine = SearchEngine::new(&single_machine, &seed, BUDGET).unwrap();
    strategy.run(&mut engine).unwrap();
    assert_eq!(
        engine.best_period().to_bits(),
        single_machine.period(&seed).unwrap().value().to_bits(),
        "single-machine: the descent must return the seed period unchanged"
    );
}
