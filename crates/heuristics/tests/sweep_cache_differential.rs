//! Differential pin of the dirty-candidate sweep cache.
//!
//! `SteepestDescent` and `TabuSearch` route every candidate through the
//! engine's sweep cache, which skips evaluator calls for candidates a commit
//! provably did not help. That optimization must be *invisible* in behavior:
//! for every registry seed heuristic, on chains and on general in-forests,
//! the cached sweep must commit the **identical step sequence** (tasks,
//! machines and period bits), consume the identical budget, and return the
//! bit-identical best mapping the uncached full sweep returns — while
//! making strictly fewer evaluator calls overall.

use mf_core::prelude::*;
use mf_heuristics::search::{
    CommitStep, SearchEngine, SearchStrategy, SteepestDescent, SweepCacheStats, TabuSearch,
};
use mf_heuristics::{all_paper_heuristics, Heuristic};
use mf_sim::{GeneratorConfig, InstanceGenerator};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Candidate-evaluation budget per run: enough for several full sweeps on
/// the shapes below, small enough to keep the differential fast in debug.
const BUDGET: usize = 20_000;

fn chain_instance(tasks: usize, machines: usize, types: usize, seed: u64) -> Instance {
    InstanceGenerator::new(GeneratorConfig::paper_standard(tasks, machines, types))
        .generate(seed)
        .expect("the standard generator produces valid instances")
}

/// A random in-forest (mixed fan-in, several roots), drawn from the shared
/// `standard_in_forest` generator configuration.
fn forest_instance(tasks: usize, machines: usize, types: usize, rng: &mut StdRng) -> Instance {
    InstanceGenerator::new(GeneratorConfig::standard_in_forest(tasks, machines, types))
        .generate(rng.next_u64())
        .expect("the forest generator produces valid instances")
}

struct RunOutcome {
    trace: Vec<CommitStep>,
    mapping: Vec<usize>,
    best_bits: u64,
    steps: usize,
    stats: SweepCacheStats,
}

fn run(
    instance: &Instance,
    seed: &Mapping,
    strategy: &dyn SearchStrategy,
    cached: bool,
) -> RunOutcome {
    let mut engine = SearchEngine::new(instance, seed, BUDGET).unwrap();
    engine.set_sweep_cache(cached);
    engine.enable_commit_trace();
    strategy.run(&mut engine).unwrap();
    RunOutcome {
        trace: engine.commit_trace().to_vec(),
        best_bits: engine.best_period().to_bits(),
        steps: engine.steps(),
        stats: engine.sweep_stats(),
        mapping: engine
            .into_best()
            .as_slice()
            .iter()
            .map(|u| u.index())
            .collect(),
    }
}

#[test]
fn cached_sweeps_match_full_sweeps_for_every_registry_seed() {
    let mut rng = StdRng::seed_from_u64(0x5EEE_BCAC);
    let instances: Vec<(String, Instance)> = vec![
        ("chain n=20 m=5".into(), chain_instance(20, 5, 3, 0xA1)),
        ("chain n=30 m=6".into(), chain_instance(30, 6, 3, 0xB2)),
        (
            "forest n=24 m=6".into(),
            forest_instance(24, 6, 3, &mut rng),
        ),
        (
            "forest n=32 m=8".into(),
            forest_instance(32, 8, 4, &mut rng),
        ),
    ];
    let strategies: Vec<(&str, Box<dyn SearchStrategy>)> = vec![
        ("SD", Box::new(SteepestDescent::default())),
        ("TS", Box::new(TabuSearch::default())),
    ];
    let mut total_full = 0u64;
    let mut total_cached = 0u64;
    let mut total_saved = 0u64;
    for (label, instance) in &instances {
        for seeder in all_paper_heuristics(5) {
            let Ok(seed) = seeder.map(instance) else {
                continue; // a seed that cannot place this shape is not a pin
            };
            for (name, strategy) in &strategies {
                let context = format!("{name} from {} on {label}", seeder.name());
                let full = run(instance, &seed, strategy.as_ref(), false);
                let cached = run(instance, &seed, strategy.as_ref(), true);
                assert_eq!(
                    full.trace, cached.trace,
                    "{context}: committed step sequences diverged"
                );
                assert_eq!(
                    full.mapping, cached.mapping,
                    "{context}: best mappings diverged"
                );
                assert_eq!(
                    full.best_bits, cached.best_bits,
                    "{context}: best periods diverged at the bit level"
                );
                assert_eq!(
                    full.steps, cached.steps,
                    "{context}: budget accounting diverged"
                );
                assert_eq!(
                    full.stats.probes, cached.stats.probes,
                    "{context}: probe counts diverged"
                );
                assert!(
                    cached.stats.evaluations <= full.stats.evaluations,
                    "{context}: the cache must never add evaluator calls"
                );
                total_full += full.stats.evaluations;
                total_cached += cached.stats.evaluations;
                total_saved += cached.stats.skips + cached.stats.reuses;
            }
        }
    }
    assert!(
        total_cached < total_full,
        "the sweep cache never skipped anything ({total_cached} vs {total_full} evaluations)"
    );
    assert!(total_saved > 0, "no probe was ever answered from the cache");
    println!(
        "sweep cache: {total_cached}/{total_full} evaluator calls \
         ({total_saved} probes answered from cache)"
    );
}

/// The cache must also be invisible when a strategy runs *after* unrelated
/// commits (a warm, partially-stale cache), not just from a cold engine.
#[test]
fn warm_cache_stays_correct_across_interleaved_commits() {
    let mut rng = StdRng::seed_from_u64(0xFACE);
    let instance = forest_instance(18, 5, 3, &mut rng);
    let seed = mf_heuristics::H4wFastestMachine.map(&instance).unwrap();
    let strategy = SteepestDescent::default();

    let mut reference = SearchEngine::new(&instance, &seed, BUDGET).unwrap();
    reference.set_sweep_cache(false);
    let mut warmed = SearchEngine::new(&instance, &seed, BUDGET).unwrap();

    // Interleave: run one descent, then hand-commit a few degrading moves
    // (staling parts of the cache), then descend again. Both engines see
    // the identical command stream.
    for round in 0..3 {
        strategy.run(&mut reference).unwrap();
        strategy.run(&mut warmed).unwrap();
        assert_eq!(
            reference.current_period().to_bits(),
            warmed.current_period().to_bits(),
            "round {round}: descents diverged"
        );
        let task = TaskId(round * 3 % instance.task_count());
        let to = MachineId((round + 1) % instance.machine_count());
        if reference.allows_move(task, to) {
            let a = reference.commit_move(task, to).unwrap();
            let b = warmed.commit_move(task, to).unwrap();
            assert_eq!(a.period.to_bits(), b.period.to_bits());
        }
    }
    assert_eq!(
        reference.best_period().to_bits(),
        warmed.best_period().to_bits()
    );
    assert_eq!(
        reference.into_best().as_slice(),
        warmed.into_best().as_slice()
    );
}
