//! A minimal dense row-major matrix used by the simplex tableau.

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to an element.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] += value;
    }

    /// A view of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[f64] {
        debug_assert!(row < self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// A mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        debug_assert!(row < self.rows);
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Performs the row operation `row[target] -= factor * row[source]`.
    ///
    /// This is the elementary operation of Gaussian elimination / simplex
    /// pivoting. `target` and `source` must differ.
    pub fn row_axpy(&mut self, target: usize, source: usize, factor: f64) {
        assert_ne!(target, source, "row_axpy requires distinct rows");
        if factor == 0.0 {
            return;
        }
        let cols = self.cols;
        let (lo, hi) = if target < source {
            (target, source)
        } else {
            (source, target)
        };
        let (first, second) = self.data.split_at_mut(hi * cols);
        let lo_row = &mut first[lo * cols..lo * cols + cols];
        let hi_row = &mut second[..cols];
        if target < source {
            for (t, s) in lo_row.iter_mut().zip(hi_row.iter()) {
                *t -= factor * *s;
            }
        } else {
            for (t, s) in hi_row.iter_mut().zip(lo_row.iter()) {
                *t -= factor * *s;
            }
        }
    }

    /// Divides every element of a row by `divisor`.
    pub fn scale_row(&mut self, row: usize, divisor: f64) {
        for value in self.row_mut(row) {
            *value /= divisor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 0.0);
        m.set(1, 2, 5.0);
        m.add(1, 2, 1.5);
        assert_eq!(m.get(1, 2), 6.5);
        assert_eq!(m.row(1), &[0.0, 0.0, 6.5]);
    }

    #[test]
    fn row_axpy_both_directions() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(0, 0, 1.0);
        m.set(0, 1, 2.0);
        m.set(1, 0, 3.0);
        m.set(1, 1, 4.0);
        // row1 -= 2 * row0 -> [1, 0]
        m.row_axpy(1, 0, 2.0);
        assert_eq!(m.row(1), &[1.0, 0.0]);
        // row0 -= 1 * row1 -> [0, 2]
        m.row_axpy(0, 1, 1.0);
        assert_eq!(m.row(0), &[0.0, 2.0]);
        // factor 0 is a no-op
        m.row_axpy(0, 1, 0.0);
        assert_eq!(m.row(0), &[0.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "distinct rows")]
    fn row_axpy_same_row_panics() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.row_axpy(0, 0, 1.0);
    }

    #[test]
    fn scale_row_divides() {
        let mut m = DenseMatrix::zeros(1, 3);
        m.set(0, 0, 2.0);
        m.set(0, 1, 4.0);
        m.set(0, 2, 6.0);
        m.scale_row(0, 2.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }
}
