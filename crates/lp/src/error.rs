//! Error types for the LP / MIP solvers.

use std::fmt;

/// Result alias for LP operations.
pub type LpResult<T> = std::result::Result<T, LpError>;

/// Errors produced by the LP and MIP solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The linear program has no feasible solution.
    Infeasible,
    /// The linear program is unbounded in the direction of optimisation.
    Unbounded,
    /// A variable identifier does not belong to the problem.
    UnknownVariable {
        /// The offending variable index.
        index: usize,
        /// The number of variables in the problem.
        count: usize,
    },
    /// A coefficient or bound is not a finite number.
    NotFinite {
        /// Description of where the value was encountered.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The problem has no variables or no constraints where they are required.
    EmptyProblem,
    /// The branch-and-bound search exhausted its node or time budget before
    /// proving optimality.
    BudgetExhausted {
        /// Number of nodes explored.
        nodes: usize,
    },
    /// Numerical trouble: the simplex iteration limit was reached.
    IterationLimit {
        /// The iteration limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "the linear program is infeasible"),
            LpError::Unbounded => write!(f, "the linear program is unbounded"),
            LpError::UnknownVariable { index, count } => {
                write!(
                    f,
                    "variable {index} out of range (problem has {count} variables)"
                )
            }
            LpError::NotFinite { context, value } => {
                write!(f, "{context}: value {value} is not finite")
            }
            LpError::EmptyProblem => write!(f, "the problem has no variables"),
            LpError::BudgetExhausted { nodes } => {
                write!(f, "branch-and-bound budget exhausted after {nodes} nodes")
            }
            LpError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit ({limit}) reached")
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LpError::Infeasible.to_string().contains("infeasible"));
        assert!(LpError::Unbounded.to_string().contains("unbounded"));
        assert!(LpError::UnknownVariable { index: 3, count: 2 }
            .to_string()
            .contains('3'));
        assert!(LpError::BudgetExhausted { nodes: 10 }
            .to_string()
            .contains("10"));
        assert!(LpError::IterationLimit { limit: 99 }
            .to_string()
            .contains("99"));
        assert!(LpError::NotFinite {
            context: "rhs",
            value: f64::NAN
        }
        .to_string()
        .contains("rhs"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LpError>();
    }
}
