//! # mf-lp — dense simplex LP solver and branch-and-bound MIP solver
//!
//! The paper solves its specialized-mapping MIP (§6.1) with ILOG CPLEX. CPLEX
//! is proprietary and unavailable here, so this crate provides the substrate
//! needed to run the same formulation: a self-contained **two-phase primal
//! simplex** solver for linear programs and a **branch-and-bound** solver for
//! mixed-integer programs built on top of it.
//!
//! The solver targets the problem sizes of the paper's exact experiments
//! (tens of binary variables); it is a dense tableau implementation with
//! Bland's anti-cycling rule, not a sparse revised simplex.
//!
//! ```
//! use mf_lp::problem::{ConstraintSense, LpProblem, Objective};
//!
//! // maximize 3x + 2y  s.t.  x + y <= 4, x + 3y <= 6, x,y >= 0
//! let mut lp = LpProblem::new(Objective::Maximize);
//! let x = lp.add_variable("x");
//! let y = lp.add_variable("y");
//! lp.set_objective_coefficient(x, 3.0);
//! lp.set_objective_coefficient(y, 2.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintSense::LessEqual, 4.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 3.0)], ConstraintSense::LessEqual, 6.0);
//! let solution = mf_lp::simplex::solve(&lp).unwrap();
//! assert!((solution.objective - 12.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dense;
pub mod error;
pub mod mip;
pub mod problem;
pub mod simplex;

pub use error::{LpError, LpResult};
pub use mip::{BranchRule, MipProblem, MipSolution, MipStatus, SolverBudget};
pub use problem::{ConstraintSense, LpProblem, Objective, VariableId};
pub use simplex::{resolve_tightened, solve, LpSolution, WarmSolution};
