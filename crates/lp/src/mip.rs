//! Mixed-integer programming by LP-based branch-and-bound.
//!
//! The solver repeatedly solves LP relaxations with the two-phase simplex of
//! [`crate::simplex`], branching on a fractional integer variable until every
//! integer variable takes an integral value. Nodes are explored best-first
//! (most promising LP bound first) so that good incumbents are found early and
//! the search can be stopped with a proven-feasible solution when the node
//! budget is exhausted — this mirrors the paper's treatment of instances where
//! CPLEX "is not able to find solutions anymore" (Figure 12).

use crate::error::{LpError, LpResult};
use crate::problem::{LpProblem, Objective, VariableId};
use crate::simplex::{solve, LpSolution};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Tolerance under which a value is considered integral.
const INT_TOL: f64 = 1e-6;

/// Which fractional variable to branch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchRule {
    /// Branch on the integer variable whose fractional part is closest to 0.5.
    #[default]
    MostFractional,
    /// Branch on the first fractional integer variable (by index).
    FirstFractional,
}

/// Resource budget for the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverBudget {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Optional wall-clock limit.
    pub time_limit: Option<Duration>,
}

impl Default for SolverBudget {
    fn default() -> Self {
        SolverBudget {
            max_nodes: 200_000,
            time_limit: None,
        }
    }
}

impl SolverBudget {
    /// A budget bounded by a node count only.
    pub fn nodes(max_nodes: usize) -> Self {
        SolverBudget {
            max_nodes,
            time_limit: None,
        }
    }

    /// A budget bounded by both nodes and wall-clock time.
    pub fn with_time_limit(max_nodes: usize, time_limit: Duration) -> Self {
        SolverBudget {
            max_nodes,
            time_limit: Some(time_limit),
        }
    }
}

/// Termination status of the MIP search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipStatus {
    /// The returned solution is optimal.
    Optimal,
    /// The budget was exhausted; the returned solution is feasible but not
    /// proven optimal.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The budget was exhausted before any feasible solution was found.
    Unknown,
}

/// Result of a branch-and-bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct MipSolution {
    /// Termination status.
    pub status: MipStatus,
    /// Objective value of the incumbent, if any.
    pub objective: Option<f64>,
    /// Variable values of the incumbent, if any.
    pub values: Option<Vec<f64>>,
    /// Number of branch-and-bound nodes explored.
    pub nodes: usize,
}

impl MipSolution {
    /// `true` if a feasible (possibly optimal) solution was found.
    pub fn is_feasible(&self) -> bool {
        matches!(self.status, MipStatus::Optimal | MipStatus::Feasible)
    }
}

/// A mixed-integer program: a linear program plus integrality marks.
#[derive(Debug, Clone, PartialEq)]
pub struct MipProblem {
    lp: LpProblem,
    integer: Vec<bool>,
}

impl MipProblem {
    /// Wraps a linear program; no variable is integral yet.
    pub fn new(lp: LpProblem) -> Self {
        let integer = vec![false; lp.variable_count()];
        MipProblem { lp, integer }
    }

    /// Marks a variable as integer-constrained.
    pub fn set_integer(&mut self, variable: VariableId) {
        self.integer[variable.index()] = true;
    }

    /// Marks every variable in the iterator as integer-constrained.
    pub fn set_all_integer(&mut self, variables: impl IntoIterator<Item = VariableId>) {
        for v in variables {
            self.set_integer(v);
        }
    }

    /// The underlying linear program.
    pub fn lp(&self) -> &LpProblem {
        &self.lp
    }

    /// Mutable access to the underlying linear program (to add constraints).
    pub fn lp_mut(&mut self) -> &mut LpProblem {
        &mut self.lp
    }

    /// Number of integer-constrained variables.
    pub fn integer_count(&self) -> usize {
        self.integer.iter().filter(|&&b| b).count()
    }

    /// Solves the MIP with the default budget and branching rule.
    pub fn solve(&self) -> LpResult<MipSolution> {
        self.solve_with(SolverBudget::default(), BranchRule::default())
    }

    /// Solves the MIP with an explicit budget and branching rule.
    pub fn solve_with(&self, budget: SolverBudget, rule: BranchRule) -> LpResult<MipSolution> {
        self.lp.validate()?;
        let maximise = self.lp.objective() == Objective::Maximize;
        let start = Instant::now();

        // A node is a set of tightened bounds on integer variables.
        #[derive(Clone)]
        struct Node {
            bounds: Vec<(usize, f64, Option<f64>)>,
            bound: f64,
        }
        struct Ordered {
            node: Node,
            /// Key such that larger = more promising.
            key: f64,
            tie: usize,
        }
        impl PartialEq for Ordered {
            fn eq(&self, other: &Self) -> bool {
                self.key == other.key && self.tie == other.tie
            }
        }
        impl Eq for Ordered {}
        impl PartialOrd for Ordered {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Ordered {
            fn cmp(&self, other: &Self) -> Ordering {
                self.key
                    .partial_cmp(&other.key)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| other.tie.cmp(&self.tie))
            }
        }

        let mut heap: BinaryHeap<Ordered> = BinaryHeap::new();
        let mut tie = 0usize;
        let root_bound = if maximise {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
        heap.push(Ordered {
            node: Node {
                bounds: Vec::new(),
                bound: root_bound,
            },
            key: 0.0,
            tie,
        });

        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        let mut nodes = 0usize;

        let better = |candidate: f64, incumbent: f64| -> bool {
            if maximise {
                candidate > incumbent + INT_TOL
            } else {
                candidate < incumbent - INT_TOL
            }
        };

        while let Some(Ordered { node, .. }) = heap.pop() {
            if nodes >= budget.max_nodes {
                return Ok(self.finish(incumbent, MipStatus::Feasible, nodes));
            }
            if let Some(limit) = budget.time_limit {
                if start.elapsed() > limit {
                    return Ok(self.finish(incumbent, MipStatus::Feasible, nodes));
                }
            }
            nodes += 1;

            // Prune by bound before paying for the LP when possible.
            if let Some((best, _)) = &incumbent {
                if node.bound.is_finite() && !better(node.bound, *best) {
                    continue;
                }
            }

            // Solve the LP relaxation with the node's bounds.
            let mut lp = self.lp.clone();
            for &(var, lower, upper) in &node.bounds {
                lp.set_bounds(VariableId(var), lower, upper);
            }
            let relaxation = match solve(&lp) {
                Ok(sol) => sol,
                Err(LpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };

            if let Some((best, _)) = &incumbent {
                if !better(relaxation.objective, *best) {
                    continue;
                }
            }

            match self.fractional_variable(&relaxation, rule) {
                None => {
                    // Integral: candidate incumbent.
                    let accept = match &incumbent {
                        None => true,
                        Some((best, _)) => better(relaxation.objective, *best),
                    };
                    if accept {
                        incumbent = Some((relaxation.objective, relaxation.values.clone()));
                    }
                }
                Some(branch_var) => {
                    let value = relaxation.values[branch_var];
                    let floor = value.floor();
                    let ceil = value.ceil();
                    let (cur_lower, cur_upper) = self.current_bounds(&node.bounds, branch_var);
                    // Child 1: x <= floor.
                    if floor >= cur_lower - INT_TOL {
                        let mut bounds = node.bounds.clone();
                        bounds.push((branch_var, cur_lower, Some(floor)));
                        tie += 1;
                        heap.push(Ordered {
                            key: if maximise {
                                relaxation.objective
                            } else {
                                -relaxation.objective
                            },
                            node: Node {
                                bounds,
                                bound: relaxation.objective,
                            },
                            tie,
                        });
                    }
                    // Child 2: x >= ceil.
                    let upper_ok = match cur_upper {
                        Some(u) => ceil <= u + INT_TOL,
                        None => true,
                    };
                    if upper_ok {
                        let mut bounds = node.bounds.clone();
                        bounds.push((branch_var, ceil, cur_upper));
                        tie += 1;
                        heap.push(Ordered {
                            key: if maximise {
                                relaxation.objective
                            } else {
                                -relaxation.objective
                            },
                            node: Node {
                                bounds,
                                bound: relaxation.objective,
                            },
                            tie,
                        });
                    }
                }
            }
        }

        // Tree exhausted: either the incumbent is proven optimal, or no
        // integer point exists — whether or not the root relaxation was
        // feasible, the verdict is the same.
        if incumbent.is_some() {
            Ok(self.finish(incumbent, MipStatus::Optimal, nodes))
        } else {
            Ok(MipSolution {
                status: MipStatus::Infeasible,
                objective: None,
                values: None,
                nodes,
            })
        }
    }

    fn finish(
        &self,
        incumbent: Option<(f64, Vec<f64>)>,
        found_status: MipStatus,
        nodes: usize,
    ) -> MipSolution {
        match incumbent {
            Some((objective, values)) => MipSolution {
                status: found_status,
                objective: Some(objective),
                values: Some(values),
                nodes,
            },
            None => MipSolution {
                status: MipStatus::Unknown,
                objective: None,
                values: None,
                nodes,
            },
        }
    }

    /// The effective bounds of a variable after the node's tightenings.
    fn current_bounds(
        &self,
        bounds: &[(usize, f64, Option<f64>)],
        var: usize,
    ) -> (f64, Option<f64>) {
        let base = &self.lp.variables()[var];
        let mut lower = base.lower;
        let mut upper = base.upper;
        for &(v, lo, up) in bounds {
            if v == var {
                lower = lo;
                upper = up;
            }
        }
        (lower, upper)
    }

    /// Picks the integer variable to branch on, if any is fractional.
    fn fractional_variable(&self, relaxation: &LpSolution, rule: BranchRule) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (j, &is_int) in self.integer.iter().enumerate() {
            if !is_int {
                continue;
            }
            let value = relaxation.values[j];
            let frac = (value - value.round()).abs();
            if frac > INT_TOL {
                match rule {
                    BranchRule::FirstFractional => return Some(j),
                    BranchRule::MostFractional => {
                        let distance = (value - value.floor() - 0.5).abs();
                        if best.map_or(true, |(_, d)| distance < d) {
                            best = Some((j, distance));
                        }
                    }
                }
            }
        }
        best.map(|(j, _)| j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintSense as CS, LpProblem, Objective};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-5, "expected {b}, got {a}");
    }

    #[test]
    fn knapsack_is_solved_to_optimality() {
        // maximize 10a + 13b + 7c subject to 3a + 4b + 2c <= 6, binaries.
        let mut lp = LpProblem::new(Objective::Maximize);
        let a = lp.add_binary_variable("a");
        let b = lp.add_binary_variable("b");
        let c = lp.add_binary_variable("c");
        lp.set_objective_coefficient(a, 10.0);
        lp.set_objective_coefficient(b, 13.0);
        lp.set_objective_coefficient(c, 7.0);
        lp.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], CS::LessEqual, 6.0);
        let mut mip = MipProblem::new(lp);
        mip.set_all_integer([a, b, c]);
        let sol = mip.solve().unwrap();
        assert_eq!(sol.status, MipStatus::Optimal);
        // Best is {b, c} = 20 (a+c = 17, a alone 10, b alone 13).
        assert_close(sol.objective.unwrap(), 20.0);
        let values = sol.values.unwrap();
        assert_close(values[a.index()], 0.0);
        assert_close(values[b.index()], 1.0);
        assert_close(values[c.index()], 1.0);
    }

    #[test]
    fn pure_integer_rounding_matters() {
        // maximize x + y s.t. 2x + 3y <= 12, 2x + y <= 6, integers.
        // The LP optimum is fractional (x=1.5, y=3, obj 4.5); the integer
        // optimum is 4 (e.g. x=0, y=4).
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_bounded_variable("x", 0.0, 10.0);
        let y = lp.add_bounded_variable("y", 0.0, 10.0);
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 2.0), (y, 3.0)], CS::LessEqual, 12.0);
        lp.add_constraint(vec![(x, 2.0), (y, 1.0)], CS::LessEqual, 6.0);
        let mut mip = MipProblem::new(lp);
        mip.set_all_integer([x, y]);
        let sol = mip.solve().unwrap();
        assert_eq!(sol.status, MipStatus::Optimal);
        let values = sol.values.unwrap();
        assert!((values[x.index()].round() - values[x.index()]).abs() < 1e-6);
        assert!((values[y.index()].round() - values[y.index()]).abs() < 1e-6);
        assert_close(sol.objective.unwrap(), 4.0);
    }

    #[test]
    fn mixed_integer_continuous() {
        // minimize 3x + 2y, x integer, y continuous, x + y >= 3.7, x <= 2.
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_bounded_variable("x", 0.0, 2.0);
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], CS::GreaterEqual, 3.7);
        let mut mip = MipProblem::new(lp);
        mip.set_integer(x);
        let sol = mip.solve().unwrap();
        assert_eq!(sol.status, MipStatus::Optimal);
        // Putting everything on y costs 2*3.7=7.4, cheaper than using x.
        assert_close(sol.objective.unwrap(), 7.4);
    }

    #[test]
    fn infeasible_mip_is_detected() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_binary_variable("x");
        lp.add_constraint(vec![(x, 1.0)], CS::GreaterEqual, 2.0);
        let mut mip = MipProblem::new(lp);
        mip.set_integer(x);
        let sol = mip.solve().unwrap();
        assert_eq!(sol.status, MipStatus::Infeasible);
        assert!(!sol.is_feasible());
    }

    #[test]
    fn budget_exhaustion_reports_unknown_or_feasible() {
        // A small problem with a budget of one node cannot finish the search.
        let mut lp = LpProblem::new(Objective::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| lp.add_binary_variable(format!("x{i}")))
            .collect();
        for (i, &v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(v, (i + 1) as f64);
        }
        lp.add_constraint(vars.iter().map(|&v| (v, 2.0)).collect(), CS::LessEqual, 7.0);
        let mut mip = MipProblem::new(lp);
        mip.set_all_integer(vars.clone());
        let sol = mip
            .solve_with(SolverBudget::nodes(1), BranchRule::MostFractional)
            .unwrap();
        assert!(matches!(
            sol.status,
            MipStatus::Unknown | MipStatus::Feasible
        ));

        // With a generous budget the optimum is found: pick the 3 largest.
        let sol = mip.solve().unwrap();
        assert_eq!(sol.status, MipStatus::Optimal);
        assert_close(sol.objective.unwrap(), 6.0 + 5.0 + 4.0);
    }

    #[test]
    fn branch_rules_agree_on_the_optimum() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let vars: Vec<_> = (0..5)
            .map(|i| lp.add_binary_variable(format!("x{i}")))
            .collect();
        let profits = [4.0, 2.0, 10.0, 1.0, 2.0];
        let weights = [12.0, 1.0, 4.0, 1.0, 2.0];
        for (i, &v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(v, profits[i]);
        }
        lp.add_constraint(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, weights[i]))
                .collect(),
            CS::LessEqual,
            15.0,
        );
        let mut mip = MipProblem::new(lp);
        mip.set_all_integer(vars);
        let a = mip
            .solve_with(SolverBudget::default(), BranchRule::MostFractional)
            .unwrap();
        let b = mip
            .solve_with(SolverBudget::default(), BranchRule::FirstFractional)
            .unwrap();
        assert_eq!(a.status, MipStatus::Optimal);
        assert_eq!(b.status, MipStatus::Optimal);
        assert_close(a.objective.unwrap(), b.objective.unwrap());
        assert_close(a.objective.unwrap(), 15.0);
    }

    #[test]
    fn integer_count_reporting() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_binary_variable("y");
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], CS::GreaterEqual, 1.0);
        let mut mip = MipProblem::new(lp);
        assert_eq!(mip.integer_count(), 0);
        mip.set_integer(y);
        assert_eq!(mip.integer_count(), 1);
        assert_eq!(mip.lp().variable_count(), 2);
    }
}
