//! Linear-program construction: variables, bounds, constraints, objective.
//!
//! Variables are non-negative by default (the natural convention for the
//! paper's MIP, where every variable is a count, an indicator or a period) and
//! may carry an optional upper bound. Constraints are linear combinations
//! compared to a right-hand side with `≤`, `≥` or `=`.

use crate::error::{LpError, LpResult};

/// Identifier of a decision variable inside an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VariableId(pub usize);

impl VariableId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimise the objective function.
    Minimize,
    /// Maximise the objective function.
    Maximize,
}

/// Sense of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `Σ aᵢxᵢ ≤ b`
    LessEqual,
    /// `Σ aᵢxᵢ ≥ b`
    GreaterEqual,
    /// `Σ aᵢxᵢ = b`
    Equal,
}

/// A decision variable.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Human-readable name (used in debugging output).
    pub name: String,
    /// Lower bound (default 0).
    pub lower: f64,
    /// Optional upper bound.
    pub upper: Option<f64>,
    /// Objective coefficient.
    pub objective: f64,
}

/// A linear constraint `Σ aᵢxᵢ (≤|≥|=) b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse list of (variable, coefficient) terms.
    pub terms: Vec<(VariableId, f64)>,
    /// Sense of the comparison.
    pub sense: ConstraintSense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program.
#[derive(Debug, Clone, PartialEq)]
pub struct LpProblem {
    objective: Objective,
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates an empty problem with the given optimisation direction.
    pub fn new(objective: Objective) -> Self {
        LpProblem {
            objective,
            variables: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// The optimisation direction.
    #[inline]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Adds a non-negative variable with objective coefficient 0.
    pub fn add_variable(&mut self, name: impl Into<String>) -> VariableId {
        let id = VariableId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            lower: 0.0,
            upper: None,
            objective: 0.0,
        });
        id
    }

    /// Adds a variable bounded to `[lower, upper]`.
    pub fn add_bounded_variable(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
    ) -> VariableId {
        let id = self.add_variable(name);
        self.variables[id.index()].lower = lower;
        self.variables[id.index()].upper = Some(upper);
        id
    }

    /// Adds a binary indicator variable (`0 ≤ x ≤ 1`; integrality is enforced
    /// by the MIP layer, not by the LP).
    pub fn add_binary_variable(&mut self, name: impl Into<String>) -> VariableId {
        self.add_bounded_variable(name, 0.0, 1.0)
    }

    /// Sets the objective coefficient of a variable.
    pub fn set_objective_coefficient(&mut self, variable: VariableId, coefficient: f64) {
        self.variables[variable.index()].objective = coefficient;
    }

    /// Sets the bounds of an existing variable.
    pub fn set_bounds(&mut self, variable: VariableId, lower: f64, upper: Option<f64>) {
        self.variables[variable.index()].lower = lower;
        self.variables[variable.index()].upper = upper;
    }

    /// Adds a constraint. Duplicate variables in `terms` are summed. Returns
    /// the constraint's index (usable with
    /// [`set_constraint_rhs`](Self::set_constraint_rhs)).
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VariableId, f64)>,
        sense: ConstraintSense,
        rhs: f64,
    ) -> usize {
        self.constraints.push(Constraint { terms, sense, rhs });
        self.constraints.len() - 1
    }

    /// Replaces the right-hand side of an existing constraint — the cheap
    /// re-tightening primitive incremental users (the branch-and-bound LP
    /// bound) rely on: the constraint matrix is untouched, only `b` moves.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn set_constraint_rhs(&mut self, index: usize, rhs: f64) {
        self.constraints[index].rhs = rhs;
    }

    /// Number of decision variables.
    #[inline]
    pub fn variable_count(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    #[inline]
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The variables of the problem.
    #[inline]
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// The constraints of the problem.
    #[inline]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Validates that every coefficient, bound and right-hand side is finite
    /// and that every constraint references existing variables.
    pub fn validate(&self) -> LpResult<()> {
        if self.variables.is_empty() {
            return Err(LpError::EmptyProblem);
        }
        let count = self.variables.len();
        for v in &self.variables {
            if !v.lower.is_finite() {
                return Err(LpError::NotFinite {
                    context: "variable lower bound",
                    value: v.lower,
                });
            }
            if let Some(u) = v.upper {
                if !u.is_finite() {
                    return Err(LpError::NotFinite {
                        context: "variable upper bound",
                        value: u,
                    });
                }
            }
            if !v.objective.is_finite() {
                return Err(LpError::NotFinite {
                    context: "objective coefficient",
                    value: v.objective,
                });
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() {
                return Err(LpError::NotFinite {
                    context: "constraint rhs",
                    value: c.rhs,
                });
            }
            for &(var, coeff) in &c.terms {
                if var.index() >= count {
                    return Err(LpError::UnknownVariable {
                        index: var.index(),
                        count,
                    });
                }
                if !coeff.is_finite() {
                    return Err(LpError::NotFinite {
                        context: "constraint coefficient",
                        value: coeff,
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.variables
            .iter()
            .zip(values)
            .map(|(v, &x)| v.objective * x)
            .sum()
    }

    /// Checks whether a point satisfies every constraint and bound within
    /// `tolerance`.
    pub fn is_feasible(&self, values: &[f64], tolerance: f64) -> bool {
        if values.len() != self.variables.len() {
            return false;
        }
        for (v, &x) in self.variables.iter().zip(values) {
            if x < v.lower - tolerance {
                return false;
            }
            if let Some(u) = v.upper {
                if x > u + tolerance {
                    return false;
                }
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c
                .terms
                .iter()
                .map(|&(var, coeff)| coeff * values[var.index()])
                .sum();
            let ok = match c.sense {
                ConstraintSense::LessEqual => lhs <= c.rhs + tolerance,
                ConstraintSense::GreaterEqual => lhs >= c.rhs - tolerance,
                ConstraintSense::Equal => (lhs - c.rhs).abs() <= tolerance,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x");
        let y = lp.add_bounded_variable("y", 1.0, 5.0);
        let z = lp.add_binary_variable("z");
        lp.set_objective_coefficient(x, 2.0);
        lp.add_constraint(
            vec![(x, 1.0), (y, -1.0)],
            ConstraintSense::GreaterEqual,
            0.0,
        );
        assert_eq!(lp.variable_count(), 3);
        assert_eq!(lp.constraint_count(), 1);
        assert_eq!(lp.variables()[y.index()].lower, 1.0);
        assert_eq!(lp.variables()[z.index()].upper, Some(1.0));
        assert!(lp.validate().is_ok());
    }

    #[test]
    fn validation_catches_problems() {
        let lp = LpProblem::new(Objective::Minimize);
        assert_eq!(lp.validate().unwrap_err(), LpError::EmptyProblem);

        let mut lp = LpProblem::new(Objective::Minimize);
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(VariableId(7), 1.0)], ConstraintSense::Equal, 1.0);
        assert!(matches!(
            lp.validate().unwrap_err(),
            LpError::UnknownVariable { index: 7, .. }
        ));

        let mut lp = LpProblem::new(Objective::Minimize);
        let x2 = lp.add_variable("x");
        lp.set_objective_coefficient(x2, f64::NAN);
        assert!(matches!(
            lp.validate().unwrap_err(),
            LpError::NotFinite { .. }
        ));
        let _ = x;
    }

    #[test]
    fn feasibility_and_objective_evaluation() {
        let mut lp = LpProblem::new(Objective::Maximize);
        let x = lp.add_variable("x");
        let y = lp.add_bounded_variable("y", 0.0, 2.0);
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintSense::LessEqual, 3.0);
        assert!(lp.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[2.0, 2.0], 1e-9)); // violates x + y <= 3
        assert!(!lp.is_feasible(&[1.0, 3.0], 1e-9)); // violates y <= 2
        assert!(!lp.is_feasible(&[-1.0, 0.0], 1e-9)); // violates x >= 0
        assert!(!lp.is_feasible(&[1.0], 1e-9)); // wrong dimension
        assert_eq!(lp.objective_value(&[1.0, 2.0]), 7.0);
    }
}
